//! Architecture shootout: run one application under every architecture the
//! paper evaluates (baseline, Best-SWL oracle, PCAL, CERF, Linebacker and
//! the §5.5 combinations) and print a Figure 12/15-style comparison.
//!
//! ```text
//! cargo run --release --example architecture_shootout [APP]
//! ```
//!
//! `APP` is a Table 2 abbreviation (default: GE).

use lb_bench::{Arch, Runner, Scale};
use workloads::app;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "GE".to_string());
    let Some(a) = app(&which) else {
        eprintln!("unknown app '{which}' — use a Table 2 abbreviation (S2, GE, BI, ...)");
        std::process::exit(2);
    };
    println!("app: {} — {}", a.abbrev, a.description);

    let runner = Runner::new(Scale::Default);
    let (limit, bswl) = runner.best_swl(&a);
    let bswl_ipc = bswl.ipc();
    println!(
        "Best-SWL oracle limit: {} (ipc {:.3})",
        limit.map(|l| l.to_string()).unwrap_or_else(|| "unlimited".into()),
        bswl_ipc
    );
    println!();
    println!("{:<16} {:>8} {:>10}", "architecture", "ipc", "vs bswl");

    let archs = [
        Arch::Baseline,
        Arch::Pcal,
        Arch::Cerf,
        Arch::VictimCaching,
        Arch::Svc,
        Arch::PcalCerf,
        Arch::PcalSvc,
        Arch::Linebacker,
        Arch::LbCacheExt,
    ];
    for arch in archs {
        let s = runner.run(&a, arch);
        println!("{:<16} {:>8.3} {:>9.3}x", arch.label(), s.ipc(), s.ipc() / bswl_ipc.max(1e-9));
    }
    println!();
    println!("({} simulations run, memoized per architecture)", runner.sims_run());
}
