//! A streaming stencil workload (modeled on the paper's FD / FDTD-2D
//! scenario): every load touches fresh data, so no cache helps. Shows
//! Linebacker's safety property — its Load Monitor finds no high-locality
//! loads, disables itself, and performance matches the baseline instead of
//! being hurt by pointless throttling.
//!
//! ```text
//! cargo run --release --example streaming_stencil
//! ```

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::Gpu;
use gpu_sim::policy::baseline_factory;
use linebacker::{linebacker_factory, LbConfig};
use workloads::app;

fn main() {
    let cfg = GpuConfig::default().with_sms(2).with_windows(8_000, 160_000);
    let fd = app("FD").expect("FD is in the suite");
    println!("workload: FD — {}", fd.description);
    println!();

    let kernel = fd.kernel(cfg.n_sms);

    let mut base_gpu = Gpu::new(cfg.clone(), kernel.clone(), &baseline_factory());
    let base = base_gpu.run();

    let mut lb_gpu = Gpu::new(cfg, kernel, &linebacker_factory(LbConfig::default()));
    let lb = lb_gpu.run();

    println!("baseline   : ipc {:.3}, miss ratio {:.1}%", base.ipc(), 100.0 * base.miss_ratio());
    println!("linebacker : ipc {:.3}, miss ratio {:.1}%", lb.ipc(), 100.0 * lb.miss_ratio());
    println!();
    println!("linebacker internal state on SM0 after the run:");
    println!("  {}", lb_gpu.sm(0).policy.debug_state());
    println!();
    let delta = (lb.ipc() / base.ipc().max(1e-9) - 1.0) * 100.0;
    println!(
        "performance delta: {delta:+.1}% — the monitor found no high-locality load \
         within two windows and disabled victim caching/throttling, so the \
         streaming kernel runs at baseline speed."
    );
}
