//! Quickstart: run one kernel on the simulated GPU under the baseline and
//! under Linebacker, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::baseline_factory;
use gpu_sim::types::AccessOutcome;
use linebacker::{linebacker_factory, LbConfig};

fn main() -> Result<(), String> {
    // A small GPU: 2 SMs, 8k-cycle monitoring windows, 200k-cycle budget.
    let cfg = GpuConfig::default().with_sms(2).with_windows(8_000, 200_000);

    // A cache-hungry kernel: each warp re-reads a private 2 KB block
    // (64 warps x 2 KB = 128 KB across the SM, far beyond the 48 KB L1),
    // plus a small shared lookup table.
    let kernel = KernelBuilder::new("quickstart")
        .grid(64 * cfg.n_sms, 8)
        .regs_per_thread(20)
        .load_then_use(AccessPattern::reuse_working_set(2048, false), 2)
        .load_then_use(AccessPattern::reuse_working_set(16 * 1024, true), 1)
        .alu(3)
        .iterations(100_000)
        .build()?;

    println!(
        "kernel: {} ({} warps/CTA, {} regs/thread)",
        kernel.name, kernel.warps_per_cta, kernel.regs_per_thread
    );
    println!("simulating baseline GTO GPU ...");
    let base = run_kernel(cfg.clone(), kernel.clone(), &baseline_factory());

    println!("simulating the same GPU with Linebacker ...");
    let lb = run_kernel(cfg, kernel, &linebacker_factory(LbConfig::default()));

    println!();
    println!("{:<28} {:>12} {:>12}", "", "baseline", "linebacker");
    println!("{:<28} {:>12.3} {:>12.3}", "IPC", base.ipc(), lb.ipc());
    println!(
        "{:<28} {:>11.1}% {:>11.1}%",
        "L1 hit ratio",
        100.0 * base.outcome_fraction(AccessOutcome::L1Hit),
        100.0 * lb.outcome_fraction(AccessOutcome::L1Hit)
    );
    println!(
        "{:<28} {:>11.1}% {:>11.1}%",
        "victim (register) hits",
        100.0 * base.outcome_fraction(AccessOutcome::RegHit),
        100.0 * lb.outcome_fraction(AccessOutcome::RegHit)
    );
    println!(
        "{:<28} {:>10.1}MB {:>10.1}MB",
        "off-chip traffic",
        base.dram_bytes.iter().sum::<u64>() as f64 / 1e6,
        lb.dram_bytes.iter().sum::<u64>() as f64 / 1e6
    );
    println!("{:<28} {:>12} {:>12}", "monitoring periods", "-", lb.monitor_periods);
    println!();
    println!("Linebacker speedup: {:.2}x", lb.ipc() / base.ipc().max(1e-9));
    Ok(())
}
