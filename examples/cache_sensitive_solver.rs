//! A cache-sensitive linear-solver workload (modeled on the paper's BI /
//! BiCGStab scenario): a reused per-warp state vector plus a streaming
//! right-hand side. Shows why *selective* victim caching matters — plain
//! victim caching lets the stream pollute the precious register space.
//!
//! ```text
//! cargo run --release --example cache_sensitive_solver
//! ```

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::types::AccessOutcome;
use linebacker::{
    linebacker_factory, selective_victim_caching_factory, victim_caching_factory, LbConfig,
};
use workloads::app;

type Factory = Box<PolicyFactory<'static>>;

fn main() {
    let cfg = GpuConfig::default().with_sms(2).with_windows(8_000, 200_000);
    let bi = app("BI").expect("BI is in the suite");
    println!("workload: BI — {}", bi.description);
    println!("loads: {} (streaming present: {})", bi.loads.len(), bi.has_streaming_load());
    println!();

    let kernel = bi.kernel(cfg.n_sms);
    let run = |name: &str, factory: Factory| -> f64 {
        let s = run_kernel(cfg.clone(), kernel.clone(), &factory);
        println!(
            "{:<24} ipc {:>6.3}   l1-hit {:>5.1}%   reg-hit {:>5.1}%   miss {:>5.1}%",
            name,
            s.ipc(),
            100.0 * s.outcome_fraction(AccessOutcome::L1Hit),
            100.0 * s.outcome_fraction(AccessOutcome::RegHit),
            100.0 * s.outcome_fraction(AccessOutcome::Miss),
        );
        s.ipc()
    };

    let base = run("baseline", baseline_factory());
    let vc = run("victim caching (all)", victim_caching_factory());
    let svc = run("selective VC", selective_victim_caching_factory());
    let lb = run("full linebacker", linebacker_factory(LbConfig::default()));

    println!();
    println!("speedups vs baseline:");
    println!("  victim caching   {:.2}x", vc / base);
    println!("  selective VC     {:.2}x  (stream filtered out of victim space)", svc / base);
    println!("  full linebacker  {:.2}x  (+ CTA throttling frees more space)", lb / base);
}
