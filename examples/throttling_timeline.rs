//! Timeline view: watch Linebacker's state machine unfold window by window —
//! monitoring, selection, the CTA-throttling probe, lock, and the victim
//! cache filling up. Prints an ASCII chart of IPC, hit fraction, active CTAs
//! and victim-cache size per monitoring window.
//!
//! ```text
//! cargo run --release --example throttling_timeline [APP]
//! ```

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::Gpu;
use linebacker::{linebacker_factory, LbConfig};
use workloads::app;

fn bar(frac: f64, width: usize) -> String {
    let n = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(n), ".".repeat(width - n))
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "S2".to_string());
    let Some(a) = app(&which) else {
        eprintln!("unknown app '{which}'");
        std::process::exit(2);
    };
    let cfg = GpuConfig::default().with_sms(2).with_windows(8_000, 240_000);
    println!("app: {} — {}", a.abbrev, a.description);
    println!("windows of {} cycles; Linebacker default config\n", cfg.window_cycles);

    let mut gpu =
        Gpu::new(cfg.clone(), a.kernel(cfg.n_sms), &linebacker_factory(LbConfig::default()));
    let stats = gpu.run();
    let series = stats.timeline_aggregate();

    let max_ipc = series.iter().map(|s| s.ipc).fold(0.1, f64::max);
    println!(
        "{:>3}  {:<22} {:>6}  {:<12} {:>5}  {:>5}  {:>9}",
        "win", "ipc", "", "hit%", "", "ctas", "victim KB"
    );
    for s in &series {
        println!(
            "{:>3}  {} {:>6.2}  {} {:>4.0}%  {:>5}  {:>9.1}",
            s.window,
            bar(s.ipc / max_ipc, 20),
            s.ipc,
            bar(s.hit_fraction, 10),
            100.0 * s.hit_fraction,
            s.active_ctas,
            s.victim_regs as f64 * 128.0 / 1024.0,
        );
    }

    println!();
    println!("final policy state (SM0): {}", gpu.sm(0).policy.debug_state());
    println!(
        "run summary: ipc {:.3}, reg hits {:.1}%, monitoring periods {}",
        stats.ipc(),
        100.0 * stats.outcome_fraction(gpu_sim::types::AccessOutcome::RegHit),
        stats.monitor_periods
    );
}
