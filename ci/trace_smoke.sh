#!/usr/bin/env sh
# Trace subsystem smoke test.
#
# Captures short traced runs of two architectures (baseline and Linebacker)
# twice, then checks the three properties the trace subsystem promises:
#
#   1. determinism  - re-running the same configuration produces a
#                     byte-identical event stream (`diff` exits 0);
#   2. sensitivity  - different policies produce different streams
#                     (`diff` exits 2 and names the first divergence);
#   3. inspectability - `summarize` parses the capture without error.
#
#   usage: ci/trace_smoke.sh [sanity-binary] [lb-trace-binary]
set -eu

SANITY=${1:-target/release/sanity}
LBTRACE=${2:-target/release/lb-trace}

A=$(mktemp -d)
B=$(mktemp -d)
trap 'rm -rf "$A" "$B"' EXIT

echo "trace_smoke: capturing run A and run B (sanity --quick GA)"
"$SANITY" --quick GA --trace "$A" > /dev/null
"$SANITY" --quick GA --trace "$B" > /dev/null

for arch in base lb; do
    f="app=GA_arch=$arch.lbt"
    [ -f "$A/$f" ] || { echo "trace_smoke: missing capture $A/$f" >&2; exit 1; }

    echo "trace_smoke: self-diff $f (must be identical)"
    "$LBTRACE" diff "$A/$f" "$B/$f" || {
        echo "trace_smoke: FAIL - identical configs diverged for $arch" >&2
        exit 1
    }
done

echo "trace_smoke: cross-policy diff base vs lb (must diverge)"
if "$LBTRACE" diff "$A/app=GA_arch=base.lbt" "$A/app=GA_arch=lb.lbt" > /dev/null; then
    echo "trace_smoke: FAIL - baseline and Linebacker produced identical traces" >&2
    exit 1
else
    status=$?
    [ "$status" -eq 2 ] || {
        echo "trace_smoke: FAIL - diff errored (exit $status) instead of diverging" >&2
        exit 1
    }
fi

echo "trace_smoke: summarize the Linebacker capture"
"$LBTRACE" summarize "$A/app=GA_arch=lb.lbt"

echo "trace_smoke: OK"
