#!/usr/bin/env sh
# Throughput regression gate.
#
# Compares the sims/s of a fresh `--profile` run against the committed
# baseline record and fails if it regressed more than TOLERANCE below it.
#
#   usage: ci/throughput_gate.sh [current.json] [baseline.json]
#
# Defaults compare a fresh BENCH_CI.json (produced in CI by the full
# quick-scale `lb-experiments --jobs 1 --profile` suite — the same
# binary, scale, and thread count as the committed record; the gate always
# runs sim-threads=1 so the committed threads=1 record is the like-for-like
# baseline) against the committed BENCH_PR10.json figure. The tolerance is
# deliberately wide
# (15 %) because CI machines vary; the gate exists to catch
# order-of-magnitude scheduling regressions, not noise.
set -eu

CURRENT=${1:-BENCH_CI.json}
BASELINE=${2:-BENCH_PR10.json}
TOLERANCE=0.85

extract() {
    grep -o '"sims_per_sec": [0-9.]*' "$1" | head -1 | grep -o '[0-9.]*$'
}

cur=$(extract "$CURRENT")
base=$(extract "$BASELINE")
[ -n "$cur" ] || { echo "throughput_gate: no sims_per_sec in $CURRENT" >&2; exit 2; }
[ -n "$base" ] || { echo "throughput_gate: no sims_per_sec in $BASELINE" >&2; exit 2; }

floor=$(awk "BEGIN { printf \"%.3f\", $base * $TOLERANCE }")
echo "throughput_gate: current $cur sims/s, baseline $base sims/s, floor $floor sims/s"

awk "BEGIN { exit !($cur >= $floor) }" || {
    echo "throughput_gate: FAIL - $cur sims/s is below the $floor sims/s floor" >&2
    exit 1
}
echo "throughput_gate: OK"
