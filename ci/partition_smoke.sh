#!/usr/bin/env sh
# Partitioned-memory smoke test.
#
# Exercises the partition layer end to end at quick scale and checks the
# invariants the refactor promises:
#
#   1. transparency  - `--partitions 1` output is byte-identical to the
#                      default (the partitioned path with one partition IS
#                      the monolithic memory subsystem);
#   2. functionality - a 4-partition run of the same experiments completes
#                      with exit code 0;
#   3. conservation  - the `partition` sensitivity sweep renders its full
#                      table and every P=1 row reports conserved totals;
#   4. validation    - non-power-of-two partition counts are rejected with
#                      exit code 2.
#
#   usage: ci/partition_smoke.sh [lb-experiments-binary]
set -eu

LBX=${1:-target/release/lb-experiments}

T=$(mktemp -d)
trap 'rm -rf "$T"' EXIT

echo "partition_smoke: default vs explicit --partitions 1 (must be byte-identical)"
"$LBX" --scale quick --jobs 1 --out "$T/default.txt" fig01 table2 2> /dev/null
"$LBX" --scale quick --jobs 1 --partitions 1 --out "$T/p1.txt" fig01 table2 2> /dev/null
cmp "$T/default.txt" "$T/p1.txt" || {
    echo "partition_smoke: FAIL - one explicit partition changed experiment output" >&2
    exit 1
}

echo "partition_smoke: 4-partition run of the same experiments"
"$LBX" --scale quick --jobs 1 --partitions 4 --out "$T/p4.txt" fig01 table2 2> /dev/null
[ -s "$T/p4.txt" ] || { echo "partition_smoke: empty 4-partition output" >&2; exit 1; }

echo "partition_smoke: sensitivity sweep renders and P=1 rows conserve"
"$LBX" --scale quick --jobs 1 --out "$T/sweep.txt" partition 2> /dev/null
grep -q "memory-partition sensitivity" "$T/sweep.txt" || {
    echo "partition_smoke: sweep table missing" >&2
    exit 1
}
# Every P=1 row is its own conservation baseline and must say "yes".
bad=$(awk '$2 == 1 && $NF != "yes"' "$T/sweep.txt")
[ -z "$bad" ] || {
    echo "partition_smoke: FAIL - P=1 rows not conserved:" >&2
    echo "$bad" >&2
    exit 1
}

echo "partition_smoke: invalid partition counts are rejected"
for n in 0 3; do
    if "$LBX" --scale quick --partitions "$n" fig01 > /dev/null 2>&1; then
        echo "partition_smoke: FAIL - --partitions $n was accepted" >&2
        exit 1
    else
        code=$?
        [ "$code" -eq 2 ] || {
            echo "partition_smoke: FAIL - --partitions $n exited $code, want 2" >&2
            exit 1
        }
    fi
done

echo "partition_smoke: OK"
