#!/usr/bin/env sh
# Greedy-run burst execution smoke test (DESIGN.md §2.11).
#
# Bursting batches multi-cycle SM work between memory rendezvous points;
# it is a pure speed optimization and must be architecturally invisible.
# This script proves it end to end at quick scale:
#
#   1. transparency - `--no-burst` experiment output is byte-identical to
#                     the default burst-on run, across both harness
#                     binaries (rendered tables AND the sanity IPC table);
#   2. trace parity - a traced burst-on run self-diffs identical against a
#                     traced `--no-burst` run (tracing suspends bursting,
#                     so both sides are lockstep and the event streams
#                     must match byte for byte);
#   3. engagement   - the burst-on profile reports spans covering more
#                     cycles than there are spans (mean length > 1), so
#                     the identity above is not vacuous.
#
#   usage: ci/burst_smoke.sh [lb-experiments-binary] [sanity-binary] [lb-trace-binary]
set -eu

LBX=${1:-target/release/lb-experiments}
SANITY=${2:-target/release/sanity}
LBT=${3:-target/release/lb-trace}

T=$(mktemp -d)
trap 'rm -rf "$T"' EXIT

echo "burst_smoke: lb-experiments burst-on vs --no-burst (must be byte-identical)"
"$LBX" --scale quick --jobs 1 --out "$T/on.txt" fig01 table2 2> /dev/null
"$LBX" --scale quick --jobs 1 --no-burst --out "$T/off.txt" fig01 table2 2> /dev/null
cmp "$T/on.txt" "$T/off.txt" || {
    echo "burst_smoke: FAIL - bursting changed experiment output" >&2
    exit 1
}

echo "burst_smoke: sanity burst-on vs --no-burst (must be byte-identical)"
"$SANITY" --quick GA MC > "$T/sanity_on.txt"
"$SANITY" --quick --no-burst GA MC > "$T/sanity_off.txt"
cmp "$T/sanity_on.txt" "$T/sanity_off.txt" || {
    echo "burst_smoke: FAIL - bursting changed the sanity table" >&2
    exit 1
}

echo "burst_smoke: traced burst-on vs traced --no-burst (zero divergence)"
"$SANITY" --quick --trace "$T/tr_on" GA > /dev/null
"$SANITY" --quick --no-burst --trace "$T/tr_off" GA > /dev/null
for f in "$T"/tr_on/*.lbt; do
    base=$(basename "$f")
    "$LBT" diff "$f" "$T/tr_off/$base" > "$T/diff.txt" || {
        echo "burst_smoke: FAIL - trace $base diverges between burst on/off" >&2
        cat "$T/diff.txt" >&2
        exit 1
    }
done

echo "burst_smoke: burst-on profile reports spans (identity must not be vacuous)"
"$SANITY" --quick --profile GA > "$T/profile.json" 2> /dev/null
# Key-based, whitespace-tolerant extraction (same approach as
# ci/throughput_gate.sh): "bursts" and "burst_cycles" appear only in the
# sm_phases burst block.
bursts=$(grep -o '"bursts": *[0-9]*' "$T/profile.json" | head -1 | grep -o '[0-9]*$')
bcycles=$(grep -o '"burst_cycles": *[0-9]*' "$T/profile.json" | head -1 | grep -o '[0-9]*$')
[ -n "$bursts" ] || { echo "burst_smoke: no burst block in profile" >&2; exit 2; }
[ "$bursts" -gt 0 ] || {
    echo "burst_smoke: FAIL - burst-on run recorded zero spans" >&2
    exit 1
}
[ "$bcycles" -gt "$bursts" ] || {
    echo "burst_smoke: FAIL - mean burst length is not above 1 ($bcycles cycles / $bursts spans)" >&2
    exit 1
}
echo "burst_smoke: $bursts spans covering $bcycles SM-cycles"

echo "burst_smoke: OK"
