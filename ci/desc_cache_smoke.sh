#!/usr/bin/env sh
# Decoded access-descriptor cache smoke test.
#
# The cache is a pure speed optimization: replaying an interned descriptor
# must generate exactly the line addresses `gen_lines` would. This script
# proves it end to end at quick scale:
#
#   1. transparency - `--no-desc-cache` experiment output is byte-identical
#                     to the default cache-on run, across both harness
#                     binaries (rendered tables AND the sanity IPC table);
#   2. engagement   - the cache-on profile reports a non-trivial hit rate,
#                     so the identity above is not vacuous.
#
#   usage: ci/desc_cache_smoke.sh [lb-experiments-binary] [sanity-binary]
set -eu

LBX=${1:-target/release/lb-experiments}
SANITY=${2:-target/release/sanity}

T=$(mktemp -d)
trap 'rm -rf "$T"' EXIT

echo "desc_cache_smoke: lb-experiments cache-on vs --no-desc-cache (must be byte-identical)"
"$LBX" --scale quick --jobs 1 --out "$T/on.txt" fig01 table2 2> /dev/null
"$LBX" --scale quick --jobs 1 --no-desc-cache --out "$T/off.txt" fig01 table2 2> /dev/null
cmp "$T/on.txt" "$T/off.txt" || {
    echo "desc_cache_smoke: FAIL - descriptor replay changed experiment output" >&2
    exit 1
}

echo "desc_cache_smoke: sanity cache-on vs --no-desc-cache (must be byte-identical)"
"$SANITY" --quick GA MC > "$T/sanity_on.txt"
"$SANITY" --quick --no-desc-cache GA MC > "$T/sanity_off.txt"
cmp "$T/sanity_on.txt" "$T/sanity_off.txt" || {
    echo "desc_cache_smoke: FAIL - descriptor replay changed the sanity table" >&2
    exit 1
}

echo "desc_cache_smoke: cache-on profile reports hits (identity must not be vacuous)"
"$SANITY" --quick --profile GA > "$T/profile.json" 2> /dev/null
# Key-based, whitespace-tolerant extraction (same approach as
# ci/throughput_gate.sh): the desc_cache block is the only place a
# "hits" key appears, so formatting changes in the JSON writer cannot
# silently turn the engagement check into a false exit 2.
hits=$(grep -o '"hits": *[0-9]*' "$T/profile.json" | head -1 | grep -o '[0-9]*$')
[ -n "$hits" ] || { echo "desc_cache_smoke: no desc_cache block in profile" >&2; exit 2; }
[ "$hits" -gt 0 ] || {
    echo "desc_cache_smoke: FAIL - cache-on run recorded zero hits" >&2
    exit 1
}
echo "desc_cache_smoke: $hits hits recorded"

echo "desc_cache_smoke: OK"
