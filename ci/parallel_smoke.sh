#!/usr/bin/env sh
# Multi-threaded burst execution smoke test (DESIGN.md §2.13).
#
# `--sim-threads N` steps each step's due SMs on a work-stealing pool and
# merges their emissions at a rendezvous barrier in canonical order; it is
# a pure speed optimization and must be byte-invisible at any thread
# count. This script proves it end to end at quick scale:
#
#   1. transparency - `--sim-threads 2` experiment output is byte-identical
#                     to the default serial run, across both harness
#                     binaries (rendered tables AND the sanity IPC table);
#   2. engagement   - the threads=2 profile reports pool rounds, spans,
#                     and at least one steal on a heterogeneous workload
#                     mix, so the identity above compared a genuinely
#                     parallel execution, not a silently serial one;
#   3. composition  - jobs x sim-threads splits the thread budget instead
#                     of multiplying it (the profile's workers block
#                     records the effective split).
#
#   usage: ci/parallel_smoke.sh [lb-experiments-binary] [sanity-binary]
set -eu

LBX=${1:-target/release/lb-experiments}
SANITY=${2:-target/release/sanity}

T=$(mktemp -d)
trap 'rm -rf "$T"' EXIT

echo "parallel_smoke: lb-experiments serial vs --sim-threads 2 (must be byte-identical)"
"$LBX" --scale quick --jobs 1 --out "$T/serial.txt" fig01 table2 2> /dev/null
"$LBX" --scale quick --jobs 1 --sim-threads 2 --out "$T/par2.txt" fig01 table2 2> /dev/null
cmp "$T/serial.txt" "$T/par2.txt" || {
    echo "parallel_smoke: FAIL - sim-threads 2 changed experiment output" >&2
    exit 1
}

echo "parallel_smoke: sanity serial vs --sim-threads 4 (must be byte-identical)"
# GA (reuse) + MC mix gives the pool imbalanced spans worth stealing.
"$SANITY" --quick GA MC > "$T/sanity_serial.txt"
"$SANITY" --quick --sim-threads 4 GA MC > "$T/sanity_par.txt"
cmp "$T/sanity_serial.txt" "$T/sanity_par.txt" || {
    echo "parallel_smoke: FAIL - sim-threads changed the sanity table" >&2
    exit 1
}

echo "parallel_smoke: threads=2 profile reports pool engagement (non-vacuous identity)"
"$SANITY" --quick --sim-threads 2 --profile GA MC > "$T/profile.json" 2> /dev/null
rounds=$(grep -o '"rounds": *[0-9]*' "$T/profile.json" | head -1 | grep -o '[0-9]*$')
spans=$(grep -o '"spans": *[0-9]*' "$T/profile.json" | head -1 | grep -o '[0-9]*$')
steals=$(grep -o '"steals": *[0-9]*' "$T/profile.json" | head -1 | grep -o '[0-9]*$')
[ -n "$rounds" ] || { echo "parallel_smoke: no parallel block in profile" >&2; exit 2; }
[ "$rounds" -gt 0 ] || {
    echo "parallel_smoke: FAIL - threads=2 run recorded zero pool rounds" >&2
    exit 1
}
[ "$spans" -ge "$rounds" ] || {
    echo "parallel_smoke: FAIL - fewer spans than rounds ($spans / $rounds)" >&2
    exit 1
}
[ "$steals" -gt 0 ] || {
    echo "parallel_smoke: FAIL - no steals on a heterogeneous workload" >&2
    exit 1
}
echo "parallel_smoke: $rounds rounds, $spans spans, $steals steals"

echo "parallel_smoke: jobs x sim-threads budget split is recorded"
"$LBX" --scale quick --jobs 2 --sim-threads 4 --profile \
    --profile-out "$T/split.json" --out /dev/null fig01 2> /dev/null
grep -q '"workers": {"jobs": 2, "sim_threads": 2}' "$T/split.json" || {
    echo "parallel_smoke: FAIL - budget 4 across 2 jobs must record 2 threads/sim" >&2
    grep -o '"workers": {[^}]*}' "$T/split.json" >&2 || true
    exit 1
}

echo "parallel_smoke: OK"
