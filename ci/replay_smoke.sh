#!/usr/bin/env sh
# Workload-trace smoke test.
#
# Exercises the trace frontend end to end and checks the invariants
# DESIGN.md §2.12 promises:
#
#   1. byte-identity  - `lb-replay selftest` on every checked-in corpus
#                       file: replaying while re-capturing must re-encode
#                       to the exact file bytes (canonical encoding);
#   2. fresh capture  - a capture made here and now round-trips the same
#                       way, so the property isn't an artifact of the
#                       committed files;
#   3. import         - the handcrafted Accel-Sim-style text trace imports,
#                       and the imported .lbw1 passes the same selftest;
#   4. harness        - `--workload trace:PATH` runs end to end on both
#                       binaries and the trace_replay experiment renders
#                       its corpus table;
#   5. transparency   - loading a trace must not perturb synthetic runs:
#                       suite output with and without a trace registered is
#                       byte-identical;
#   6. hardening      - truncated and corrupted trace files are rejected
#                       with a clean nonzero exit, never a panic.
#
#   usage: ci/replay_smoke.sh [lb-replay-binary] [lb-experiments-binary] [sanity-binary]
set -eu

LBR=${1:-target/release/lb-replay}
LBX=${2:-target/release/lb-experiments}
SAN=${3:-target/release/sanity}
CORPUS=crates/lb-replay/testdata

T=$(mktemp -d)
trap 'rm -rf "$T"' EXIT

echo "replay_smoke: corpus selftest (replay re-capture == file bytes)"
for f in "$CORPUS"/*.lbw1; do
    "$LBR" selftest "$f" --sms 2
done

echo "replay_smoke: fresh capture round-trips"
"$LBR" capture GE "$T/ge.lbw1" --sms 2 --iterations 4
"$LBR" selftest "$T/ge.lbw1" --sms 2

echo "replay_smoke: text-trace import + selftest"
"$LBR" import "$CORPUS/sample.traceg" "$T/sample.lbw1"
"$LBR" info "$T/sample.lbw1" > /dev/null
"$LBR" selftest "$T/sample.lbw1" --sms 2

echo "replay_smoke: harness --workload runs end to end"
"$LBX" --scale quick --jobs 1 --workload "trace:$T/ge.lbw1" \
    --out "$T/replay.txt" 2> /dev/null
grep -q "trace corpus replayed" "$T/replay.txt" || {
    echo "replay_smoke: trace_replay table missing" >&2
    exit 1
}
grep -q "^ *ge " "$T/replay.txt" || {
    echo "replay_smoke: loaded workload missing from trace_replay table" >&2
    exit 1
}
"$SAN" --quick --workload "trace:$T/ge.lbw1" GE > "$T/sanity.txt" 2> /dev/null
grep -q "^ge " "$T/sanity.txt" || {
    echo "replay_smoke: sanity trace row missing" >&2
    exit 1
}

echo "replay_smoke: registered traces leave synthetic output untouched"
# --workload appends the trace_replay table after the requested ids, so
# the synthetic-only output must be an exact byte prefix.
"$LBX" --scale quick --jobs 1 --out "$T/plain.txt" fig01 table2 2> /dev/null
"$LBX" --scale quick --jobs 1 --workload "trace:$T/ge.lbw1" \
    --out "$T/with_trace.txt" fig01 table2 2> /dev/null
head -c "$(wc -c < "$T/plain.txt")" "$T/with_trace.txt" > "$T/with_trace_prefix.txt"
cmp "$T/plain.txt" "$T/with_trace_prefix.txt" || {
    echo "replay_smoke: FAIL - loading a trace changed synthetic output" >&2
    exit 1
}

echo "replay_smoke: malformed files are rejected cleanly"
head -c 40 "$T/ge.lbw1" > "$T/truncated.lbw1"
printf 'NOPE' > "$T/badmagic.lbw1"
for bad in "$T/truncated.lbw1" "$T/badmagic.lbw1"; do
    if "$LBR" info "$bad" > /dev/null 2> "$T/err.txt"; then
        echo "replay_smoke: FAIL - $bad was accepted" >&2
        exit 1
    fi
    grep -qi "panic" "$T/err.txt" && {
        echo "replay_smoke: FAIL - $bad caused a panic" >&2
        exit 1
    }
done

echo "replay_smoke: OK"
