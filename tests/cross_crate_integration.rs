//! Cross-crate integration tests: every architecture runs on every class of
//! workload, and invariants hold across the substrate/policy boundary.

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::policy::baseline_factory;
use lb_bench::{Arch, Runner, Scale};
use workloads::{all_apps, app, Sensitivity};

fn cfg() -> GpuConfig {
    GpuConfig::default().with_sms(1).with_windows(4_000, 40_000)
}

#[test]
fn every_architecture_runs_every_app_class() {
    // Smoke: one sensitive and one insensitive app under every architecture.
    let archs = [
        Arch::Baseline,
        Arch::StaticLimit(2),
        Arch::Pcal,
        Arch::Cerf,
        Arch::Linebacker,
        Arch::LinebackerAssoc(1),
        Arch::LinebackerAssoc(16),
        Arch::VictimCaching,
        Arch::Svc,
        Arch::PcalCerf,
        Arch::PcalSvc,
        Arch::BaselineSvc,
        Arch::CacheExt,
        Arch::LbCacheExt,
    ];
    for name in ["GE", "FD"] {
        let a = app(name).unwrap();
        for arch in archs {
            let c = arch.transform_config(&cfg(), &a);
            let k = a.kernel(c.n_sms);
            let s = run_kernel(c, k, &arch.factory());
            assert!(s.instructions > 0, "{name} under {} executed nothing", arch.label());
            assert!(s.ipc() > 0.0, "{name} under {} has zero IPC", arch.label());
        }
    }
}

#[test]
fn access_outcomes_partition_all_accesses() {
    // hit + miss + bypass + reg-hit must equal total accesses for every
    // architecture (conservation across the policy boundary).
    for arch in [Arch::Baseline, Arch::Pcal, Arch::Cerf, Arch::Linebacker] {
        let a = app("KM").unwrap();
        let c = cfg();
        let k = a.kernel(c.n_sms);
        let s = run_kernel(c, k, &arch.factory());
        let sum = s.l1_hits + s.misses() + s.bypasses + s.reg_hits;
        assert_eq!(sum, s.mem_accesses(), "outcome counts must partition accesses");
        let per_load: u64 = s.per_load.values().map(|l| l.accesses).sum();
        assert_eq!(per_load, s.mem_accesses(), "per-load counts must sum to the total");
    }
}

#[test]
fn baseline_never_produces_reg_hits_or_bypasses() {
    for a in all_apps().into_iter().take(4) {
        let c = cfg();
        let k = a.kernel(c.n_sms);
        let s = run_kernel(c, k, &baseline_factory());
        assert_eq!(s.reg_hits, 0, "{}: baseline has no victim storage", a.abbrev);
        assert_eq!(s.bypasses, 0, "{}: baseline never bypasses", a.abbrev);
        assert_eq!(
            s.dram_bytes[2] + s.dram_bytes[3],
            0,
            "{}: baseline never backs up registers",
            a.abbrev
        );
    }
}

#[test]
fn determinism_across_identical_runs() {
    let a = app("S2").unwrap();
    let c = cfg();
    let r1 = run_kernel(c.clone(), a.kernel(c.n_sms), &Arch::Linebacker.factory());
    let r2 = run_kernel(c.clone(), a.kernel(c.n_sms), &Arch::Linebacker.factory());
    assert_eq!(r1.instructions, r2.instructions);
    assert_eq!(r1.l1_hits, r2.l1_hits);
    assert_eq!(r1.reg_hits, r2.reg_hits);
    assert_eq!(r1.dram_bytes, r2.dram_bytes);
}

#[test]
fn suite_covers_both_sensitivity_classes() {
    let apps = all_apps();
    assert_eq!(apps.len(), 20);
    assert_eq!(apps.iter().filter(|a| a.sensitivity == Sensitivity::CacheSensitive).count(), 10);
}

#[test]
fn runner_best_swl_consistent_with_direct_runs() {
    let r = Runner::new(Scale::Quick);
    let a = app("PF").unwrap();
    let (limit, stats) = r.best_swl(&a);
    if let Some(l) = limit {
        let direct = r.run(&a, Arch::StaticLimit(l));
        assert_eq!(stats.ipc(), direct.ipc(), "memoized best run must match the direct run");
    } else {
        let direct = r.run(&a, Arch::Baseline);
        assert_eq!(stats.ipc(), direct.ipc());
    }
}

#[test]
fn cache_insensitive_app_unharmed_by_linebacker() {
    // The Load Monitor's self-disable keeps LB from hurting streaming apps.
    let a = app("FD").unwrap();
    let c = GpuConfig::default().with_sms(1).with_windows(6_000, 120_000);
    let base = run_kernel(c.clone(), a.kernel(c.n_sms), &baseline_factory());
    let lb = run_kernel(c.clone(), a.kernel(c.n_sms), &Arch::Linebacker.factory());
    assert!(
        lb.ipc() >= base.ipc() * 0.95,
        "LB ({:.3}) must not hurt the streaming app FD ({:.3})",
        lb.ipc(),
        base.ipc()
    );
}
