//! Randomized property tests over the core data structures and mechanism
//! invariants (seeded and deterministic, via the in-tree `testkit` crate).

use testkit::check;

use gpu_sim::cache::{MshrFile, MshrOutcome, TagArray};
use gpu_sim::coalesce::coalesce;
use gpu_sim::regfile::RegFile;
use gpu_sim::types::{hashed_pc5, Address, CtaId, LineAddr, Pc, RegNum};
use linebacker::{IpcMonitor, LbConfig, LoadMonitor, ThrottleDecision, Vtt};

/// The coalescer never emits more requests than lanes, never duplicates
/// a line, and covers every lane's line.
#[test]
fn coalescer_covers_all_lanes() {
    check("coalescer_covers_all_lanes", |r| {
        let addrs = r.vec(1, 32, |r| r.range_u64(0, 1 << 30));
        let lanes: Vec<Address> = addrs.iter().map(|&a| Address(a)).collect();
        let lines = coalesce(&lanes);
        assert!(lines.len() <= lanes.len());
        // No duplicates.
        let set: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(set.len(), lines.len());
        // Coverage.
        for a in &lanes {
            assert!(lines.contains(&a.line()));
        }
    });
}

/// A tag array never holds two entries for the same line and never
/// exceeds its capacity; a fill is always observable until evicted.
#[test]
fn tag_array_no_duplicates_and_capacity() {
    check("tag_array_no_duplicates_and_capacity", |r| {
        let ops = r.vec(1, 300, |r| r.range_u64(0, 200));
        let mut t: TagArray<()> = TagArray::new(16, 4);
        for &line in &ops {
            let line = LineAddr(line);
            if t.probe(line).is_none() {
                t.fill(line, ());
            }
            assert!(t.occupancy() <= 16 * 4);
            // The just-touched line must be resident.
            assert!(t.peek(line).is_some());
        }
        // No duplicate lines resident.
        let lines: Vec<_> = t.resident_lines().collect();
        let set: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(set.len(), lines.len());
    });
}

/// LRU: after touching line A, filling conflicting lines evicts others
/// before A (single-set array).
#[test]
fn tag_array_lru_protects_recent() {
    check("tag_array_lru_protects_recent", |r| {
        let fresh = r.range_u64(1, 100);
        let mut t: TagArray<()> = TagArray::new(1, 4);
        for i in 0..4u64 {
            t.fill(LineAddr(1000 + i), ());
        }
        t.probe(LineAddr(1000)); // protect
        let ev = t.fill(LineAddr(2000 + fresh), ()).expect("full set evicts");
        assert_ne!(ev.line, LineAddr(1000));
    });
}

/// MSHR merge invariant: all waiters allocated to a line come back on
/// completion, exactly once.
#[test]
fn mshr_waiters_conserved() {
    check("mshr_waiters_conserved", |r| {
        let waiters = r.vec(1, 64, |r| r.range_u64(0, 1000));
        let mut m = MshrFile::new(64);
        let line = LineAddr(7);
        let mut accepted = 0u64;
        for &w in &waiters {
            match m.allocate(line, w) {
                MshrOutcome::NewEntry | MshrOutcome::Merged => accepted += 1,
                MshrOutcome::Full => {}
            }
        }
        let done = m.complete(line);
        assert_eq!(done.len() as u64, accepted);
        assert!(m.complete(line).is_empty());
    });
}

/// Register-file CTA allocation is always disjoint and within bounds.
#[test]
fn regfile_allocations_disjoint() {
    check("regfile_allocations_disjoint", |r| {
        let counts = r.vec(1, 8, |r| r.range_u32(1, 300));
        let mut rf = RegFile::new(2048, 32, 32);
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            if let Some(first) = rf.allocate_cta(CtaId(i as u32), c) {
                assert!(first.0 + c <= 2048, "allocation out of bounds");
                for &(f2, c2) in &ranges {
                    let no_overlap = first.0 + c <= f2 || f2 + c2 <= first.0;
                    assert!(no_overlap, "overlapping CTA allocations");
                }
                ranges.push((first.0, c));
            }
        }
        // Space accounting is consistent.
        let s = rf.space();
        assert_eq!(s.active_used, ranges.iter().map(|&(_, c)| c).sum::<u32>());
        assert_eq!(s.active_used + s.static_unused + s.dynamic_unused, 2048);
    });
}

/// Backup/restore round-trips register contents for arbitrary CTA sizes.
#[test]
fn regfile_backup_restore_roundtrip() {
    check("regfile_backup_restore_roundtrip", |r| {
        let count = r.range_u32(1, 500);
        let mut rf = RegFile::new(2048, 32, 32);
        let first = rf.allocate_cta(CtaId(0), count).unwrap();
        let saved: Vec<u64> = (0..count).map(|i| rf.read_contents(RegNum(first.0 + i))).collect();
        rf.mark_backed_up(CtaId(0));
        for i in 0..count {
            rf.write_contents(RegNum(first.0 + i), 0xDEAD); // victim-cache clobber
        }
        rf.mark_restored(CtaId(0));
        for (i, v) in saved.iter().enumerate() {
            rf.write_contents(RegNum(first.0 + i as u32), *v);
        }
        for (i, v) in saved.iter().enumerate() {
            assert_eq!(rf.read_contents(RegNum(first.0 + i as u32)), *v);
        }
    });
}

/// Equation 2 maps every VTT slot to a unique register within RN
/// 511..2047, for every legal associativity.
#[test]
fn vtt_rn_mapping_injective() {
    for assoc in [1u32, 2, 4, 8, 16, 32] {
        let cfg = LbConfig::with_vp_assoc(assoc);
        let v = Vtt::new(&cfg);
        let mut seen = std::collections::HashSet::new();
        for vp in 0..cfg.max_vps() {
            for set in 0..cfg.vtt_sets {
                for way in 0..cfg.vp_assoc {
                    let rn = v.reg_of(vp, set, way);
                    assert!(rn.0 >= 511 && rn.0 < 2048, "rn {} out of range", rn.0);
                    assert!(seen.insert(rn), "duplicate rn {}", rn.0);
                }
            }
        }
        assert_eq!(seen.len() as u32, cfg.max_vps() * cfg.entries_per_vp());
    }
}

/// A line inserted into an active VTT is either findable or was evicted
/// by a later insertion — never silently lost while capacity remains.
#[test]
fn vtt_insert_then_lookup() {
    check("vtt_insert_then_lookup", |r| {
        let lines = r.vec(1, 100, |r| r.range_u64(0, 48));
        let mut v = Vtt::new(&LbConfig::default());
        v.set_tag_only(false);
        v.refresh_partitions(511);
        // Insert lines from distinct sets only (i * 48 + k keeps set = k).
        for (i, &k) in lines.iter().enumerate() {
            let line = LineAddr(i as u64 * 48 + k % 48);
            v.insert(line);
            assert!(v.lookup(line).is_some(), "freshly inserted line must hit");
        }
    });
}

/// The Load Monitor conserves accesses: hits + misses recorded equals
/// total records while monitoring.
#[test]
fn load_monitor_conserves_accesses() {
    check("load_monitor_conserves_accesses", |r| {
        let events = r.vec(1, 500, |r| (r.range_u32(0, 64), r.bool()));
        let mut lm = LoadMonitor::new(32, 0.2);
        for &(pc, hit) in &events {
            lm.record(Pc(pc * 8), hit);
        }
        assert_eq!(lm.accesses(), events.len() as u64);
    });
}

/// The hashed PC always fits in 5 bits.
#[test]
fn hashed_pc_is_5_bits() {
    check("hashed_pc_is_5_bits", |r| {
        let pc = r.range_u64(0, u32::MAX as u64 + 1) as u32;
        assert!(hashed_pc5(Pc(pc)) < 32);
    });
}

/// The IPC monitor's decisions respect the bounds exactly.
#[test]
fn ipc_monitor_decisions_respect_bounds() {
    check("ipc_monitor_decisions_respect_bounds", |r| {
        let prev = r.range_f64(0.1, 100.0);
        let cur = r.range_f64(0.1, 100.0);
        let mut m = IpcMonitor::new(0.10, -0.10);
        m.end_window(prev);
        let d = m.end_window(cur);
        let var = (cur - prev) / prev;
        let expect = if var > 0.10 {
            ThrottleDecision::ThrottleOne
        } else if var < -0.10 {
            ThrottleDecision::ActivateOne
        } else {
            ThrottleDecision::Hold
        };
        assert_eq!(d, expect);
    });
}
