//! Integration test reproducing the paper's Figure 6 workflow narrative:
//! monitoring, selection, proactive throttling, register backup, victim
//! caching, IPC-driven re-activation, and CTA completion handling.

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::Gpu;
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::pattern::AccessPattern;
use linebacker::{linebacker_factory, LbConfig};

fn cfg() -> GpuConfig {
    GpuConfig::default().with_sms(1).with_windows(6_000, 150_000)
}

/// A kernel with one high-locality load (like Figure 6's Load 0) and one
/// streaming load: 4+ CTAs so throttling has room.
fn kernel(n_sms: u32) -> gpu_sim::kernel::KernelSpec {
    KernelBuilder::new("fig6")
        .grid(64 * n_sms, 8)
        .regs_per_thread(20)
        .load_then_use(AccessPattern::reuse_working_set(1024, false), 2)
        .load_then_use(AccessPattern::streaming(128), 1)
        .alu(2)
        .iterations(100_000)
        .build()
        .expect("valid kernel")
}

#[test]
fn monitoring_selects_then_throttles_then_victim_caches() {
    let cfg = cfg();
    let mut gpu =
        Gpu::new(cfg.clone(), kernel(cfg.n_sms), &linebacker_factory(LbConfig::default()));
    let stats = gpu.run();

    // Monitoring converged within a few periods (Figure 6: two periods).
    assert!(stats.monitor_periods >= 2, "monitoring needs at least two windows");
    assert!(stats.monitor_periods <= 6, "monitoring took {} periods", stats.monitor_periods);

    // Victim caching engaged: register hits were served.
    assert!(stats.reg_hits > 0, "no victim-cache hits");

    // Throttling engaged: register backup traffic reached DRAM.
    assert!(stats.dram_bytes[2] > 0, "no register backup traffic");

    // The policy ended in victim-caching phase with a limit set.
    let state = gpu.sm(0).policy.debug_state();
    assert!(state.contains("VictimCaching"), "unexpected policy state: {state}");
    assert!(state.contains("limit=Some"), "no CTA limit engaged: {state}");

    // The streaming load must not be among the selected loads. Selected
    // hashed PCs appear in the debug state; the reuse load is PC 0
    // (hpc 0) and the stream load is the second load.
    assert!(state.contains("selected=[0"), "reuse load not selected: {state}");
}

#[test]
fn linebacker_outperforms_baseline_on_this_workload() {
    let cfg = cfg();
    let base = gpu_sim::gpu::run_kernel(
        cfg.clone(),
        kernel(cfg.n_sms),
        &gpu_sim::policy::baseline_factory(),
    );
    let lb = gpu_sim::gpu::run_kernel(
        cfg.clone(),
        kernel(cfg.n_sms),
        &linebacker_factory(LbConfig::default()),
    );
    assert!(
        lb.ipc() > base.ipc() * 1.2,
        "LB {:.3} should clearly beat baseline {:.3} on a cache-sensitive kernel",
        lb.ipc(),
        base.ipc()
    );
}

#[test]
fn backup_traffic_is_matched_by_restores_or_stays_backed_up() {
    let cfg = cfg();
    let mut gpu =
        Gpu::new(cfg.clone(), kernel(cfg.n_sms), &linebacker_factory(LbConfig::default()));
    let stats = gpu.run();
    // Restores never exceed backups (a CTA can only be restored after a
    // backup), and both are multiples of the per-CTA register footprint.
    let backup = stats.dram_bytes[2];
    let restore = stats.dram_bytes[3];
    assert!(restore <= backup, "restore bytes {restore} exceed backup bytes {backup}");
    let cta_bytes = (8 * 20 * 128) as u64; // warps x regs/thread x line bytes
    assert_eq!(backup % cta_bytes, 0, "backup not a whole number of CTA register sets");
    assert_eq!(restore % cta_bytes, 0, "restore not a whole number of CTA register sets");
}
