//! # linebacker-repro
//!
//! A from-scratch Rust reproduction of *Linebacker: Preserving Victim Cache
//! Lines in Idle Register Files of GPUs* (ISCA 2019).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`gpu_sim`] — the cycle-level GPU simulator substrate (SMs, GTO
//!   scheduling, banked register file, L1/MSHR/L2/DRAM);
//! * [`workloads`] — synthetic models of the paper's 20-app benchmark suite;
//! * [`linebacker`] — the paper's contribution: Load Monitor, Victim Tag
//!   Table, CTA Throttling Logic and the victim-caching policy;
//! * [`baselines`] — Best-SWL, PCAL, CERF, CacheExt and combinations;
//! * [`lb_bench`] — the experiment harness regenerating every table/figure.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology and results.

pub use baselines;
pub use gpu_sim;
pub use lb_bench;
pub use linebacker;
pub use workloads;
