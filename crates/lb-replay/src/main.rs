//! `lb-replay` — workload-trace tool: capture synthetic kernels, import
//! Accel-Sim text traces, inspect and self-check `.lbw1` files.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use gpu_sim::policy::baseline_factory;
use gpu_sim::GpuConfig;
use lb_replay::format;

const USAGE: &str = "\
lb-replay — LBW1 workload traces for the Linebacker reproduction

USAGE:
  lb-replay capture <APP> <OUT.lbw1> [--sms N] [--iterations N]
      Run the named synthetic workload (one-wave grid, baseline policy)
      and write its captured instruction/address streams.
  lb-replay import <IN.traceg> <OUT.lbw1>
      Normalize an Accel-Sim-style text kernel trace into LBW1.
  lb-replay info <FILE.lbw1>
      Print the trace's header and stream summary.
  lb-replay selftest <FILE.lbw1> [--sms N]
      Replay the trace while re-capturing it; verify the re-encoded
      bytes match the file exactly (exit 1 on mismatch).

Captures default to 4 SMs and 12 iterations.";

fn parse_flag(args: &[String], name: &str) -> Result<Option<u32>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} needs a numeric value")),
    }
}

fn capture_cfg(sms: u32) -> GpuConfig {
    // Plenty of headroom: captures must complete, not rate-measure.
    GpuConfig::default().with_sms(sms).with_windows(5_000, 2_000_000)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "capture" => {
            let app = args.get(1).ok_or("capture: missing APP")?;
            let out = args.get(2).ok_or("capture: missing OUT.lbw1")?;
            let sms = parse_flag(&args, "--sms")?.unwrap_or(4);
            let iters = parse_flag(&args, "--iterations")?
                .unwrap_or(lb_replay::capture::DEFAULT_ITERATIONS);
            let cfg = capture_cfg(sms);
            let (stats, rep) = lb_replay::capture_app(app, &cfg, iters, &baseline_factory())
                .map_err(|e| e.to_string())?;
            format::write_file(Path::new(out), &rep).map_err(|e| e.to_string())?;
            println!(
                "captured {app}: {} streams, {} dynamic insts, {} cycles -> {out}",
                rep.total_streams(),
                rep.dyn_insts(),
                stats.cycles
            );
            Ok(())
        }
        "import" => {
            let input = args.get(1).ok_or("import: missing IN.traceg")?;
            let out = args.get(2).ok_or("import: missing OUT.lbw1")?;
            let rep = lb_replay::import_file(Path::new(input)).map_err(|e| e.to_string())?;
            format::write_file(Path::new(out), &rep).map_err(|e| e.to_string())?;
            println!(
                "imported {}: {} CTAs x {} warps, {} dynamic insts -> {out}",
                rep.stub.name,
                rep.stub.grid_ctas,
                rep.stub.warps_per_cta,
                rep.dyn_insts()
            );
            Ok(())
        }
        "info" => {
            let file = args.get(1).ok_or("info: missing FILE.lbw1")?;
            let rep = format::read_file(Path::new(file)).map_err(|e| e.to_string())?;
            let mem_ops: u64 =
                rep.streams.iter().flat_map(|s| &s.ops).filter(|o| o.line_len > 0).count() as u64;
            let pool: usize = rep.streams.iter().map(|s| s.lines.len()).sum();
            println!("kernel        {}", rep.stub.name);
            println!(
                "grid          {} CTAs x {} warps",
                rep.stub.grid_ctas, rep.stub.warps_per_cta
            );
            println!("regs/thread   {}", rep.stub.regs_per_thread);
            println!("shared/CTA    {} B", rep.stub.shared_mem_per_cta);
            println!("static body   {} insts, {} loads", rep.stub.body.len(), rep.stub.loads.len());
            println!("dynamic insts {}", rep.dyn_insts());
            println!("memory ops    {mem_ops}");
            println!("line pool     {pool} entries");
            Ok(())
        }
        "selftest" => {
            let file = args.get(1).ok_or("selftest: missing FILE.lbw1")?;
            let sms = parse_flag(&args, "--sms")?.unwrap_or(4);
            let bytes = std::fs::read(file).map_err(|e| e.to_string())?;
            let rep = Arc::new(format::decode(&bytes).map_err(|e| e.to_string())?);
            let re = lb_replay::replay_reencode(&capture_cfg(sms), &rep, &baseline_factory())
                .map_err(|e| e.to_string())?;
            if re != bytes {
                return Err(format!("{file}: replay re-capture diverges from the file"));
            }
            println!("{file}: OK ({} dynamic insts replayed and re-captured)", rep.dyn_insts());
            Ok(())
        }
        "" | "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
