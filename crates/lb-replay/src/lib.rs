//! `lb-replay`: workload traces for the Linebacker reproduction.
//!
//! Three layers on top of `gpu-sim`'s replay frontend:
//!
//! - [`format`] — the `LBW1` wire format: a serialized
//!   [`ReplayKernel`](gpu_sim::replay::ReplayKernel) (kernel-stub header +
//!   per-warp instruction/line streams) with a canonical, interned
//!   encoding and typed decode errors.
//! - [`capture`] — run any synthetic workload one-wave-gridded and record
//!   its exact issue-order streams, producing a self-contained replay
//!   corpus with no external inputs.
//! - [`import`] — normalize Accel-Sim-style text kernel traces
//!   (`kernel-*.traceg` subset) into `LBW1`, opening SASS-derived
//!   real-application inputs.
//!
//! The `lb-replay` binary exposes all three (`capture`, `import`, `info`,
//! `selftest`); the bench harness loads `.lbw1` files via
//! `--workload trace:PATH`.

#![warn(missing_docs)]

pub mod capture;
pub mod format;
pub mod import;

pub use capture::{capture_app, capture_spec, one_wave_kernel, replay_reencode};
pub use format::{decode, encode, read_file, write_file, ReplayError};
pub use import::{import_file, import_str};

/// Absolute path of the checked-in trace corpus (`crates/lb-replay/testdata`).
pub fn testdata_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata")
}

/// Resolves a harness `--workload trace:PATH` spec: loads the file (`.traceg`
/// imports, anything else decodes as LBW1), registers it in the
/// [`workloads::traces`] registry under its file stem, and returns the
/// registry key alongside the kernel.
pub fn load_workload_spec(
    spec: &str,
) -> Result<(&'static str, std::sync::Arc<gpu_sim::replay::ReplayKernel>), String> {
    let path = spec
        .strip_prefix("trace:")
        .ok_or_else(|| format!("workload spec '{spec}' must look like trace:PATH"))?;
    let path = std::path::Path::new(path);
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("workload path '{}' has no file stem", path.display()))?;
    let rep = match path.extension().and_then(|e| e.to_str()) {
        Some("traceg") => import::import_file(path),
        _ => format::read_file(path),
    }
    .map_err(|e| format!("{}: {e}", path.display()))?;
    let rep = std::sync::Arc::new(rep);
    let key = workloads::traces::register(stem, std::sync::Arc::clone(&rep));
    Ok((key, rep))
}
