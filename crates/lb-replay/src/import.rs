//! Importer for Accel-Sim-style text kernel traces (`kernel-*.traceg`).
//!
//! Accel-Sim's NVBit tracer writes one text file per kernel: `-key = value`
//! header lines, then one `#BEGIN_TB`/`#END_TB` section per thread block
//! containing per-warp instruction listings. This importer consumes the
//! subset of that format sufficient for line-granular replay and normalizes
//! it into a [`ReplayKernel`]:
//!
//! ```text
//! -kernel name = vecadd
//! -grid dim = (2,1,1)
//! -block dim = (64,1,1)
//! -nregs = 16
//! -shmem = 0
//!
//! #BEGIN_TB
//! thread block = 0,0,0
//! warp = 0
//! insts = 3
//! 0000 ffffffff 1 R2 LDG.E 1 R4 4 1 0x7f0000000000 128
//! 0010 ffffffff 1 R6 IMAD 2 R2 R5 0
//! 0020 ffffffff 0 STG.E 2 R4 R6 4 1 0x7f0000100000 128
//! warp = 1
//! ...
//! #END_TB
//! ```
//!
//! Instruction lines are `PC mask n_dest dests... OPCODE n_src srcs...
//! mem_width`, and memory instructions (`mem_width > 0`) append an address
//! descriptor: mode `0` followed by one byte address per active lane, or
//! mode `1` followed by `base stride` (lane *i* at `base + i*stride`) —
//! the two uncompressed encodings Accel-Sim's tracer emits. Per-lane byte
//! addresses are coalesced to distinct 128 B lines in first-touch order.
//!
//! Normalization into `LBW1` terms:
//! - Distinct PCs become the static body, in first-appearance order. `LD*`
//!   opcodes map to loads, `ST*` to stores (each mem PC gets its own
//!   load-spec slot, as the synthetic builder does), everything else to ALU
//!   with a coarse latency model ([`opcode_latency`]).
//! - Scoreboard edges are recovered from registers: at a PC's first dynamic
//!   occurrence, a source register produced by a still-pending load gives
//!   the static instruction its `wait_for` edge.
//! - Thread blocks are CTAs in file order; `warp = N` indexes streams
//!   within the block. A warp id at or past `block warps` is a typed error
//!   ([`ReplayError::Malformed`]), as is a block count that disagrees with
//!   `-grid dim`.

use std::collections::HashMap;
use std::path::Path;

use gpu_sim::kernel::{InstKind, KernelSpec, LoadSpec, StaticInst};
use gpu_sim::pattern::{coalesce_bytes, AccessPattern};
use gpu_sim::replay::{ReplayKernel, TraceOp, WarpStream};
use gpu_sim::types::{LineAddr, LoadId, Pc};

use crate::format::{ReplayError, MAX_LINES_PER_RECORD};

/// Lanes per warp assumed by the importer (Accel-Sim masks are 32-bit).
const WARP_LANES: u32 = 32;

/// Coarse issue-latency model for non-memory SASS opcodes: transcendental
/// SFU ops and double-precision run long, fused integer/float pipes take
/// two cycles, everything else single-issues. Replay timing fidelity comes
/// from the recorded memory behaviour; this only shapes ALU spacing.
pub fn opcode_latency(opcode: &str) -> u32 {
    let base = opcode.split('.').next().unwrap_or(opcode);
    match base {
        "MUFU" | "RCP" | "SQRT" | "RSQ" | "SIN" | "COS" | "LG2" | "EX2" => 4,
        "DADD" | "DMUL" | "DFMA" | "DSETP" => 8,
        "IMAD" | "FFMA" | "FMUL" | "FADD" | "IADD3" | "LEA" | "SHF" => 2,
        _ => 1,
    }
}

fn malformed(line_no: usize, msg: impl std::fmt::Display) -> ReplayError {
    ReplayError::Malformed(format!("line {line_no}: {msg}"))
}

fn parse_dim3(v: &str) -> Option<u64> {
    let inner = v.trim().strip_prefix('(')?.strip_suffix(')')?;
    let mut total = 1u64;
    for part in inner.split(',') {
        total = total.checked_mul(part.trim().parse::<u64>().ok()?)?;
    }
    Some(total)
}

fn parse_reg(tok: &str) -> Option<u32> {
    // "RZ" is the zero register: never a real dependency.
    tok.strip_prefix('R').and_then(|n| n.parse::<u32>().ok())
}

fn parse_num(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse::<u64>().ok()
    }
}

/// One parsed instruction line.
struct RawInst {
    pc: u32,
    dests: Vec<u32>,
    opcode: String,
    srcs: Vec<u32>,
    /// Coalesced lines of a memory instruction; empty for ALU.
    lines: Vec<LineAddr>,
}

fn parse_inst_line(line: &str, line_no: usize) -> Result<RawInst, ReplayError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let mut i = 0usize;
    let mut next = |what: &str| -> Result<&str, ReplayError> {
        let t = toks.get(i).copied().ok_or_else(|| malformed(line_no, format!("missing {what}")));
        i += 1;
        t
    };
    let pc = u32::from_str_radix(next("PC")?, 16)
        .map_err(|_| malformed(line_no, "PC is not hexadecimal"))?;
    let mask = u32::from_str_radix(next("active mask")?, 16)
        .map_err(|_| malformed(line_no, "mask is not hexadecimal"))?;
    let n_dest: usize = next("dest count")?
        .parse()
        .map_err(|_| malformed(line_no, "dest count is not a number"))?;
    let mut dests = Vec::with_capacity(n_dest);
    for _ in 0..n_dest {
        if let Some(r) = parse_reg(next("dest register")?) {
            dests.push(r);
        }
    }
    let opcode = next("opcode")?.to_string();
    let n_src: usize =
        next("src count")?.parse().map_err(|_| malformed(line_no, "src count is not a number"))?;
    let mut srcs = Vec::with_capacity(n_src);
    for _ in 0..n_src {
        if let Some(r) = parse_reg(next("src register")?) {
            srcs.push(r);
        }
    }
    let mem_width: u64 =
        next("mem width")?.parse().map_err(|_| malformed(line_no, "mem width is not a number"))?;
    let mut lines = Vec::new();
    if mem_width > 0 {
        let active = u64::from(mask.count_ones().min(WARP_LANES));
        if active == 0 {
            return Err(malformed(line_no, "memory instruction with empty active mask"));
        }
        let mode = next("address mode")?;
        let mut bytes = Vec::with_capacity(active as usize);
        match mode {
            "0" => {
                for _ in 0..active {
                    let a = parse_num(next("lane address")?)
                        .ok_or_else(|| malformed(line_no, "bad lane address"))?;
                    bytes.push(a);
                }
            }
            "1" => {
                let base = parse_num(next("base address")?)
                    .ok_or_else(|| malformed(line_no, "bad base address"))?;
                let stride =
                    parse_num(next("stride")?).ok_or_else(|| malformed(line_no, "bad stride"))?;
                for lane in 0..active {
                    bytes.push(base.wrapping_add(lane.wrapping_mul(stride)));
                }
            }
            m => return Err(malformed(line_no, format!("unsupported address mode '{m}'"))),
        }
        coalesce_bytes(&bytes, &mut lines);
        if lines.len() as u64 > MAX_LINES_PER_RECORD {
            return Err(ReplayError::OverlongRecord { at: line_no, lines: lines.len() as u64 });
        }
    }
    Ok(RawInst { pc, dests, opcode, srcs, lines })
}

/// Parses Accel-Sim-style trace text into a validated [`ReplayKernel`].
pub fn import_str(text: &str) -> Result<ReplayKernel, ReplayError> {
    let mut name = String::from("imported");
    let mut grid_ctas: Option<u64> = None;
    let mut block_threads: Option<u64> = None;
    let mut nregs = 16u32;
    let mut shmem = 0u64;

    // Static-body accumulation: PC → body index, discovered in file order.
    let mut body: Vec<StaticInst> = Vec::new();
    let mut loads: Vec<LoadSpec> = Vec::new();
    let mut pc_index: HashMap<u32, u32> = HashMap::new();

    let mut streams: Vec<WarpStream> = Vec::new();
    let mut warps_per_cta = 0u32;
    let mut cta = -1i64;
    let mut cur_stream: Option<usize> = None;
    let mut insts_left = 0u64;
    // Per-warp pending-load scoreboard: register → load id, reset per warp.
    let mut pending: HashMap<u32, LoadId> = HashMap::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('-') {
            if let Some((key, value)) = rest.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "kernel name" => name = value.to_string(),
                    "grid dim" => {
                        grid_ctas = Some(
                            parse_dim3(value).ok_or_else(|| malformed(line_no, "bad grid dim"))?,
                        );
                    }
                    "block dim" => {
                        block_threads = Some(
                            parse_dim3(value).ok_or_else(|| malformed(line_no, "bad block dim"))?,
                        );
                    }
                    "nregs" => {
                        nregs = value.parse().map_err(|_| malformed(line_no, "bad nregs"))?;
                    }
                    "shmem" => {
                        shmem = value.parse().map_err(|_| malformed(line_no, "bad shmem"))?;
                    }
                    _ => {} // other header keys (kernel id, binary version, ...) are irrelevant
                }
            }
            continue;
        }
        if line == "#BEGIN_TB" {
            let threads =
                block_threads.ok_or_else(|| malformed(line_no, "#BEGIN_TB before block dim"))?;
            warps_per_cta = u32::try_from(threads.div_ceil(u64::from(WARP_LANES)))
                .map_err(|_| malformed(line_no, "block dim exceeds u32 warps"))?
                .max(1);
            cta += 1;
            streams.resize((cta as usize + 1) * warps_per_cta as usize, WarpStream::default());
            cur_stream = None;
            continue;
        }
        if line == "#END_TB" || line.starts_with("thread block") {
            continue;
        }
        if let Some(v) = line.strip_prefix("warp = ") {
            if cta < 0 {
                return Err(malformed(line_no, "warp header outside a thread block"));
            }
            let w: u32 = v.trim().parse().map_err(|_| malformed(line_no, "bad warp id"))?;
            if w >= warps_per_cta {
                return Err(malformed(
                    line_no,
                    format!("warp id {w} out of range (block has {warps_per_cta} warps)"),
                ));
            }
            cur_stream = Some(cta as usize * warps_per_cta as usize + w as usize);
            pending.clear();
            insts_left = 0;
            continue;
        }
        if let Some(v) = line.strip_prefix("insts = ") {
            insts_left = v.trim().parse().map_err(|_| malformed(line_no, "bad inst count"))?;
            continue;
        }
        // Anything else must be an instruction line of the current warp.
        let sid = cur_stream.ok_or_else(|| malformed(line_no, "instruction outside a warp"))?;
        if insts_left == 0 {
            return Err(malformed(line_no, "more instruction lines than 'insts' declared"));
        }
        insts_left -= 1;
        let inst = parse_inst_line(line, line_no)?;
        let is_load = inst.opcode.starts_with("LD");
        let is_store = inst.opcode.starts_with("ST");
        if (is_load || is_store) && inst.lines.is_empty() {
            return Err(malformed(line_no, "memory opcode without addresses"));
        }
        let pos = *pc_index.entry(inst.pc).or_insert_with(|| {
            let pos = body.len() as u32;
            let kind = if is_load || is_store {
                let id = LoadId(loads.len() as u32);
                loads.push(LoadSpec {
                    id,
                    pc: Pc(inst.pc),
                    pattern: AccessPattern::streaming(128),
                });
                if is_load {
                    InstKind::Load { load: id }
                } else {
                    InstKind::Store { load: id }
                }
            } else {
                InstKind::Alu { latency: opcode_latency(&inst.opcode) }
            };
            // Scoreboard edge: first source register still pending from an
            // earlier load in this warp.
            let wait_for = inst.srcs.iter().find_map(|r| pending.get(r).copied());
            body.push(StaticInst { pc: Pc(inst.pc), kind, wait_for });
            pos
        });
        // Track register liveness for later wait_for discovery.
        if is_load {
            if let InstKind::Load { load } = body[pos as usize].kind {
                for &d in &inst.dests {
                    pending.insert(d, load);
                }
            }
        } else {
            for d in &inst.dests {
                pending.remove(d);
            }
        }
        let s = &mut streams[sid];
        if inst.lines.is_empty() {
            s.ops.push(TraceOp { pos, line_off: 0, line_len: 0 });
        } else {
            let off = s.lines.len() as u32;
            s.lines.extend_from_slice(&inst.lines);
            s.ops.push(TraceOp { pos, line_off: off, line_len: inst.lines.len() as u32 });
        }
    }

    let declared = grid_ctas.ok_or_else(|| ReplayError::Malformed("missing grid dim".into()))?;
    let found = (cta + 1).max(0) as u64;
    if declared != found {
        return Err(ReplayError::Malformed(format!(
            "grid dim declares {declared} thread blocks but the file contains {found}"
        )));
    }
    let stub = KernelSpec::from_raw(
        name,
        u32::try_from(declared).map_err(|_| ReplayError::Malformed("grid exceeds u32".into()))?,
        warps_per_cta.max(1),
        nregs.max(1),
        shmem,
        body,
        1, // dynamic streams drive execution; the stub trip count is unused
        loads,
    )
    .map_err(ReplayError::Malformed)?;
    let rep = ReplayKernel { stub, streams };
    rep.validate().map_err(ReplayError::Malformed)?;
    Ok(rep)
}

/// Reads and imports a `kernel-*.traceg` text trace from `path`.
pub fn import_file(path: &Path) -> Result<ReplayKernel, ReplayError> {
    import_str(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        let mut t = String::from(
            "-kernel name = vecadd\n\
             -kernel id = 1\n\
             -grid dim = (2,1,1)\n\
             -block dim = (64,1,1)\n\
             -nregs = 16\n\
             -shmem = 0\n\n",
        );
        for tb in 0..2 {
            t.push_str("#BEGIN_TB\n");
            t.push_str(&format!("thread block = {tb},0,0\n"));
            for w in 0..2 {
                let base = 0x1000_0000u64 + (tb * 2 + w) as u64 * 0x4000;
                t.push_str(&format!("warp = {w}\ninsts = 4\n"));
                t.push_str(&format!("0000 ffffffff 1 R2 LDG.E 1 R4 4 1 0x{base:x} 4\n"));
                t.push_str("0010 ffffffff 1 R6 IMAD 2 R2 R5 0\n");
                t.push_str("0020 ffffffff 1 R7 FFMA 2 R6 R6 0\n");
                t.push_str(&format!(
                    "0030 ffffffff 0 STG.E 2 R4 R7 4 1 0x{:x} 4\n",
                    base + 0x10_0000
                ));
            }
            t.push_str("#END_TB\n");
        }
        t
    }

    #[test]
    fn sample_trace_imports() {
        let rep = import_str(&sample_trace()).unwrap();
        assert_eq!(rep.stub.name, "vecadd");
        assert_eq!(rep.stub.grid_ctas, 2);
        assert_eq!(rep.stub.warps_per_cta, 2);
        assert_eq!(rep.stub.body.len(), 4);
        assert_eq!(rep.stub.loads.len(), 2); // one load slot, one store slot
        assert_eq!(rep.streams.len(), 4);
        // The IMAD consumes R2, the LDG dest → scoreboard edge recovered.
        assert_eq!(rep.stub.body[1].wait_for, Some(LoadId(0)));
        assert_eq!(rep.stub.body[2].wait_for, None);
        // 32 lanes, stride 4 → 128 consecutive bytes → 1 line per access.
        assert_eq!(rep.streams[0].ops[0].line_len, 1);
        // Each warp touches a distinct line.
        let first: Vec<LineAddr> = rep.streams.iter().map(|s| s.lines[0]).collect();
        assert_eq!(first.len(), 4);
        assert!(first.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn imported_trace_encodes_and_decodes() {
        let rep = import_str(&sample_trace()).unwrap();
        let bytes = crate::format::encode(&rep);
        let back = crate::format::decode(&bytes).unwrap();
        assert_eq!(back.stub, rep.stub);
        assert_eq!(back.dyn_insts(), rep.dyn_insts());
    }

    #[test]
    fn out_of_range_warp_id_rejected() {
        let bad = sample_trace().replace("warp = 1", "warp = 9");
        match import_str(&bad) {
            Err(ReplayError::Malformed(msg)) => assert!(msg.contains("out of range")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn block_count_mismatch_rejected() {
        let bad = sample_trace().replace("(2,1,1)", "(3,1,1)");
        match import_str(&bad) {
            Err(ReplayError::Malformed(msg)) => assert!(msg.contains("thread blocks")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn explicit_address_list_mode_supported() {
        let t = "-kernel name = gather\n\
                 -grid dim = (1,1,1)\n\
                 -block dim = (32,1,1)\n\
                 -nregs = 8\n\
                 -shmem = 0\n\
                 #BEGIN_TB\n\
                 thread block = 0,0,0\n\
                 warp = 0\n\
                 insts = 2\n\
                 0000 0000000f 1 R2 LDG.E 1 R4 4 0 0x100 0x180 0x100 0x200\n\
                 0010 ffffffff 1 R5 IADD3 2 R2 R2 0\n";
        let rep = import_str(t).unwrap();
        // Four lanes, lines 2, 3, 2, 4 → coalesced to three distinct lines.
        assert_eq!(rep.streams[0].ops[0].line_len, 3);
        assert_eq!(rep.streams[0].lines, vec![LineAddr(2), LineAddr(3), LineAddr(4)]);
    }

    #[test]
    fn replays_end_to_end() {
        use gpu_sim::policy::baseline_factory;
        let rep = std::sync::Arc::new(import_str(&sample_trace()).unwrap());
        let cfg = gpu_sim::GpuConfig::default().with_sms(2).with_windows(5_000, 60_000);
        let stats = gpu_sim::run_replay_kernel(cfg, &rep, &baseline_factory());
        assert!(stats.completed);
        assert_eq!(stats.instructions, rep.dyn_insts());
        assert!(stats.stores > 0);
        assert!(stats.mem_accesses() > 0);
    }
}
