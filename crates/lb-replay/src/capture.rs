//! Capture: run a synthetic workload and record its replayable streams.
//!
//! Capture re-grids the application's kernel to exactly **one dispatch
//! wave** — `resident_ctas(cfg, kernel) * n_sms` CTAs — so every CTA is
//! placed at construction time by the deterministic round-robin dispatcher.
//! Stream↔(SM, warp slot) placement then depends only on the grid, never on
//! policy throttling decisions taken later in the run, which is what makes
//! a captured trace replay stats-identically under *all* policies, not just
//! the one it was captured under. Iterations are clamped well below the
//! synthetic default (rate-based runs never finish; a capture must).

use std::sync::Arc;

use gpu_sim::config::GpuConfig;
use gpu_sim::kernel::KernelSpec;
use gpu_sim::policy::PolicyFactory;
use gpu_sim::replay::{resident_ctas, ReplayKernel};
use gpu_sim::stats::SimStats;

use crate::format::ReplayError;

/// Default loop trips for a captured kernel: long enough to exercise every
/// cache behaviour (cold, reuse, capacity), short enough that the whole
/// grid retires within the capture cycle cap.
pub const DEFAULT_ITERATIONS: u32 = 12;

/// Re-grids `kernel` to one dispatch wave under `cfg` and clamps its trip
/// count to `iterations`, returning the capture-ready spec. Errors if the
/// kernel cannot place even one CTA per SM.
pub fn one_wave_kernel(
    cfg: &GpuConfig,
    mut kernel: KernelSpec,
    iterations: u32,
) -> Result<KernelSpec, ReplayError> {
    let per_sm = resident_ctas(cfg, &kernel);
    if per_sm == 0 {
        return Err(ReplayError::Malformed(format!(
            "kernel {} fits zero CTAs per SM under the capture config",
            kernel.name
        )));
    }
    kernel.grid_ctas = per_sm * cfg.n_sms;
    kernel.iterations = iterations.max(1);
    Ok(kernel)
}

/// Captures a named synthetic application (`workloads::app` abbreviation)
/// into a [`ReplayKernel`] under the baseline policy, returning the capture
/// run's stats alongside the trace.
pub fn capture_app(
    abbrev: &str,
    cfg: &GpuConfig,
    iterations: u32,
    factory: &PolicyFactory<'_>,
) -> Result<(SimStats, ReplayKernel), ReplayError> {
    let app = workloads::app(abbrev)
        .ok_or_else(|| ReplayError::Malformed(format!("unknown application '{abbrev}'")))?;
    let kernel = one_wave_kernel(cfg, app.kernel_with(cfg.n_sms, iterations), iterations)?;
    capture_spec(cfg, kernel, factory)
}

/// Captures an explicit kernel spec (already one-wave-gridded; use
/// [`one_wave_kernel`] first if unsure).
pub fn capture_spec(
    cfg: &GpuConfig,
    kernel: KernelSpec,
    factory: &PolicyFactory<'_>,
) -> Result<(SimStats, ReplayKernel), ReplayError> {
    gpu_sim::capture_kernel(cfg.clone(), kernel, factory)
        .map_err(|e| ReplayError::Malformed(e.to_string()))
}

/// Replays `rep`, re-captures what executed, and returns the re-encoded
/// bytes — byte-identical to `encode(rep)` iff the replay consumed exactly
/// what the file describes. The `selftest` CLI subcommand and
/// `ci/replay_smoke.sh` run this check over the corpus.
pub fn replay_reencode(
    cfg: &GpuConfig,
    rep: &Arc<ReplayKernel>,
    factory: &PolicyFactory<'_>,
) -> Result<Vec<u8>, ReplayError> {
    let (_, recap) = gpu_sim::run_replay_capture(cfg.clone(), rep, factory)
        .map_err(|e| ReplayError::Malformed(e.to_string()))?;
    Ok(crate::format::encode(&recap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::policy::baseline_factory;

    fn cap_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(2).with_windows(5_000, 400_000)
    }

    #[test]
    fn captured_app_round_trips_through_bytes() {
        let cfg = cap_cfg();
        let (_, rep) = capture_app("S1", &cfg, 6, &baseline_factory()).unwrap();
        rep.validate().unwrap();
        assert_eq!(rep.total_streams(), rep.streams.len());
        let bytes = crate::format::encode(&rep);
        let back = crate::format::decode(&bytes).unwrap();
        // Decoded stubs carry placeholder patterns (never executed); every
        // header field policy transforms read must round-trip exactly.
        assert_eq!(back.stub.name, rep.stub.name);
        assert_eq!(back.stub.grid_ctas, rep.stub.grid_ctas);
        assert_eq!(back.stub.warps_per_cta, rep.stub.warps_per_cta);
        assert_eq!(back.stub.regs_per_thread, rep.stub.regs_per_thread);
        assert_eq!(back.stub.shared_mem_per_cta, rep.stub.shared_mem_per_cta);
        assert_eq!(back.stub.body, rep.stub.body);
        assert_eq!(back.dyn_insts(), rep.dyn_insts());
        // Canonical encoding: a replay re-capture serializes identically.
        let rt = replay_reencode(&cfg, &std::sync::Arc::new(back), &baseline_factory()).unwrap();
        assert_eq!(rt, bytes);
    }

    #[test]
    fn unknown_app_is_typed_error() {
        match capture_app("nope", &cap_cfg(), 4, &baseline_factory()) {
            Err(ReplayError::Malformed(msg)) => assert!(msg.contains("unknown application")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
