//! `LBW1` — the workload-trace wire format.
//!
//! A workload trace is a serialized [`ReplayKernel`]: a kernel-stub header
//! (grid shape, resources, static body, per-load PCs) followed by one
//! per-warp stream section. Everything behind the 5-byte preamble is
//! LEB128 uvarints — the same wire primitive `lb-trace` uses for event
//! traces — so the format is compact, endian-free and append-friendly.
//!
//! Layout:
//!
//! ```text
//! magic   b"LBW1"
//! version u8 (= 1)
//! name    uvarint len + UTF-8 bytes
//! header  grid_ctas, warps_per_cta, regs_per_thread,
//!         shared_mem_per_cta, iterations          (uvarints)
//! loads   n, then per load: pc                    (uvarints)
//! body    n, then per inst: pc, tag u8 (0 ALU / 1 LOAD / 2 STORE),
//!         arg (ALU latency or load index), wait (0 = none, else id+1)
//! streams n (must equal grid_ctas * warps_per_cta), then per stream:
//!         n_lines + zigzag-delta line addresses,
//!         n_ops + per op: pos, line_len, and (if line_len > 0) line_off
//! ```
//!
//! The encoder *interns* each stream's line pool: a memory op whose line
//! slice already appeared earlier in the stream references the first
//! occurrence instead of appending a copy. Interning runs at encode time,
//! so a raw capture (which appends every access) and a decoded trace
//! (already interned) serialize to byte-identical files — the property the
//! capture→replay→re-encode self-check in CI relies on.
//!
//! Decoded kernel stubs carry a placeholder [`AccessPattern`] per load:
//! replay never executes patterns, and every policy transform reads only
//! the header fields (registers, warps, shared memory), which round-trip
//! exactly.

use std::collections::HashMap;

use gpu_sim::kernel::{InstKind, KernelSpec, LoadSpec, StaticInst};
use gpu_sim::pattern::AccessPattern;
use gpu_sim::replay::{ReplayKernel, TraceOp, WarpStream};
use gpu_sim::types::{LineAddr, LoadId, Pc};
use lb_trace::put_uvarint;

/// File preamble identifying a workload trace.
pub const MAGIC: [u8; 4] = *b"LBW1";
/// Current format version.
pub const VERSION: u8 = 1;
/// Upper bound on coalesced lines per record: a 32-lane warp touching
/// wide vectors stays far below this, so anything larger is a corrupt or
/// adversarial record, rejected before it can size an allocation.
pub const MAX_LINES_PER_RECORD: u64 = 1024;

/// Typed decode/import failure. Every malformed input maps to a variant —
/// the decoder never panics and never over-allocates on hostile lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The file does not start with `b"LBW1"`.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The input ended mid-record.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        at: usize,
    },
    /// A uvarint ran past 64 bits.
    VarintOverflow {
        /// Byte offset of the offending varint.
        at: usize,
    },
    /// A memory record claims more coalesced lines than any warp can issue.
    OverlongRecord {
        /// Byte offset of the record.
        at: usize,
        /// The claimed line count.
        lines: u64,
    },
    /// The stream section disagrees with the header's grid size.
    StreamCountMismatch {
        /// `grid_ctas * warps_per_cta` from the header.
        expected: u64,
        /// Stream count found in the file.
        found: u64,
    },
    /// Structurally well-formed but semantically invalid content (bad
    /// instruction tag, undefined load, failed [`ReplayKernel::validate`],
    /// out-of-range ids in imported traces, ...).
    Malformed(String),
    /// Underlying I/O failure (message of the `std::io::Error`).
    Io(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::BadMagic => write!(f, "not an LBW1 workload trace (bad magic)"),
            ReplayError::BadVersion(v) => write!(f, "unsupported LBW1 version {v}"),
            ReplayError::UnexpectedEof { at } => write!(f, "truncated input at byte {at}"),
            ReplayError::VarintOverflow { at } => write!(f, "varint overflow at byte {at}"),
            ReplayError::OverlongRecord { at, lines } => {
                write!(f, "record at byte {at} claims {lines} lines (max {MAX_LINES_PER_RECORD})")
            }
            ReplayError::StreamCountMismatch { expected, found } => {
                write!(f, "stream count {found} does not match grid ({expected} warps)")
            }
            ReplayError::Malformed(msg) => write!(f, "malformed workload trace: {msg}"),
            ReplayError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Io(e.to_string())
    }
}

/// LEB128 reader twin of `lb_trace::get_uvarint`, reporting positions in
/// [`ReplayError`] terms so decode failures carry a byte offset.
fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, ReplayError> {
    let start = *pos;
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(ReplayError::UnexpectedEof { at: *pos })?;
        *pos += 1;
        if shift == 63 && b > 1 || shift > 63 {
            return Err(ReplayError::VarintOverflow { at: start });
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, ReplayError> {
    let b = *buf.get(*pos).ok_or(ReplayError::UnexpectedEof { at: *pos })?;
    *pos += 1;
    Ok(b)
}

/// Checked u32 narrowing for decoded counts.
fn as_u32(v: u64, what: &str) -> Result<u32, ReplayError> {
    u32::try_from(v).map_err(|_| ReplayError::Malformed(format!("{what} {v} exceeds u32")))
}

fn put_zigzag(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

fn get_zigzag(buf: &[u8], pos: &mut usize) -> Result<i64, ReplayError> {
    let raw = get_uvarint(buf, pos)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

/// Serializes `rep` to `LBW1` bytes. Interns each stream's line pool (see
/// the module docs), so the output is canonical: encoding a decoded trace
/// reproduces the file byte for byte.
pub fn encode(rep: &ReplayKernel) -> Vec<u8> {
    let stub = &rep.stub;
    let mut out = Vec::with_capacity(64 + rep.streams.len() * 32);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    put_uvarint(&mut out, stub.name.len() as u64);
    out.extend_from_slice(stub.name.as_bytes());
    put_uvarint(&mut out, u64::from(stub.grid_ctas));
    put_uvarint(&mut out, u64::from(stub.warps_per_cta));
    put_uvarint(&mut out, u64::from(stub.regs_per_thread));
    put_uvarint(&mut out, stub.shared_mem_per_cta);
    put_uvarint(&mut out, u64::from(stub.iterations));
    put_uvarint(&mut out, stub.loads.len() as u64);
    for l in &stub.loads {
        put_uvarint(&mut out, u64::from(l.pc.0));
    }
    put_uvarint(&mut out, stub.body.len() as u64);
    for inst in &stub.body {
        put_uvarint(&mut out, u64::from(inst.pc.0));
        let (tag, arg) = match inst.kind {
            InstKind::Alu { latency } => (0u8, u64::from(latency)),
            InstKind::Load { load } => (1, u64::from(load.0)),
            InstKind::Store { load } => (2, u64::from(load.0)),
        };
        out.push(tag);
        put_uvarint(&mut out, arg);
        put_uvarint(&mut out, inst.wait_for.map_or(0, |l| u64::from(l.0) + 1));
    }
    put_uvarint(&mut out, rep.streams.len() as u64);
    let mut interned: HashMap<Vec<LineAddr>, u32> = HashMap::new();
    for s in &rep.streams {
        // Canonical pool: first occurrence of each distinct line slice, in
        // op order.
        interned.clear();
        let mut pool: Vec<LineAddr> = Vec::new();
        let mut slots: Vec<(u32, u32)> = Vec::with_capacity(s.ops.len());
        for op in &s.ops {
            if op.line_len == 0 {
                slots.push((0, 0));
                continue;
            }
            let slice = &s.lines[op.line_off as usize..(op.line_off + op.line_len) as usize];
            let off = *interned.entry(slice.to_vec()).or_insert_with(|| {
                let off = pool.len() as u32;
                pool.extend_from_slice(slice);
                off
            });
            slots.push((off, op.line_len));
        }
        put_uvarint(&mut out, pool.len() as u64);
        let mut prev = 0i64;
        for line in &pool {
            let cur = line.0 as i64;
            put_zigzag(&mut out, cur.wrapping_sub(prev));
            prev = cur;
        }
        put_uvarint(&mut out, s.ops.len() as u64);
        for (op, &(off, len)) in s.ops.iter().zip(&slots) {
            put_uvarint(&mut out, u64::from(op.pos));
            put_uvarint(&mut out, u64::from(len));
            if len > 0 {
                put_uvarint(&mut out, u64::from(off));
            }
        }
    }
    out
}

/// Parses `LBW1` bytes into a validated [`ReplayKernel`].
pub fn decode(buf: &[u8]) -> Result<ReplayKernel, ReplayError> {
    if buf.len() < 4 {
        return Err(if buf.is_empty() {
            ReplayError::UnexpectedEof { at: 0 }
        } else {
            ReplayError::BadMagic
        });
    }
    if buf[..4] != MAGIC {
        return Err(ReplayError::BadMagic);
    }
    let mut pos = 4usize;
    let version = get_u8(buf, &mut pos)?;
    if version != VERSION {
        return Err(ReplayError::BadVersion(version));
    }
    let name_len = get_uvarint(buf, &mut pos)? as usize;
    if name_len > buf.len().saturating_sub(pos) {
        return Err(ReplayError::UnexpectedEof { at: pos });
    }
    let name = std::str::from_utf8(&buf[pos..pos + name_len])
        .map_err(|_| ReplayError::Malformed("kernel name is not UTF-8".into()))?
        .to_string();
    pos += name_len;
    let grid_ctas = as_u32(get_uvarint(buf, &mut pos)?, "grid_ctas")?;
    let warps_per_cta = as_u32(get_uvarint(buf, &mut pos)?, "warps_per_cta")?;
    let regs_per_thread = as_u32(get_uvarint(buf, &mut pos)?, "regs_per_thread")?;
    let shared_mem_per_cta = get_uvarint(buf, &mut pos)?;
    let iterations = as_u32(get_uvarint(buf, &mut pos)?, "iterations")?;

    let n_loads = get_uvarint(buf, &mut pos)?;
    if n_loads > buf.len() as u64 {
        return Err(ReplayError::UnexpectedEof { at: pos });
    }
    let mut loads = Vec::with_capacity(n_loads as usize);
    for i in 0..n_loads as u32 {
        let pc = as_u32(get_uvarint(buf, &mut pos)?, "load pc")?;
        // Replay never executes patterns; decoded stubs carry placeholders.
        loads.push(LoadSpec { id: LoadId(i), pc: Pc(pc), pattern: AccessPattern::streaming(128) });
    }

    let n_body = get_uvarint(buf, &mut pos)?;
    if n_body > buf.len() as u64 {
        return Err(ReplayError::UnexpectedEof { at: pos });
    }
    let mut body = Vec::with_capacity(n_body as usize);
    for _ in 0..n_body {
        let pc = as_u32(get_uvarint(buf, &mut pos)?, "pc")?;
        let tag_at = pos;
        let tag = get_u8(buf, &mut pos)?;
        let arg = get_uvarint(buf, &mut pos)?;
        let kind = match tag {
            0 => InstKind::Alu { latency: as_u32(arg, "latency")? },
            1 => InstKind::Load { load: LoadId(as_u32(arg, "load index")?) },
            2 => InstKind::Store { load: LoadId(as_u32(arg, "load index")?) },
            t => {
                return Err(ReplayError::Malformed(format!(
                    "unknown instruction tag {t} at byte {tag_at}"
                )))
            }
        };
        let wait = get_uvarint(buf, &mut pos)?;
        let wait_for = match wait {
            0 => None,
            w => Some(LoadId(as_u32(w - 1, "wait id")?)),
        };
        body.push(StaticInst { pc: Pc(pc), kind, wait_for });
    }

    let stub = KernelSpec::from_raw(
        name,
        grid_ctas,
        warps_per_cta,
        regs_per_thread,
        shared_mem_per_cta,
        body,
        iterations,
        loads,
    )
    .map_err(ReplayError::Malformed)?;

    let n_streams = get_uvarint(buf, &mut pos)?;
    let expected = u64::from(grid_ctas) * u64::from(warps_per_cta);
    if n_streams != expected {
        return Err(ReplayError::StreamCountMismatch { expected, found: n_streams });
    }
    let mut streams = Vec::with_capacity(n_streams as usize);
    for _ in 0..n_streams {
        let n_lines = get_uvarint(buf, &mut pos)?;
        if n_lines > buf.len() as u64 {
            return Err(ReplayError::UnexpectedEof { at: pos });
        }
        let mut lines = Vec::with_capacity(n_lines as usize);
        let mut prev = 0i64;
        for _ in 0..n_lines {
            let delta = get_zigzag(buf, &mut pos)?;
            prev = prev.wrapping_add(delta);
            lines.push(LineAddr(prev as u64));
        }
        let n_ops = get_uvarint(buf, &mut pos)?;
        if n_ops > buf.len() as u64 {
            return Err(ReplayError::UnexpectedEof { at: pos });
        }
        let mut ops = Vec::with_capacity(n_ops as usize);
        for _ in 0..n_ops {
            let op_at = pos;
            let p = as_u32(get_uvarint(buf, &mut pos)?, "body position")?;
            let len = get_uvarint(buf, &mut pos)?;
            if len > MAX_LINES_PER_RECORD {
                return Err(ReplayError::OverlongRecord { at: op_at, lines: len });
            }
            let off = if len > 0 { as_u32(get_uvarint(buf, &mut pos)?, "line offset")? } else { 0 };
            ops.push(TraceOp { pos: p, line_off: off, line_len: len as u32 });
        }
        streams.push(WarpStream { ops, lines });
    }

    let rep = ReplayKernel { stub, streams };
    rep.validate().map_err(ReplayError::Malformed)?;
    Ok(rep)
}

/// Reads and decodes a workload trace from `path`.
pub fn read_file(path: &std::path::Path) -> Result<ReplayKernel, ReplayError> {
    decode(&std::fs::read(path)?)
}

/// Encodes `rep` and writes it to `path`.
pub fn write_file(path: &std::path::Path, rep: &ReplayKernel) -> Result<(), ReplayError> {
    Ok(std::fs::write(path, encode(rep))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::KernelBuilder;

    fn sample() -> ReplayKernel {
        let stub = KernelBuilder::new("fmt")
            .grid(1, 2)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::streaming(128), 1)
            .alu(3)
            .iterations(2)
            .build()
            .unwrap();
        let mem = |off, len| TraceOp { pos: 0, line_off: off, line_len: len };
        let alu = |pos| TraceOp { pos, line_off: 0, line_len: 0 };
        // Stream 1 repeats stream 0's access — the encoder must intern it.
        let s0 = WarpStream {
            ops: vec![mem(0, 2), alu(1), alu(2), mem(2, 2), alu(1), alu(2)],
            lines: vec![LineAddr(10), LineAddr(11), LineAddr(10), LineAddr(11)],
        };
        let s1 = WarpStream {
            ops: vec![mem(0, 1), alu(1), alu(2), mem(1, 1), alu(1), alu(2)],
            lines: vec![LineAddr(500), LineAddr(500)],
        };
        ReplayKernel { stub, streams: vec![s0, s1] }
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let rep = sample();
        rep.validate().unwrap();
        let bytes = encode(&rep);
        let back = decode(&bytes).unwrap();
        back.validate().unwrap();
        assert_eq!(back.stub, rep.stub);
        assert_eq!(back.streams.len(), rep.streams.len());
        // Interning dedups the repeated slices but the per-op line content
        // is preserved exactly.
        for (a, b) in rep.streams.iter().zip(&back.streams) {
            for (oa, ob) in a.ops.iter().zip(&b.ops) {
                assert_eq!(oa.pos, ob.pos);
                assert_eq!(oa.line_len, ob.line_len);
                let la = &a.lines[oa.line_off as usize..(oa.line_off + oa.line_len) as usize];
                let lb = &b.lines[ob.line_off as usize..(ob.line_off + ob.line_len) as usize];
                assert_eq!(la, lb);
            }
        }
        assert!(back.streams[0].lines.len() < rep.streams[0].lines.len());
    }

    #[test]
    fn encode_is_canonical() {
        let rep = sample();
        let bytes = encode(&rep);
        let back = decode(&bytes).unwrap();
        assert_eq!(encode(&back), bytes, "re-encoding a decoded trace must be byte-identical");
    }

    #[test]
    fn truncated_file_reports_eof() {
        let bytes = encode(&sample());
        for cut in [0, 3, 5, bytes.len() / 2, bytes.len() - 1] {
            match decode(&bytes[..cut]) {
                Err(ReplayError::UnexpectedEof { .. }) | Err(ReplayError::BadMagic) => {}
                other => panic!("cut at {cut}: expected EOF/BadMagic, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(ReplayError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample());
        bytes[4] = 9;
        assert_eq!(decode(&bytes), Err(ReplayError::BadVersion(9)));
    }

    #[test]
    fn overlong_record_rejected() {
        // A record claiming more lines than any warp can coalesce must be
        // rejected by length, before validation ever sees it.
        let mut bad = sample();
        let n = (MAX_LINES_PER_RECORD + 1) as u32;
        bad.streams[0].lines = vec![LineAddr(1); n as usize];
        bad.streams[0].ops = vec![
            TraceOp { pos: 0, line_off: 0, line_len: n },
            TraceOp { pos: 1, line_off: 0, line_len: 0 },
        ];
        match decode(&encode(&bad)) {
            Err(ReplayError::OverlongRecord { lines, .. }) => {
                assert_eq!(lines, MAX_LINES_PER_RECORD + 1);
            }
            other => panic!("expected OverlongRecord, got {other:?}"),
        }
    }

    #[test]
    fn stream_count_mismatch_rejected() {
        let mut rep = sample();
        rep.streams.pop();
        let bytes = encode(&rep);
        match decode(&bytes) {
            Err(ReplayError::StreamCountMismatch { expected: 2, found: 1 }) => {}
            other => panic!("expected StreamCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut bytes = MAGIC.to_vec();
        bytes.push(VERSION);
        bytes.extend_from_slice(&[0xff; 12]); // name length runs past 64 bits
        match decode(&bytes) {
            Err(ReplayError::VarintOverflow { .. }) => {}
            other => panic!("expected VarintOverflow, got {other:?}"),
        }
    }

    #[test]
    fn semantic_garbage_rejected_not_panicking() {
        // An op indexing past the stub body decodes structurally but fails
        // validation with a typed error.
        let mut rep = sample();
        rep.streams[0].ops[1].pos = 99;
        let bytes = encode(&rep);
        match decode(&bytes) {
            Err(ReplayError::Malformed(msg)) => assert!(msg.contains("out of range")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
