//! Combination architectures of the paper's §5.5: PCAL+CERF, Baseline+SVC,
//! PCAL+SVC, and LB+CacheExt.
//!
//! A combination pairs a *scheduling/bypass* policy (e.g. PCAL) with a
//! *victim-storage* policy (CERF or Linebacker's Selective Victim Caching).
//! Bypass decisions come from the first; cache-event handling from the
//! second; window hooks reach both.

use gpu_sim::policy::{MissService, PolicyCtx, PolicyFactory, PreAccess, SmPolicy, WindowInfo};
use gpu_sim::types::{CtaId, LineAddr, LoadId, Pc, RegNum};
use linebacker::{LbConfig, LbMode, LinebackerPolicy};

use crate::cerf::CerfPolicy;
use crate::pcal::PcalPolicy;

/// A scheduler/bypass policy stacked with a victim-storage policy.
pub struct ComposedPolicy {
    name: &'static str,
    /// Supplies `pre_access` (bypass) and may throttle.
    scheduler: Box<dyn SmPolicy>,
    /// Supplies victim-storage behaviour.
    victim: Box<dyn SmPolicy>,
}

impl std::fmt::Debug for ComposedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComposedPolicy").field("name", &self.name).finish()
    }
}

impl ComposedPolicy {
    /// Stacks `scheduler` (bypass/throttle source) with `victim` storage.
    pub fn new(
        name: &'static str,
        scheduler: Box<dyn SmPolicy>,
        victim: Box<dyn SmPolicy>,
    ) -> Self {
        ComposedPolicy { name, scheduler, victim }
    }
}

impl SmPolicy for ComposedPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pre_access(
        &mut self,
        warp: u32,
        pc: Pc,
        load: LoadId,
        line: LineAddr,
        ctx: &mut PolicyCtx<'_>,
    ) -> PreAccess {
        self.scheduler.pre_access(warp, pc, load, line, ctx)
    }

    fn on_hit(&mut self, pc: Pc, load: LoadId, line: LineAddr, ctx: &mut PolicyCtx<'_>) {
        self.victim.on_hit(pc, load, line, ctx);
    }

    fn on_miss(
        &mut self,
        pc: Pc,
        load: LoadId,
        line: LineAddr,
        ctx: &mut PolicyCtx<'_>,
    ) -> MissService {
        self.victim.on_miss(pc, load, line, ctx)
    }

    fn on_evict(&mut self, victim: LineAddr, victim_hpc: u8, ctx: &mut PolicyCtx<'_>) -> bool {
        self.victim.on_evict(victim, victim_hpc, ctx)
    }

    fn on_store(&mut self, line: LineAddr, ctx: &mut PolicyCtx<'_>) {
        self.victim.on_store(line, ctx);
    }

    fn on_window(&mut self, info: &WindowInfo, ctx: &mut PolicyCtx<'_>) -> Option<u32> {
        let a = self.scheduler.on_window(info, ctx);
        let b = self.victim.on_window(info, ctx);
        // The scheduler's CTA limit wins when both throttle.
        a.or(b)
    }

    fn on_cta_launch(&mut self, cta: CtaId, first_reg: RegNum, ctx: &mut PolicyCtx<'_>) {
        self.scheduler.on_cta_launch(cta, first_reg, ctx);
        self.victim.on_cta_launch(cta, first_reg, ctx);
    }

    fn on_cta_deactivate(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.scheduler.on_cta_deactivate(cta, ctx);
        self.victim.on_cta_deactivate(cta, ctx);
    }

    fn on_backup_complete(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.scheduler.on_backup_complete(cta, ctx);
        self.victim.on_backup_complete(cta, ctx);
    }

    fn on_cta_activate(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.scheduler.on_cta_activate(cta, ctx);
        self.victim.on_cta_activate(cta, ctx);
    }

    fn on_cta_complete(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.scheduler.on_cta_complete(cta, ctx);
        self.victim.on_cta_complete(cta, ctx);
    }

    fn victim_space_regs(&self) -> u32 {
        self.victim.victim_space_regs()
    }

    fn monitor_periods(&self) -> u32 {
        self.victim.monitor_periods()
    }
}

/// PCAL+CERF: PCAL's token bypass over CERF's unified register-file cache.
pub fn pcal_cerf_factory() -> Box<PolicyFactory<'static>> {
    Box::new(|_, gpu, _| {
        Box::new(ComposedPolicy::new(
            "pcal+cerf",
            Box::new(PcalPolicy::new(gpu)),
            Box::new(CerfPolicy::new(gpu)),
        ))
    })
}

/// PCAL+SVC: PCAL's token bypass over Linebacker's Selective Victim Caching
/// (statically-unused registers only; no CTA throttling).
pub fn pcal_svc_factory() -> Box<PolicyFactory<'static>> {
    Box::new(|sm, gpu, kernel| {
        Box::new(ComposedPolicy::new(
            "pcal+svc",
            Box::new(PcalPolicy::new(gpu)),
            Box::new(LinebackerPolicy::new(
                LbConfig::with_mode(LbMode::selective_victim_caching()),
                sm,
                gpu,
                kernel,
            )),
        ))
    })
}

/// Baseline+SVC: the unmodified GTO scheduler with Selective Victim Caching.
/// (Identical to the `Victim Caching`/`SVC` variants exposed directly by the
/// `linebacker` crate; provided here for the §5.5 naming.)
pub fn baseline_svc_factory() -> Box<PolicyFactory<'static>> {
    Box::new(|sm, gpu, kernel| {
        Box::new(LinebackerPolicy::new(
            LbConfig::with_mode(LbMode::selective_victim_caching()),
            sm,
            gpu,
            kernel,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::gpu::run_kernel;
    use gpu_sim::kernel::{KernelBuilder, KernelSpec};
    use gpu_sim::pattern::AccessPattern;
    use gpu_sim::types::SmId;

    fn fast_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(1).with_windows(2_000, 30_000)
    }

    fn kernel() -> KernelSpec {
        KernelBuilder::new("k")
            .grid(8, 4)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::reuse_working_set(64 * 1024, true), 2)
            .iterations(150)
            .build()
            .unwrap()
    }

    #[test]
    fn pcal_cerf_runs_and_bypasses() {
        let stats = run_kernel(fast_cfg(), kernel(), &pcal_cerf_factory());
        assert!(stats.instructions > 0);
        // With 64-warp token start and hill-climbing, some bypasses appear
        // once tokens drop below the resident warp count.
        assert!(stats.mem_accesses() > 0);
    }

    #[test]
    fn pcal_svc_runs() {
        let stats = run_kernel(fast_cfg(), kernel(), &pcal_svc_factory());
        assert!(stats.instructions > 0);
    }

    #[test]
    fn baseline_svc_runs() {
        let stats = run_kernel(fast_cfg(), kernel(), &baseline_svc_factory());
        assert!(stats.instructions > 0);
    }

    #[test]
    fn composed_name_reported() {
        let gpu = GpuConfig::default();
        let k = kernel();
        let p = pcal_cerf_factory()(SmId(0), &gpu, &k);
        assert_eq!(p.name(), "pcal+cerf");
    }
}
