//! PCAL: Priority-based Cache Allocation (Li et al., HPCA 2015), the warp
//! throttling + cache bypassing combination the paper compares against.
//!
//! PCAL grants a number of *tokens*; warps holding a token may allocate in
//! L1, while token-less warps bypass L1 entirely (their requests go straight
//! to L2/DRAM, trading latency for reduced cache contention). The token
//! count is tuned at window boundaries by a hill-climbing controller on IPC,
//! mirroring the performance-monitoring description in the paper.

use gpu_sim::config::GpuConfig;
use gpu_sim::policy::{PolicyCtx, PolicyFactory, PreAccess, SmPolicy, WindowInfo};
use gpu_sim::types::{LineAddr, LoadId, Pc};

/// Direction of the current hill-climbing probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Down,
    Up,
}

/// PCAL for one SM.
#[derive(Debug)]
pub struct PcalPolicy {
    /// Warps holding L1-allocation tokens (warp id < tokens).
    tokens: u32,
    max_warps: u32,
    prev_ipc: Option<f64>,
    probe: Probe,
    /// Every other window settles (token changes perturb the cache; the
    /// transition window's IPC is not compared).
    settle: bool,
    bypasses: u64,
}

impl PcalPolicy {
    /// Creates PCAL with all warps initially holding tokens.
    pub fn new(gpu: &GpuConfig) -> Self {
        PcalPolicy {
            tokens: gpu.max_warps_per_sm,
            max_warps: gpu.max_warps_per_sm,
            prev_ipc: None,
            probe: Probe::Down,
            settle: true,
            bypasses: 0,
        }
    }

    /// Current token count.
    pub fn tokens(&self) -> u32 {
        self.tokens
    }

    /// Bypassed accesses so far.
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Downward hill-climb step (aggressive: an eighth of the warp pool).
    fn step(&self) -> u32 {
        (self.max_warps / 8).max(1)
    }

    /// Upward (recovery) step: finer, a sixteenth of the warp pool.
    fn up_step(&self) -> u32 {
        (self.max_warps / 16).max(1)
    }
}

impl SmPolicy for PcalPolicy {
    fn name(&self) -> &'static str {
        "pcal"
    }

    fn pre_access(
        &mut self,
        warp: u32,
        _pc: Pc,
        _load: LoadId,
        _line: LineAddr,
        _ctx: &mut PolicyCtx<'_>,
    ) -> PreAccess {
        if warp < self.tokens {
            PreAccess::Normal
        } else {
            self.bypasses += 1;
            PreAccess::Bypass
        }
    }

    fn on_window(&mut self, info: &WindowInfo, _ctx: &mut PolicyCtx<'_>) -> Option<u32> {
        self.settle = !self.settle;
        if self.settle {
            return None;
        }
        let ipc = info.ipc;
        let step = self.step();
        match self.prev_ipc {
            None => {
                // First window: probe downward (fewer tokens = less
                // contention).
                self.tokens = self.tokens.saturating_sub(step).max(1);
            }
            Some(prev) => {
                let improved = ipc > prev * 1.02;
                let regressed = ipc < prev * 0.98;
                match (self.probe, improved, regressed) {
                    (Probe::Down, _, false) => {
                        // Improvement or plateau: bypassing more warps has
                        // not hurt, keep removing tokens (restricting L1
                        // allocation costs nothing while misses dominate).
                        self.tokens = self.tokens.saturating_sub(step).max(1);
                    }
                    (Probe::Down, _, true) => {
                        // Went too far: give tokens back (finer step) and flip.
                        self.tokens = (self.tokens + self.up_step()).min(self.max_warps);
                        self.probe = Probe::Up;
                    }
                    (Probe::Up, true, _) => {
                        self.tokens = (self.tokens + self.up_step()).min(self.max_warps);
                    }
                    (Probe::Up, _, true) => {
                        self.tokens = self.tokens.saturating_sub(self.up_step()).max(1);
                        self.probe = Probe::Down;
                    }
                    _ => {} // plateau while climbing: hold
                }
            }
        }
        self.prev_ipc = Some(ipc);
        None // PCAL does not deactivate CTAs; token-less warps bypass.
    }

    fn debug_state(&self) -> String {
        format!("tokens={} probe={:?} bypasses={}", self.tokens, self.probe, self.bypasses)
    }
}

/// Factory for PCAL.
pub fn pcal_factory() -> Box<PolicyFactory<'static>> {
    Box::new(|_, gpu, _| Box::new(PcalPolicy::new(gpu)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::regfile::RegFile;
    use gpu_sim::stats::SimStats;
    use gpu_sim::types::SmId;

    fn ctx_parts() -> (RegFile, SimStats) {
        (RegFile::new(2048, 32, 32), SimStats::default())
    }

    fn window(ipc: f64, i: u32) -> WindowInfo {
        WindowInfo {
            index: i,
            cycles: 1000,
            instructions: (ipc * 1000.0) as u64,
            ipc,
            active_ctas: 8,
            inactive_ctas: 0,
        }
    }

    #[test]
    fn tokenless_warps_bypass() {
        let gpu = GpuConfig::default();
        let mut p = PcalPolicy::new(&gpu);
        p.tokens = 4;
        let (mut rf, mut st) = ctx_parts();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        assert_eq!(p.pre_access(3, Pc(0), LoadId(0), LineAddr(0), &mut ctx), PreAccess::Normal);
        assert_eq!(p.pre_access(4, Pc(0), LoadId(0), LineAddr(0), &mut ctx), PreAccess::Bypass);
        assert_eq!(p.bypasses(), 1);
    }

    #[test]
    fn hill_climb_reduces_tokens_while_improving() {
        let gpu = GpuConfig::default();
        let mut p = PcalPolicy::new(&gpu);
        let (mut rf, mut st) = ctx_parts();
        let t0 = p.tokens();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_window(&window(1.0, 0), &mut ctx);
        let t1 = p.tokens();
        assert!(t1 < t0, "first window probes down");
        p.on_window(&window(0.1, 1), &mut ctx); // settle window (ignored)
        assert_eq!(p.tokens(), t1);
        p.on_window(&window(1.2, 2), &mut ctx); // improved: keep going down
        assert!(p.tokens() < t1);
    }

    #[test]
    fn hill_climb_backs_off_on_regression() {
        let gpu = GpuConfig::default();
        let mut p = PcalPolicy::new(&gpu);
        let (mut rf, mut st) = ctx_parts();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_window(&window(1.0, 0), &mut ctx);
        let t_after_probe = p.tokens();
        p.on_window(&window(0.7, 1), &mut ctx); // settle window (ignored)
        p.on_window(&window(0.5, 2), &mut ctx); // big regression
        assert!(p.tokens() > t_after_probe, "regression must restore tokens");
    }

    #[test]
    fn tokens_never_reach_zero() {
        let gpu = GpuConfig::default();
        let mut p = PcalPolicy::new(&gpu);
        let (mut rf, mut st) = ctx_parts();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        for i in 0..100 {
            p.on_window(&window(1.0 + i as f64, i), &mut ctx);
        }
        assert!(p.tokens() >= 1);
    }

    #[test]
    fn no_cta_throttling() {
        let gpu = GpuConfig::default();
        let mut p = PcalPolicy::new(&gpu);
        let (mut rf, mut st) = ctx_parts();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        assert_eq!(p.on_window(&window(1.0, 0), &mut ctx), None);
    }
}
