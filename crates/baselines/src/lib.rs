//! # baselines — the architectures Linebacker is compared against
//!
//! Implementations of every comparison point in the paper's evaluation:
//!
//! * [`best_swl`] — Best-SWL, the oracle static CTA-limit (warp throttling)
//!   baseline, including the sweep that finds the per-application optimum;
//! * [`pcal`] — PCAL, token-based warp prioritization with L1 bypass for
//!   token-less warps;
//! * [`cerf`] — CERF, the cache-emulated register file (unified on-chip
//!   local memory, no locality filter);
//! * [`cache_ext`] — the idealized enlarged-L1 configurations of §2.4;
//! * [`combos`] — PCAL+CERF, Baseline+SVC, PCAL+SVC compositions from §5.5.
//!
//! All policies implement [`gpu_sim::policy::SmPolicy`] and attach to a
//! simulation via their `*_factory()` constructors.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod best_swl;
pub mod cache_ext;
pub mod cerf;
pub mod combos;
pub mod pcal;

pub use best_swl::{best_swl_sweep, static_limit_factory, BestSwl, StaticLimitPolicy};
pub use cache_ext::{best_swl_cache_ext_config, cache_ext_config, statically_unused_bytes};
pub use cerf::{cerf_factory, CerfPolicy};
pub use combos::{baseline_svc_factory, pcal_cerf_factory, pcal_svc_factory, ComposedPolicy};
pub use pcal::{pcal_factory, PcalPolicy};
