//! CacheExt: the idealized enlarged-L1 study of the paper's §2.4.
//!
//! CacheExt assumes the statically unused register file space can simply be
//! re-wired as extra L1 capacity (and, combined with Best-SWL, the
//! dynamically unused space too). It is an upper-bound configuration, not a
//! realizable design — the paper uses it to motivate Linebacker and revisits
//! it in Figure 15 (LB+CacheExt).

use gpu_sim::config::GpuConfig;
use gpu_sim::kernel::KernelSpec;
use gpu_sim::types::LINE_BYTES;

/// Statically unused register bytes for `kernel` on `cfg`: register file
/// size minus what the maximum resident CTA count occupies.
pub fn statically_unused_bytes(cfg: &GpuConfig, kernel: &KernelSpec) -> u64 {
    let regs_per_cta = kernel.regs_per_cta() as u64;
    let total_regs = cfg.warp_regs_per_sm() as u64;
    if regs_per_cta == 0 {
        return total_regs * LINE_BYTES;
    }
    let by_regs = total_regs / regs_per_cta;
    let by_slots = cfg.max_ctas_per_sm as u64;
    let by_warps = (cfg.max_warps_per_sm / kernel.warps_per_cta.max(1)) as u64;
    let by_threads =
        (cfg.max_threads_per_sm / (kernel.warps_per_cta.max(1) * cfg.simd_width)) as u64;
    let by_smem =
        cfg.shared_mem_bytes_per_sm.checked_div(kernel.shared_mem_per_cta).unwrap_or(u64::MAX);
    let resident = by_regs.min(by_slots).min(by_warps).min(by_threads).min(by_smem);
    let used = resident * regs_per_cta;
    (total_regs - used.min(total_regs)) * LINE_BYTES
}

/// Returns a configuration whose L1 is enlarged by the statically unused
/// register space (rounded down to a whole number of 8-way x 128 B sets so
/// the geometry stays valid).
pub fn cache_ext_config(cfg: &GpuConfig, kernel: &KernelSpec) -> GpuConfig {
    enlarge_l1(cfg, statically_unused_bytes(cfg, kernel))
}

/// Returns a configuration whose L1 is enlarged by `extra_bytes`.
pub fn enlarge_l1(cfg: &GpuConfig, extra_bytes: u64) -> GpuConfig {
    let set_bytes = cfg.l1.assoc as u64 * cfg.l1.line_bytes;
    let extra = extra_bytes / set_bytes * set_bytes;
    let mut out = cfg.clone();
    out.l1.size_bytes += extra;
    out
}

/// CacheExt combined with a Best-SWL limit: the L1 additionally absorbs the
/// dynamically unused register space freed by limiting to `cta_limit` CTAs.
pub fn best_swl_cache_ext_config(
    cfg: &GpuConfig,
    kernel: &KernelSpec,
    cta_limit: u32,
) -> GpuConfig {
    let static_bytes = statically_unused_bytes(cfg, kernel);
    let regs_per_cta = kernel.regs_per_cta() as u64;
    let total_regs = cfg.warp_regs_per_sm() as u64;
    let resident = total_regs.checked_div(regs_per_cta).unwrap_or(0);
    let resident = resident
        .min(cfg.max_ctas_per_sm as u64)
        .min((cfg.max_warps_per_sm / kernel.warps_per_cta.max(1)) as u64);
    let throttled = resident.saturating_sub(cta_limit as u64);
    let dynamic_bytes = throttled * regs_per_cta * LINE_BYTES;
    enlarge_l1(cfg, static_bytes + dynamic_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::KernelBuilder;

    fn kernel(regs: u32, warps: u32) -> KernelSpec {
        KernelBuilder::new("k")
            .grid(64, warps)
            .regs_per_thread(regs)
            .alu(1)
            .iterations(1)
            .build()
            .unwrap()
    }

    #[test]
    fn fully_packed_kernel_has_no_static_slack() {
        // 8 warps x 64 regs = 512 regs per CTA; 4 CTAs fill 2048 exactly.
        let cfg = GpuConfig::default();
        let k = kernel(64, 8);
        assert_eq!(statically_unused_bytes(&cfg, &k), 0);
    }

    #[test]
    fn light_kernel_leaves_static_slack() {
        // 2 warps x 16 regs = 32 regs/CTA; 32 CTA slots use 1024 of 2048.
        let cfg = GpuConfig::default();
        let k = kernel(16, 2);
        assert_eq!(statically_unused_bytes(&cfg, &k), 1024 * 128);
    }

    #[test]
    fn cache_ext_grows_l1_in_whole_sets() {
        let cfg = GpuConfig::default();
        let k = kernel(16, 2);
        let ext = cache_ext_config(&cfg, &k);
        assert!(ext.l1.size_bytes > cfg.l1.size_bytes);
        // Geometry must stay valid.
        let _ = ext.l1.n_sets();
        assert_eq!(ext.l1.size_bytes % (8 * 128), 0);
    }

    #[test]
    fn best_swl_cache_ext_adds_dynamic_space() {
        let cfg = GpuConfig::default();
        let k = kernel(64, 8); // 4 resident CTAs, no static slack
        let only_static = cache_ext_config(&cfg, &k);
        let with_dynamic = best_swl_cache_ext_config(&cfg, &k, 2);
        // Throttling 2 of 4 CTAs frees 2 x 512 regs = 128 KB.
        assert_eq!(with_dynamic.l1.size_bytes - only_static.l1.size_bytes, 128 * 1024);
    }

    #[test]
    fn zero_extra_keeps_config() {
        let cfg = GpuConfig::default();
        let same = enlarge_l1(&cfg, 0);
        assert_eq!(same.l1.size_bytes, cfg.l1.size_bytes);
    }
}
