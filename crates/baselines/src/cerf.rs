//! CERF: the Cache-Emulated Register File (Jing et al., MICRO 2016).
//!
//! CERF unifies the register file and L1 into one on-chip local memory
//! (304 KB = 256 KB RF + 48 KB L1 at the paper's baseline) and uses the
//! rarely-accessed register space as additional cache. It differs from
//! Linebacker in three ways that the evaluation exposes:
//!
//! * it caches **every** line, including streaming data (no load-locality
//!   filter), so streaming kernels still thrash;
//! * it has no CTA throttling, so only statically-idle register space (plus
//!   rarely-used live registers) is available;
//! * the unified structure puts cache traffic and operand traffic on the
//!   same banks, roughly doubling bank conflicts (Figure 16: +52.4 % vs the
//!   baseline against Linebacker's +29.1 %).

use gpu_sim::config::GpuConfig;
use gpu_sim::policy::{MissService, PolicyCtx, PolicyFactory, SmPolicy, WindowInfo};
use gpu_sim::types::{Cycle, LineAddr, LoadId, Pc, RegNum};

/// One way of the register-resident cache.
#[derive(Debug, Clone, Copy, Default)]
struct CerfWay {
    valid: bool,
    line: LineAddr,
    last_use: Cycle,
}

/// CERF for one SM.
#[derive(Debug)]
pub struct CerfPolicy {
    /// 48-set, 32-way tag store over the unified space.
    sets: Vec<Vec<CerfWay>>,
    /// Maximum lines the register-resident cache may hold (recomputed each
    /// window from idle + rarely-used register space).
    capacity: u32,
    occupancy: u32,
    tick: Cycle,
    access_latency: u32,
    /// Fraction of *live* registers treated as rarely-accessed and usable as
    /// cache (CERF's register-liveness analysis).
    rare_fraction: f64,
    reg_hits: u64,
}

const CERF_SETS: u32 = 48;
const CERF_WAYS: usize = 32;

impl CerfPolicy {
    /// Creates CERF. `access_latency` is the extra latency of a hit in the
    /// register-resident cache beyond an L1 hit.
    pub fn new(_gpu: &GpuConfig) -> Self {
        CerfPolicy {
            sets: (0..CERF_SETS).map(|_| vec![CerfWay::default(); CERF_WAYS]).collect(),
            capacity: 0,
            occupancy: 0,
            tick: 0,
            access_latency: 22,
            rare_fraction: 0.0,
            reg_hits: 0,
        }
    }

    /// Current register-cache capacity in lines.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Hits served from the register-resident cache.
    pub fn reg_hits(&self) -> u64 {
        self.reg_hits
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 % CERF_SETS as u64) as usize
    }

    /// A pseudo register number for bank-conflict modelling: CERF spreads
    /// cached lines over the whole unified register file.
    fn pseudo_rn(&self, line: LineAddr) -> RegNum {
        RegNum((line.0 % 2048) as u32)
    }

    fn lookup(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        for w in self.sets[set].iter_mut() {
            if w.valid && w.line == line {
                w.last_use = tick;
                return true;
            }
        }
        false
    }

    fn insert(&mut self, line: LineAddr) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        if self.sets[set].iter().any(|w| w.valid && w.line == line) {
            return false;
        }
        // Free way while under capacity; otherwise evict set-LRU.
        if self.occupancy < self.capacity {
            if let Some(w) = self.sets[set].iter_mut().find(|w| !w.valid) {
                *w = CerfWay { valid: true, line, last_use: tick };
                self.occupancy += 1;
                return true;
            }
        }
        let victim = self.sets[set].iter_mut().filter(|w| w.valid).min_by_key(|w| w.last_use);
        match victim {
            Some(w) => {
                *w = CerfWay { valid: true, line, last_use: tick };
                true
            }
            None => false,
        }
    }

    fn invalidate(&mut self, line: LineAddr) {
        let set = self.set_of(line);
        for w in self.sets[set].iter_mut() {
            if w.valid && w.line == line {
                w.valid = false;
                self.occupancy = self.occupancy.saturating_sub(1);
            }
        }
    }
}

impl SmPolicy for CerfPolicy {
    fn name(&self) -> &'static str {
        "cerf"
    }

    fn on_hit(&mut self, _pc: Pc, _load: LoadId, line: LineAddr, ctx: &mut PolicyCtx<'_>) {
        // Unified structure: every L1-side access also occupies a register
        // bank — the source of CERF's extra bank conflicts.
        let rn = self.pseudo_rn(line);
        ctx.regfile.access(rn, ctx.cycle, false);
    }

    fn on_miss(
        &mut self,
        _pc: Pc,
        _load: LoadId,
        line: LineAddr,
        ctx: &mut PolicyCtx<'_>,
    ) -> MissService {
        if self.lookup(line) {
            self.reg_hits += 1;
            let rn = self.pseudo_rn(line);
            let conflict = ctx.regfile.access(rn, ctx.cycle, false);
            MissService::VictimHit { extra_latency: self.access_latency + conflict }
        } else {
            MissService::ToL2
        }
    }

    fn on_evict(&mut self, victim: LineAddr, _victim_hpc: u8, ctx: &mut PolicyCtx<'_>) -> bool {
        // No filtering: every evicted line (streaming included) is cached.
        if self.insert(victim) {
            let rn = self.pseudo_rn(victim);
            ctx.regfile.access(rn, ctx.cycle, true);
            true
        } else {
            false
        }
    }

    fn on_store(&mut self, line: LineAddr, _ctx: &mut PolicyCtx<'_>) {
        self.invalidate(line);
    }

    fn on_window(&mut self, _info: &WindowInfo, ctx: &mut PolicyCtx<'_>) -> Option<u32> {
        // Recompute capacity: statically idle registers plus the
        // rarely-accessed fraction of live registers.
        let space = ctx.regfile.space();
        let usable = space.static_unused as f64
            + space.dynamic_unused as f64
            + space.active_used as f64 * self.rare_fraction;
        self.capacity = usable as u32;
        None
    }

    fn victim_space_regs(&self) -> u32 {
        self.capacity
    }
}

/// Factory for CERF.
pub fn cerf_factory() -> Box<PolicyFactory<'static>> {
    Box::new(|_, gpu, _| Box::new(CerfPolicy::new(gpu)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::regfile::RegFile;
    use gpu_sim::stats::SimStats;
    use gpu_sim::types::SmId;

    fn prepared() -> (CerfPolicy, RegFile, SimStats) {
        let mut p = CerfPolicy::new(&GpuConfig::default());
        let mut rf = RegFile::new(2048, 32, 32);
        let mut st = SimStats::default();
        let info = WindowInfo {
            index: 0,
            cycles: 1000,
            instructions: 0,
            ipc: 0.0,
            active_ctas: 0,
            inactive_ctas: 0,
        };
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_window(&info, &mut ctx); // capacity = all 2048 idle regs
        (p, rf, st)
    }

    #[test]
    fn caches_all_evictions_including_streaming() {
        let (mut p, mut rf, mut st) = prepared();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_evict(LineAddr(5), 31, &mut ctx);
        assert!(matches!(
            p.on_miss(Pc(0), LoadId(0), LineAddr(5), &mut ctx),
            MissService::VictimHit { .. }
        ));
        assert_eq!(p.reg_hits(), 1);
    }

    #[test]
    fn capacity_zero_before_first_window() {
        let mut p = CerfPolicy::new(&GpuConfig::default());
        let mut rf = RegFile::new(2048, 32, 32);
        let mut st = SimStats::default();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_evict(LineAddr(5), 0, &mut ctx);
        assert_eq!(p.on_miss(Pc(0), LoadId(0), LineAddr(5), &mut ctx), MissService::ToL2);
    }

    #[test]
    fn capacity_counts_idle_registers_only() {
        let mut p = CerfPolicy::new(&GpuConfig::default());
        let mut rf = RegFile::new(2048, 32, 32);
        rf.allocate_cta(gpu_sim::types::CtaId(0), 1000);
        let mut st = SimStats::default();
        let info = WindowInfo {
            index: 0,
            cycles: 1000,
            instructions: 0,
            ipc: 0.0,
            active_ctas: 1,
            inactive_ctas: 0,
        };
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_window(&info, &mut ctx);
        // 1048 idle registers; live registers are not usable without
        // throttling (conservative liveness assumption).
        assert_eq!(p.capacity(), 1048);
    }

    #[test]
    fn store_invalidates_cached_line() {
        let (mut p, mut rf, mut st) = prepared();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_evict(LineAddr(9), 0, &mut ctx);
        p.on_store(LineAddr(9), &mut ctx);
        assert_eq!(p.on_miss(Pc(0), LoadId(0), LineAddr(9), &mut ctx), MissService::ToL2);
    }

    #[test]
    fn unified_structure_adds_bank_traffic_on_l1_hits() {
        let (mut p, mut rf, mut st) = prepared();
        let before = {
            let (r, w, _) = rf.stats();
            r + w
        };
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        p.on_hit(Pc(0), LoadId(0), LineAddr(1), &mut ctx);
        let after = {
            let (r, w, _) = rf.stats();
            r + w
        };
        assert_eq!(after, before + 1, "every L1 hit touches a unified bank");
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let (mut p, mut rf, mut st) = prepared();
        p.capacity = 4;
        p.occupancy = 0;
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut st };
        // Insert lines mapping to distinct sets.
        for i in 0..10u64 {
            p.on_evict(LineAddr(i), 0, &mut ctx);
        }
        assert!(p.occupancy <= 10);
        // Lines beyond capacity in *new* sets are rejected; same-set LRU
        // replacement still works.
        assert!(p.occupancy >= 4);
    }
}
