//! Best-SWL: the oracle static warp (CTA) limiting baseline.
//!
//! The paper uses Best-SWL — a static CTA limit chosen per application by an
//! oracle sweep — as the reference warp-throttling technique (it was shown to
//! beat dynamic schemes such as CCWS). The policy itself is a fixed limit;
//! the oracle lives in [`best_swl_sweep`], which tries candidate limits and
//! keeps the best-IPC one.

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::kernel::KernelSpec;
use gpu_sim::policy::{PolicyCtx, PolicyFactory, SmPolicy, WindowInfo};
use gpu_sim::stats::SimStats;

/// A static CTA-limit policy (Static Warp Limiting at CTA granularity).
#[derive(Debug, Clone)]
pub struct StaticLimitPolicy {
    limit: Option<u32>,
}

impl StaticLimitPolicy {
    /// Limits each SM to `limit` active CTAs (`None` = unlimited).
    pub fn new(limit: Option<u32>) -> Self {
        StaticLimitPolicy { limit }
    }

    /// The configured limit.
    pub fn limit(&self) -> Option<u32> {
        self.limit
    }
}

impl SmPolicy for StaticLimitPolicy {
    fn name(&self) -> &'static str {
        "best-swl"
    }

    fn on_window(&mut self, _info: &WindowInfo, _ctx: &mut PolicyCtx<'_>) -> Option<u32> {
        self.limit
    }
}

/// Factory for a fixed CTA limit.
pub fn static_limit_factory(limit: Option<u32>) -> Box<PolicyFactory<'static>> {
    Box::new(move |_, _, _| Box::new(StaticLimitPolicy::new(limit)))
}

/// Result of the Best-SWL oracle sweep.
#[derive(Debug, Clone)]
pub struct BestSwl {
    /// The winning CTA limit (`None` = unlimited was best).
    pub limit: Option<u32>,
    /// Stats of the winning run.
    pub stats: SimStats,
    /// `(limit, ipc)` of every candidate tried.
    pub candidates: Vec<(Option<u32>, f64)>,
}

/// Oracle sweep: runs `kernel` under each candidate CTA limit and returns
/// the best-IPC configuration. Candidates cover the practically relevant
/// range (1, 2, 3, 4, 6, 8, 12, 16, unlimited), clipped to the kernel's
/// occupancy.
pub fn best_swl_sweep(cfg: &GpuConfig, kernel: &KernelSpec) -> BestSwl {
    let mut candidates: Vec<Option<u32>> =
        [1u32, 2, 3, 4, 6, 8, 12, 16].iter().map(|&l| Some(l)).collect();
    candidates.push(None);

    let mut best: Option<(Option<u32>, SimStats)> = None;
    let mut tried = Vec::new();
    for limit in candidates {
        let stats = run_kernel(cfg.clone(), kernel.clone(), &static_limit_factory(limit));
        let ipc = stats.ipc();
        tried.push((limit, ipc));
        let better = match &best {
            Some((_, b)) => ipc > b.ipc(),
            None => true,
        };
        if better {
            best = Some((limit, stats));
        }
    }
    let (limit, stats) = best.expect("at least one candidate");
    BestSwl { limit, stats, candidates: tried }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::KernelBuilder;
    use gpu_sim::pattern::AccessPattern;
    use gpu_sim::policy::baseline_factory;

    fn fast_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(1).with_windows(2_000, 30_000)
    }

    #[test]
    fn static_limit_is_enforced() {
        let k = KernelBuilder::new("k")
            .grid(16, 4)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::reuse_working_set(96 * 1024, true), 2)
            .iterations(200)
            .build()
            .unwrap();
        let stats = run_kernel(fast_cfg(), k, &static_limit_factory(Some(2)));
        assert!(stats.instructions > 0);
    }

    #[test]
    fn sweep_returns_best_of_candidates() {
        let k = KernelBuilder::new("k")
            .grid(8, 4)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::reuse_working_set(32 * 1024, true), 2)
            .iterations(100)
            .build()
            .unwrap();
        let res = best_swl_sweep(&fast_cfg(), &k);
        let best_ipc = res.stats.ipc();
        for (_, ipc) in &res.candidates {
            assert!(best_ipc >= *ipc - 1e-12);
        }
        assert!(!res.candidates.is_empty());
    }

    #[test]
    fn throttling_helps_thrashing_kernel() {
        // A heavily thrashing kernel: per-warp private working sets that sum
        // far beyond L1. Throttling should not lose (and typically wins).
        let k = KernelBuilder::new("thrash")
            .grid(16, 8)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::reuse_working_set(8 * 1024, false), 1)
            .iterations(300)
            .build()
            .unwrap();
        let base = run_kernel(fast_cfg(), k.clone(), &baseline_factory());
        let swl = best_swl_sweep(&fast_cfg(), &k);
        assert!(
            swl.stats.ipc() >= base.ipc() * 0.99,
            "oracle SWL must not lose to baseline: {} vs {}",
            swl.stats.ipc(),
            base.ipc()
        );
    }
}
