//! Hot-path profiler counter tests: the stepped/skipped accounting must
//! exactly partition simulated time, and idle-cycle fast-forward must
//! actually engage on latency-bound kernels (where almost every cycle is
//! spent waiting on DRAM).

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::{run_kernel, Gpu};
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::baseline_factory;
use gpu_sim::stats::SimStats;
use gpu_sim::types::LINE_BYTES;

/// One warp chasing streaming misses: every load goes to DRAM and the
/// single warp blocks on the use, so the machine is idle for the bulk of
/// each round trip.
fn latency_bound() -> SimStats {
    let cfg = GpuConfig::default().with_sms(1).with_windows(5_000, 200_000);
    let k = KernelBuilder::new("latency-bound")
        .grid(1, 1)
        .regs_per_thread(16)
        .iterations(50)
        .load_then_use(AccessPattern::Streaming { bytes_per_access: LINE_BYTES }, 1)
        .build()
        .expect("kernel must validate");
    run_kernel(cfg, k, &baseline_factory())
}

#[test]
fn stepped_plus_skipped_equals_cycles() {
    let s = latency_bound();
    assert!(s.completed, "latency-bound kernel must drain");
    assert_eq!(
        s.events.stepped_cycles + s.events.skipped_cycles,
        s.cycles,
        "stepped + skipped must exactly partition simulated time"
    );
}

#[test]
fn skipping_engages_on_latency_bound_kernel() {
    let s = latency_bound();
    assert!(s.events.skip_jumps > 0, "fast-forward must fire at least once");
    assert!(s.events.skipped_cycles > 0);
    let frac = s.events.skipped_cycles as f64 / s.cycles as f64;
    // The skippable part of a round trip is the in-flight icnt/DRAM wait;
    // hop stages (LSU queue, outbox occupancy) still step, so the fraction
    // is well below 1 even on a pure pointer chase.
    assert!(
        frac > 0.1,
        "a single-warp pointer chase should skip a sizable fraction of its \
         DRAM round trips, got {frac:.3}"
    );
}

#[test]
fn event_counters_are_populated() {
    let s = latency_bound();
    assert!(s.events.l2_requests > 0, "streaming misses must reach L2");
    assert!(s.events.dram_services > 0, "L2 misses must reach DRAM");
    assert!(s.events.icnt_delivered > 0, "requests must cross the interconnect");
    assert!(s.events.dispatch_passes > 0);
    assert!(s.events.stepped_cycles > 0, "boundary cycles are always stepped");
}

/// Per-component accounting must close exactly: every simulated cycle, each
/// SM (and the DRAM controller) is either stepped or slept — never both,
/// never neither — whether the cycle was executed or fast-forwarded.
#[test]
fn per_sm_stepped_plus_slept_equals_cycles() {
    let cfg = GpuConfig::default().with_sms(4).with_windows(5_000, 200_000);
    let n_sms = cfg.n_sms;
    let k = KernelBuilder::new("per-sm-accounting")
        .grid(6, 2)
        .regs_per_thread(16)
        .iterations(40)
        .load_then_use(AccessPattern::Streaming { bytes_per_access: LINE_BYTES }, 1)
        .build()
        .expect("kernel must validate");
    let mut gpu = Gpu::new(cfg, k, &baseline_factory());
    let s = gpu.run();
    assert!(s.completed);
    for i in 0..n_sms {
        let (stepped, slept) = gpu.sm_activity(i);
        assert_eq!(
            stepped + slept,
            s.cycles,
            "SM {i}: stepped ({stepped}) + slept ({slept}) must equal total cycles"
        );
    }
    assert_eq!(s.events.sm_stepped_cycles + s.events.sm_slept_cycles, n_sms as u64 * s.cycles);
    assert_eq!(s.events.dram_stepped_cycles + s.events.dram_slept_cycles, s.cycles);
    // Two interconnect queues, each accounted every cycle.
    assert_eq!(s.events.icnt_stepped_cycles + s.events.icnt_slept_cycles, 2 * s.cycles);
}

/// Heterogeneous occupancy: one CTA on a four-SM machine leaves three SMs
/// with nothing to do after the dispatch pass, so the calendar must let
/// them sleep while the loaded SM keeps stepping.
#[test]
fn idle_sms_sleep_while_busy_sms_step() {
    let cfg = GpuConfig::default().with_sms(4).with_windows(5_000, 200_000);
    let n_sms = cfg.n_sms;
    let k = KernelBuilder::new("one-cta-hetero")
        .grid(1, 2)
        .regs_per_thread(16)
        .iterations(100)
        .load_then_use(AccessPattern::Streaming { bytes_per_access: LINE_BYTES }, 1)
        .alu(1)
        .build()
        .expect("kernel must validate");
    let mut gpu = Gpu::new(cfg, k, &baseline_factory());
    let s = gpu.run();
    assert!(s.completed);

    // Round-robin dispatch places the single CTA on SM 0. The kernel is
    // latency-bound, so even the loaded SM sleeps through DRAM round trips;
    // the discriminating invariant is relative: it must step at least once
    // per iteration, while the empty SMs step only on window-boundary wakes.
    let (busy_stepped, _) = gpu.sm_activity(0);
    assert!(
        busy_stepped >= 100,
        "the loaded SM must step at least once per iteration, got {busy_stepped}"
    );
    for i in 1..n_sms {
        let (stepped, slept) = gpu.sm_activity(i);
        assert!(
            slept > 9 * (s.cycles / 10),
            "empty SM {i} should sleep almost every cycle, got {stepped} stepped / {slept} slept"
        );
        assert!(
            10 * stepped < busy_stepped,
            "empty SM {i} ({stepped} stepped) must step far less than the loaded SM \
             ({busy_stepped} stepped)"
        );
    }
}

fn alu_bound_kernel() -> gpu_sim::kernel::KernelSpec {
    KernelBuilder::new("alu-bound")
        .grid(2, 8)
        .regs_per_thread(16)
        .iterations(200)
        .alu(1)
        .alu(1)
        .alu(1)
        .build()
        .expect("kernel must validate")
}

/// Compute-saturated kernels never have an idle machine, so with bursting
/// disabled the idle skipper must not fire — guarding against over-eager
/// fast-forward (with bursting the same cycles are covered by SM local
/// clocks instead; see `bursting_batches_compute_bound_cycles`).
#[test]
fn no_skipping_when_machine_is_busy() {
    let cfg = GpuConfig::default().with_sms(1).with_windows(5_000, 200_000).with_burst(false);
    let s = run_kernel(cfg, alu_bound_kernel(), &baseline_factory());
    assert!(s.completed);
    assert_eq!(s.events.stepped_cycles + s.events.skipped_cycles, s.cycles);
    let frac = s.events.skipped_cycles as f64 / s.cycles as f64;
    assert!(frac < 0.05, "ALU-saturated kernel should step nearly every cycle, got {frac:.3}");
}

/// The same saturated kernel with bursting on: the SM still simulates
/// (almost) every cycle, but on its local clock — long greedy-run spans,
/// few global steps — with identical architectural results.
#[test]
fn bursting_batches_compute_bound_cycles() {
    let cfg = GpuConfig::default().with_sms(1).with_windows(5_000, 200_000);
    let off = run_kernel(cfg.clone().with_burst(false), alu_bound_kernel(), &baseline_factory());
    let mut gpu = Gpu::new(cfg, alu_bound_kernel(), &baseline_factory());
    let on = gpu.run();
    assert!(on.completed);
    assert_eq!(on.cycles, off.cycles, "bursting must not change the cycle count");
    assert_eq!(on.instructions, off.instructions);
    // The stepped/skipped partition still closes, but the SM's cycles are
    // now covered locally: the global loop steps far less than the SM runs.
    assert_eq!(on.events.stepped_cycles + on.events.skipped_cycles, on.cycles);
    let (sm_stepped, _) = gpu.sm_activity(0);
    assert!(
        sm_stepped > 10 * on.events.stepped_cycles,
        "local clock must batch SM work: {sm_stepped} SM cycles in {} global steps",
        on.events.stepped_cycles
    );
    assert!(
        on.events.sm_burst_cycles > on.events.sm_bursts,
        "mean burst length must exceed 1 (got {} cycles / {} spans)",
        on.events.sm_burst_cycles,
        on.events.sm_bursts
    );
}
