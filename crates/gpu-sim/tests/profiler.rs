//! Hot-path profiler counter tests: the stepped/skipped accounting must
//! exactly partition simulated time, and idle-cycle fast-forward must
//! actually engage on latency-bound kernels (where almost every cycle is
//! spent waiting on DRAM).

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::baseline_factory;
use gpu_sim::stats::SimStats;
use gpu_sim::types::LINE_BYTES;

/// One warp chasing streaming misses: every load goes to DRAM and the
/// single warp blocks on the use, so the machine is idle for the bulk of
/// each round trip.
fn latency_bound() -> SimStats {
    let cfg = GpuConfig::default().with_sms(1).with_windows(5_000, 200_000);
    let k = KernelBuilder::new("latency-bound")
        .grid(1, 1)
        .regs_per_thread(16)
        .iterations(50)
        .load_then_use(AccessPattern::Streaming { bytes_per_access: LINE_BYTES }, 1)
        .build()
        .expect("kernel must validate");
    run_kernel(cfg, k, &baseline_factory())
}

#[test]
fn stepped_plus_skipped_equals_cycles() {
    let s = latency_bound();
    assert!(s.completed, "latency-bound kernel must drain");
    assert_eq!(
        s.events.stepped_cycles + s.events.skipped_cycles,
        s.cycles,
        "stepped + skipped must exactly partition simulated time"
    );
}

#[test]
fn skipping_engages_on_latency_bound_kernel() {
    let s = latency_bound();
    assert!(s.events.skip_jumps > 0, "fast-forward must fire at least once");
    assert!(s.events.skipped_cycles > 0);
    let frac = s.events.skipped_cycles as f64 / s.cycles as f64;
    // The skippable part of a round trip is the in-flight icnt/DRAM wait;
    // hop stages (LSU queue, outbox occupancy) still step, so the fraction
    // is well below 1 even on a pure pointer chase.
    assert!(
        frac > 0.1,
        "a single-warp pointer chase should skip a sizable fraction of its \
         DRAM round trips, got {frac:.3}"
    );
}

#[test]
fn event_counters_are_populated() {
    let s = latency_bound();
    assert!(s.events.l2_requests > 0, "streaming misses must reach L2");
    assert!(s.events.dram_services > 0, "L2 misses must reach DRAM");
    assert!(s.events.icnt_delivered > 0, "requests must cross the interconnect");
    assert!(s.events.dispatch_passes > 0);
    assert!(s.events.stepped_cycles > 0, "boundary cycles are always stepped");
}

/// Compute-saturated kernels never have an idle machine, so skipping must
/// not fire — guarding against over-eager fast-forward.
#[test]
fn no_skipping_when_machine_is_busy() {
    let cfg = GpuConfig::default().with_sms(1).with_windows(5_000, 200_000);
    let k = KernelBuilder::new("alu-bound")
        .grid(2, 8)
        .regs_per_thread(16)
        .iterations(200)
        .alu(1)
        .alu(1)
        .alu(1)
        .build()
        .expect("kernel must validate");
    let s = run_kernel(cfg, k, &baseline_factory());
    assert!(s.completed);
    assert_eq!(s.events.stepped_cycles + s.events.skipped_cycles, s.cycles);
    let frac = s.events.skipped_cycles as f64 / s.cycles as f64;
    assert!(frac < 0.05, "ALU-saturated kernel should step nearly every cycle, got {frac:.3}");
}
