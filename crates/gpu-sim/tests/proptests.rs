//! Randomized property tests for the simulator substrate (seeded and
//! deterministic, via the in-tree `testkit` crate).

use testkit::{check, Rng};

use gpu_sim::config::{DramConfig, GpuConfig};
use gpu_sim::dram::{Dram, TrafficClass};
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::pattern::{AccessCtx, AccessPattern};
use gpu_sim::scheduler::GtoScheduler;
use gpu_sim::trace::Tracer;
use gpu_sim::types::{LineAddr, LoadId, SmId, WarpId, LINE_BYTES};

fn any_pattern(r: &mut Rng) -> AccessPattern {
    match r.range_u32(0, 5) {
        0 => AccessPattern::ReuseWorkingSet {
            ws_bytes: r.range_u64(1, 64) * LINE_BYTES,
            shared: r.bool(),
        },
        1 => AccessPattern::Streaming { bytes_per_access: r.range_u64(1, 8) * LINE_BYTES },
        2 => AccessPattern::Tiled {
            tile_bytes: r.range_u64(1, 32) * LINE_BYTES,
            reuse: r.range_u32(1, 8),
            shared: r.bool(),
        },
        3 => AccessPattern::RandomInSet {
            ws_bytes: r.range_u64(1, 64) * LINE_BYTES,
            shared: r.bool(),
        },
        _ => AccessPattern::Divergent {
            ws_bytes: r.range_u64(8, 256) * LINE_BYTES,
            lines_per_access: r.range_u32(1, 32),
        },
    }
}

/// Every pattern is deterministic and produces 1..=32 lines per access.
#[test]
fn patterns_deterministic_and_bounded() {
    check("patterns_deterministic_and_bounded", |r| {
        let pattern = any_pattern(r);
        let ctx = AccessCtx {
            seed: 42,
            sm: SmId(1),
            global_warp: r.range_u64(0, 256),
            load: LoadId(3),
            access_index: r.range_u64(0, 10_000),
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        pattern.gen_lines(ctx, &mut a);
        pattern.gen_lines(ctx, &mut b);
        assert_eq!(&a, &b, "patterns must be stateless/deterministic");
        assert!(!a.is_empty() && a.len() <= 32, "access produced {} lines", a.len());
        // No duplicate lines within one access (post-coalescing invariant).
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len());
    });
}

/// Reuse patterns cycle with period = working-set lines; footprints stay
/// within the declared working set.
#[test]
fn reuse_pattern_period() {
    check("reuse_pattern_period", |r| {
        let lines = r.range_u64(1, 64);
        let warp = r.range_u64(0, 64);
        let p = AccessPattern::ReuseWorkingSet { ws_bytes: lines * LINE_BYTES, shared: false };
        let gen = |idx: u64| {
            let mut v = Vec::new();
            p.gen_lines(
                AccessCtx {
                    seed: 7,
                    sm: SmId(0),
                    global_warp: warp,
                    load: LoadId(0),
                    access_index: idx,
                },
                &mut v,
            );
            v[0]
        };
        assert_eq!(gen(0), gen(lines));
        let footprint: std::collections::HashSet<LineAddr> = (0..lines * 2).map(gen).collect();
        assert_eq!(footprint.len() as u64, lines);
    });
}

/// DRAM conserves requests: everything pushed eventually completes, and
/// bytes equal requests x line size.
#[test]
fn dram_conserves_requests() {
    check("dram_conserves_requests", |r| {
        let lines = r.vec(1, 100, |r| r.range_u64(0, 10_000));
        let mut d = Dram::new(DramConfig::default(), 2.0);
        for (i, &l) in lines.iter().enumerate() {
            d.push(LineAddr(l), TrafficClass::DemandRead, i as u64, 0);
        }
        let mut done = Vec::new();
        let mut out = 0usize;
        for c in 0..200_000u64 {
            done.clear();
            d.tick(c, &mut done, &Tracer::off());
            out += done.len();
            if d.pending() == 0 {
                break;
            }
        }
        assert_eq!(out, lines.len(), "all requests must complete");
        assert_eq!(d.total_bytes(), lines.len() as u64 * LINE_BYTES);
    });
}

/// GTO always returns a member of the ready set.
#[test]
fn gto_picks_from_ready_set() {
    check("gto_picks_from_ready_set", |r| {
        let ready = r.vec(0, 20, |r| (r.range_u32(0, 64), r.range_u64(0, 1000)));
        let mut s = GtoScheduler::new();
        let pairs: Vec<(WarpId, u64)> = ready.iter().map(|&(w, a)| (WarpId(w), a)).collect();
        match s.pick(&pairs) {
            Some(w) => assert!(pairs.iter().any(|&(x, _)| x == w)),
            None => assert!(pairs.is_empty()),
        }
    });
}

/// Kernel builder output always validates, and per-CTA register math is
/// consistent.
#[test]
fn built_kernels_validate() {
    check("built_kernels_validate", |r| {
        let ctas = r.range_u32(1, 64);
        let warps = r.range_u32(1, 16);
        let regs = r.range_u32(1, 64);
        let iters = r.range_u32(1, 1000);
        let k = KernelBuilder::new("prop")
            .grid(ctas, warps)
            .regs_per_thread(regs)
            .load_then_use(AccessPattern::streaming(128), 1)
            .alu(2)
            .iterations(iters)
            .build()
            .unwrap();
        assert!(k.validate().is_ok());
        assert_eq!(k.regs_per_cta(), warps * regs);
        assert_eq!(k.dyn_insts_per_warp(), k.body.len() as u64 * iters as u64);
    });
}

/// Config geometry stays valid for all L1 sweep sizes used anywhere.
#[test]
fn l1_sweep_geometry() {
    for kb in [16u64, 32, 48, 64, 96, 128, 192] {
        let cfg = GpuConfig::default().with_l1_size(kb * 1024);
        let sets = cfg.l1.n_sets();
        assert_eq!(sets as u64 * 8 * 128, kb * 1024);
    }
}
