//! Property-based tests for the simulator substrate.

use proptest::prelude::*;

use gpu_sim::config::{DramConfig, GpuConfig};
use gpu_sim::dram::{Dram, TrafficClass};
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::pattern::{AccessCtx, AccessPattern};
use gpu_sim::scheduler::GtoScheduler;
use gpu_sim::types::{LineAddr, LoadId, SmId, WarpId, LINE_BYTES};

fn any_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        (1u64..64, any::<bool>()).prop_map(|(l, s)| AccessPattern::ReuseWorkingSet {
            ws_bytes: l * LINE_BYTES,
            shared: s
        }),
        (1u64..8).prop_map(|l| AccessPattern::Streaming { bytes_per_access: l * LINE_BYTES }),
        (1u64..32, 1u32..8, any::<bool>()).prop_map(|(l, r, s)| AccessPattern::Tiled {
            tile_bytes: l * LINE_BYTES,
            reuse: r,
            shared: s
        }),
        (1u64..64, any::<bool>()).prop_map(|(l, s)| AccessPattern::RandomInSet {
            ws_bytes: l * LINE_BYTES,
            shared: s
        }),
        (8u64..256, 1u32..32).prop_map(|(l, n)| AccessPattern::Divergent {
            ws_bytes: l * LINE_BYTES,
            lines_per_access: n
        }),
    ]
}

proptest! {
    /// Every pattern is deterministic and produces 1..=32 lines per access.
    #[test]
    fn patterns_deterministic_and_bounded(
        pattern in any_pattern(),
        warp in 0u64..256,
        idx in 0u64..10_000,
    ) {
        let ctx = AccessCtx {
            seed: 42,
            sm: SmId(1),
            global_warp: warp,
            load: LoadId(3),
            access_index: idx,
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        pattern.gen_lines(ctx, &mut a);
        pattern.gen_lines(ctx, &mut b);
        prop_assert_eq!(&a, &b, "patterns must be stateless/deterministic");
        prop_assert!(!a.is_empty() && a.len() <= 32, "access produced {} lines", a.len());
        // No duplicate lines within one access (post-coalescing invariant).
        let set: std::collections::HashSet<_> = a.iter().collect();
        prop_assert_eq!(set.len(), a.len());
    }

    /// Reuse patterns cycle with period = working-set lines; footprints stay
    /// within the declared working set.
    #[test]
    fn reuse_pattern_period(lines in 1u64..64, warp in 0u64..64) {
        let p = AccessPattern::ReuseWorkingSet { ws_bytes: lines * LINE_BYTES, shared: false };
        let gen = |idx: u64| {
            let mut v = Vec::new();
            p.gen_lines(
                AccessCtx { seed: 7, sm: SmId(0), global_warp: warp, load: LoadId(0), access_index: idx },
                &mut v,
            );
            v[0]
        };
        prop_assert_eq!(gen(0), gen(lines));
        let footprint: std::collections::HashSet<LineAddr> =
            (0..lines * 2).map(gen).collect();
        prop_assert_eq!(footprint.len() as u64, lines);
    }

    /// DRAM conserves requests: everything pushed eventually completes, and
    /// bytes equal requests x line size.
    #[test]
    fn dram_conserves_requests(lines in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut d = Dram::new(DramConfig::default(), 2.0);
        for (i, &l) in lines.iter().enumerate() {
            d.push(LineAddr(l), TrafficClass::DemandRead, i as u64, 0);
        }
        let mut done = Vec::new();
        let mut out = 0usize;
        for c in 0..200_000u64 {
            done.clear();
            d.tick(c, &mut done);
            out += done.len();
            if d.pending() == 0 {
                break;
            }
        }
        prop_assert_eq!(out, lines.len(), "all requests must complete");
        prop_assert_eq!(d.total_bytes(), lines.len() as u64 * LINE_BYTES);
    }

    /// GTO always returns a member of the ready set.
    #[test]
    fn gto_picks_from_ready_set(ready in proptest::collection::vec((0u32..64, 0u64..1000), 0..20)) {
        let mut s = GtoScheduler::new();
        let pairs: Vec<(WarpId, u64)> = ready.iter().map(|&(w, a)| (WarpId(w), a)).collect();
        match s.pick(pairs.iter().copied()) {
            Some(w) => prop_assert!(pairs.iter().any(|&(x, _)| x == w)),
            None => prop_assert!(pairs.is_empty()),
        }
    }

    /// Kernel builder output always validates, and per-CTA register math is
    /// consistent.
    #[test]
    fn built_kernels_validate(
        ctas in 1u32..64,
        warps in 1u32..16,
        regs in 1u32..64,
        iters in 1u32..1000,
    ) {
        let k = KernelBuilder::new("prop")
            .grid(ctas, warps)
            .regs_per_thread(regs)
            .load_then_use(AccessPattern::streaming(128), 1)
            .alu(2)
            .iterations(iters)
            .build()
            .unwrap();
        prop_assert!(k.validate().is_ok());
        prop_assert_eq!(k.regs_per_cta(), warps * regs);
        prop_assert_eq!(k.dyn_insts_per_warp(), k.body.len() as u64 * iters as u64);
    }

    /// Config geometry stays valid for all L1 sweep sizes used anywhere.
    #[test]
    fn l1_sweep_geometry(kb in prop::sample::select(vec![16u64, 32, 48, 64, 96, 128, 192])) {
        let cfg = GpuConfig::default().with_l1_size(kb * 1024);
        let sets = cfg.l1.n_sets();
        prop_assert_eq!(sets as u64 * 8 * 128, kb * 1024);
    }
}
