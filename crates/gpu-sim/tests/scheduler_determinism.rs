//! Mixed-policy determinism tests for the component-calendar scheduler.
//!
//! The per-component event-driven `Gpu::step` must be bit-identical to the
//! exhaustive every-component sweep it replaced. The golden digests in
//! `golden.rs` lock one kernel at one SM count; these tests lock the same
//! digest set at a *second* SM count, because the calendar's bookkeeping
//! (per-SM due cycles, wake ordering at window boundaries, CTA dispatch
//! round-robin) is exactly the machinery that could drift with the number
//! of components.

use baselines::{cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::kernel::{KernelBuilder, KernelSpec};
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::stats::SimStats;
use gpu_sim::types::LINE_BYTES;
use linebacker::{linebacker_factory, LbConfig};

fn config(n_sms: u32) -> GpuConfig {
    GpuConfig::default().with_sms(n_sms).with_windows(5_000, 60_000)
}

/// Same kernel family as `golden.rs`: reuse + streaming mix, grid scaled
/// with the SM count so per-SM occupancy is constant.
fn kernel(n_sms: u32) -> KernelSpec {
    KernelBuilder::new("golden")
        .grid(4 * n_sms, 8)
        .regs_per_thread(24)
        .iterations(60)
        .alu(3)
        .load_then_use(
            AccessPattern::ReuseWorkingSet { ws_bytes: 16 * LINE_BYTES, shared: false },
            2,
        )
        .load_then_use(AccessPattern::ReuseWorkingSet { ws_bytes: 16 * 1024, shared: true }, 1)
        .load(AccessPattern::Streaming { bytes_per_access: LINE_BYTES })
        .alu(2)
        .build()
        .expect("kernel must validate")
}

/// Same digest shape as `golden.rs`, so a failure names every drifted field.
fn digest(s: &SimStats) -> String {
    format!(
        "cycles={} insts={} l1_hits={} miss_cold={} miss_2c={} bypasses={} \
         reg_hits={} stores={} l2_hits={} l2_misses={} rf_reads={} rf_writes={} \
         mshr_stalls={} dram_demand={} dram_store={} dram_backup={} dram_restore={} \
         completed={}",
        s.cycles,
        s.instructions,
        s.l1_hits,
        s.miss_cold,
        s.miss_2c,
        s.bypasses,
        s.reg_hits,
        s.stores,
        s.l2_hits,
        s.l2_misses,
        s.rf_reads,
        s.rf_writes,
        s.mshr_stalls,
        s.dram_bytes[0],
        s.dram_bytes[1],
        s.dram_bytes[2],
        s.dram_bytes[3],
        s.completed,
    )
}

fn run(n_sms: u32, factory: &PolicyFactory<'_>) -> String {
    let s = run_kernel(config(n_sms), kernel(n_sms), factory);
    assert_eq!(
        s.events.stepped_cycles + s.events.skipped_cycles,
        s.cycles,
        "profiler partition must hold at n_sms={n_sms}"
    );
    digest(&s)
}

/// Like [`run`] but with the decoded access-descriptor cache disabled:
/// every access goes through the original `gen_lines` path.
fn run_uncached(n_sms: u32, factory: &PolicyFactory<'_>) -> String {
    let s = run_kernel(config(n_sms).with_desc_cache(false), kernel(n_sms), factory);
    assert_eq!(s.events.desc_hits, 0, "disabled cache must record no hits");
    assert_eq!(s.events.desc_misses, 0, "disabled cache must record no decodes");
    digest(&s)
}

/// Prints the digests for capture; run with
/// `cargo test -p gpu-sim --test scheduler_determinism -- --ignored --nocapture`.
#[test]
#[ignore = "digest capture helper, not a regression test"]
fn capture_digests() {
    for sms in [2, 4] {
        println!("sms={sms} base {}", run(sms, &baseline_factory()));
        println!("sms={sms} pcal {}", run(sms, &pcal_factory()));
        println!("sms={sms} cerf {}", run(sms, &cerf_factory()));
        println!("sms={sms} lb   {}", run(sms, &linebacker_factory(LbConfig::default())));
    }
}

#[test]
fn mixed_policy_digests_at_two_sms() {
    let baseline_2 = run(2, &baseline_factory());
    let pcal_2 = run(2, &pcal_factory());
    let cerf_2 = run(2, &cerf_factory());
    let lb_2 = run(2, &linebacker_factory(LbConfig::default()));
    // n_sms = 2 must agree with the literals locked in `golden.rs`.
    assert_eq!(
        baseline_2,
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(
        pcal_2,
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(
        cerf_2,
        "cycles=27355 insts=38400 l1_hits=1115 miss_cold=5225 miss_2c=924 bypasses=0 reg_hits=4256 stores=0 l2_hits=78 l2_misses=5581 rf_reads=82171 rf_writes=42738 mshr_stalls=11274 dram_demand=714368 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(
        lb_2,
        "cycles=40199 insts=38400 l1_hits=1793 miss_cold=5223 miss_2c=2485 bypasses=0 reg_hits=2019 stores=0 l2_hits=272 l2_misses=6709 rf_reads=78819 rf_writes=39717 mshr_stalls=0 dram_demand=858752 dram_store=0 dram_backup=98304 dram_restore=98304 completed=true",
    );
    // n_sms = 4 digests: captured from the pre-calendar scheduler (PR 2
    // code) and locked; the calendar must reproduce them bit-for-bit.
    assert_eq!(run(4, &baseline_factory()), SMS4_BASELINE);
    assert_eq!(run(4, &pcal_factory()), SMS4_PCAL);
    assert_eq!(run(4, &cerf_factory()), SMS4_CERF);
    assert_eq!(run(4, &linebacker_factory(LbConfig::default())), SMS4_LB);
}

/// The descriptor cache must be invisible in every counter: with it
/// disabled, all four policies must still reproduce the locked digests at
/// both SM counts (the cache-on runs above already match the same
/// literals, so this pins cache-on == cache-off == golden).
#[test]
fn desc_cache_off_matches_golden_digests() {
    assert_eq!(
        run_uncached(2, &baseline_factory()),
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(
        run_uncached(2, &pcal_factory()),
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(
        run_uncached(2, &cerf_factory()),
        "cycles=27355 insts=38400 l1_hits=1115 miss_cold=5225 miss_2c=924 bypasses=0 reg_hits=4256 stores=0 l2_hits=78 l2_misses=5581 rf_reads=82171 rf_writes=42738 mshr_stalls=11274 dram_demand=714368 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(
        run_uncached(2, &linebacker_factory(LbConfig::default())),
        "cycles=40199 insts=38400 l1_hits=1793 miss_cold=5223 miss_2c=2485 bypasses=0 reg_hits=2019 stores=0 l2_hits=272 l2_misses=6709 rf_reads=78819 rf_writes=39717 mshr_stalls=0 dram_demand=858752 dram_store=0 dram_backup=98304 dram_restore=98304 completed=true",
    );
    assert_eq!(run_uncached(4, &baseline_factory()), SMS4_BASELINE);
    assert_eq!(run_uncached(4, &pcal_factory()), SMS4_PCAL);
    assert_eq!(run_uncached(4, &cerf_factory()), SMS4_CERF);
    assert_eq!(run_uncached(4, &linebacker_factory(LbConfig::default())), SMS4_LB);
}

/// SoA warp-slab slot reuse: an oversubscribed grid forces CTAs to retire
/// and fresh CTAs to relaunch into the *same* warp slots mid-run. The
/// relaunch must fully reset every slab column and invalidate the slot's
/// descriptor row, so the run is (a) deterministic and (b) byte-identical
/// with the descriptor cache off — any stale column or stale descriptor
/// surviving a reap would diverge one of the two.
#[test]
fn slot_reuse_after_cta_reap_is_cache_invariant() {
    // 24 CTAs on 2 SMs: far more than fit at once, so slots recycle.
    let oversub = || {
        KernelBuilder::new("oversub")
            .grid(24, 8)
            .regs_per_thread(24)
            .iterations(40)
            .alu(2)
            .load_then_use(
                AccessPattern::ReuseWorkingSet { ws_bytes: 16 * LINE_BYTES, shared: false },
                1,
            )
            .load(AccessPattern::Streaming { bytes_per_access: LINE_BYTES })
            .build()
            .expect("kernel must validate")
    };
    let cached_a = run_kernel(config(2), oversub(), &baseline_factory());
    let cached_b = run_kernel(config(2), oversub(), &baseline_factory());
    let uncached = run_kernel(config(2).with_desc_cache(false), oversub(), &baseline_factory());
    assert!(cached_a.completed, "oversubscribed grid must drain");
    assert_eq!(digest(&cached_a), digest(&cached_b), "slot reuse must be deterministic");
    assert_eq!(digest(&cached_a), digest(&uncached), "slot reuse must be cache-invariant");
    // Relaunched warps decode fresh descriptors: strictly more decodes
    // than the warp slots of a single residency.
    assert!(cached_a.events.desc_misses > 0);
    assert!(cached_a.events.desc_hits > cached_a.events.desc_misses);
}

/// Completion-ring overflow: an L1 hit latency beyond the 64-cycle ring
/// span forces every local completion through the `comp_overflow` heap
/// backstop instead of a ring slot. The run must still drain, stay
/// deterministic, and stay descriptor-cache-invariant — the overflow path
/// delivers the same completions on the same cycles as the ring.
#[test]
fn completion_ring_overflow_path_is_exact() {
    let slow_l1 = |cached: bool| {
        let mut cfg = config(2).with_desc_cache(cached);
        cfg.l1_hit_latency = 100;
        run_kernel(cfg, kernel(2), &baseline_factory())
    };
    let a = slow_l1(true);
    let b = slow_l1(true);
    let uncached = slow_l1(false);
    assert!(a.completed, "slow-hit run must drain through the overflow heap");
    assert_eq!(digest(&a), digest(&b), "overflow path must be deterministic");
    assert_eq!(digest(&a), digest(&uncached), "overflow path must be cache-invariant");
    // Sanity: the stretched hit latency really slows the machine down
    // relative to the pinned default-latency digest for this SM count.
    assert!(a.cycles > 24_000, "latency 100 should cost cycles (got {})", a.cycles);
}

// Digests captured on the pre-change (PR 2) simulator via `capture_digests`.
const SMS4_BASELINE: &str = "cycles=48371 insts=76800 l1_hits=1667 miss_cold=10487 miss_2c=10886 bypasses=0 reg_hits=0 stores=0 l2_hits=613 l2_misses=16746 rf_reads=153600 rf_writes=76800 mshr_stalls=0 dram_demand=2143488 dram_store=0 dram_backup=0 dram_restore=0 completed=true";
const SMS4_PCAL: &str = "cycles=48371 insts=76800 l1_hits=1667 miss_cold=10487 miss_2c=10886 bypasses=0 reg_hits=0 stores=0 l2_hits=613 l2_misses=16746 rf_reads=153600 rf_writes=76800 mshr_stalls=0 dram_demand=2143488 dram_store=0 dram_backup=0 dram_restore=0 completed=true";
const SMS4_CERF: &str = "cycles=27181 insts=76800 l1_hits=1895 miss_cold=10500 miss_2c=1817 bypasses=0 reg_hits=8828 stores=0 l2_hits=93 l2_misses=11079 rf_reads=164323 rf_writes=85442 mshr_stalls=19656 dram_demand=1418112 dram_store=0 dram_backup=0 dram_restore=0 completed=true";
const SMS4_LB: &str = "cycles=41652 insts=76800 l1_hits=3301 miss_cold=10487 miss_2c=5017 bypasses=0 reg_hits=4235 stores=0 l2_hits=489 l2_misses=13369 rf_reads=157835 rf_writes=79523 mshr_stalls=0 dram_demand=1711232 dram_store=0 dram_backup=196608 dram_restore=196608 completed=true";
