//! Golden-stats regression tests.
//!
//! One fixed kernel is simulated under the baseline, PCAL, CERF and
//! Linebacker policies and the resulting [`SimStats`] are locked against
//! literal digests. The simulator is fully deterministic, so any digest
//! drift means a functional change to the core — exactly what the
//! hot-path refactors (flat tag array, dense stats, idle-cycle skipping)
//! must not cause. Update the literals only when a change is *meant* to
//! alter simulation results, and say so in the commit message.

use baselines::{cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::kernel::{KernelBuilder, KernelSpec};
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::baseline_factory;
use gpu_sim::stats::SimStats;
use gpu_sim::types::LINE_BYTES;
use linebacker::{linebacker_factory, LbConfig};

fn golden_config() -> GpuConfig {
    GpuConfig::default().with_sms(2).with_windows(5_000, 60_000)
}

/// A mixed reuse + streaming kernel shaped like the paper's
/// cache-sensitive apps: a small per-warp reused working set (16 lines,
/// wraps every 16 accesses, thrashes L1 in aggregate across many warps) so
/// the victim-cache policies engage, plus a streaming load to exercise
/// bypass decisions.
fn golden_kernel(n_sms: u32) -> KernelSpec {
    KernelBuilder::new("golden")
        .grid(4 * n_sms, 8)
        .regs_per_thread(24)
        .iterations(60)
        .alu(3)
        .load_then_use(
            AccessPattern::ReuseWorkingSet { ws_bytes: 16 * LINE_BYTES, shared: false },
            2,
        )
        .load_then_use(AccessPattern::ReuseWorkingSet { ws_bytes: 16 * 1024, shared: true }, 1)
        .load(AccessPattern::Streaming { bytes_per_access: LINE_BYTES })
        .alu(2)
        .build()
        .expect("golden kernel must validate")
}

/// Flattens the scalar counters a policy can influence into one string, so
/// a failure shows every divergent field at once.
fn digest(s: &SimStats) -> String {
    format!(
        "cycles={} insts={} l1_hits={} miss_cold={} miss_2c={} bypasses={} \
         reg_hits={} stores={} l2_hits={} l2_misses={} rf_reads={} rf_writes={} \
         mshr_stalls={} dram_demand={} dram_store={} dram_backup={} dram_restore={} \
         completed={}",
        s.cycles,
        s.instructions,
        s.l1_hits,
        s.miss_cold,
        s.miss_2c,
        s.bypasses,
        s.reg_hits,
        s.stores,
        s.l2_hits,
        s.l2_misses,
        s.rf_reads,
        s.rf_writes,
        s.mshr_stalls,
        s.dram_bytes[0],
        s.dram_bytes[1],
        s.dram_bytes[2],
        s.dram_bytes[3],
        s.completed,
    )
}

fn run(factory: &gpu_sim::policy::PolicyFactory<'_>) -> SimStats {
    let cfg = golden_config();
    let kernel = golden_kernel(cfg.n_sms);
    run_kernel(cfg, kernel, factory)
}

#[test]
fn golden_baseline() {
    let s = run(&baseline_factory());
    assert_eq!(
        digest(&s),
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    // The profiler invariant must hold on every run.
    assert_eq!(s.events.stepped_cycles + s.events.skipped_cycles, s.cycles);
}

#[test]
fn golden_pcal() {
    let s = run(&pcal_factory());
    assert_eq!(
        digest(&s),
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(s.events.stepped_cycles + s.events.skipped_cycles, s.cycles);
}

#[test]
fn golden_cerf() {
    let s = run(&cerf_factory());
    assert_eq!(
        digest(&s),
        "cycles=27355 insts=38400 l1_hits=1115 miss_cold=5225 miss_2c=924 bypasses=0 reg_hits=4256 stores=0 l2_hits=78 l2_misses=5581 rf_reads=82171 rf_writes=42738 mshr_stalls=11274 dram_demand=714368 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
    assert_eq!(s.events.stepped_cycles + s.events.skipped_cycles, s.cycles);
}

#[test]
fn golden_linebacker() {
    let s = run(&linebacker_factory(LbConfig::default()));
    assert_eq!(
        digest(&s),
        "cycles=40199 insts=38400 l1_hits=1793 miss_cold=5223 miss_2c=2485 bypasses=0 reg_hits=2019 stores=0 l2_hits=272 l2_misses=6709 rf_reads=78819 rf_writes=39717 mshr_stalls=0 dram_demand=858752 dram_store=0 dram_backup=98304 dram_restore=98304 completed=true",
    );
    assert_eq!(s.events.stepped_cycles + s.events.skipped_cycles, s.cycles);
}

/// The digests above are scalars; this locks the per-load map shape too
/// (key set + access counts), guarding the dense-to-map materialization.
#[test]
fn golden_per_load_shape() {
    let s = run(&baseline_factory());
    let mut loads: Vec<(u32, u64, u64)> =
        s.per_load.iter().map(|(&id, l)| (id, l.accesses, l.l1_hits + l.reg_hits)).collect();
    loads.sort_unstable();
    let shape = loads.iter().map(|(i, a, h)| format!("{i}:{a}:{h}")).collect::<Vec<_>>().join(" ");
    assert_eq!(shape, "0:3840:2 1:3840:1000 2:3840:0");
}
