//! The memory/scheduling policy extension point.
//!
//! Every architecture the paper evaluates — the GTO baseline, Best-SWL, PCAL,
//! CERF, and Linebacker itself — is an implementation of [`SmPolicy`]. The
//! simulator owns the pipeline, caches and DRAM; the policy observes cache
//! events, may service misses from register-file victim storage, and may
//! throttle CTAs at window boundaries.

use crate::config::GpuConfig;
use crate::kernel::KernelSpec;
use crate::regfile::RegFile;
use crate::stats::SimStats;
use crate::types::{CtaId, Cycle, LineAddr, LoadId, Pc, SmId};

/// Mutable simulator state a policy may touch during a hook.
///
/// Policies use `regfile` to model victim-line register reads/writes (which
/// is where CERF's and Linebacker's extra bank conflicts come from) and
/// `stats.policy_extra_pj` to charge energy for their own structures.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Current cycle.
    pub cycle: Cycle,
    /// SM this policy instance belongs to.
    pub sm: SmId,
    /// The SM's register file.
    pub regfile: &'a mut RegFile,
    /// The SM's statistics.
    pub stats: &'a mut SimStats,
}

/// Decision taken before an L1 lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreAccess {
    /// Access the L1 normally.
    Normal,
    /// Skip L1 and go straight to L2/DRAM (PCAL-style bypass).
    Bypass,
}

/// How an L1 miss is serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissService {
    /// Forward to L2/DRAM as usual.
    ToL2,
    /// Serviced from register-file victim storage ("Reg hit"): the data is
    /// moved register-to-register; the line is *not* refilled into L1.
    VictimHit {
        /// Latency beyond the L1 hit latency (VTT partition searches,
        /// arbitration, bank conflicts).
        extra_latency: u32,
    },
}

/// Per-window information passed to [`SmPolicy::on_window`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowInfo {
    /// Zero-based window index since kernel launch.
    pub index: u32,
    /// Window length in cycles.
    pub cycles: u64,
    /// Warp instructions issued by this SM during the window.
    pub instructions: u64,
    /// IPC of this window.
    pub ipc: f64,
    /// CTAs currently active (schedulable) on this SM.
    pub active_ctas: u32,
    /// CTAs resident but deactivated (throttled).
    pub inactive_ctas: u32,
}

/// Per-SM architecture policy. All hooks default to baseline (no-op)
/// behaviour, so the GTO baseline is simply the empty implementation.
pub trait SmPolicy {
    /// Short architecture name ("baseline", "best-swl", "pcal", "cerf",
    /// "linebacker", ...).
    fn name(&self) -> &'static str;

    /// Decide whether this access bypasses L1. Called once per line request.
    /// `warp` is the issuing warp's SM-local id (PCAL's token scheme is
    /// per-warp).
    fn pre_access(
        &mut self,
        _warp: u32,
        _pc: Pc,
        _load: LoadId,
        _line: LineAddr,
        _ctx: &mut PolicyCtx<'_>,
    ) -> PreAccess {
        PreAccess::Normal
    }

    /// An L1 hit occurred for `line` (already counted in stats).
    fn on_hit(&mut self, _pc: Pc, _load: LoadId, _line: LineAddr, _ctx: &mut PolicyCtx<'_>) {}

    /// An L1 miss occurred; the policy may service it from victim storage.
    fn on_miss(
        &mut self,
        _pc: Pc,
        _load: LoadId,
        _line: LineAddr,
        _ctx: &mut PolicyCtx<'_>,
    ) -> MissService {
        MissService::ToL2
    }

    /// A fill evicted `victim` (with its per-line hashed-PC metadata).
    /// Returns `true` when the policy preserved the victim's *data* in
    /// register-file victim space (tag-only bookkeeping does not count) —
    /// surfaced in the event trace as `Evict { preserved }`.
    fn on_evict(&mut self, _victim: LineAddr, _victim_hpc: u8, _ctx: &mut PolicyCtx<'_>) -> bool {
        false
    }

    /// A store touched `line` (write-evict/write-no-allocate is already
    /// applied to L1; policies invalidate any preserved copy so victim data
    /// is never dirty).
    fn on_store(&mut self, _line: LineAddr, _ctx: &mut PolicyCtx<'_>) {}

    /// Window boundary. Returns the desired number of active CTAs for the
    /// next window (`None` = no limit). The simulator enforces the limit by
    /// deactivating the highest-id active CTAs or re-activating inactive
    /// ones.
    fn on_window(&mut self, _info: &WindowInfo, _ctx: &mut PolicyCtx<'_>) -> Option<u32> {
        None
    }

    /// A CTA was launched with its first register number (the paper's FRN).
    fn on_cta_launch(
        &mut self,
        _cta: CtaId,
        _first_reg: crate::types::RegNum,
        _ctx: &mut PolicyCtx<'_>,
    ) {
    }

    /// A CTA is being deactivated; its registers will be backed up off-chip.
    /// Called before the backup traffic is injected.
    fn on_cta_deactivate(&mut self, _cta: CtaId, _ctx: &mut PolicyCtx<'_>) {}

    /// The register backup of `cta` has fully drained to memory (the C bit
    /// of the Per-CTA Info entry is now set): the freed registers may be
    /// claimed as victim space.
    fn on_backup_complete(&mut self, _cta: CtaId, _ctx: &mut PolicyCtx<'_>) {}

    /// A CTA is about to be re-activated; any victim partitions occupying
    /// its registers must be released before the restore begins.
    fn on_cta_activate(&mut self, _cta: CtaId, _ctx: &mut PolicyCtx<'_>) {}

    /// A CTA completed and its registers were freed.
    fn on_cta_complete(&mut self, _cta: CtaId, _ctx: &mut PolicyCtx<'_>) {}

    /// Warp registers currently used as victim storage (for RF samples).
    fn victim_space_regs(&self) -> u32 {
        0
    }

    /// Monitoring periods consumed before locality classification converged
    /// (Figure 9's parenthesized counts). Zero for policies that don't
    /// monitor.
    fn monitor_periods(&self) -> u32 {
        0
    }

    /// One-line human-readable summary of internal state (tokens, limits,
    /// partition counts) for experiment logs. Empty by default.
    fn debug_state(&self) -> String {
        String::new()
    }
}

/// The unmodified GTO baseline: every hook is default.
#[derive(Debug, Default, Clone)]
pub struct NullPolicy;

impl SmPolicy for NullPolicy {
    fn name(&self) -> &'static str {
        "baseline"
    }
}

/// Factory producing one policy instance per SM.
///
/// Factories are `Send + Sync` by construction: the experiment harness
/// executes independent simulations on a worker pool, and every thread must
/// be able to instantiate policies concurrently. A factory therefore only
/// captures immutable configuration (plain data), never shared mutable
/// state; each call returns a fresh, thread-local [`SmPolicy`] instance.
pub type PolicyFactory<'a> =
    dyn Fn(SmId, &GpuConfig, &KernelSpec) -> Box<dyn SmPolicy> + Send + Sync + 'a;

/// Convenience: a factory for the baseline.
pub fn baseline_factory() -> Box<PolicyFactory<'static>> {
    Box::new(|_, _, _| Box::new(NullPolicy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_policy_defaults() {
        let mut p = NullPolicy;
        let mut rf = RegFile::new(16, 4, 4);
        let mut stats = SimStats::default();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        assert_eq!(p.name(), "baseline");
        assert_eq!(p.pre_access(0, Pc(0), LoadId(0), LineAddr(0), &mut ctx), PreAccess::Normal);
        assert_eq!(p.on_miss(Pc(0), LoadId(0), LineAddr(0), &mut ctx), MissService::ToL2);
        let info = WindowInfo {
            index: 0,
            cycles: 100,
            instructions: 50,
            ipc: 0.5,
            active_ctas: 4,
            inactive_ctas: 0,
        };
        assert_eq!(p.on_window(&info, &mut ctx), None);
        assert_eq!(p.victim_space_regs(), 0);
        assert_eq!(p.monitor_periods(), 0);
    }

    #[test]
    fn factory_builds_baseline() {
        let f = baseline_factory();
        let cfg = GpuConfig::default();
        let k = crate::kernel::KernelBuilder::new("k").alu(1).build().unwrap();
        let p = f(SmId(0), &cfg, &k);
        assert_eq!(p.name(), "baseline");
    }
}
