//! Off-chip DRAM model: aggregate-bandwidth bus plus per-bank timing state.
//!
//! The model is deliberately simpler than a full FR-FCFS controller but keeps
//! the two properties the evaluation depends on: (1) a hard aggregate
//! bandwidth ceiling (352.5 GB/s in Table 1), which makes memory-intensive
//! kernels contend, and (2) row-buffer/bank-timing effects (RCD/RP/CL/RAS)
//! that penalize scattered accesses.

use std::collections::VecDeque;

use crate::config::DramConfig;
use crate::types::{Cycle, LineAddr, LINE_BYTES};

/// Traffic classes, for Figure 17's split of demand data vs. Linebacker's
/// register backup/restore overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Demand reads (L2 miss fills).
    DemandRead,
    /// Write-through / write-evict store traffic.
    StoreWrite,
    /// Linebacker register backup (CTA deactivation) writes.
    RegBackup,
    /// Linebacker register restore (CTA re-activation) reads.
    RegRestore,
}

/// An in-flight DRAM request.
#[derive(Debug, Clone)]
struct DramReq {
    line: LineAddr,
    class: TrafficClass,
    /// Opaque completion token delivered back to the issuer.
    token: u64,
    /// Earliest cycle the request may be serviced (arrival time).
    ready_at: Cycle,
}

/// A completed DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramDone {
    /// The requested line.
    pub line: LineAddr,
    /// Traffic class of the request.
    pub class: TrafficClass,
    /// The issuer's completion token.
    pub token: u64,
}

/// Token-bucket burst cap, in lines (bounds how much unused bandwidth can
/// accumulate during idle periods).
const BUDGET_CAP: f64 = 8.0;

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// Row currently open (None = precharged).
    open_row: Option<u64>,
    /// Bank busy until this cycle.
    busy_until: Cycle,
}

/// The DRAM subsystem.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Latency-sensitive requests (demand reads, register restores).
    queue: VecDeque<DramReq>,
    /// Latency-insensitive writes (stores, register backups); serviced with
    /// leftover bandwidth after reads (read-priority scheduling).
    wqueue: VecDeque<DramReq>,
    banks: Vec<BankState>,
    /// Fractional budget of lines that may start service this cycle
    /// (token-bucket bandwidth model).
    line_budget: f64,
    lines_per_cycle: f64,
    /// Completion heap keyed by finish cycle (kept sorted; small).
    in_service: Vec<(Cycle, DramDone)>,
    /// Bytes transferred per class.
    bytes: [u64; 4],
    row_hits: u64,
    row_misses: u64,
}

impl Dram {
    /// Creates the DRAM model. `lines_per_cycle` is the aggregate bandwidth
    /// expressed in 128 B lines per core cycle.
    pub fn new(cfg: DramConfig, lines_per_cycle: f64) -> Self {
        assert!(lines_per_cycle > 0.0);
        let banks = cfg.banks as usize;
        Dram {
            cfg,
            queue: VecDeque::new(),
            wqueue: VecDeque::new(),
            banks: vec![BankState::default(); banks],
            line_budget: 0.0,
            lines_per_cycle,
            in_service: Vec::new(),
            bytes: [0; 4],
            row_hits: 0,
            row_misses: 0,
        }
    }

    fn class_idx(class: TrafficClass) -> usize {
        match class {
            TrafficClass::DemandRead => 0,
            TrafficClass::StoreWrite => 1,
            TrafficClass::RegBackup => 2,
            TrafficClass::RegRestore => 3,
        }
    }

    /// Enqueues a one-line request arriving at `cycle`. Reads and register
    /// restores go to the latency-sensitive queue; stores and register
    /// backups to the write queue.
    pub fn push(&mut self, line: LineAddr, class: TrafficClass, token: u64, cycle: Cycle) {
        let req = DramReq { line, class, token, ready_at: cycle };
        match class {
            TrafficClass::DemandRead | TrafficClass::RegRestore => self.queue.push_back(req),
            TrafficClass::StoreWrite | TrafficClass::RegBackup => self.wqueue.push_back(req),
        }
    }

    /// Number of requests waiting or in service.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.wqueue.len() + self.in_service.len()
    }

    /// Writes waiting (store-buffer backpressure signal).
    pub fn write_backlog(&self) -> usize {
        self.wqueue.len()
    }

    /// Both request queues are empty (requests may still be in service).
    /// While true, `tick` makes no scheduling decisions — the only per-cycle
    /// state change is the token-bucket refill.
    pub fn queues_empty(&self) -> bool {
        self.queue.is_empty() && self.wqueue.is_empty()
    }

    /// Earliest finish cycle among in-service requests, if any.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.in_service.iter().map(|&(t, _)| t).min()
    }

    /// Replays `n` idle cycles of token-bucket refill in one call, exactly
    /// as `n` consecutive `tick`s with empty queues would have.
    ///
    /// The refill is repeated addition of an `f64` (not associative), so a
    /// closed form would not be bit-identical; instead the loop replays each
    /// step and exits early once the bucket saturates at exactly the cap
    /// (after which further refills are a fixpoint).
    pub fn skip_idle_cycles(&mut self, n: u64) {
        debug_assert!(self.queues_empty(), "skip with pending requests would lose scheduling");
        for _ in 0..n {
            self.line_budget = (self.line_budget + self.lines_per_cycle).min(BUDGET_CAP);
            if self.line_budget == BUDGET_CAP {
                break;
            }
        }
    }

    /// Advances the model one core cycle; returns requests completing now.
    pub fn tick(&mut self, cycle: Cycle, done: &mut Vec<DramDone>) {
        // Refill the bandwidth token bucket (cap prevents unbounded burst).
        self.line_budget = (self.line_budget + self.lines_per_cycle).min(BUDGET_CAP);

        // FR-FCFS over a bounded reorder window with read priority: prefer
        // row-hit reads to open rows (first-ready), then the oldest
        // serviceable read; leftover bandwidth drains the write queue. Reads
        // never starve behind stores; stores stall the cores through the
        // SM-side store buffer when they outrun DRAM bandwidth.
        const WINDOW: usize = 64;
        while self.line_budget >= 1.0 {
            if let Some(i) = Self::frfcfs_pick(&self.queue, &self.banks, &self.cfg, cycle, WINDOW) {
                let req = self.queue.remove(i).expect("index in bounds");
                let bank_idx = (req.line.0 % self.banks.len() as u64) as usize;
                self.start_service(req, bank_idx, cycle);
                continue;
            }
            if let Some(i) = Self::frfcfs_pick(&self.wqueue, &self.banks, &self.cfg, cycle, WINDOW)
            {
                let req = self.wqueue.remove(i).expect("index in bounds");
                let bank_idx = (req.line.0 % self.banks.len() as u64) as usize;
                self.start_service(req, bank_idx, cycle);
                continue;
            }
            break;
        }

        // Collect completions.
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].0 <= cycle {
                let (_, d) = self.in_service.swap_remove(i);
                done.push(d);
            } else {
                i += 1;
            }
        }
    }

    /// FR-FCFS selection over the first `window` entries of `queue`: the
    /// oldest row-hit on a free bank if any, else the oldest serviceable
    /// request.
    fn frfcfs_pick(
        queue: &VecDeque<DramReq>,
        banks: &[BankState],
        cfg: &DramConfig,
        cycle: Cycle,
        window: usize,
    ) -> Option<usize> {
        let n = queue.len().min(window);
        let mut pick: Option<usize> = None;
        for (i, r) in queue.iter().enumerate().take(n) {
            if r.ready_at > cycle {
                continue;
            }
            let bi = (r.line.0 % banks.len() as u64) as usize;
            if banks[bi].busy_until > cycle {
                continue;
            }
            let row = r.line.0 * LINE_BYTES / cfg.row_bytes;
            if banks[bi].open_row == Some(row) {
                return Some(i);
            }
            if pick.is_none() {
                pick = Some(i);
            }
        }
        pick
    }

    fn start_service(&mut self, req: DramReq, bank_idx: usize, cycle: Cycle) {
        let row = req.line.0 * LINE_BYTES / self.cfg.row_bytes;
        let bank = &mut self.banks[bank_idx];
        // Bank occupancy is the data-burst time; row misses pay extra
        // *latency* (precharge + activate + CAS) but banks overlap, so
        // aggregate throughput is governed by the bandwidth token bucket.
        const BURST: u64 = 4;
        let latency = if bank.open_row == Some(row) {
            self.row_hits += 1;
            self.cfg.t_cl
        } else {
            self.row_misses += 1;
            bank.open_row = Some(row);
            self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl
        };
        bank.busy_until = cycle + BURST;
        self.line_budget -= 1.0;
        self.bytes[Self::class_idx(req.class)] += LINE_BYTES;
        let finish = cycle + latency as u64;
        self.in_service
            .push((finish, DramDone { line: req.line, class: req.class, token: req.token }));
    }

    /// Bytes transferred so far, per traffic class
    /// (demand-read, store-write, reg-backup, reg-restore).
    pub fn traffic_bytes(&self) -> [u64; 4] {
        self.bytes
    }

    /// Total bytes over all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// (row hits, row misses) since construction.
    pub fn row_stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default(), 2.0)
    }

    fn run_until_done(d: &mut Dram, start: Cycle, max: u64) -> Vec<(Cycle, DramDone)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for c in start..start + max {
            buf.clear();
            d.tick(c, &mut buf);
            for x in &buf {
                out.push((c, *x));
            }
            if d.pending() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn single_request_completes() {
        let mut d = dram();
        d.push(LineAddr(5), TrafficClass::DemandRead, 77, 0);
        let done = run_until_done(&mut d, 0, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.token, 77);
        assert_eq!(done[0].1.line, LineAddr(5));
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = dram();
        // Same row, same bank: second is a row hit.
        d.push(LineAddr(0), TrafficClass::DemandRead, 0, 0);
        let t1 = run_until_done(&mut d, 0, 1000)[0].0;
        d.push(LineAddr(0), TrafficClass::DemandRead, 1, t1 + 100);
        let t2 = run_until_done(&mut d, t1 + 100, 1000)[0].0 - (t1 + 100);
        assert!(t2 < t1 + 1, "row hit latency {t2} should beat cold {t1}");
        assert_eq!(d.row_stats(), (1, 1));
    }

    #[test]
    fn bandwidth_bounds_throughput() {
        let mut d = Dram::new(DramConfig::default(), 0.5); // 1 line per 2 cycles
        for i in 0..100 {
            d.push(LineAddr(i * 64), TrafficClass::DemandRead, i, 0);
        }
        let done = run_until_done(&mut d, 0, 10_000);
        assert_eq!(done.len(), 100);
        let last = done.iter().map(|(c, _)| *c).max().unwrap();
        // 100 lines at 0.5 lines/cycle needs at least ~200 cycles.
        assert!(last >= 190, "completed too fast: {last}");
    }

    #[test]
    fn traffic_accounted_by_class() {
        let mut d = dram();
        d.push(LineAddr(1), TrafficClass::DemandRead, 0, 0);
        d.push(LineAddr(2), TrafficClass::RegBackup, 1, 0);
        d.push(LineAddr(3), TrafficClass::RegBackup, 2, 0);
        run_until_done(&mut d, 0, 1000);
        let t = d.traffic_bytes();
        assert_eq!(t[0], 128);
        assert_eq!(t[2], 256);
        assert_eq!(d.total_bytes(), 384);
    }

    #[test]
    fn requests_not_serviced_before_arrival() {
        let mut d = dram();
        d.push(LineAddr(1), TrafficClass::DemandRead, 0, 50);
        let mut buf = Vec::new();
        for c in 0..50 {
            d.tick(c, &mut buf);
        }
        assert!(buf.is_empty(), "request serviced before its arrival cycle");
    }
}
