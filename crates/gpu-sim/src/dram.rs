//! Off-chip DRAM model: aggregate-bandwidth bus plus per-bank timing state.
//!
//! The model is deliberately simpler than a full FR-FCFS controller but keeps
//! the two properties the evaluation depends on: (1) a hard aggregate
//! bandwidth ceiling (352.5 GB/s in Table 1), which makes memory-intensive
//! kernels contend, and (2) row-buffer/bank-timing effects (RCD/RP/CL/RAS)
//! that penalize scattered accesses.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::config::DramConfig;
use crate::types::{Cycle, LineAddr, LINE_BYTES, LINE_SHIFT};
use lb_trace::{Event as TraceEvent, Tracer};

/// Traffic classes, for Figure 17's split of demand data vs. Linebacker's
/// register backup/restore overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Demand reads (L2 miss fills).
    DemandRead,
    /// Write-through / write-evict store traffic.
    StoreWrite,
    /// Linebacker register backup (CTA deactivation) writes.
    RegBackup,
    /// Linebacker register restore (CTA re-activation) reads.
    RegRestore,
}

/// An in-flight DRAM request.
#[derive(Debug, Clone)]
struct DramReq {
    line: LineAddr,
    class: TrafficClass,
    /// Opaque completion token delivered back to the issuer.
    token: u64,
    /// Earliest cycle the request may be serviced (arrival time).
    ready_at: Cycle,
}

/// A completed DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramDone {
    /// The requested line.
    pub line: LineAddr,
    /// Traffic class of the request.
    pub class: TrafficClass,
    /// The issuer's completion token.
    pub token: u64,
}

/// Token-bucket burst cap, in lines (bounds how much unused bandwidth can
/// accumulate during idle periods).
const BUDGET_CAP: f64 = 8.0;

/// FR-FCFS reorder-window depth, per queue.
const WINDOW: usize = 64;

/// Precomputed line → (partition, bank, row) mapping. The low `part_shift`
/// bits of the line address select the memory partition (power-of-two
/// interleave at line granularity, so consecutive lines stripe across
/// partitions); bank index is `local % banks` and row is
/// `local * LINE_BYTES / row_bytes` over the partition-local line number
/// `line >> part_shift`. For the power-of-two geometries every config ships
/// (16 banks, 2 KiB rows) bank and row reduce to a mask and a shift, which
/// matters because the FR-FCFS window scan computes them per candidate per
/// cycle. The fallback path keeps odd geometries bit-exact. With
/// `part_shift == 0` (one partition) the mapping is the legacy monolithic
/// one, bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct AddrMap {
    banks: u64,
    row_bytes: u64,
    /// `log2(n_mem_partitions)`: low line-address bits selecting a partition.
    part_shift: u32,
    /// `banks - 1` when the bank count is a power of two.
    bank_mask: Option<u64>,
    /// `log2(row_bytes) - LINE_SHIFT` when `row_bytes` is a power of two
    /// of at least one line.
    row_shift: Option<u32>,
}

impl AddrMap {
    /// Builds the mapping for a channel with `banks` banks and `row_bytes`
    /// rows, where the low `part_shift` line-address bits select the
    /// memory partition (0 for a monolithic memory side).
    pub fn new(banks: u64, row_bytes: u64, part_shift: u32) -> Self {
        let bank_mask = (banks.is_power_of_two()).then(|| banks - 1);
        let row_shift = (row_bytes.is_power_of_two() && row_bytes >= LINE_BYTES)
            .then(|| row_bytes.trailing_zeros() - LINE_SHIFT);
        AddrMap { banks, row_bytes, part_shift, bank_mask, row_shift }
    }

    /// Memory partition owning `line` under the power-of-two interleave.
    #[inline]
    pub fn partition_of(&self, line: LineAddr) -> usize {
        (line.0 & ((1u64 << self.part_shift) - 1)) as usize
    }

    /// Partition-local line number: the global line address with the
    /// partition-select bits stripped, so each channel sees a dense space.
    #[inline]
    fn local(&self, line: LineAddr) -> u64 {
        line.0 >> self.part_shift
    }

    #[inline]
    fn bank(&self, line: LineAddr) -> usize {
        let local = self.local(line);
        match self.bank_mask {
            Some(m) => (local & m) as usize,
            None => (local % self.banks) as usize,
        }
    }

    #[inline]
    fn row(&self, line: LineAddr) -> u64 {
        let local = self.local(line);
        match self.row_shift {
            // `local * 2^LINE_SHIFT / 2^k == local >> (k - LINE_SHIFT)` exactly:
            // the multiply only introduces low zero bits, so truncation agrees.
            Some(s) => local >> s,
            None => local * LINE_BYTES / self.row_bytes,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// Row currently open (None = precharged).
    open_row: Option<u64>,
    /// Bank busy until this cycle.
    busy_until: Cycle,
}

/// The DRAM subsystem.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Latency-sensitive requests (demand reads, register restores).
    queue: VecDeque<DramReq>,
    /// Latency-insensitive writes (stores, register backups); serviced with
    /// leftover bandwidth after reads (read-priority scheduling).
    wqueue: VecDeque<DramReq>,
    banks: Vec<BankState>,
    /// Line → (bank, row) mapping with power-of-two fast paths.
    map: AddrMap,
    /// Fractional budget of lines that may start service this cycle
    /// (token-bucket bandwidth model).
    line_budget: f64,
    lines_per_cycle: f64,
    /// Next cycle whose token-bucket refill has not been applied yet. All
    /// budget mutation goes through [`Dram::advance_to`], so skipped and
    /// stepped cycles replay the identical (non-associative) f64 sequence.
    synced_cycle: Cycle,
    /// In-service requests in the legacy swap-remove layout. The collection
    /// order this layout produces is observable downstream (L2 fill / LRU
    /// order, response FIFO order) and locked by the golden digests, so the
    /// payload store must keep it; see `finish_heap` for the fast index.
    in_service: Vec<(Cycle, DramDone)>,
    /// Min-heap over the finish cycles of `in_service` (same multiset),
    /// keyed by finish cycle. Makes `next_completion` O(1) — it is polled
    /// every scheduling decision — without perturbing the collection order.
    finish_heap: BinaryHeap<Reverse<Cycle>>,
    /// Bytes transferred per class.
    bytes: [u64; 4],
    row_hits: u64,
    row_misses: u64,
    /// Memory-partition id stamped on emitted `DramTx` trace events.
    part_id: u64,
}

impl Dram {
    /// Creates the DRAM model. `lines_per_cycle` is the aggregate bandwidth
    /// expressed in 128 B lines per core cycle.
    pub fn new(cfg: DramConfig, lines_per_cycle: f64) -> Self {
        Self::new_channel(cfg, lines_per_cycle, 0, 0)
    }

    /// Creates one DRAM channel of a partitioned memory system. `cfg` holds
    /// the channel's own bank count; `part_shift` strips the
    /// partition-select bits from line addresses before bank/row mapping,
    /// and `part_id` tags this channel's `DramTx` trace events. With
    /// `part_shift == 0` this is exactly the monolithic model.
    pub fn new_channel(
        cfg: DramConfig,
        lines_per_cycle: f64,
        part_shift: u32,
        part_id: u64,
    ) -> Self {
        assert!(lines_per_cycle > 0.0);
        let banks = cfg.banks as usize;
        let map = AddrMap::new(cfg.banks as u64, cfg.row_bytes, part_shift);
        Dram {
            cfg,
            queue: VecDeque::new(),
            wqueue: VecDeque::new(),
            banks: vec![BankState::default(); banks],
            map,
            line_budget: 0.0,
            lines_per_cycle,
            synced_cycle: 0,
            in_service: Vec::new(),
            finish_heap: BinaryHeap::new(),
            bytes: [0; 4],
            row_hits: 0,
            row_misses: 0,
            part_id,
        }
    }

    fn class_idx(class: TrafficClass) -> usize {
        match class {
            TrafficClass::DemandRead => 0,
            TrafficClass::StoreWrite => 1,
            TrafficClass::RegBackup => 2,
            TrafficClass::RegRestore => 3,
        }
    }

    /// Enqueues a one-line request arriving at `cycle`. Reads and register
    /// restores go to the latency-sensitive queue; stores and register
    /// backups to the write queue.
    pub fn push(&mut self, line: LineAddr, class: TrafficClass, token: u64, cycle: Cycle) {
        let req = DramReq { line, class, token, ready_at: cycle };
        match class {
            TrafficClass::DemandRead | TrafficClass::RegRestore => self.queue.push_back(req),
            TrafficClass::StoreWrite | TrafficClass::RegBackup => self.wqueue.push_back(req),
        }
    }

    /// Number of requests waiting or in service.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.wqueue.len() + self.in_service.len()
    }

    /// Writes waiting (store-buffer backpressure signal).
    pub fn write_backlog(&self) -> usize {
        self.wqueue.len()
    }

    /// Both request queues are empty (requests may still be in service).
    /// While true, `tick` makes no scheduling decisions — the only per-cycle
    /// state change is the token-bucket refill.
    pub fn queues_empty(&self) -> bool {
        self.queue.is_empty() && self.wqueue.is_empty()
    }

    /// Earliest finish cycle among in-service requests, if any.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.finish_heap.peek().map(|&Reverse(t)| t)
    }

    /// Replays the token-bucket refill for every cycle up to and including
    /// `cycle` that has not been applied yet. Both normal stepping and the
    /// calendar's fast-forward go through this single method, so a skipped
    /// span cannot drift from the per-cycle path.
    ///
    /// The refill is repeated addition of an `f64` (not associative), so a
    /// closed form would not be bit-identical; instead the loop replays each
    /// step and exits early once the bucket saturates at exactly the cap
    /// (after which further refills are a fixpoint).
    pub fn advance_to(&mut self, cycle: Cycle) {
        while self.synced_cycle <= cycle {
            self.line_budget = (self.line_budget + self.lines_per_cycle).min(BUDGET_CAP);
            self.synced_cycle += 1;
            if self.line_budget == BUDGET_CAP {
                self.synced_cycle = cycle + 1;
                break;
            }
        }
    }

    /// Advances the model one core cycle; returns requests completing now.
    /// Cycles between the previous `tick` and this one need no call at all:
    /// `advance_to` replays their (refill-only) effect on entry.
    pub fn tick(&mut self, cycle: Cycle, done: &mut Vec<DramDone>, tracer: &Tracer) {
        // Refill the bandwidth token bucket (cap prevents unbounded burst),
        // covering any cycles skipped since the last tick.
        self.advance_to(cycle);

        // FR-FCFS over a bounded reorder window with read priority: prefer
        // row-hit reads to open rows (first-ready), then the oldest
        // serviceable read; leftover bandwidth drains the write queue. Reads
        // never starve behind stores; stores stall the cores through the
        // SM-side store buffer when they outrun DRAM bandwidth.
        while self.line_budget >= 1.0 {
            if let Some(i) = Self::frfcfs_pick(&self.queue, &self.banks, self.map, cycle, WINDOW) {
                let req = self.queue.remove(i).expect("index in bounds");
                let bank_idx = self.map.bank(req.line);
                self.start_service(req, bank_idx, cycle, tracer);
                continue;
            }
            if let Some(i) = Self::frfcfs_pick(&self.wqueue, &self.banks, self.map, cycle, WINDOW) {
                let req = self.wqueue.remove(i).expect("index in bounds");
                let bank_idx = self.map.bank(req.line);
                self.start_service(req, bank_idx, cycle, tracer);
                continue;
            }
            break;
        }

        // Collect completions, but only when the finish-heap minimum says
        // something is actually due — most busy cycles complete nothing,
        // and the O(1) peek spares them the `in_service` scan (which finds
        // nothing exactly when the heap minimum is in the future). The
        // swap-remove scan order is deliberate: it is the canonical
        // completion order the golden digests lock (changing it reorders
        // same-cycle L2 fills and responses).
        if self.finish_heap.peek().is_some_and(|&Reverse(t)| t <= cycle) {
            let mut i = 0;
            while i < self.in_service.len() {
                if self.in_service[i].0 <= cycle {
                    let (_, d) = self.in_service.swap_remove(i);
                    done.push(d);
                } else {
                    i += 1;
                }
            }
            // Every entry with finish <= cycle was just collected, so
            // popping the same prefix keeps the heap in sync with
            // `in_service`.
            while let Some(&Reverse(t)) = self.finish_heap.peek() {
                if t > cycle {
                    break;
                }
                self.finish_heap.pop();
            }
        }
    }

    /// FR-FCFS selection over the first `window` entries of `queue`: the
    /// oldest row-hit on a free bank if any, else the oldest serviceable
    /// request.
    fn frfcfs_pick(
        queue: &VecDeque<DramReq>,
        banks: &[BankState],
        map: AddrMap,
        cycle: Cycle,
        window: usize,
    ) -> Option<usize> {
        let n = queue.len().min(window);
        let mut pick: Option<usize> = None;
        for (i, r) in queue.iter().enumerate().take(n) {
            if r.ready_at > cycle {
                continue;
            }
            let bi = map.bank(r.line);
            if banks[bi].busy_until > cycle {
                continue;
            }
            let row = map.row(r.line);
            if banks[bi].open_row == Some(row) {
                return Some(i);
            }
            if pick.is_none() {
                pick = Some(i);
            }
        }
        pick
    }

    fn start_service(&mut self, req: DramReq, bank_idx: usize, cycle: Cycle, tracer: &Tracer) {
        tracer.emit(
            cycle,
            TraceEvent::DramTx {
                part: self.part_id,
                class: Self::class_idx(req.class) as u64,
                line: req.line.0,
            },
        );
        let row = self.map.row(req.line);
        let bank = &mut self.banks[bank_idx];
        // Bank occupancy is the data-burst time; row misses pay extra
        // *latency* (precharge + activate + CAS) but banks overlap, so
        // aggregate throughput is governed by the bandwidth token bucket.
        const BURST: u64 = 4;
        let latency = if bank.open_row == Some(row) {
            self.row_hits += 1;
            self.cfg.t_cl
        } else {
            self.row_misses += 1;
            bank.open_row = Some(row);
            self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl
        };
        bank.busy_until = cycle + BURST;
        self.line_budget -= 1.0;
        self.bytes[Self::class_idx(req.class)] += LINE_BYTES;
        let finish = cycle + latency as u64;
        self.in_service
            .push((finish, DramDone { line: req.line, class: req.class, token: req.token }));
        self.finish_heap.push(Reverse(finish));
    }

    /// Earliest future cycle at which `tick` could do anything: start a
    /// service or complete one. `None` means the DRAM is fully drained and
    /// only a new `push` can create work (the token-bucket refill alone is
    /// not "work": `advance_to` replays it lazily on the next real tick).
    ///
    /// Exactness argument: while no tick runs, queue contents, bank state
    /// and `ready_at`s are frozen; the only evolving quantity is the budget,
    /// and `earliest_budget` replays that exactly. A request in the FR-FCFS
    /// window becomes serviceable at `max(ready_at, bank.busy_until)`, so
    /// the earliest service opportunity is the min of that over both
    /// windows, floored by the budget-availability cycle.
    pub fn next_due(&self, cycle: Cycle) -> Option<Cycle> {
        let completion = self.next_completion();
        let service = self.next_service(cycle);
        match (completion, service) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Earliest cycle at or after `cycle` at which an FR-FCFS pick could
    /// succeed, `None` if both queues are empty.
    fn next_service(&self, cycle: Cycle) -> Option<Cycle> {
        if self.queues_empty() {
            return None;
        }
        let floor = cycle.max(self.earliest_budget(cycle));
        let mut best: Option<Cycle> = None;
        for q in [&self.queue, &self.wqueue] {
            for r in q.iter().take(WINDOW) {
                let bi = self.map.bank(r.line);
                let t = r.ready_at.max(self.banks[bi].busy_until);
                if t <= floor {
                    // Can't beat the floor; a pick succeeds there.
                    return Some(floor);
                }
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        best
    }

    /// First cycle at or after `from` whose replayed refill leaves at least
    /// one whole line of budget.
    fn earliest_budget(&self, from: Cycle) -> Cycle {
        if self.line_budget >= 1.0 {
            return from;
        }
        // Replay refills from the sync point; terminates because
        // `lines_per_cycle > 0` and the target (1.0) is below the cap.
        let mut budget = self.line_budget;
        let mut c = self.synced_cycle;
        loop {
            budget = (budget + self.lines_per_cycle).min(BUDGET_CAP);
            if budget >= 1.0 {
                return c.max(from);
            }
            c += 1;
        }
    }

    /// Bytes transferred so far, per traffic class
    /// (demand-read, store-write, reg-backup, reg-restore).
    pub fn traffic_bytes(&self) -> [u64; 4] {
        self.bytes
    }

    /// Total bytes over all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// (row hits, row misses) since construction.
    pub fn row_stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default(), 2.0)
    }

    fn run_until_done(d: &mut Dram, start: Cycle, max: u64) -> Vec<(Cycle, DramDone)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for c in start..start + max {
            buf.clear();
            d.tick(c, &mut buf, &Tracer::off());
            for x in &buf {
                out.push((c, *x));
            }
            if d.pending() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn single_request_completes() {
        let mut d = dram();
        d.push(LineAddr(5), TrafficClass::DemandRead, 77, 0);
        let done = run_until_done(&mut d, 0, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.token, 77);
        assert_eq!(done[0].1.line, LineAddr(5));
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = dram();
        // Same row, same bank: second is a row hit.
        d.push(LineAddr(0), TrafficClass::DemandRead, 0, 0);
        let t1 = run_until_done(&mut d, 0, 1000)[0].0;
        d.push(LineAddr(0), TrafficClass::DemandRead, 1, t1 + 100);
        let t2 = run_until_done(&mut d, t1 + 100, 1000)[0].0 - (t1 + 100);
        assert!(t2 < t1 + 1, "row hit latency {t2} should beat cold {t1}");
        assert_eq!(d.row_stats(), (1, 1));
    }

    #[test]
    fn bandwidth_bounds_throughput() {
        let mut d = Dram::new(DramConfig::default(), 0.5); // 1 line per 2 cycles
        for i in 0..100 {
            d.push(LineAddr(i * 64), TrafficClass::DemandRead, i, 0);
        }
        let done = run_until_done(&mut d, 0, 10_000);
        assert_eq!(done.len(), 100);
        let last = done.iter().map(|(c, _)| *c).max().unwrap();
        // 100 lines at 0.5 lines/cycle needs at least ~200 cycles.
        assert!(last >= 190, "completed too fast: {last}");
    }

    #[test]
    fn traffic_accounted_by_class() {
        let mut d = dram();
        d.push(LineAddr(1), TrafficClass::DemandRead, 0, 0);
        d.push(LineAddr(2), TrafficClass::RegBackup, 1, 0);
        d.push(LineAddr(3), TrafficClass::RegBackup, 2, 0);
        run_until_done(&mut d, 0, 1000);
        let t = d.traffic_bytes();
        assert_eq!(t[0], 128);
        assert_eq!(t[2], 256);
        assert_eq!(d.total_bytes(), 384);
    }

    #[test]
    fn partition_interleave_strides_consecutive_lines() {
        // 4 partitions: low two line-address bits pick the partition, the
        // rest form the channel-local line number.
        let map = AddrMap::new(16, 2048, 2);
        for i in 0..32u64 {
            assert_eq!(map.partition_of(LineAddr(i)), (i % 4) as usize);
        }
        // The channel sees a dense local space: lines 4 apart (same
        // partition) land on consecutive banks.
        assert_eq!(map.bank(LineAddr(0)), 0);
        assert_eq!(map.bank(LineAddr(4)), 1);
        assert_eq!(map.bank(LineAddr(8)), 2);

        // Shift 0 is the monolithic mapping: everything in partition 0,
        // banks straight off the global line number.
        let mono = AddrMap::new(16, 2048, 0);
        for i in 0..32u64 {
            assert_eq!(mono.partition_of(LineAddr(i)), 0);
            assert_eq!(mono.bank(LineAddr(i)), (i % 16) as usize);
        }
    }

    #[test]
    fn requests_not_serviced_before_arrival() {
        let mut d = dram();
        d.push(LineAddr(1), TrafficClass::DemandRead, 0, 50);
        let mut buf = Vec::new();
        for c in 0..50 {
            d.tick(c, &mut buf, &Tracer::off());
        }
        assert!(buf.is_empty(), "request serviced before its arrival cycle");
    }

    /// The calendar's fast-forward contract, checked at the event level: a
    /// DRAM ticked only at its `next_due` cycles must start the same
    /// transactions at the same cycles (and complete the same requests at
    /// the same cycles) as one ticked every single cycle. The traces are
    /// captured with memory-backed tracers and compared byte-for-byte, so
    /// any drift in `advance_to`'s replayed refill — including the
    /// saturation fast-path — would surface as a divergence.
    #[test]
    fn skipped_span_matches_stepped_span_transaction_for_transaction() {
        use lb_trace::{EventKind, TraceReader, TraceWriter, Tracer};

        // Bursts separated by long idle gaps (the spans the calendar
        // skips), mixed classes, bank conflicts, and a fractional
        // bandwidth so the token bucket carries non-trivial state.
        let schedule: &[(u64, TrafficClass, u64)] = &[
            (0, TrafficClass::DemandRead, 0),
            (0, TrafficClass::DemandRead, 64),
            (1, TrafficClass::StoreWrite, 64 * 7),
            (2, TrafficClass::RegBackup, 64 * 13),
            (400, TrafficClass::DemandRead, 64),
            (401, TrafficClass::RegRestore, 64 * 13),
            (1900, TrafficClass::DemandRead, 0),
            (1901, TrafficClass::StoreWrite, 64 * 29),
        ];
        let build = || {
            let mut d = Dram::new(DramConfig::default(), 0.3);
            for (i, &(at, class, line)) in schedule.iter().enumerate() {
                d.push(LineAddr(line), class, i as u64, at);
            }
            d
        };
        let mask = EventKind::DramTx.bit();

        // Reference: tick every cycle until drained.
        let mut stepped = build();
        let t_stepped = Tracer::new(TraceWriter::to_memory(mask));
        let mut done_stepped = Vec::new();
        let mut buf = Vec::new();
        for c in 0..40_000 {
            buf.clear();
            stepped.tick(c, &mut buf, &t_stepped);
            done_stepped.extend(buf.iter().map(|d| (c, d.token)));
            if stepped.pending() == 0 {
                break;
            }
        }
        assert_eq!(done_stepped.len(), schedule.len(), "stepped run must drain");

        // Skipping: tick only at the cycles `next_due` reports.
        let mut skipped = build();
        let t_skipped = Tracer::new(TraceWriter::to_memory(mask));
        let mut done_skipped = Vec::new();
        let mut c = 0;
        let mut ticks = 0u64;
        while skipped.pending() > 0 && c < 40_000 {
            buf.clear();
            skipped.tick(c, &mut buf, &t_skipped);
            ticks += 1;
            done_skipped.extend(buf.iter().map(|d| (c, d.token)));
            match skipped.next_due(c + 1) {
                Some(n) => c = n.max(c + 1),
                None => break,
            }
        }
        assert_eq!(done_skipped, done_stepped, "completion sequences must match");
        assert!(
            ticks < done_stepped.iter().map(|&(c, _)| c).max().unwrap(),
            "skip path must actually skip cycles (took {ticks} ticks)"
        );

        // The DramTx event streams must be byte-identical.
        t_stepped.finish().unwrap();
        t_skipped.finish().unwrap();
        let a = t_stepped.take_bytes().unwrap();
        let b = t_skipped.take_bytes().unwrap();
        assert_eq!(a, b, "DramTx traces diverge between stepped and skipped spans");
        let n = TraceReader::new(&a).unwrap().collect_events().unwrap().len();
        assert_eq!(n, schedule.len(), "one DramTx per scheduled request");
    }
}
