//! Banked register file model.
//!
//! A 256 KB register file holds 2048 warp registers of 128 B (one cache line)
//! each, spread over 32 banks. The model tracks:
//!
//! * per-CTA contiguous allocation (FRN/count, as Linebacker's CTA manager
//!   assumes),
//! * per-cycle bank conflicts (the paper's Figure 16 metric),
//! * synthetic register *contents* so CTA backup/restore can be verified
//!   end-to-end, and
//! * statically / dynamically unused space (SUR / DUR, Figure 4).

use crate::types::{CtaId, Cycle, RegNum};

/// Snapshot of register-file occupancy, in warp registers (128 B units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RfSpace {
    /// Total warp registers in the file.
    pub total: u32,
    /// Registers allocated to CTAs that are currently active.
    pub active_used: u32,
    /// Registers of resident but throttled (backed-up) CTAs — Dynamically
    /// Unused Register file space.
    pub dynamic_unused: u32,
    /// Registers never allocated to any resident CTA — Statically Unused
    /// Register file space.
    pub static_unused: u32,
}

impl RfSpace {
    /// SUR + DUR: total idle space usable as victim storage.
    pub fn idle(&self) -> u32 {
        self.dynamic_unused + self.static_unused
    }
}

/// The register file of one SM.
#[derive(Debug)]
pub struct RegFile {
    total_regs: u32,
    banks: u32,
    /// Per-bank use count in the current cycle (lazily cleared).
    bank_use: Vec<u8>,
    bank_cycle: Cycle,
    /// Per-CTA-slot allocation: (first register, count).
    alloc: Vec<Option<(u32, u32)>>,
    /// CTA slots whose registers are currently backed up off-chip (their
    /// space is DUR).
    backed_up: Vec<bool>,
    /// Synthetic 8-byte digest per warp register, standing in for the 128 B
    /// of architectural state. Lets backup/restore be checked end-to-end.
    contents: Vec<u64>,
    reads: u64,
    writes: u64,
    conflicts: u64,
}

impl RegFile {
    /// Creates a register file with `total_regs` warp registers in `banks`
    /// banks, supporting `cta_slots` hardware CTA slots.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(total_regs: u32, banks: u32, cta_slots: u32) -> Self {
        assert!(total_regs > 0 && banks > 0 && cta_slots > 0);
        RegFile {
            total_regs,
            banks,
            bank_use: vec![0; banks as usize],
            bank_cycle: u64::MAX,
            alloc: vec![None; cta_slots as usize],
            backed_up: vec![false; cta_slots as usize],
            contents: vec![0; total_regs as usize],
            reads: 0,
            writes: 0,
            conflicts: 0,
        }
    }

    /// Total warp registers.
    pub fn total_regs(&self) -> u32 {
        self.total_regs
    }

    /// Allocates `count` contiguous warp registers for `cta`. Allocation is
    /// first-fit over slot order, matching the FRN model of the paper's CTA
    /// manager. Returns the first register number, or `None` if space or the
    /// slot is unavailable.
    pub fn allocate_cta(&mut self, cta: CtaId, count: u32) -> Option<RegNum> {
        let slot = cta.0 as usize;
        if slot >= self.alloc.len() || self.alloc[slot].is_some() || count == 0 {
            return None;
        }
        let first = self.find_gap(count)?;
        self.alloc[slot] = Some((first, count));
        self.backed_up[slot] = false;
        // Initialize synthetic contents deterministically.
        for r in first..first + count {
            self.contents[r as usize] = crate::pattern::mix64(((cta.0 as u64) << 32) | r as u64);
        }
        Some(RegNum(first))
    }

    fn find_gap(&self, count: u32) -> Option<u32> {
        let mut used: Vec<(u32, u32)> = self.alloc.iter().flatten().copied().collect();
        used.sort_unstable();
        let mut cursor = 0u32;
        for (start, len) in used {
            if start >= cursor && start - cursor >= count {
                return Some(cursor);
            }
            cursor = cursor.max(start + len);
        }
        if self.total_regs - cursor >= count {
            Some(cursor)
        } else {
            None
        }
    }

    /// Frees the registers of a completed CTA.
    pub fn free_cta(&mut self, cta: CtaId) {
        let slot = cta.0 as usize;
        self.alloc[slot] = None;
        self.backed_up[slot] = false;
    }

    /// Marks a throttled CTA's registers as backed up (space becomes DUR).
    /// Returns the `(first, count)` range, or `None` if the CTA has no
    /// allocation.
    pub fn mark_backed_up(&mut self, cta: CtaId) -> Option<(RegNum, u32)> {
        let slot = cta.0 as usize;
        let (first, count) = self.alloc[slot]?;
        self.backed_up[slot] = true;
        Some((RegNum(first), count))
    }

    /// Clears the backed-up mark when a CTA is re-activated and its
    /// registers restored.
    pub fn mark_restored(&mut self, cta: CtaId) -> Option<(RegNum, u32)> {
        let slot = cta.0 as usize;
        let (first, count) = self.alloc[slot]?;
        self.backed_up[slot] = false;
        Some((RegNum(first), count))
    }

    /// Is this CTA currently backed up?
    pub fn is_backed_up(&self, cta: CtaId) -> bool {
        self.backed_up[cta.0 as usize]
    }

    /// Allocation of a CTA, if any: (first register, count).
    pub fn cta_range(&self, cta: CtaId) -> Option<(RegNum, u32)> {
        self.alloc[cta.0 as usize].map(|(f, c)| (RegNum(f), c))
    }

    /// Largest register number allocated to any *non-backed-up* CTA — the
    /// paper's LRN. Victim-cache partitions may only use registers above it.
    pub fn largest_active_rn(&self) -> Option<RegNum> {
        self.alloc
            .iter()
            .zip(&self.backed_up)
            .filter_map(|(a, bu)| match (a, bu) {
                (Some((f, c)), false) => Some(RegNum(f + c - 1)),
                _ => None,
            })
            .max()
    }

    /// Current occupancy snapshot.
    pub fn space(&self) -> RfSpace {
        let mut active = 0;
        let mut dynamic = 0;
        for (a, bu) in self.alloc.iter().zip(&self.backed_up) {
            if let Some((_, c)) = a {
                if *bu {
                    dynamic += c;
                } else {
                    active += c;
                }
            }
        }
        RfSpace {
            total: self.total_regs,
            active_used: active,
            dynamic_unused: dynamic,
            static_unused: self.total_regs - active - dynamic,
        }
    }

    /// Reads or writes `reg` during `cycle`, returning the extra delay in
    /// cycles caused by a bank conflict (0 when the bank was free).
    pub fn access(&mut self, reg: RegNum, cycle: Cycle, write: bool) -> u32 {
        if self.bank_cycle != cycle {
            self.bank_use.iter_mut().for_each(|u| *u = 0);
            self.bank_cycle = cycle;
        }
        // Banks are a power of two in every real configuration; the mask
        // avoids a hardware divide on a path hit three times per issued
        // instruction (identical result either way).
        let bank = if self.banks.is_power_of_two() {
            (reg.0 & (self.banks - 1)) as usize
        } else {
            (reg.0 % self.banks) as usize
        };
        let prior = self.bank_use[bank];
        self.bank_use[bank] = prior.saturating_add(1);
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if prior > 0 {
            self.conflicts += 1;
            prior as u32
        } else {
            0
        }
    }

    /// The operand traffic of one issued instruction: two reads and one
    /// write on the warp's registers, rotated by the instruction's body
    /// position so consecutive instructions stress different banks.
    /// `base` is the warp's first register (precomputed at CTA launch),
    /// `span` its register count (>= 1). Returns the summed bank-conflict
    /// delay.
    ///
    /// One divide seeds the rotation; the two follow-up operands wrap by
    /// subtraction (`r + 1 < 2 * span` always), replacing three hardware
    /// divides per instruction with one — and keeping the exact access
    /// sequence the SM's issue stage used to produce inline.
    pub fn access_operands(&mut self, base: u32, span: u32, rot3: u32, cycle: Cycle) -> u32 {
        let mut extra = 0u32;
        debug_assert!(rot3 < span, "caller passes a pre-reduced rotation");
        let mut r = rot3;
        for write in [false, false, true] {
            extra += self.access(RegNum(base + r), cycle, write);
            r += 1;
            if r >= span {
                r -= span;
            }
        }
        extra
    }

    /// Reads the synthetic contents of a register (for backup).
    pub fn read_contents(&self, reg: RegNum) -> u64 {
        self.contents[reg.0 as usize]
    }

    /// Overwrites the synthetic contents of a register (victim-line store or
    /// restore).
    pub fn write_contents(&mut self, reg: RegNum, value: u64) {
        self.contents[reg.0 as usize] = value;
    }

    /// Lifetime (reads, writes, bank conflicts).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf() -> RegFile {
        RegFile::new(2048, 32, 32)
    }

    #[test]
    fn allocation_is_contiguous_and_disjoint() {
        let mut r = rf();
        let a = r.allocate_cta(CtaId(0), 100).unwrap();
        let b = r.allocate_cta(CtaId(1), 100).unwrap();
        assert_eq!(a, RegNum(0));
        assert_eq!(b, RegNum(100));
    }

    #[test]
    fn free_then_reuse_gap() {
        let mut r = rf();
        r.allocate_cta(CtaId(0), 100);
        r.allocate_cta(CtaId(1), 100);
        r.free_cta(CtaId(0));
        // First-fit places a smaller CTA in the freed gap.
        assert_eq!(r.allocate_cta(CtaId(2), 50), Some(RegNum(0)));
    }

    #[test]
    fn allocation_fails_when_full() {
        let mut r = rf();
        assert!(r.allocate_cta(CtaId(0), 2048).is_some());
        assert!(r.allocate_cta(CtaId(1), 1).is_none());
    }

    #[test]
    fn double_allocation_same_slot_fails() {
        let mut r = rf();
        assert!(r.allocate_cta(CtaId(0), 10).is_some());
        assert!(r.allocate_cta(CtaId(0), 10).is_none());
    }

    #[test]
    fn space_accounting() {
        let mut r = rf();
        r.allocate_cta(CtaId(0), 200);
        r.allocate_cta(CtaId(1), 200);
        let s = r.space();
        assert_eq!(s.active_used, 400);
        assert_eq!(s.static_unused, 1648);
        assert_eq!(s.dynamic_unused, 0);

        r.mark_backed_up(CtaId(1));
        let s = r.space();
        assert_eq!(s.active_used, 200);
        assert_eq!(s.dynamic_unused, 200);
        assert_eq!(s.idle(), 1848);
    }

    #[test]
    fn lrn_ignores_backed_up_ctas() {
        let mut r = rf();
        r.allocate_cta(CtaId(0), 100);
        r.allocate_cta(CtaId(1), 100);
        assert_eq!(r.largest_active_rn(), Some(RegNum(199)));
        r.mark_backed_up(CtaId(1));
        assert_eq!(r.largest_active_rn(), Some(RegNum(99)));
        r.mark_restored(CtaId(1));
        assert_eq!(r.largest_active_rn(), Some(RegNum(199)));
    }

    #[test]
    fn bank_conflicts_counted_within_cycle() {
        let mut r = rf();
        assert_eq!(r.access(RegNum(0), 10, false), 0);
        // Same bank (reg 32 maps to bank 0) in the same cycle: conflict.
        assert_eq!(r.access(RegNum(32), 10, false), 1);
        // Different bank: free.
        assert_eq!(r.access(RegNum(1), 10, false), 0);
        // New cycle clears bank usage.
        assert_eq!(r.access(RegNum(64), 11, false), 0);
        assert_eq!(r.stats().2, 1);
    }

    #[test]
    fn conflict_delay_grows_with_contention() {
        let mut r = rf();
        assert_eq!(r.access(RegNum(0), 5, true), 0);
        assert_eq!(r.access(RegNum(32), 5, true), 1);
        assert_eq!(r.access(RegNum(64), 5, true), 2);
    }

    /// `access_operands` must reproduce the inline rotation it replaced:
    /// same registers, same read/write split, same conflict delays. The
    /// `(pos * 3) % span` reduction itself now happens once per kernel in
    /// `Sm::try_launch_cta`, so the bench seeds it the same way here.
    #[test]
    fn access_operands_matches_inline_rotation() {
        let (base, span) = (100u32, 24u32);
        for rot in [0u32, 1, 7, 23, 24, 1000] {
            let mut a = rf();
            let mut b = rf();
            let batched = a.access_operands(base, span, rot.wrapping_mul(3) % span, 42);
            let mut inline_extra = 0u32;
            let mut r = rot.wrapping_mul(3) % span;
            for write in [false, false, true] {
                inline_extra += b.access(RegNum(base + r), 42, write);
                r += 1;
                if r >= span {
                    r -= span;
                }
            }
            assert_eq!(batched, inline_extra, "rot={rot}");
            assert_eq!(a.stats(), b.stats(), "rot={rot}");
        }
    }

    #[test]
    fn contents_deterministic_per_allocation() {
        let mut r1 = rf();
        let mut r2 = rf();
        r1.allocate_cta(CtaId(3), 10);
        r2.allocate_cta(CtaId(3), 10);
        for i in 0..10 {
            assert_eq!(r1.read_contents(RegNum(i)), r2.read_contents(RegNum(i)));
        }
    }

    #[test]
    fn contents_roundtrip() {
        let mut r = rf();
        r.allocate_cta(CtaId(0), 4);
        let saved: Vec<u64> = (0..4).map(|i| r.read_contents(RegNum(i))).collect();
        // Clobber (as victim caching would), then restore.
        for i in 0..4 {
            r.write_contents(RegNum(i), 0xdead_beef);
        }
        for (i, v) in saved.iter().enumerate() {
            r.write_contents(RegNum(i as u32), *v);
        }
        for (i, v) in saved.iter().enumerate() {
            assert_eq!(r.read_contents(RegNum(i as u32)), *v);
        }
    }
}
