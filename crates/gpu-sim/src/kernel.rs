//! Kernel description: static instruction streams executed by every warp.
//!
//! A [`KernelSpec`] is the simulator's equivalent of a compiled CUDA kernel.
//! Each warp executes the same static `body` for `iterations` loop trips
//! (SIMT: all warps share the instruction stream but access different data,
//! driven by the per-load [`AccessPattern`](crate::pattern::AccessPattern)).

use crate::pattern::AccessPattern;
use crate::types::{LoadId, Pc};

/// One static instruction in a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticInst {
    /// Program counter (unique within the kernel).
    pub pc: Pc,
    /// Operation performed.
    pub kind: InstKind,
    /// If set, the issuing warp must first wait until all outstanding line
    /// requests of the given static load (issued by this warp) complete.
    /// This is the scoreboard edge from a load to its first consumer.
    pub wait_for: Option<LoadId>,
}

/// The operation class of a [`StaticInst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstKind {
    /// Arithmetic instruction; the warp's next instruction can issue after
    /// `latency` cycles (pipelined, so it only delays the same warp).
    Alu {
        /// Issue-to-issue latency for the same warp, in cycles.
        latency: u32,
    },
    /// Global load executed by static load `load`.
    Load {
        /// The static load executed.
        load: LoadId,
    },
    /// Global store through static load-spec `load` (shares the address
    /// pattern). Stores are fire-and-forget (write-evict / no-allocate).
    Store {
        /// The static load-spec providing the address pattern.
        load: LoadId,
    },
}

/// A static global load (or store) instruction and its memory behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Identifier; indexes `KernelSpec::loads`.
    pub id: LoadId,
    /// The PC of the instruction (used by Linebacker's hashed-PC logic).
    pub pc: Pc,
    /// Address stream generator.
    pub pattern: AccessPattern,
}

/// A complete kernel: grid shape, per-thread resources and the body.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Human-readable name (e.g. the benchmark abbreviation).
    pub name: String,
    /// Total CTAs in the grid (across all SMs).
    pub grid_ctas: u32,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Architectural registers per thread. One warp thus occupies
    /// `regs_per_thread` warp registers (each 128 B wide).
    pub regs_per_thread: u32,
    /// Shared memory bytes per CTA (occupancy limiter only).
    pub shared_mem_per_cta: u64,
    /// Loop-body instruction stream executed by every warp.
    pub body: Vec<StaticInst>,
    /// Number of loop trips each warp executes.
    pub iterations: u32,
    /// The static loads referenced from `body`.
    pub loads: Vec<LoadSpec>,
}

impl KernelSpec {
    /// Warp registers (128 B granules) used by one warp.
    pub fn regs_per_warp(&self) -> u32 {
        self.regs_per_thread
    }

    /// Warp registers used by one CTA.
    pub fn regs_per_cta(&self) -> u32 {
        self.warps_per_cta * self.regs_per_thread
    }

    /// Threads per CTA (warps x 32).
    pub fn threads_per_cta(&self, simd_width: u32) -> u32 {
        self.warps_per_cta * simd_width
    }

    /// Dynamic instructions one warp will execute over the whole kernel.
    pub fn dyn_insts_per_warp(&self) -> u64 {
        self.body.len() as u64 * self.iterations as u64
    }

    /// Looks up a load spec by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not reference an entry of `loads` (kernel specs
    /// are validated at construction by [`KernelBuilder::build`]).
    pub fn load(&self, id: LoadId) -> &LoadSpec {
        &self.loads[id.0 as usize]
    }

    /// Assembles a spec from pre-built parts and validates it — the
    /// constructor for deserialized kernels (the `LBW1` decoder, the
    /// Accel-Sim trace importer), where PCs and load ids arrive from the
    /// input instead of a [`KernelBuilder`] counter.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        name: String,
        grid_ctas: u32,
        warps_per_cta: u32,
        regs_per_thread: u32,
        shared_mem_per_cta: u64,
        body: Vec<StaticInst>,
        iterations: u32,
        loads: Vec<LoadSpec>,
    ) -> Result<KernelSpec, String> {
        let spec = KernelSpec {
            name,
            grid_ctas,
            warps_per_cta,
            regs_per_thread,
            shared_mem_per_cta,
            body,
            iterations,
            loads,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.grid_ctas == 0 {
            return Err("grid has no CTAs".into());
        }
        if self.warps_per_cta == 0 {
            return Err("CTA has no warps".into());
        }
        if self.body.is_empty() {
            return Err("kernel body is empty".into());
        }
        if self.iterations == 0 {
            return Err("kernel has zero iterations".into());
        }
        for (i, l) in self.loads.iter().enumerate() {
            if l.id.0 as usize != i {
                return Err(format!("load {} has id {:?} (must equal its index)", i, l.id));
            }
        }
        for inst in &self.body {
            let referenced = match inst.kind {
                InstKind::Load { load } | InstKind::Store { load } => Some(load),
                InstKind::Alu { .. } => None,
            };
            for l in referenced.into_iter().chain(inst.wait_for) {
                if l.0 as usize >= self.loads.len() {
                    return Err(format!("{} references undefined load {:?}", inst.pc, l));
                }
            }
        }
        Ok(())
    }
}

/// Builder assembling a [`KernelSpec`] with automatically assigned PCs and
/// load ids.
///
/// # Examples
///
/// ```
/// use gpu_sim::kernel::KernelBuilder;
/// use gpu_sim::pattern::AccessPattern;
///
/// let kernel = KernelBuilder::new("demo")
///     .grid(64, 8)
///     .regs_per_thread(32)
///     .load(AccessPattern::streaming(128))
///     .alu(4)
///     .load_then_use(AccessPattern::reuse_working_set(64 * 1024, true), 2)
///     .iterations(100)
///     .build()
///     .expect("valid kernel");
/// assert_eq!(kernel.loads.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    grid_ctas: u32,
    warps_per_cta: u32,
    regs_per_thread: u32,
    shared_mem_per_cta: u64,
    body: Vec<StaticInst>,
    iterations: u32,
    loads: Vec<LoadSpec>,
    next_pc: u32,
}

impl KernelBuilder {
    /// Starts a new kernel description named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            grid_ctas: 1,
            warps_per_cta: 1,
            regs_per_thread: 16,
            shared_mem_per_cta: 0,
            body: Vec::new(),
            iterations: 1,
            loads: Vec::new(),
            next_pc: 0,
        }
    }

    /// Sets grid shape: total CTAs and warps per CTA.
    pub fn grid(mut self, ctas: u32, warps_per_cta: u32) -> Self {
        self.grid_ctas = ctas;
        self.warps_per_cta = warps_per_cta;
        self
    }

    /// Sets architectural registers per thread.
    pub fn regs_per_thread(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Sets shared memory per CTA in bytes.
    pub fn shared_mem(mut self, bytes: u64) -> Self {
        self.shared_mem_per_cta = bytes;
        self
    }

    /// Sets the loop trip count.
    pub fn iterations(mut self, iters: u32) -> Self {
        self.iterations = iters;
        self
    }

    fn alloc_pc(&mut self) -> Pc {
        let pc = Pc(self.next_pc);
        self.next_pc += 8; // instruction encoding stride
        pc
    }

    /// Appends an ALU instruction with the given latency.
    pub fn alu(mut self, latency: u32) -> Self {
        let pc = self.alloc_pc();
        self.body.push(StaticInst { pc, kind: InstKind::Alu { latency }, wait_for: None });
        self
    }

    /// Appends a global load with the given address pattern. Returns the
    /// builder; the load's value is never waited on (pure latency hiding).
    pub fn load(mut self, pattern: AccessPattern) -> Self {
        self.push_load(pattern);
        self
    }

    fn push_load(&mut self, pattern: AccessPattern) -> LoadId {
        let id = LoadId(self.loads.len() as u32);
        let pc = self.alloc_pc();
        self.loads.push(LoadSpec { id, pc, pattern });
        self.body.push(StaticInst { pc, kind: InstKind::Load { load: id }, wait_for: None });
        id
    }

    /// Appends a load followed by `gap` single-cycle ALU instructions and a
    /// consumer ALU instruction that waits for the load (scoreboard edge).
    pub fn load_then_use(mut self, pattern: AccessPattern, gap: u32) -> Self {
        let id = self.push_load(pattern);
        for _ in 0..gap {
            self = self.alu(1);
        }
        let pc = self.alloc_pc();
        self.body.push(StaticInst { pc, kind: InstKind::Alu { latency: 1 }, wait_for: Some(id) });
        self
    }

    /// Appends a global store that reuses the address pattern of a fresh
    /// load-spec entry (stores have their own static "load" slot so their
    /// PC is distinct).
    pub fn store(mut self, pattern: AccessPattern) -> Self {
        let id = LoadId(self.loads.len() as u32);
        let pc = self.alloc_pc();
        self.loads.push(LoadSpec { id, pc, pattern });
        self.body.push(StaticInst { pc, kind: InstKind::Store { load: id }, wait_for: None });
        self
    }

    /// Finalizes the kernel.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel is structurally invalid (empty body,
    /// zero iterations, dangling load references).
    pub fn build(self) -> Result<KernelSpec, String> {
        let spec = KernelSpec {
            name: self.name,
            grid_ctas: self.grid_ctas,
            warps_per_cta: self.warps_per_cta,
            regs_per_thread: self.regs_per_thread,
            shared_mem_per_cta: self.shared_mem_per_cta,
            body: self.body,
            iterations: self.iterations,
            loads: self.loads,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AccessPattern;

    fn demo() -> KernelSpec {
        KernelBuilder::new("k")
            .grid(8, 4)
            .regs_per_thread(24)
            .load_then_use(AccessPattern::streaming(128), 1)
            .alu(4)
            .store(AccessPattern::streaming(128))
            .iterations(10)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_sequential_load_ids() {
        let k = demo();
        for (i, l) in k.loads.iter().enumerate() {
            assert_eq!(l.id.0 as usize, i);
        }
    }

    #[test]
    fn builder_assigns_unique_pcs() {
        let k = demo();
        let mut pcs: Vec<_> = k.body.iter().map(|i| i.pc).collect();
        pcs.sort();
        pcs.dedup();
        assert_eq!(pcs.len(), k.body.len());
    }

    #[test]
    fn regs_accounting() {
        let k = demo();
        assert_eq!(k.regs_per_warp(), 24);
        assert_eq!(k.regs_per_cta(), 24 * 4);
        assert_eq!(k.threads_per_cta(32), 128);
    }

    #[test]
    fn dyn_inst_count() {
        let k = demo();
        assert_eq!(k.dyn_insts_per_warp(), k.body.len() as u64 * 10);
    }

    #[test]
    fn wait_for_edge_exists() {
        let k = demo();
        assert!(k.body.iter().any(|i| i.wait_for.is_some()));
    }

    #[test]
    fn empty_body_rejected() {
        let err = KernelBuilder::new("bad").build().unwrap_err();
        assert!(err.contains("empty"));
    }

    #[test]
    fn zero_iterations_rejected() {
        let err = KernelBuilder::new("bad").alu(1).iterations(0).build().unwrap_err();
        assert!(err.contains("zero iterations"));
    }

    #[test]
    fn validate_catches_dangling_load() {
        let mut k = demo();
        k.body.push(StaticInst {
            pc: Pc(9999),
            kind: InstKind::Load { load: LoadId(99) },
            wait_for: None,
        });
        assert!(k.validate().is_err());
    }
}
