//! SM <-> L2 interconnect: a fixed-latency, bandwidth-limited FIFO.

use std::collections::VecDeque;

use crate::types::Cycle;

/// One direction of the interconnect carrying messages of type `T`.
#[derive(Debug)]
pub struct IcntQueue<T> {
    latency: u32,
    /// Messages that may be popped per cycle (flit bandwidth).
    per_cycle: u32,
    queue: VecDeque<(Cycle, T)>,
    delivered: u64,
}

impl<T> IcntQueue<T> {
    /// Creates a queue with one-way `latency` and `per_cycle` delivery
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle` is zero.
    pub fn new(latency: u32, per_cycle: u32) -> Self {
        assert!(per_cycle > 0, "interconnect needs nonzero bandwidth");
        IcntQueue { latency, per_cycle, queue: VecDeque::new(), delivered: 0 }
    }

    /// Enqueues a message at `cycle`; it becomes deliverable after the
    /// one-way latency.
    pub fn push(&mut self, msg: T, cycle: Cycle) {
        self.queue.push_back((cycle + self.latency as u64, msg));
    }

    /// Pops up to the per-cycle bandwidth of messages whose latency has
    /// elapsed by `cycle`, appending them to `out`.
    pub fn pop_ready(&mut self, cycle: Cycle, out: &mut Vec<T>) {
        for _ in 0..self.per_cycle {
            // Single deque lookup per message: pop unconditionally and
            // restore the head if its latency has not elapsed yet.
            match self.queue.pop_front() {
                Some((ready, m)) if ready <= cycle => {
                    self.delivered += 1;
                    out.push(m);
                }
                Some(entry) => {
                    self.queue.push_front(entry);
                    break;
                }
                None => break,
            }
        }
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Delivery time of the head-of-line message, if any. The queue is FIFO,
    /// so nothing can be delivered before this cycle — the GPU's idle-cycle
    /// fast-forward uses it as a next-event bound.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.queue.front().map(|&(ready, _)| ready)
    }

    /// Component-calendar horizon: the earliest cycle this queue can do any
    /// work. Identical to [`IcntQueue::next_ready`] — a FIFO with fixed
    /// latency has no other self-generated events — and O(1), so the GPU
    /// reads it directly every cycle instead of caching it in the calendar.
    pub fn next_due(&self) -> Option<Cycle> {
        self.next_ready()
    }

    /// Total messages delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_respected() {
        let mut q: IcntQueue<u64> = IcntQueue::new(8, 4);
        q.push(1, 100);
        let mut out = Vec::new();
        q.pop_ready(107, &mut out);
        assert!(out.is_empty());
        q.pop_ready(108, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn bandwidth_limits_pops() {
        let mut q: IcntQueue<u64> = IcntQueue::new(0, 2);
        for i in 0..5 {
            q.push(i, 0);
        }
        let mut out = Vec::new();
        q.pop_ready(0, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        q.pop_ready(1, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        q.pop_ready(2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(q.delivered(), 5);
    }

    #[test]
    fn fifo_order() {
        let mut q: IcntQueue<&str> = IcntQueue::new(1, 8);
        q.push("a", 0);
        q.push("b", 0);
        let mut out = Vec::new();
        q.pop_ready(10, &mut out);
        assert_eq!(out, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "nonzero bandwidth")]
    fn zero_bandwidth_panics() {
        let _: IcntQueue<u8> = IcntQueue::new(1, 0);
    }

    #[test]
    fn bandwidth_limited_draining_preserves_order() {
        // Messages pushed on different cycles drain strictly in FIFO order
        // at the bandwidth cap, and a not-yet-ready head blocks everything
        // behind it (no reordering around the head-of-line message).
        let mut q: IcntQueue<u32> = IcntQueue::new(4, 3);
        for i in 0..7u32 {
            q.push(i, i as u64); // message i ready at cycle i + 4
        }
        let mut out = Vec::new();

        // Cycle 5: messages 0 and 1 are ready; 2 (ready at 6) blocks the
        // rest even though bandwidth would allow a third pop.
        q.pop_ready(5, &mut out);
        assert_eq!(out, vec![0, 1]);
        assert_eq!(q.in_flight(), 5);

        // Cycle 20: everything is ready, but only 3 pops per call.
        out.clear();
        q.pop_ready(20, &mut out);
        assert_eq!(out, vec![2, 3, 4]);
        out.clear();
        q.pop_ready(20, &mut out);
        assert_eq!(out, vec![5, 6]);
        assert_eq!(q.delivered(), 7);
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.next_ready(), None);
    }
}
