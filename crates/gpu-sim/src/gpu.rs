//! Top-level GPU: CTA dispatcher, memory partitions (interconnect + L2
//! slices + DRAM channels), and the per-cycle simulation loop.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::calendar::Calendar;
use crate::config::GpuConfig;
use crate::energy::Activity;
use crate::kernel::KernelSpec;
use crate::mem::MemReq;
use crate::partition::MemPartition;
use crate::phase_timer;
use crate::policy::{PolicyFactory, SmPolicy};
use crate::pool::{SendPtr, SmPool};
use crate::replay::{CaptureError, ReplayKernel, WarpStream};
use crate::sm::Sm;
use crate::stats::{PartitionCounters, ProfileEvents, SimStats};
use crate::types::{Cycle, SmId};
use lb_trace::Tracer;

/// A complete simulated GPU executing one kernel.
pub struct Gpu {
    cfg: GpuConfig,
    kernel: KernelSpec,
    sms: Vec<Sm>,
    /// The partitioned memory side: each entry owns one L2 slice, one DRAM
    /// channel and one interconnect queue pair. Lines are steered by the
    /// power-of-two interleave `line & part_mask`.
    partitions: Vec<MemPartition>,
    /// `n_mem_partitions - 1`: low line-address bits selecting a partition.
    part_mask: u64,
    /// CTAs of the grid not yet dispatched.
    remaining_ctas: u32,
    /// Grid-wide dispatch ordinal of the next CTA to launch. In trace mode
    /// this is the stream-block index (`ordinal * warps_per_cta` is the
    /// first stream of the CTA); in synthetic mode it is threaded but
    /// unread, so maintaining it costs one dead store per launch.
    cta_ordinal: u64,
    cycle: Cycle,
    /// The next window-boundary cycle (`k * window_cycles`); advanced by one
    /// window each time it fires so the per-cycle boundary test is a compare
    /// instead of a division. Jumps never cross it: `try_skip_idle` caps
    /// every fast-forward at `next_window - 1`.
    next_window: Cycle,
    scratch_msgs: Vec<MemReq>,
    /// Reusable list of SM indices still accepting CTAs during a dispatch.
    dispatch_scratch: Vec<u32>,
    /// Component calendar over the SMs (indices `0..n_sms`), the DRAM
    /// channels (index `n_sms + p` for partition `p`), and one outbox-flush
    /// slot per SM (index `n_sms + n_parts + i`, see `pending_out`); `step`
    /// touches only due components. The interconnect queues are not in the
    /// calendar: their `next_due` is an O(1) head peek, cheaper read
    /// directly than kept coherent here.
    calendar: Calendar,
    /// Local-clock bursting enabled: `cfg.burst` and no event tracer
    /// attached (the shared trace stream interleaves all components, so its
    /// cycle stamps must be globally monotone; an SM running ahead of the
    /// global clock would write future-stamped events between other
    /// components' present-stamped ones).
    burst: bool,
    /// Per-SM count of memory requests in flight beyond the SM boundary.
    /// Every outbox message produces exactly one response delivery, so a
    /// zero count proves no inbound delivery can target the SM and its
    /// local horizon is bounded by the window edge alone.
    in_flight: Vec<u32>,
    /// Per-SM held outbox batches: requests an SM emitted at local cycles
    /// ahead of the global clock, each batch under its emission cycle in
    /// increasing stamp order. Pushing them into the interconnect
    /// immediately would interleave out of (cycle, SM id) order with other
    /// SMs' traffic; instead each batch waits here and the SM's calendar
    /// flush slot fires at the front batch's emission cycle, reproducing
    /// the cycle-lockstep queue order exactly.
    pending_out: Vec<VecDeque<(Cycle, Vec<MemReq>)>>,
    /// Per-SM last locally simulated cycle. Only consulted at run end: an
    /// SM's local clock may finish ahead of the global cycle (a pure-ALU
    /// retirement mid-span), and the reported cycle count must cover it.
    local_time: Vec<Cycle>,
    /// Intra-simulation worker pool (`cfg.sim_threads >= 2`, clamped to
    /// the SM count): executes the due SMs' spans concurrently each step;
    /// `None` = serial phase 1, the exact pre-pool path. Never created
    /// while an event tracer is attached — the shared trace writer is
    /// single-threaded (`Rc<RefCell>`), which is also what pins `--trace`
    /// lockstep runs to one thread.
    pool: Option<SmPool>,
    /// Scratch for the parallel path: the step's frozen due-SM list (id
    /// order), each due SM's horizon, and each span's `(end, ticks)`
    /// result slot, reused across steps.
    par_due: Vec<u32>,
    par_horizons: Vec<Cycle>,
    par_results: Vec<(Cycle, u64)>,
    /// Per-component stepped-cycle counters: SMs at `0..n_sms`, DRAM
    /// channels at `n_sms..n_sms + P`, each partition's `to_l2` at
    /// `n_sms + P + p` and `from_l2` at `n_sms + 2P + p`. Slept cycles are
    /// not counted separately: every component is either stepped or slept
    /// each cycle, so slept == total cycles - stepped.
    comp_stepped: Vec<u64>,
    /// Hot-path profiler counters (reported via `SimStats::events`).
    stepped_cycles: u64,
    skipped_cycles: u64,
    skip_jumps: u64,
    dispatch_passes: u64,
    /// Skip-engagement breakdown: what bounded each fast-forward jump.
    skip_to_sm: u64,
    skip_to_dram: u64,
    skip_to_icnt: u64,
    skip_to_window: u64,
    skip_to_max: u64,
}

impl Gpu {
    /// Builds a GPU for `kernel` with one policy instance per SM.
    pub fn new(cfg: GpuConfig, kernel: KernelSpec, factory: &PolicyFactory<'_>) -> Self {
        Self::new_traced(cfg, kernel, factory, Tracer::off())
    }

    /// Builds a GPU with an event-trace capture handle. Every SM gets a
    /// clone of the handle (they share one writer), so a single trace file
    /// interleaves all components in deterministic step-phase order.
    pub fn new_traced(
        cfg: GpuConfig,
        kernel: KernelSpec,
        factory: &PolicyFactory<'_>,
        tracer: Tracer,
    ) -> Self {
        Self::new_inner(cfg, kernel, None, false, factory, tracer)
    }

    /// Builds a GPU that replays `rep` instead of generating addresses: each
    /// warp executes its recorded stream through the unmodified pipeline.
    /// The stub kernel drives occupancy and policy transforms exactly as a
    /// synthetic kernel would.
    pub fn new_replay(cfg: GpuConfig, rep: Arc<ReplayKernel>, factory: &PolicyFactory<'_>) -> Self {
        let kernel = rep.stub.clone();
        Self::new_inner(cfg, kernel, Some(rep), false, factory, Tracer::off())
    }

    /// Shared builder behind the synthetic, replay and capture frontends.
    /// `replay` installs per-warp streams on every SM before the initial
    /// dispatch; `capture` arms per-SM stream recorders sized to the grid.
    fn new_inner(
        cfg: GpuConfig,
        kernel: KernelSpec,
        replay: Option<Arc<ReplayKernel>>,
        capture: bool,
        factory: &PolicyFactory<'_>,
        tracer: Tracer,
    ) -> Self {
        let n_streams = kernel.grid_ctas as usize * kernel.warps_per_cta as usize;
        let sms = (0..cfg.n_sms)
            .map(|i| {
                let policy: Box<dyn SmPolicy> = factory(SmId(i), &cfg, &kernel);
                let mut sm = Sm::new(SmId(i), &cfg, policy, 0x5eed ^ (i as u64));
                sm.set_tracer(tracer.clone());
                if let Some(rep) = &replay {
                    sm.set_replay(Arc::clone(rep));
                }
                if capture {
                    sm.enable_capture(n_streams);
                }
                sm
            })
            .collect();
        let n_parts = cfg.n_mem_partitions as usize;
        let partitions =
            (0..cfg.n_mem_partitions).map(|p| MemPartition::new(&cfg, p, tracer.clone())).collect();
        let n_sms = cfg.n_sms as usize;
        let mut calendar = Calendar::new(n_sms + n_parts + n_sms);
        for i in 0..n_sms {
            // Flush slots are event components: parked until an SM holds a
            // future-stamped outbox batch.
            calendar.park(n_sms + n_parts + i);
        }
        // More threads than SMs can never all be busy; clamp rather than
        // spin up dead workers. A 1-SM scale (Quick) therefore never pays
        // for a pool no matter what `--sim-threads` asks.
        let threads = (cfg.sim_threads.max(1) as usize).min(n_sms);
        let pool = (threads > 1 && !tracer.is_on()).then(|| SmPool::new(threads));
        let mut gpu = Gpu {
            partitions,
            part_mask: cfg.n_mem_partitions as u64 - 1,
            remaining_ctas: kernel.grid_ctas,
            cta_ordinal: 0,
            cycle: 0,
            next_window: cfg.window_cycles,
            scratch_msgs: Vec::new(),
            dispatch_scratch: Vec::new(),
            calendar,
            burst: cfg.burst && !tracer.is_on(),
            pool,
            par_due: Vec::new(),
            par_horizons: Vec::new(),
            par_results: Vec::new(),
            in_flight: vec![0; n_sms],
            pending_out: vec![VecDeque::new(); n_sms],
            local_time: vec![0; n_sms],
            comp_stepped: vec![0; cfg.n_sms as usize + 3 * n_parts],
            stepped_cycles: 0,
            skipped_cycles: 0,
            skip_jumps: 0,
            dispatch_passes: 0,
            skip_to_sm: 0,
            skip_to_dram: 0,
            skip_to_icnt: 0,
            skip_to_window: 0,
            skip_to_max: 0,
            sms,
            cfg,
            kernel,
        };
        // Fill the SMs immediately so both `run()` and manual `step()`
        // loops start with work on board.
        gpu.dispatch_ctas();
        gpu
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The kernel being executed.
    pub fn kernel(&self) -> &KernelSpec {
        &self.kernel
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Read-only view of an SM (tests, experiments).
    pub fn sm(&self, i: u32) -> &Sm {
        &self.sms[i as usize]
    }

    /// (stepped, slept) cycle counts for SM `i`. For a finished run their
    /// sum equals the total simulated cycles — the per-component partition
    /// invariant the profiler tests lock.
    pub fn sm_activity(&self, i: u32) -> (u64, u64) {
        let stepped = self.comp_stepped[i as usize];
        (stepped, self.cycle - stepped)
    }

    /// Dispatches CTAs to every SM that has room and wants more work.
    ///
    /// Placement is round-robin (one CTA per willing SM per pass), which the
    /// paper's homogeneous-SM evaluation depends on. An SM that refuses a
    /// launch is dropped from the candidate list for the rest of this call:
    /// nothing during a dispatch can free its resources, so the refusal is
    /// permanent and rescanning it (as the old implementation did every
    /// pass) is pure waste.
    fn dispatch_ctas(&mut self) {
        self.dispatch_passes += 1;
        if self.remaining_ctas == 0 {
            return;
        }
        let mut candidates = std::mem::take(&mut self.dispatch_scratch);
        candidates.clear();
        candidates.extend(0..self.cfg.n_sms);
        while self.remaining_ctas > 0 && !candidates.is_empty() {
            candidates.retain(|&i| {
                if self.remaining_ctas == 0 {
                    return false;
                }
                let sm = &mut self.sms[i as usize];
                sm.set_next_cta_ordinal(self.cta_ordinal);
                if sm.wants_new_cta() && sm.try_launch_cta(&self.kernel, &self.cfg) {
                    self.remaining_ctas -= 1;
                    self.cta_ordinal += 1;
                    true
                } else {
                    false
                }
            });
        }
        self.dispatch_scratch = candidates;
    }

    /// Runs the kernel to completion or `max_cycles`, returning merged stats.
    ///
    /// Uses two levels of event-driven scheduling, both bit-exact: inside
    /// `step()`, the component calendar gates each SM and the DRAM
    /// controller individually, so a busy cycle touches only components
    /// with work; between steps, `try_skip_idle` jumps straight to the
    /// earliest component event instead of stepping through dead cycles.
    pub fn run(&mut self) -> SimStats {
        while self.cycle < self.cfg.max_cycles {
            self.try_skip_idle();
            if self.cycle >= self.cfg.max_cycles {
                break;
            }
            self.step();
            if self.done() {
                break;
            }
        }
        // An SM's local clock may finish ahead of the global one (a pure-ALU
        // retirement mid-span ends the run with no further global events);
        // the lockstep loop keeps stepping those tail cycles while any SM
        // still has work, and an idle SM with an armed issue-scan wake-up
        // performs that (futile) scan then. Replay exactly those calendar
        // slots: anything due up to the furthest local time would have
        // fired under lockstep; anything later would not (the run ends
        // first). The machine is drained, so these ticks can only re-scan
        // and re-arm — no architectural state moves.
        let ahead = self.local_time.iter().copied().max().unwrap_or(0);
        while self.cycle <= ahead {
            if !self.calendar.any_due(self.cycle) {
                match self.calendar.next_event() {
                    Some((t, comp)) if t <= ahead => {
                        let comp = comp as usize;
                        if comp < self.sms.len() || comp >= self.sms.len() + self.partitions.len() {
                            self.skip_to_sm += 1;
                        } else {
                            self.skip_to_dram += 1;
                        }
                        self.skipped_cycles += t - self.cycle;
                        self.skip_jumps += 1;
                        self.cycle = t;
                    }
                    _ => break,
                }
            }
            self.step();
        }
        // The reported cycle count is the cycle after the last simulated
        // one, exactly as the lockstep loop would have left it. Horizons
        // never pass `max_cycles`, so this cannot overshoot the cap. The
        // global loop never visited the remaining tail cycles, so for the
        // stepped/skipped partition they count as fast-forwarded.
        if ahead + 1 > self.cycle {
            self.skipped_cycles += ahead + 1 - self.cycle;
            self.cycle = ahead + 1;
        }
        self.collect_stats()
    }

    /// Fast-forwards to the earliest cycle at which any component can act.
    ///
    /// The calendar already knows the next due cycle of every SM and of the
    /// DRAM controller; the interconnect queues expose theirs as an O(1)
    /// head peek. The jump target is the minimum over those horizons,
    /// capped at the last cycle of the current monitoring window (that
    /// cycle's step fires `end_window`) and at `max_cycles`. No per-cycle
    /// state needs replaying at jump time: the DRAM token bucket catches up
    /// lazily through [`Dram::advance_to`] on its next real tick.
    ///
    /// Unlike the all-or-nothing skipper this replaces, the check is O(1):
    /// it never rescans warps, and it engages whenever the *earliest*
    /// component event is in the future, not only when every component is
    /// simultaneously idle (individual SMs sleep through busy cycles inside
    /// `step` via the same calendar).
    fn try_skip_idle(&mut self) {
        let cycle = self.cycle;
        // Cheap pre-check first: on a busy machine some component is due
        // right now and the argmin below would be wasted work every cycle.
        if self.calendar.any_due(cycle) {
            return;
        }
        // One pass over the partitions both finishes the pre-check and
        // seeds the jump-target fold with the earliest interconnect horizon.
        let mut icnt: Option<Cycle> = None;
        for p in &self.partitions {
            icnt = match (icnt, p.icnt_next_due()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        if icnt.is_some_and(|t| t <= cycle) {
            return;
        }
        let cal = self.calendar.next_event();
        let mut target = Cycle::MAX;
        for t in [cal.map(|(t, _)| t), icnt].into_iter().flatten() {
            target = target.min(t);
        }
        // The last cycle of the current window must still be stepped so its
        // `end_window` fires on schedule; `max_cycles` ends the run loop.
        let window_last = self.next_window - 1;
        let target = target.min(window_last).min(self.cfg.max_cycles);
        if target <= cycle {
            return;
        }
        // Attribute the jump to whichever horizon bounded it. Outbox-flush
        // slots (above the DRAM range) are SM-side work.
        if cal.is_some_and(|(t, _)| t == target) {
            let comp = cal.expect("checked").1 as usize;
            if comp < self.sms.len() || comp >= self.sms.len() + self.partitions.len() {
                self.skip_to_sm += 1;
            } else {
                self.skip_to_dram += 1;
            }
        } else if icnt == Some(target) {
            self.skip_to_icnt += 1;
        } else if target == window_last {
            self.skip_to_window += 1;
        } else {
            self.skip_to_max += 1;
        }
        let n = target - cycle;
        self.cycle = target;
        self.skipped_cycles += n;
        self.skip_jumps += 1;
    }

    /// All work dispatched and drained. A held outbox batch is in-flight
    /// work the partitions have not seen yet, so it keeps the GPU alive.
    pub fn done(&self) -> bool {
        self.remaining_ctas == 0
            && self.sms.iter().all(|s| s.drained())
            && self.partitions.iter().all(|p| p.drained())
            && self.pending_out.iter().all(|q| q.is_empty())
    }

    /// Advances the whole GPU one cycle, stepping only the components whose
    /// calendar entry is due. Gating a component is bit-exact because its
    /// `next_due` horizon certifies that a tick before that cycle would be
    /// a state no-op; the phase order is identical to the old exhaustive
    /// sweep, so a due component observes exactly what it always did.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        self.stepped_cycles += 1;
        let n_sms = self.sms.len();
        let n_parts = self.partitions.len();

        // 1. SM pipelines (in SM-id order, as the exhaustive sweep was).
        //    Each due SM runs a local-clock span up to its safe horizon; an
        //    SM whose span ran ahead of the global clock parks its outbox
        //    batch in `pending_out`, and the batch enters the interconnect
        //    here, at its emission cycle, in SM-id order — the exact queue
        //    position a cycle-lockstep run would have given it. With a
        //    worker pool the due spans execute concurrently and everything
        //    order-sensitive happens at the rendezvous merge instead; both
        //    paths are built from the same `flush_pending`/`sm_horizon`/
        //    `absorb_span` pieces, so they cannot drift apart.
        if self.pool.is_some() {
            self.step_sms_parallel(cycle);
        } else {
            let (base_h, t_del) = self.horizon_inputs(cycle);
            for i in 0..n_sms {
                self.flush_pending(i, cycle);
                if !self.calendar.is_due(i, cycle) {
                    continue;
                }
                // Every held batch flushes at a global step at its stamp,
                // and stamps never reach the SM's next due cycle, so a due
                // SM has nothing pending.
                debug_assert!(self.pending_out[i].is_empty());
                let horizon = self.sm_horizon(i, cycle, base_h, t_del);
                let (end, ticks) = self.sms[i].tick_span(cycle, horizon, &self.kernel, &self.cfg);
                self.absorb_span(i, cycle, end, ticks);
            }
        }

        // Phases 2-4 touch disjoint fields every iteration; one split
        // borrow up front replaces repeated `self.partitions[p]` indexing
        // in the per-cycle loops.
        let Gpu { partitions, calendar, comp_stepped, scratch_msgs, sms, in_flight, .. } =
            &mut *self;

        // 2. L2 side: each partition consumes its arriving requests. A
        //    request pushed to DRAM here arrives at its `ready_at` cycle
        //    (stores this very cycle), so pull the channel's due cycle
        //    forward before phase 3 reads it. Waking at arrival rather than
        //    at the exact serviceable cycle is safe — a tick that can't
        //    pick anything is a state no-op — and keeps this path O(1) per
        //    request.
        let probe = phase_timer::start();
        for (p, part) in partitions.iter_mut().enumerate() {
            if part.to_l2.next_due().is_some_and(|t| t <= cycle) {
                comp_stepped[n_sms + n_parts + p] += 1;
                scratch_msgs.clear();
                part.to_l2.pop_ready(cycle, scratch_msgs);
                for &req in scratch_msgs.iter() {
                    if let Some(arrival) = part.handle_at_l2(req, cycle) {
                        calendar.wake_at(n_sms + p, arrival);
                    }
                }
            }
        }
        phase_timer::stop(probe, phase_timer::L2_INGRESS);

        // 3. DRAM channels. After every tick a channel reports its exact
        //    next horizon (next completion, or the earliest cycle a pick
        //    can succeed: request arrival + bank free + bandwidth-token
        //    refill); the calendar sleeps it until then. `next_service`'s
        //    floor early-out keeps the scan short on busy streaks.
        let probe = phase_timer::start();
        for (p, part) in partitions.iter_mut().enumerate() {
            let comp = n_sms + p;
            if calendar.is_due(comp, cycle) {
                comp_stepped[comp] += 1;
                part.step_dram(cycle);
                let due = part.dram.next_due(cycle).unwrap_or(Cycle::MAX);
                calendar.schedule(comp, due);
            }
        }
        phase_timer::stop(probe, phase_timer::DRAM);

        // 4. Responses back to SMs (partitions in index order, so same-cycle
        //    deliveries interleave deterministically); each delivery re-arms
        //    the SM's slot.
        let probe = phase_timer::start();
        for (p, part) in partitions.iter_mut().enumerate() {
            if part.from_l2.next_due().is_some_and(|t| t <= cycle) {
                comp_stepped[n_sms + 2 * n_parts + p] += 1;
                scratch_msgs.clear();
                part.from_l2.pop_ready(cycle, scratch_msgs);
                for &rsp in scratch_msgs.iter() {
                    let sm = &mut sms[rsp.sm.0 as usize];
                    sm.handle_response(rsp, cycle);
                    // Every delivery answers exactly one request this SM
                    // emitted; the counter going dry re-opens its horizon.
                    debug_assert!(in_flight[rsp.sm.0 as usize] > 0);
                    in_flight[rsp.sm.0 as usize] -= 1;
                    calendar.wake_at(rsp.sm.0 as usize, cycle + 1);
                }
            }
        }
        phase_timer::stop(probe, phase_timer::L2_EGRESS);

        self.cycle += 1;

        // 5. Window boundary: IPC monitoring, policy decisions, throttling
        //    enforcement, and refill of freed CTA capacity. Every SM runs
        //    `end_window` (it samples stats and can change CTA status), so
        //    every SM must be stepped at the boundary cycle.
        if self.cycle == self.next_window {
            self.next_window += self.cfg.window_cycles;
            for sm in &mut self.sms {
                sm.end_window(self.cycle, &self.cfg);
            }
            self.dispatch_ctas();
            for i in 0..n_sms {
                self.calendar.wake_at(i, self.cycle);
            }
        }
    }

    /// Phase-1 horizon inputs, identical for every due SM this step: the
    /// burst cap (window edge, cycle cap) and the earliest possible
    /// inbound-delivery cycle (youngest queued response across all
    /// partitions, floored by the interconnect latency of one not yet
    /// queued). Valid to compute once up front because phase 1 never
    /// pushes into `from_l2` and never moves the window edge — which is
    /// also exactly why the due spans may run concurrently.
    fn horizon_inputs(&self, cycle: Cycle) -> (Cycle, Cycle) {
        let base = self.next_window.min(self.cfg.max_cycles);
        let mut t_del = cycle + self.cfg.icnt_latency as Cycle;
        for p in &self.partitions {
            if let Some(t) = p.from_l2.next_due() {
                t_del = t_del.min(t);
            }
        }
        (base, t_del)
    }

    /// Safe local-simulation horizon (exclusive) for due SM `i`: nothing
    /// external can touch the SM before it. The window boundary runs
    /// `end_window` on every SM; with requests in flight, the earliest
    /// possible inbound delivery is `t_del` — and a delivery at cycle `t`
    /// lands after the SM's own phase-1 view of `t`, so the SM may locally
    /// simulate through `t` itself. Without bursting, exactly one cycle.
    fn sm_horizon(&self, i: usize, cycle: Cycle, base_h: Cycle, t_del: Cycle) -> Cycle {
        if self.burst {
            let mut h = base_h;
            if self.in_flight[i] > 0 {
                h = h.min(t_del + 1);
            }
            h.max(cycle + 1)
        } else {
            cycle + 1
        }
    }

    /// Phase-1 flush of SM `i`'s held outbox batches: every batch stamped
    /// at or before `cycle` enters the interconnect now (this global step
    /// *is* its emission cycle), then the flush slot re-arms at the next
    /// held stamp or parks.
    fn flush_pending(&mut self, i: usize, cycle: Cycle) {
        if self.pending_out[i].front().is_none_or(|(stamp, _)| *stamp > cycle) {
            return;
        }
        let n_sms = self.sms.len();
        let n_parts = self.partitions.len();
        let part_mask = self.part_mask;
        while let Some((stamp, _)) = self.pending_out[i].front() {
            if *stamp > cycle {
                break;
            }
            let (_, mut batch) = self.pending_out[i].pop_front().unwrap();
            for req in batch.drain(..) {
                self.partitions[(req.line.0 & part_mask) as usize].to_l2.push(req, cycle);
            }
            self.sms[i].outbox_pool.push(batch); // keep the allocation
        }
        match self.pending_out[i].front() {
            Some((stamp, _)) => self.calendar.schedule(n_sms + n_parts + i, *stamp),
            None => self.calendar.park(n_sms + n_parts + i),
        }
    }

    /// Post-span bookkeeping for SM `i`. Runs serially, in SM-id order, on
    /// both phase-1 paths — everything here touches shared state (the CTA
    /// pool, the partition queues, the calendar), so under the pool it is
    /// exactly the order-sensitive remainder deferred to the rendezvous.
    fn absorb_span(&mut self, i: usize, cycle: Cycle, end: Cycle, ticks: u64) {
        let n_sms = self.sms.len();
        let n_parts = self.partitions.len();
        let part_mask = self.part_mask;
        self.comp_stepped[i] += ticks;
        self.local_time[i] = end;
        // CTA reap and refill happen at the SM's local time: the span
        // ends on the cycle a CTA finishes, exactly where the per-cycle
        // loop would have reaped it.
        let sm = &mut self.sms[i];
        let completed = sm.reap_completed_ctas(end);
        if completed > 0 && self.remaining_ctas > 0 {
            // Replace finished CTAs promptly (an inactive CTA, if any,
            // was already re-activated inside the SM).
            while self.remaining_ctas > 0 && sm.wants_new_cta() {
                sm.set_next_cta_ordinal(self.cta_ordinal);
                if !sm.try_launch_cta(&self.kernel, &self.cfg) {
                    break;
                }
                self.remaining_ctas -= 1;
                self.cta_ordinal += 1;
            }
        }
        // The reap/refill block above can itself emit (a CTA limit
        // re-activation starts restore DMA, a launch may start
        // backup); those requests leave the SM at its local time, so
        // fold them in as one more emission batch stamped `end`.
        if !sm.outbox.is_empty() {
            let batch = std::mem::replace(&mut sm.outbox, sm.outbox_pool.pop().unwrap_or_default());
            sm.emissions.push((end, batch));
        }
        // Drain the span's emission batches into the interconnect,
        // steering each request to the partition owning its line
        // (power-of-two interleave). Batches are stamped with their
        // emission cycle in non-decreasing order; ones from the past
        // of the global clock (at most the span's first tick and the
        // reap above can produce them) go straight in, future ones
        // wait for their flush slot.
        if !sm.emissions.is_empty() {
            for k in 0..sm.emissions.len() {
                let stamp = sm.emissions[k].0;
                let mut batch = std::mem::take(&mut sm.emissions[k].1);
                self.in_flight[i] += batch.len() as u32;
                if stamp <= cycle {
                    for req in batch.drain(..) {
                        self.partitions[(req.line.0 & part_mask) as usize].to_l2.push(req, cycle);
                    }
                    sm.outbox_pool.push(batch);
                } else {
                    self.pending_out[i].push_back((stamp, batch));
                }
            }
            sm.emissions.clear();
            if let Some((stamp, _)) = self.pending_out[i].front() {
                self.calendar.wake_at(n_sms + n_parts + i, *stamp);
            }
        }
        let due = self.sms[i].next_due(end).unwrap_or(Cycle::MAX);
        self.calendar.schedule(i, due);
    }

    /// Phase 1 on the worker pool: freeze the step's due-SM set and each
    /// due SM's horizon, execute the spans concurrently, then merge
    /// serially in SM-id order at the rendezvous barrier.
    ///
    /// Byte-identity argument, piece by piece:
    ///
    /// * **Frozen due set / horizons.** The serial loop evaluates
    ///   `is_due(i)` and the horizon mid-loop, but phase 1 never
    ///   reschedules *another* SM's slot ([`Self::absorb_span`] touches
    ///   only SM `i`'s slots) and never changes a horizon input
    ///   ([`Self::horizon_inputs`]), so the up-front snapshot equals the
    ///   serial loop's lazy reads.
    /// * **Independent spans.** `Sm::tick_span` touches only the SM's own
    ///   state (pipeline, caches, policy instance, RNG — see its docs), so
    ///   span `i` computes the same `(end, ticks)` and emission batches on
    ///   any thread, in any completion order.
    /// * **Canonical merge.** The serial loop's partition-queue push order
    ///   within a step is flush(0), drain(0), flush(1), drain(1), …; the
    ///   merge loop below reproduces exactly that per-SM interleave (a due
    ///   SM's flush is a no-op — its `pending_out` is empty — so span
    ///   results never race their own flush). CTA refill consumes the
    ///   shared `remaining_ctas`/`cta_ordinal` counters in the same SM-id
    ///   order as the serial loop.
    fn step_sms_parallel(&mut self, cycle: Cycle) {
        let n_sms = self.sms.len();
        let (base_h, t_del) = self.horizon_inputs(cycle);
        let mut due = std::mem::take(&mut self.par_due);
        let mut horizons = std::mem::take(&mut self.par_horizons);
        let mut results = std::mem::take(&mut self.par_results);
        due.clear();
        self.calendar.collect_due(cycle, 0, n_sms, &mut due);
        horizons.clear();
        horizons.extend(due.iter().map(|&i| self.sm_horizon(i as usize, cycle, base_h, t_del)));
        results.clear();
        results.resize(due.len(), (0, 0));
        if due.len() >= 2 {
            for &i in &due {
                // A due SM holds no batches (see the serial loop), so the
                // span cannot race its own flush at the merge.
                debug_assert!(self.pending_out[i as usize].is_empty());
            }
            let sms = SendPtr(self.sms.as_mut_ptr());
            let out = SendPtr(results.as_mut_ptr());
            let due_ref: &[u32] = &due;
            let horizons_ref: &[Cycle] = &horizons;
            let kernel = &self.kernel;
            let cfg = &self.cfg;
            let pool = self.pool.as_mut().expect("parallel path requires a pool");
            pool.run_round(due_ref.len(), &move |k| {
                // SAFETY: the pool claims each `k` exactly once; distinct
                // items name distinct SMs (the due list is strictly
                // increasing) and distinct result slots, `tick_span`
                // confines itself to per-SM state, and the publisher
                // blocks at the barrier before touching `sms`/`results`
                // again — so every access is exclusive while it happens.
                let sm = unsafe { &mut *sms.get().add(due_ref[k] as usize) };
                let r = sm.tick_span(cycle, horizons_ref[k], kernel, cfg);
                unsafe { *out.get().add(k) = r };
            });
        } else {
            // 0 or 1 due SMs: a round would be pure synchronization
            // overhead; run inline on the main thread.
            for k in 0..due.len() {
                let i = due[k] as usize;
                debug_assert!(self.pending_out[i].is_empty());
                results[k] = self.sms[i].tick_span(cycle, horizons[k], &self.kernel, &self.cfg);
            }
        }
        // Rendezvous merge: one pass over ALL SMs in id order, preserving
        // the serial loop's exact flush/drain interleave per SM.
        let mut k = 0usize;
        for i in 0..n_sms {
            self.flush_pending(i, cycle);
            if k < due.len() && due[k] as usize == i {
                let (end, ticks) = results[k];
                k += 1;
                self.absorb_span(i, cycle, end, ticks);
            }
        }
        debug_assert_eq!(k, due.len(), "every span result must be merged");
        self.par_due = due;
        self.par_horizons = horizons;
        self.par_results = results;
    }

    /// Effective intra-simulation thread count: the pool's size, or 1 on
    /// the serial path (including the tracer-forced pin and the SM-count
    /// clamp — a 1-SM configuration is always serial).
    pub fn sim_threads(&self) -> u32 {
        self.pool.as_ref().map_or(1, |p| p.n_threads() as u32)
    }

    /// Read-only view of one memory partition (tests, experiments).
    pub fn partition(&self, p: u32) -> &MemPartition {
        &self.partitions[p as usize]
    }

    /// Number of memory partitions.
    pub fn n_partitions(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// One-line snapshot of queue depths (debugging stalls); memory-side
    /// depths are summed over the partitions.
    pub fn debug_queues(&self) -> String {
        let sm0 = &self.sms[0];
        let dram: usize = self.partitions.iter().map(|p| p.dram.pending()).sum();
        let to_l2: usize = self.partitions.iter().map(|p| p.to_l2.in_flight()).sum();
        let from_l2: usize = self.partitions.iter().map(|p| p.from_l2.in_flight()).sum();
        format!(
            "cycle={} dram={} to_l2={} from_l2={} l1_mshr(sm0)={} sm0_active={} sm0_inactive={}",
            self.cycle,
            dram,
            to_l2,
            from_l2,
            sm0.l1.mshrs_ref().in_flight(),
            sm0.active_ctas(),
            sm0.inactive_ctas(),
        )
    }

    /// Merges per-SM stats, computes energy, and returns the run summary.
    pub fn collect_stats(&mut self) -> SimStats {
        let mut total =
            SimStats { cycles: self.cycle, completed: self.done(), ..SimStats::default() };
        // Front-end counters owned by the SMs (descriptor cache, per-phase
        // cycle attribution); summed here, carried into the merged events.
        let mut desc_hits = 0u64;
        let mut desc_misses = 0u64;
        let mut desc_entries = 0u64;
        let mut desc_bytes = 0u64;
        let mut sm_lsu_busy_cycles = 0u64;
        let mut sm_issue_scan_cycles = 0u64;
        let mut burst = ProfileEvents::default();
        for sm in &mut self.sms {
            sm.finalize_stats();
            let s = &sm.stats;
            desc_hits += s.events.desc_hits;
            desc_misses += s.events.desc_misses;
            desc_entries += s.events.desc_entries;
            desc_bytes += s.events.desc_bytes;
            sm_lsu_busy_cycles += s.events.sm_lsu_busy_cycles;
            sm_issue_scan_cycles += s.events.sm_issue_scan_cycles;
            burst.sm_bursts += s.events.sm_bursts;
            burst.sm_burst_cycles += s.events.sm_burst_cycles;
            burst.sm_burst_len_1 += s.events.sm_burst_len_1;
            burst.sm_burst_len_2_3 += s.events.sm_burst_len_2_3;
            burst.sm_burst_len_4_7 += s.events.sm_burst_len_4_7;
            burst.sm_burst_len_8_15 += s.events.sm_burst_len_8_15;
            burst.sm_burst_len_16_63 += s.events.sm_burst_len_16_63;
            burst.sm_burst_len_64p += s.events.sm_burst_len_64p;
            burst.sm_lsu_batched += s.events.sm_lsu_batched;
            total.instructions += s.instructions;
            total.l1_hits += s.l1_hits;
            total.miss_cold += s.miss_cold;
            total.miss_2c += s.miss_2c;
            total.bypasses += s.bypasses;
            total.reg_hits += s.reg_hits;
            total.stores += s.stores;
            total.rf_reads += s.rf_reads;
            total.rf_writes += s.rf_writes;
            total.rf_bank_conflicts += s.rf_bank_conflicts;
            total.mshr_stalls += s.mshr_stalls;
            total.policy_extra_pj += s.policy_extra_pj;
            total.monitor_periods = total.monitor_periods.max(s.monitor_periods);
            total.merge_per_load_dense(&s.per_load_dense);
            // RF samples: averaged per SM, then concatenated (homogeneous).
            total.rf_samples.extend(s.rf_samples.iter().copied());
            total.timeline.extend(s.timeline.iter().copied());
            total.merge_load_detail_dense(&s.load_detail_dense);
        }
        // Per-access accounting is dense; the map-shaped public views are
        // produced once, here.
        total.materialize_maps();
        let n_sms = self.sms.len();
        let n_parts = self.partitions.len();
        let l2_requests: u64 = self.partitions.iter().map(|p| p.l2_access_count()).sum();
        let dram_services: u64 = self.partitions.iter().map(|p| p.dram_services()).sum();
        let icnt_delivered: u64 =
            self.partitions.iter().map(|p| p.to_l2.delivered() + p.from_l2.delivered()).sum();
        let dram_stepped: u64 = self.comp_stepped[n_sms..n_sms + n_parts].iter().sum();
        let icnt_stepped: u64 =
            self.comp_stepped[n_sms + n_parts..n_sms + 3 * n_parts].iter().sum();
        total.events = ProfileEvents {
            stepped_cycles: self.stepped_cycles,
            skipped_cycles: self.skipped_cycles,
            skip_jumps: self.skip_jumps,
            l2_requests,
            dram_services,
            icnt_delivered,
            dispatch_passes: self.dispatch_passes,
            // Each component is either stepped or slept every simulated
            // cycle, so slept counts are derived, never maintained. DRAM
            // and icnt totals count every channel/queue instance, so their
            // stepped + slept sums equal `n_parts * cycles` (resp.
            // `2 * n_parts * cycles`).
            sm_stepped_cycles: self.comp_stepped[..n_sms].iter().sum(),
            sm_slept_cycles: n_sms as u64 * self.cycle
                - self.comp_stepped[..n_sms].iter().sum::<u64>(),
            dram_stepped_cycles: dram_stepped,
            dram_slept_cycles: n_parts as u64 * self.cycle - dram_stepped,
            icnt_stepped_cycles: icnt_stepped,
            icnt_slept_cycles: 2 * n_parts as u64 * self.cycle - icnt_stepped,
            skip_to_sm: self.skip_to_sm,
            skip_to_dram: self.skip_to_dram,
            skip_to_icnt: self.skip_to_icnt,
            skip_to_window: self.skip_to_window,
            skip_to_max: self.skip_to_max,
            desc_hits,
            desc_misses,
            desc_entries,
            desc_bytes,
            sm_lsu_busy_cycles,
            sm_issue_scan_cycles,
            sm_bursts: burst.sm_bursts,
            sm_burst_cycles: burst.sm_burst_cycles,
            sm_burst_len_1: burst.sm_burst_len_1,
            sm_burst_len_2_3: burst.sm_burst_len_2_3,
            sm_burst_len_4_7: burst.sm_burst_len_4_7,
            sm_burst_len_8_15: burst.sm_burst_len_8_15,
            sm_burst_len_16_63: burst.sm_burst_len_16_63,
            sm_burst_len_64p: burst.sm_burst_len_64p,
            sm_lsu_batched: burst.sm_lsu_batched,
            ..ProfileEvents::default()
        };
        // Parallel-executor telemetry: all-zero on the serial path, so
        // threads=1 output (including these counters) is bit-identical to
        // the pre-pool simulator. `par_rounds`/`par_spans` are
        // deterministic for a fixed thread count; `par_steals` and the
        // barrier wait are timing-dependent and must be scrubbed by
        // cross-thread-count digest comparisons.
        if let Some(pool) = &self.pool {
            let t = pool.telemetry();
            total.events.par_threads = pool.n_threads() as u64;
            total.events.par_rounds = t.rounds;
            total.events.par_spans = t.spans;
            total.events.par_steals = t.steals;
            total.events.par_barrier_wait_ns = t.barrier_wait_ns;
        }
        // Per-partition breakdown, indexed by partition id.
        total.partitions = (0..n_parts)
            .map(|p| {
                let part = &self.partitions[p];
                let (l2_hits, l2_misses) = part.l2.hit_miss();
                PartitionCounters {
                    l2_accesses: part.l2_access_count(),
                    l2_hits,
                    l2_misses,
                    dram_services: part.dram_services(),
                    dram_bytes: part.dram.traffic_bytes(),
                    icnt_delivered: part.to_l2.delivered() + part.from_l2.delivered(),
                    dram_stepped_cycles: self.comp_stepped[n_sms + p],
                    to_l2_stepped_cycles: self.comp_stepped[n_sms + n_parts + p],
                    from_l2_stepped_cycles: self.comp_stepped[n_sms + 2 * n_parts + p],
                }
            })
            .collect();
        for part in &total.partitions {
            total.l2_hits += part.l2_hits;
            total.l2_misses += part.l2_misses;
            for (acc, b) in total.dram_bytes.iter_mut().zip(part.dram_bytes) {
                *acc += b;
            }
        }
        let activity = Activity {
            cycles: total.cycles,
            n_sms: self.cfg.n_sms,
            instructions: total.instructions,
            rf_accesses: total.rf_reads + total.rf_writes,
            l1_accesses: total.mem_accesses() + total.stores,
            l2_accesses: l2_requests,
            dram_bytes: total.dram_bytes.iter().sum(),
            policy_extra_pj: total.policy_extra_pj,
        };
        total.energy_mj = self.cfg.energy.total_mj(&activity);
        total
    }

    /// Collects the per-warp streams recorded by a capture run. Each stream
    /// executes on exactly one SM, so the merge picks, per grid-wide stream
    /// index, the single SM whose recorder holds its ops; a stream no SM
    /// recorded (its CTA never launched) stays empty for the caller's
    /// completeness check.
    fn take_capture(&mut self) -> Vec<WarpStream> {
        let n = self.kernel.grid_ctas as usize * self.kernel.warps_per_cta as usize;
        let mut merged = vec![WarpStream::default(); n];
        for sm in &mut self.sms {
            if let Some(cap) = sm.take_capture() {
                for (i, s) in cap.into_iter().enumerate() {
                    if !s.ops.is_empty() {
                        merged[i] = s;
                    }
                }
            }
        }
        merged
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("cycle", &self.cycle)
            .field("kernel", &self.kernel.name)
            .field("remaining_ctas", &self.remaining_ctas)
            .finish()
    }
}

/// Convenience: run `kernel` on `cfg` with the given policy factory.
///
/// # Thread safety
///
/// `run_kernel` is a pure function of its inputs: it allocates a fresh
/// [`Gpu`] (no globals, no interior mutability shared across calls) and the
/// simulation is bit-deterministic for a given `(cfg, kernel, factory)`.
/// All inputs are `Send + Sync` ([`GpuConfig`]/[`KernelSpec`] are plain
/// data; [`PolicyFactory`] requires it by definition), so independent runs
/// may execute concurrently on a worker pool — this is what the `lb-bench`
/// run engine does — and produce byte-identical statistics regardless of
/// thread count or completion order.
pub fn run_kernel(cfg: GpuConfig, kernel: KernelSpec, factory: &PolicyFactory<'_>) -> SimStats {
    Gpu::new(cfg, kernel, factory).run()
}

/// Like [`run_kernel`], but capturing microarchitectural events through
/// `tracer`. With `Tracer::off()` this is exactly `run_kernel`: the emit
/// sites reduce to a single dead branch each, and the simulated state —
/// and therefore the returned stats — is untouched either way (tracing is
/// strictly observational).
///
/// The caller keeps a clone of the handle and calls `Tracer::finish()`
/// (or `take_bytes()` for memory sinks) after this returns.
pub fn run_kernel_traced(
    cfg: GpuConfig,
    kernel: KernelSpec,
    factory: &PolicyFactory<'_>,
    tracer: Tracer,
) -> SimStats {
    Gpu::new_traced(cfg, kernel, factory, tracer).run()
}

/// Runs a replay workload to completion: every warp executes its recorded
/// stream through the unmodified pipeline. Deterministic and thread-safe on
/// the same terms as [`run_kernel`]; the shared [`ReplayKernel`] is
/// read-only throughout.
pub fn run_replay_kernel(
    cfg: GpuConfig,
    rep: &Arc<ReplayKernel>,
    factory: &PolicyFactory<'_>,
) -> SimStats {
    Gpu::new_replay(cfg, Arc::clone(rep), factory).run()
}

/// Like [`run_replay_kernel`], but capturing microarchitectural events
/// through `tracer` (strictly observational, as in [`run_kernel_traced`]).
pub fn run_replay_kernel_traced(
    cfg: GpuConfig,
    rep: &Arc<ReplayKernel>,
    factory: &PolicyFactory<'_>,
    tracer: Tracer,
) -> SimStats {
    Gpu::new_inner(cfg, rep.stub.clone(), Some(Arc::clone(rep)), false, factory, tracer).run()
}

/// Runs `kernel` synthetically while recording every warp's issue-order
/// instruction/address stream, returning the run's stats and the recorded
/// [`ReplayKernel`]. Fails if the run hits the cycle cap (the streams would
/// be truncated) or any warp never executed (the grid exceeds one dispatch
/// wave, so stream placement would not be policy-invariant).
pub fn capture_kernel(
    cfg: GpuConfig,
    kernel: KernelSpec,
    factory: &PolicyFactory<'_>,
) -> Result<(SimStats, ReplayKernel), CaptureError> {
    let stub = kernel.clone();
    let mut gpu = Gpu::new_inner(cfg, kernel, None, true, factory, Tracer::off());
    let stats = gpu.run();
    if !stats.completed {
        return Err(CaptureError::Incomplete { cycles: stats.cycles });
    }
    let streams = gpu.take_capture();
    if let Some(i) = streams.iter().position(|s| s.ops.is_empty()) {
        return Err(CaptureError::EmptyStream { stream: i });
    }
    Ok((stats, ReplayKernel { stub, streams }))
}

/// Replays `rep` while re-capturing the executed streams. A faithful replay
/// re-captures exactly what it consumed, so encoding the result must be
/// byte-identical to the input file — the self-check `ci/replay_smoke.sh`
/// runs on every captured corpus.
pub fn run_replay_capture(
    cfg: GpuConfig,
    rep: &Arc<ReplayKernel>,
    factory: &PolicyFactory<'_>,
) -> Result<(SimStats, ReplayKernel), CaptureError> {
    let mut gpu =
        Gpu::new_inner(cfg, rep.stub.clone(), Some(Arc::clone(rep)), true, factory, Tracer::off());
    let stats = gpu.run();
    if !stats.completed {
        return Err(CaptureError::Incomplete { cycles: stats.cycles });
    }
    let streams = gpu.take_capture();
    if let Some(i) = streams.iter().position(|s| s.ops.is_empty()) {
        return Err(CaptureError::EmptyStream { stream: i });
    }
    Ok((stats, ReplayKernel { stub: rep.stub.clone(), streams }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::pattern::AccessPattern;
    use crate::policy::baseline_factory;

    fn fast_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(2).with_windows(5_000, 60_000)
    }

    fn cache_friendly_kernel() -> KernelSpec {
        KernelBuilder::new("friendly")
            .grid(8, 4)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::reuse_working_set(8 * 1024, true), 2)
            .alu(4)
            .iterations(300)
            .build()
            .unwrap()
    }

    #[test]
    fn small_kernel_completes() {
        let k = KernelBuilder::new("tiny")
            .grid(4, 2)
            .regs_per_thread(16)
            .alu(2)
            .iterations(10)
            .build()
            .unwrap();
        let stats = run_kernel(fast_cfg(), k, &baseline_factory());
        assert!(stats.completed, "tiny ALU kernel must drain");
        // 4 CTAs x 2 warps x 1 body instruction x 10 iterations.
        assert_eq!(stats.instructions, 4 * 2 * 10);
    }

    #[test]
    fn memory_kernel_produces_hits_and_misses() {
        let stats = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert!(stats.mem_accesses() > 1000);
        assert!(stats.l1_hits > 0, "8 KB shared working set must hit in 48 KB L1");
        assert!(stats.miss_cold > 0, "first touches are cold misses");
        assert!(stats.ipc() > 0.1, "ipc = {}", stats.ipc());
    }

    #[test]
    fn streaming_kernel_mostly_misses() {
        let k = KernelBuilder::new("stream")
            .grid(8, 4)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::streaming(128), 2)
            .alu(4)
            .iterations(200)
            .build()
            .unwrap();
        let stats = run_kernel(fast_cfg(), k, &baseline_factory());
        assert!(
            stats.miss_ratio() > 0.9,
            "streaming load should thrash: miss ratio {}",
            stats.miss_ratio()
        );
    }

    #[test]
    fn thrashing_working_set_has_capacity_misses() {
        let k = KernelBuilder::new("thrash")
            .grid(8, 8)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::reuse_working_set(256 * 1024, true), 2)
            .alu(2)
            .iterations(400)
            .build()
            .unwrap();
        let stats = run_kernel(fast_cfg(), k, &baseline_factory());
        assert!(
            stats.miss_2c > stats.miss_cold,
            "a 256 KB set in a 48 KB cache must produce capacity misses (2c={} cold={})",
            stats.miss_2c,
            stats.miss_cold
        );
    }

    #[test]
    fn dram_traffic_accounted() {
        let stats = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert!(stats.dram_bytes[0] > 0, "demand reads must reach DRAM");
    }

    #[test]
    fn energy_positive() {
        let stats = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert!(stats.energy_mj > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        let b = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1_hits, b.l1_hits);
        assert_eq!(a.miss_2c, b.miss_2c);
    }

    /// Architectural scalars + events with the timing-dependent parallel
    /// telemetry scrubbed: equal across any `sim_threads`.
    fn arch_digest(mut s: SimStats) -> (Vec<u64>, ProfileEvents) {
        s.events.par_threads = 0;
        s.events.par_rounds = 0;
        s.events.par_spans = 0;
        s.events.par_steals = 0;
        s.events.par_barrier_wait_ns = 0;
        (
            vec![
                s.cycles,
                s.instructions,
                s.l1_hits,
                s.miss_cold,
                s.miss_2c,
                s.bypasses,
                s.stores,
                s.rf_reads,
                s.rf_writes,
                s.rf_bank_conflicts,
                s.mshr_stalls,
                s.l2_hits,
                s.l2_misses,
                s.dram_bytes.iter().sum(),
                s.completed as u64,
            ],
            s.events,
        )
    }

    #[test]
    fn parallel_spans_match_serial_exactly() {
        let k = cache_friendly_kernel();
        let serial = arch_digest(run_kernel(fast_cfg(), k.clone(), &baseline_factory()));
        for threads in [2, 4, 7] {
            let cfg = fast_cfg().with_sms(4).with_sim_threads(threads);
            let base = arch_digest(run_kernel(
                cfg.clone().with_sim_threads(1),
                k.clone(),
                &baseline_factory(),
            ));
            let par = arch_digest(run_kernel(cfg, k.clone(), &baseline_factory()));
            assert_eq!(base, par, "threads={threads} diverged from serial on 4 SMs");
        }
        // And the 2-SM fast config agrees with itself at 2 threads.
        let par2 = arch_digest(run_kernel(fast_cfg().with_sim_threads(2), k, &baseline_factory()));
        assert_eq!(serial, par2);
    }

    #[test]
    fn parallel_spans_match_serial_without_burst() {
        // Span length 1 everywhere: the pool still engages (many due SMs
        // per cycle) and must still be byte-identical.
        let k = cache_friendly_kernel();
        let cfg = fast_cfg().with_sms(4).with_burst(false);
        let serial = arch_digest(run_kernel(cfg.clone(), k.clone(), &baseline_factory()));
        let par = arch_digest(run_kernel(cfg.with_sim_threads(3), k, &baseline_factory()));
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_pool_reports_engagement() {
        let k = cache_friendly_kernel();
        let stats = run_kernel(fast_cfg().with_sms(4).with_sim_threads(2), k, &baseline_factory());
        assert_eq!(stats.events.par_threads, 2);
        assert!(stats.events.par_rounds > 0, "4 busy SMs must produce parallel rounds");
        assert!(stats.events.par_spans >= 2 * stats.events.par_rounds);
        // Serial runs keep every parallel counter at zero.
        let serial = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert_eq!(serial.events.par_threads, 0);
        assert_eq!(serial.events.par_rounds, 0);
        assert_eq!(serial.events.par_spans, 0);
    }

    #[test]
    fn sim_threads_clamped_to_sm_count() {
        let k = KernelBuilder::new("tiny")
            .grid(2, 2)
            .regs_per_thread(16)
            .alu(2)
            .iterations(5)
            .build()
            .unwrap();
        // 1 SM: always serial no matter what was asked.
        let cfg = GpuConfig::default().with_sms(1).with_windows(5_000, 60_000).with_sim_threads(8);
        let gpu = Gpu::new(cfg, k.clone(), &baseline_factory());
        assert_eq!(gpu.sim_threads(), 1);
        // 2 SMs, 8 requested: pool clamps to 2.
        let gpu = Gpu::new(fast_cfg().with_sim_threads(8), k, &baseline_factory());
        assert_eq!(gpu.sim_threads(), 2);
    }

    #[test]
    fn tracer_pins_parallelism_to_one_thread() {
        let k = cache_friendly_kernel();
        let writer = lb_trace::TraceWriter::to_memory(lb_trace::MASK_ALL);
        let tracer = Tracer::new(writer);
        let gpu = Gpu::new_traced(
            fast_cfg().with_sms(4).with_sim_threads(4),
            k,
            &baseline_factory(),
            tracer,
        );
        assert_eq!(gpu.sim_threads(), 1, "lockstep tracing must pin threads=1");
    }

    #[test]
    fn capture_replay_round_trip_matches() {
        let cfg = fast_cfg();
        let k = KernelBuilder::new("rt")
            .grid(4, 2)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::reuse_working_set(8 * 1024, true), 2)
            .alu(2)
            .iterations(50)
            .build()
            .unwrap();
        // One-wave grid: every CTA places at construction time, so stream
        // placement is identical in the direct, capture and replay runs.
        assert!(crate::replay::resident_ctas(&cfg, &k) * cfg.n_sms >= k.grid_ctas);
        let direct = run_kernel(cfg.clone(), k.clone(), &baseline_factory());
        let (cap_stats, rep) = capture_kernel(cfg.clone(), k, &baseline_factory()).unwrap();
        rep.validate().unwrap();
        assert_eq!(direct.instructions, cap_stats.instructions);
        assert_eq!(direct.cycles, cap_stats.cycles);
        let rep = std::sync::Arc::new(rep);
        let replayed = run_replay_kernel(cfg, &rep, &baseline_factory());
        assert!(replayed.completed);
        assert_eq!(direct.cycles, replayed.cycles);
        assert_eq!(direct.instructions, replayed.instructions);
        assert_eq!(direct.l1_hits, replayed.l1_hits);
        assert_eq!(direct.miss_cold, replayed.miss_cold);
        assert_eq!(direct.miss_2c, replayed.miss_2c);
        assert_eq!(direct.stores, replayed.stores);
        assert_eq!(direct.rf_reads, replayed.rf_reads);
        assert_eq!(direct.rf_writes, replayed.rf_writes);
        // Replay-with-capture reproduces the consumed streams exactly.
        let (_, rep2) = run_replay_capture(fast_cfg(), &rep, &baseline_factory()).unwrap();
        assert_eq!(*rep, rep2);
    }

    #[test]
    fn capture_rejects_truncated_run() {
        let cfg = GpuConfig::default().with_sms(1).with_windows(1_000, 3_000);
        let k = KernelBuilder::new("long")
            .grid(2, 2)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::streaming(128), 1)
            .iterations(100_000)
            .build()
            .unwrap();
        match capture_kernel(cfg, k, &baseline_factory()) {
            Err(crate::replay::CaptureError::Incomplete { cycles }) => assert!(cycles <= 3_000),
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn cycle_cap_respected() {
        let cfg = GpuConfig::default().with_sms(1).with_windows(1_000, 3_000);
        let k = KernelBuilder::new("long")
            .grid(64, 8)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::streaming(128), 1)
            .iterations(100_000)
            .build()
            .unwrap();
        let stats = run_kernel(cfg, k, &baseline_factory());
        assert!(!stats.completed);
        assert!(stats.cycles <= 3_000);
    }
}
