//! Top-level GPU: CTA dispatcher, interconnect, shared L2, DRAM, and the
//! per-cycle simulation loop.

use crate::cache::{L2Cache, MshrOutcome};
use crate::config::GpuConfig;
use crate::dram::{Dram, DramDone, TrafficClass};
use crate::energy::Activity;
use crate::icnt::IcntQueue;
use crate::kernel::KernelSpec;
use crate::mem::{MemReq, MemReqKind};
use crate::policy::{PolicyFactory, SmPolicy};
use crate::sm::{SkipCheck, Sm};
use crate::stats::{ProfileEvents, SimStats};
use crate::types::{Cycle, Pc, SmId};

/// A complete simulated GPU executing one kernel.
pub struct Gpu {
    cfg: GpuConfig,
    kernel: KernelSpec,
    sms: Vec<Sm>,
    l2: L2Cache,
    to_l2: IcntQueue<MemReq>,
    from_l2: IcntQueue<MemReq>,
    dram: Dram,
    /// Requests whose DRAM token indexes this table.
    dram_pending: Vec<MemReq>,
    dram_free: Vec<usize>,
    /// CTAs of the grid not yet dispatched.
    remaining_ctas: u32,
    cycle: Cycle,
    load_pcs: Vec<Pc>,
    l2_access_count: u64,
    scratch_msgs: Vec<MemReq>,
    scratch_done: Vec<DramDone>,
    /// Reusable list of SM indices still accepting CTAs during a dispatch.
    dispatch_scratch: Vec<u32>,
    /// Hot-path profiler counters (reported via `SimStats::events`).
    stepped_cycles: u64,
    skipped_cycles: u64,
    skip_jumps: u64,
    dram_services: u64,
    dispatch_passes: u64,
}

impl Gpu {
    /// Builds a GPU for `kernel` with one policy instance per SM.
    pub fn new(cfg: GpuConfig, kernel: KernelSpec, factory: &PolicyFactory<'_>) -> Self {
        let sms = (0..cfg.n_sms)
            .map(|i| {
                let policy: Box<dyn SmPolicy> = factory(SmId(i), &cfg, &kernel);
                Sm::new(SmId(i), &cfg, policy, 0x5eed ^ (i as u64))
            })
            .collect();
        let lines_per_cycle = cfg.dram_lines_per_cycle();
        let load_pcs = kernel.loads.iter().map(|l| l.pc).collect();
        let icnt_bw = (cfg.n_sms * 2).max(8);
        let mut gpu = Gpu {
            l2: L2Cache::new(&cfg.l2),
            to_l2: IcntQueue::new(cfg.icnt_latency, icnt_bw),
            from_l2: IcntQueue::new(cfg.icnt_latency, icnt_bw),
            dram: Dram::new(cfg.dram.clone(), lines_per_cycle),
            dram_pending: Vec::new(),
            dram_free: Vec::new(),
            remaining_ctas: kernel.grid_ctas,
            cycle: 0,
            load_pcs,
            l2_access_count: 0,
            scratch_msgs: Vec::new(),
            scratch_done: Vec::new(),
            dispatch_scratch: Vec::new(),
            stepped_cycles: 0,
            skipped_cycles: 0,
            skip_jumps: 0,
            dram_services: 0,
            dispatch_passes: 0,
            sms,
            cfg,
            kernel,
        };
        // Fill the SMs immediately so both `run()` and manual `step()`
        // loops start with work on board.
        gpu.dispatch_ctas();
        gpu
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The kernel being executed.
    pub fn kernel(&self) -> &KernelSpec {
        &self.kernel
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Read-only view of an SM (tests, experiments).
    pub fn sm(&self, i: u32) -> &Sm {
        &self.sms[i as usize]
    }

    /// Dispatches CTAs to every SM that has room and wants more work.
    ///
    /// Placement is round-robin (one CTA per willing SM per pass), which the
    /// paper's homogeneous-SM evaluation depends on. An SM that refuses a
    /// launch is dropped from the candidate list for the rest of this call:
    /// nothing during a dispatch can free its resources, so the refusal is
    /// permanent and rescanning it (as the old implementation did every
    /// pass) is pure waste.
    fn dispatch_ctas(&mut self) {
        self.dispatch_passes += 1;
        if self.remaining_ctas == 0 {
            return;
        }
        let mut candidates = std::mem::take(&mut self.dispatch_scratch);
        candidates.clear();
        candidates.extend(0..self.cfg.n_sms);
        while self.remaining_ctas > 0 && !candidates.is_empty() {
            candidates.retain(|&i| {
                if self.remaining_ctas == 0 {
                    return false;
                }
                let sm = &mut self.sms[i as usize];
                if sm.wants_new_cta() && sm.try_launch_cta(&self.kernel, &self.cfg) {
                    self.remaining_ctas -= 1;
                    true
                } else {
                    false
                }
            });
        }
        self.dispatch_scratch = candidates;
    }

    /// Runs the kernel to completion or `max_cycles`, returning merged stats.
    ///
    /// Uses idle-cycle fast-forward: when no component can make progress at
    /// the current cycle, the loop jumps straight to the earliest cycle at
    /// which anything can happen instead of stepping through dead cycles.
    /// `step()` itself is untouched, so manual step loops behave exactly as
    /// before, and a fast-forwarded run is bit-identical to a stepped one.
    pub fn run(&mut self) -> SimStats {
        while self.cycle < self.cfg.max_cycles {
            self.try_skip_idle();
            if self.cycle >= self.cfg.max_cycles {
                break;
            }
            self.step();
            if self.done() {
                break;
            }
        }
        self.collect_stats()
    }

    /// Fast-forwards over cycles in which provably nothing happens.
    ///
    /// Skipping is legal only when every per-cycle effect of `step()` is a
    /// no-op: every SM is idle with empty LSU queue and outbox (so no
    /// per-cycle MSHR-stall accounting or request draining), the DRAM
    /// request queues are empty (so no scheduling decisions), and no
    /// interconnect delivery, DRAM completion, warp wake-up, or SM-local
    /// completion is due at the current cycle. The jump target is the
    /// minimum over all pending wake-up times, capped at the last cycle of
    /// the current monitoring window (that cycle's step fires `end_window`)
    /// and at `max_cycles`. The only per-cycle state mutated during the
    /// skipped span is the DRAM bandwidth token bucket, which
    /// [`Dram::skip_idle_cycles`] replays exactly.
    fn try_skip_idle(&mut self) {
        let cycle = self.cycle;
        if !self.dram.queues_empty() {
            return;
        }
        let mut next: Option<Cycle> = None;
        for t in [self.to_l2.next_ready(), self.from_l2.next_ready(), self.dram.next_completion()]
            .into_iter()
            .flatten()
        {
            if t <= cycle {
                return;
            }
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        for sm in &self.sms {
            match sm.skip_check(cycle, &self.kernel, &self.cfg) {
                SkipCheck::Busy => return,
                SkipCheck::IdleUntil(Some(t)) => {
                    if t <= cycle {
                        return;
                    }
                    next = Some(next.map_or(t, |n| n.min(t)));
                }
                SkipCheck::IdleUntil(None) => {}
            }
        }
        // Nothing can happen strictly before `next`. The last cycle of the
        // current window must still be stepped so its `end_window` fires on
        // schedule; `max_cycles` ends the run loop outright.
        let window_last = (cycle / self.cfg.window_cycles + 1) * self.cfg.window_cycles - 1;
        let target = next.unwrap_or(Cycle::MAX).min(window_last).min(self.cfg.max_cycles);
        if target <= cycle {
            return;
        }
        let n = target - cycle;
        self.dram.skip_idle_cycles(n);
        self.cycle = target;
        self.skipped_cycles += n;
        self.skip_jumps += 1;
    }

    /// All work dispatched and drained.
    pub fn done(&self) -> bool {
        self.remaining_ctas == 0
            && self.sms.iter().all(|s| s.drained())
            && self.to_l2.in_flight() == 0
            && self.from_l2.in_flight() == 0
            && self.dram.pending() == 0
    }

    /// Advances the whole GPU one cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        self.stepped_cycles += 1;

        // 1. SM pipelines.
        for sm in &mut self.sms {
            sm.tick(cycle, &self.kernel, &self.cfg);
            let completed = sm.reap_completed_ctas(cycle);
            if completed > 0 && self.remaining_ctas > 0 {
                // Replace finished CTAs promptly (an inactive CTA, if any,
                // was already re-activated inside the SM).
                while self.remaining_ctas > 0
                    && sm.wants_new_cta()
                    && sm.try_launch_cta(&self.kernel, &self.cfg)
                {
                    self.remaining_ctas -= 1;
                }
            }
            // Drain SM outbox into the interconnect.
            for req in sm.outbox.drain(..) {
                self.to_l2.push(req, cycle);
            }
        }

        // 2. L2 side: consume arriving requests.
        self.scratch_msgs.clear();
        self.to_l2.pop_ready(cycle, &mut self.scratch_msgs);
        for i in 0..self.scratch_msgs.len() {
            let req = self.scratch_msgs[i];
            self.handle_at_l2(req, cycle);
        }

        // 3. DRAM.
        self.scratch_done.clear();
        self.dram.tick(cycle, &mut self.scratch_done);
        self.dram_services += self.scratch_done.len() as u64;
        for i in 0..self.scratch_done.len() {
            let d = self.scratch_done[i];
            let req = self.dram_pending[d.token as usize];
            self.dram_free.push(d.token as usize);
            match req.kind {
                MemReqKind::Read | MemReqKind::BypassRead => {
                    self.l2.fill(req.line);
                    self.l2_access_count += 1;
                    // Wake all L2-MSHR waiters merged on this line.
                    for t in self.l2.mshrs().complete(req.line) {
                        let waiter = self.dram_pending[t as usize];
                        self.dram_free.push(t as usize);
                        self.from_l2.push(waiter, cycle);
                    }
                }
                MemReqKind::Store => {
                    // Store-buffer credit back to the SM (backpressure).
                    self.from_l2.push(req, cycle);
                }
                MemReqKind::RegBackup { .. } => {
                    // Completion notification back to the SM.
                    self.from_l2.push(req, cycle);
                }
                MemReqKind::RegRestore { .. } => {
                    self.from_l2.push(req, cycle);
                }
            }
        }

        // 4. Responses back to SMs.
        self.scratch_msgs.clear();
        self.from_l2.pop_ready(cycle, &mut self.scratch_msgs);
        for i in 0..self.scratch_msgs.len() {
            let rsp = self.scratch_msgs[i];
            let sm = &mut self.sms[rsp.sm.0 as usize];
            sm.handle_response(rsp, cycle, &self.load_pcs);
        }

        self.cycle += 1;

        // 5. Window boundary: IPC monitoring, policy decisions, throttling
        //    enforcement, and refill of freed CTA capacity.
        if self.cycle.is_multiple_of(self.cfg.window_cycles) {
            for sm in &mut self.sms {
                sm.end_window(self.cycle, &self.cfg);
            }
            self.dispatch_ctas();
        }
    }

    fn alloc_dram_slot(&mut self, req: MemReq) -> u64 {
        if let Some(i) = self.dram_free.pop() {
            self.dram_pending[i] = req;
            i as u64
        } else {
            self.dram_pending.push(req);
            (self.dram_pending.len() - 1) as u64
        }
    }

    fn handle_at_l2(&mut self, req: MemReq, cycle: Cycle) {
        match req.kind {
            MemReqKind::Read | MemReqKind::BypassRead => {
                self.l2_access_count += 1;
                if self.l2.access(req.line) {
                    // L2 hit: response after the L2 pipeline latency.
                    self.from_l2.push(req, cycle + self.cfg.l2_latency as u64);
                } else {
                    let token = self.alloc_dram_slot(req);
                    match self.l2.mshrs().allocate(req.line, token) {
                        MshrOutcome::NewEntry => {
                            // The DRAM request itself carries a fresh token
                            // so the fill can find the merged waiter list.
                            let dram_token = self.alloc_dram_slot(req);
                            self.dram.push(
                                req.line,
                                TrafficClass::DemandRead,
                                dram_token,
                                cycle + self.cfg.l2_latency as u64,
                            );
                        }
                        MshrOutcome::Merged => {}
                        MshrOutcome::Full => {
                            // Model back-pressure as a retried request.
                            self.to_l2.push(req, cycle + 16);
                            self.dram_free.push(token as usize);
                        }
                    }
                }
            }
            MemReqKind::Store => {
                // Write-through, no-allocate: straight to DRAM.
                self.l2_access_count += 1;
                let token = self.alloc_dram_slot(req);
                self.dram.push(req.line, TrafficClass::StoreWrite, token, cycle);
            }
            MemReqKind::RegBackup { .. } => {
                let token = self.alloc_dram_slot(req);
                self.dram.push(req.line, TrafficClass::RegBackup, token, cycle);
            }
            MemReqKind::RegRestore { .. } => {
                let token = self.alloc_dram_slot(req);
                self.dram.push(req.line, TrafficClass::RegRestore, token, cycle);
            }
        }
    }

    /// One-line snapshot of queue depths (debugging stalls).
    pub fn debug_queues(&self) -> String {
        let sm0 = &self.sms[0];
        format!(
            "cycle={} dram={} to_l2={} from_l2={} l1_mshr(sm0)={} sm0_active={} sm0_inactive={}",
            self.cycle,
            self.dram.pending(),
            self.to_l2.in_flight(),
            self.from_l2.in_flight(),
            sm0.l1.mshrs_ref().in_flight(),
            sm0.active_ctas(),
            sm0.inactive_ctas(),
        )
    }

    /// Merges per-SM stats, computes energy, and returns the run summary.
    pub fn collect_stats(&mut self) -> SimStats {
        let mut total =
            SimStats { cycles: self.cycle, completed: self.done(), ..SimStats::default() };
        for sm in &mut self.sms {
            sm.finalize_stats();
            let s = &sm.stats;
            total.instructions += s.instructions;
            total.l1_hits += s.l1_hits;
            total.miss_cold += s.miss_cold;
            total.miss_2c += s.miss_2c;
            total.bypasses += s.bypasses;
            total.reg_hits += s.reg_hits;
            total.stores += s.stores;
            total.rf_reads += s.rf_reads;
            total.rf_writes += s.rf_writes;
            total.rf_bank_conflicts += s.rf_bank_conflicts;
            total.mshr_stalls += s.mshr_stalls;
            total.policy_extra_pj += s.policy_extra_pj;
            total.monitor_periods = total.monitor_periods.max(s.monitor_periods);
            total.merge_per_load_dense(&s.per_load_dense);
            // RF samples: averaged per SM, then concatenated (homogeneous).
            total.rf_samples.extend(s.rf_samples.iter().copied());
            total.timeline.extend(s.timeline.iter().copied());
            total.merge_load_detail_dense(&s.load_detail_dense);
        }
        // Per-access accounting is dense; the map-shaped public views are
        // produced once, here.
        total.materialize_maps();
        total.events = ProfileEvents {
            stepped_cycles: self.stepped_cycles,
            skipped_cycles: self.skipped_cycles,
            skip_jumps: self.skip_jumps,
            l2_requests: self.l2_access_count,
            dram_services: self.dram_services,
            icnt_delivered: self.to_l2.delivered() + self.from_l2.delivered(),
            dispatch_passes: self.dispatch_passes,
        };
        let (l2h, l2m) = self.l2.hit_miss();
        total.l2_hits = l2h;
        total.l2_misses = l2m;
        total.dram_bytes = self.dram.traffic_bytes();
        let activity = Activity {
            cycles: total.cycles,
            n_sms: self.cfg.n_sms,
            instructions: total.instructions,
            rf_accesses: total.rf_reads + total.rf_writes,
            l1_accesses: total.mem_accesses() + total.stores,
            l2_accesses: self.l2_access_count,
            dram_bytes: total.dram_bytes.iter().sum(),
            policy_extra_pj: total.policy_extra_pj,
        };
        total.energy_mj = self.cfg.energy.total_mj(&activity);
        total
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("cycle", &self.cycle)
            .field("kernel", &self.kernel.name)
            .field("remaining_ctas", &self.remaining_ctas)
            .finish()
    }
}

/// Convenience: run `kernel` on `cfg` with the given policy factory.
///
/// # Thread safety
///
/// `run_kernel` is a pure function of its inputs: it allocates a fresh
/// [`Gpu`] (no globals, no interior mutability shared across calls) and the
/// simulation is bit-deterministic for a given `(cfg, kernel, factory)`.
/// All inputs are `Send + Sync` ([`GpuConfig`]/[`KernelSpec`] are plain
/// data; [`PolicyFactory`] requires it by definition), so independent runs
/// may execute concurrently on a worker pool — this is what the `lb-bench`
/// run engine does — and produce byte-identical statistics regardless of
/// thread count or completion order.
pub fn run_kernel(cfg: GpuConfig, kernel: KernelSpec, factory: &PolicyFactory<'_>) -> SimStats {
    Gpu::new(cfg, kernel, factory).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::pattern::AccessPattern;
    use crate::policy::baseline_factory;

    fn fast_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(2).with_windows(5_000, 60_000)
    }

    fn cache_friendly_kernel() -> KernelSpec {
        KernelBuilder::new("friendly")
            .grid(8, 4)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::reuse_working_set(8 * 1024, true), 2)
            .alu(4)
            .iterations(300)
            .build()
            .unwrap()
    }

    #[test]
    fn small_kernel_completes() {
        let k = KernelBuilder::new("tiny")
            .grid(4, 2)
            .regs_per_thread(16)
            .alu(2)
            .iterations(10)
            .build()
            .unwrap();
        let stats = run_kernel(fast_cfg(), k, &baseline_factory());
        assert!(stats.completed, "tiny ALU kernel must drain");
        // 4 CTAs x 2 warps x 1 body instruction x 10 iterations.
        assert_eq!(stats.instructions, 4 * 2 * 10);
    }

    #[test]
    fn memory_kernel_produces_hits_and_misses() {
        let stats = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert!(stats.mem_accesses() > 1000);
        assert!(stats.l1_hits > 0, "8 KB shared working set must hit in 48 KB L1");
        assert!(stats.miss_cold > 0, "first touches are cold misses");
        assert!(stats.ipc() > 0.1, "ipc = {}", stats.ipc());
    }

    #[test]
    fn streaming_kernel_mostly_misses() {
        let k = KernelBuilder::new("stream")
            .grid(8, 4)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::streaming(128), 2)
            .alu(4)
            .iterations(200)
            .build()
            .unwrap();
        let stats = run_kernel(fast_cfg(), k, &baseline_factory());
        assert!(
            stats.miss_ratio() > 0.9,
            "streaming load should thrash: miss ratio {}",
            stats.miss_ratio()
        );
    }

    #[test]
    fn thrashing_working_set_has_capacity_misses() {
        let k = KernelBuilder::new("thrash")
            .grid(8, 8)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::reuse_working_set(256 * 1024, true), 2)
            .alu(2)
            .iterations(400)
            .build()
            .unwrap();
        let stats = run_kernel(fast_cfg(), k, &baseline_factory());
        assert!(
            stats.miss_2c > stats.miss_cold,
            "a 256 KB set in a 48 KB cache must produce capacity misses (2c={} cold={})",
            stats.miss_2c,
            stats.miss_cold
        );
    }

    #[test]
    fn dram_traffic_accounted() {
        let stats = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert!(stats.dram_bytes[0] > 0, "demand reads must reach DRAM");
    }

    #[test]
    fn energy_positive() {
        let stats = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert!(stats.energy_mj > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        let b = run_kernel(fast_cfg(), cache_friendly_kernel(), &baseline_factory());
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1_hits, b.l1_hits);
        assert_eq!(a.miss_2c, b.miss_2c);
    }

    #[test]
    fn cycle_cap_respected() {
        let cfg = GpuConfig::default().with_sms(1).with_windows(1_000, 3_000);
        let k = KernelBuilder::new("long")
            .grid(64, 8)
            .regs_per_thread(32)
            .load_then_use(AccessPattern::streaming(128), 1)
            .iterations(100_000)
            .build()
            .unwrap();
        let stats = run_kernel(cfg, k, &baseline_factory());
        assert!(!stats.completed);
        assert!(stats.cycles <= 3_000);
    }
}
