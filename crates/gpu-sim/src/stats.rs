//! Simulation statistics: everything the paper's figures are built from.
//!
//! Per-access accounting is allocation-free on the hot path: per-load
//! counters accumulate in dense `Vec`s indexed by the static load ordinal
//! (load ids are small dense integers assigned by
//! [`KernelBuilder`](crate::kernel::KernelBuilder)), and the map-shaped
//! public views (`per_load`, `load_detail`) are materialized once, at
//! [`Gpu::collect_stats`](crate::gpu::Gpu::collect_stats).

use std::collections::HashMap;

use crate::types::{AccessOutcome, LoadId, MissClass};

/// Per-static-load counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Dynamic line accesses made by the load.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Misses serviced by L2/DRAM.
    pub misses: u64,
    /// Hits in register-file victim storage.
    pub reg_hits: u64,
    /// Accesses that bypassed L1.
    pub bypasses: u64,
}

/// Detailed per-load, per-window locality data (only collected when
/// `GpuConfig::detailed_load_stats` is set; feeds Figures 2 and 3).
#[derive(Debug, Clone, Default)]
pub struct LoadWindowDetail {
    /// Per line: access count within the current window.
    pub line_counts: HashMap<u64, u32>,
    /// Completed-window results: (reused_ws_bytes, streamed_bytes, accesses,
    /// distinct_lines).
    pub windows: Vec<WindowLocality>,
    /// The load was touched at least once. Dense slots exist for every load
    /// ordinal; only touched ones appear in the materialized public map
    /// (matching the key set the per-access map inserts used to produce).
    pub(crate) touched: bool,
}

/// Locality summary of one monitoring window for one load.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowLocality {
    /// Bytes of lines re-accessed (>=2 times) within the window — the
    /// "reused working set" of Figure 2.
    pub reused_ws_bytes: u64,
    /// Bytes of lines touched exactly once (streaming candidates).
    pub single_use_bytes: u64,
    /// Total line accesses in the window.
    pub accesses: u64,
    /// Distinct lines in the window. With an infinite cache, misses =
    /// distinct lines, so the paper's ">95 % miss with infinite cache"
    /// streaming test is `distinct_lines as f64 / accesses as f64 > 0.95`.
    pub distinct_lines: u64,
}

impl WindowLocality {
    /// The paper's streaming-load test (§2.3): more than 95 % of window
    /// accesses would miss even with an infinite cache.
    pub fn is_streaming(&self) -> bool {
        self.accesses > 0 && self.distinct_lines as f64 / self.accesses as f64 > 0.95
    }
}

/// Register-file space sample (per window).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RfSpaceSample {
    /// Statically unused warp registers.
    pub static_unused: u32,
    /// Dynamically unused warp registers (throttled CTAs).
    pub dynamic_unused: u32,
    /// Warp registers actively used as victim storage.
    pub victim_in_use: u32,
}

/// One point of the per-window execution timeline of one SM.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowSample {
    /// SM the sample came from.
    pub sm: u32,
    /// Zero-based window index.
    pub window: u32,
    /// Warp-IPC of the window.
    pub ipc: f64,
    /// L1 + victim hit fraction of the window's accesses.
    pub hit_fraction: f64,
    /// Active (schedulable) CTAs at the window boundary.
    pub active_ctas: u32,
    /// Warp registers used as victim storage at the window boundary.
    pub victim_regs: u32,
}

/// Hot-path event counters filled by the built-in profiler (zero-cost to
/// maintain; reported by `lb-experiments --profile`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileEvents {
    /// Cycles advanced one at a time through the full pipeline.
    pub stepped_cycles: u64,
    /// Cycles fast-forwarded by the idle-cycle skipper.
    pub skipped_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub skip_jumps: u64,
    /// Requests handled at the L2 (demand + bypass + stores + reg traffic).
    pub l2_requests: u64,
    /// DRAM requests completing service.
    pub dram_services: u64,
    /// Messages delivered by the two interconnect queues.
    pub icnt_delivered: u64,
    /// CTA dispatch passes over the SM array.
    pub dispatch_passes: u64,
    /// SM-cycles actually executed (summed over SMs; an SM ticked on a
    /// stepped cycle counts 1).
    pub sm_stepped_cycles: u64,
    /// SM-cycles slept: the SM was gated by the component calendar on a
    /// stepped cycle, or the whole GPU fast-forwarded past the cycle.
    /// For every SM, stepped + slept == total cycles.
    pub sm_slept_cycles: u64,
    /// Cycles the DRAM controller was ticked.
    pub dram_stepped_cycles: u64,
    /// Cycles the DRAM controller was gated or fast-forwarded past.
    pub dram_slept_cycles: u64,
    /// Queue-cycles either interconnect queue delivered (two queues, so
    /// stepped + slept == 2 × total cycles).
    pub icnt_stepped_cycles: u64,
    /// Queue-cycles either interconnect queue was gated or skipped.
    pub icnt_slept_cycles: u64,
    /// Fast-forward jumps whose target was an SM's next-due cycle.
    pub skip_to_sm: u64,
    /// Fast-forward jumps whose target was the DRAM's next-due cycle.
    pub skip_to_dram: u64,
    /// Fast-forward jumps whose target was an interconnect delivery.
    pub skip_to_icnt: u64,
    /// Fast-forward jumps capped at the monitoring-window boundary.
    pub skip_to_window: u64,
    /// Fast-forward jumps capped at `max_cycles`.
    pub skip_to_max: u64,
    /// Decoded access-descriptor cache hits (load/store executions that
    /// replayed an interned descriptor instead of regenerating addresses).
    pub desc_hits: u64,
    /// Descriptor-cache misses (first execution of a (warp slot, load) pair
    /// since its CTA launched: decode + intern).
    pub desc_misses: u64,
    /// Descriptor-table entries populated at run end (summed over SMs).
    pub desc_entries: u64,
    /// Bytes reserved by the descriptor tables (summed over SMs).
    pub desc_bytes: u64,
    /// SM-cycles the load/store unit entered with queued work (per-phase
    /// attribution of `sm_stepped_cycles`).
    pub sm_lsu_busy_cycles: u64,
    /// SM-cycles the issue stage ran a real candidate scan (not
    /// short-circuited by the sleep horizon).
    pub sm_issue_scan_cycles: u64,
    /// Local-clock spans executed (one per `Sm::tick_span` call; a span of
    /// length 1 is an ordinary single-cycle tick).
    pub sm_bursts: u64,
    /// SM-cycles simulated inside local-clock spans (equals
    /// `sm_stepped_cycles`; the ratio to `sm_bursts` is the mean burst
    /// length).
    pub sm_burst_cycles: u64,
    /// Span-length histogram: spans of exactly 1 cycle.
    pub sm_burst_len_1: u64,
    /// Span-length histogram: spans of 2–3 cycles.
    pub sm_burst_len_2_3: u64,
    /// Span-length histogram: spans of 4–7 cycles.
    pub sm_burst_len_4_7: u64,
    /// Span-length histogram: spans of 8–15 cycles.
    pub sm_burst_len_8_15: u64,
    /// Span-length histogram: spans of 16–63 cycles.
    pub sm_burst_len_16_63: u64,
    /// Span-length histogram: spans of 64 cycles or more.
    pub sm_burst_len_64p: u64,
    /// LSU queue entries serviced on a locally simulated cycle (no global
    /// step was paid for them).
    pub sm_lsu_batched: u64,
    /// Worker threads the parallel span executor ran with (1 = serial
    /// path; the pool only engages at 2+).
    pub par_threads: u64,
    /// Parallel rounds executed (steps with ≥ 2 due SMs handed to the
    /// pool). Deterministic for a fixed configuration and thread count.
    pub par_rounds: u64,
    /// SM spans executed inside parallel rounds. Deterministic.
    pub par_spans: u64,
    /// Spans a thread claimed from another thread's chunk. Reflects how
    /// the work-stealing pool balanced real load, so the value (unlike
    /// every simulated counter) is timing-dependent run to run.
    pub par_steals: u64,
    /// Nanoseconds the main thread spent blocked at the rendezvous
    /// barrier after finishing its own share. Wall-clock telemetry,
    /// timing-dependent run to run.
    pub par_barrier_wait_ns: u64,
}

/// Counters of one memory partition (L2 slice + DRAM channel + icnt queue
/// pair), reported per partition so imbalance across the address interleave
/// is observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionCounters {
    /// L2 slice accesses (lookups + fills).
    pub l2_accesses: u64,
    /// L2 slice tag hits.
    pub l2_hits: u64,
    /// L2 slice tag misses.
    pub l2_misses: u64,
    /// DRAM transactions completed by this channel.
    pub dram_services: u64,
    /// Channel bytes per traffic class
    /// (demand-read, store-write, reg-backup, reg-restore).
    pub dram_bytes: [u64; 4],
    /// Messages delivered by this partition's two interconnect queues.
    pub icnt_delivered: u64,
    /// Cycles this partition's DRAM channel was stepped (not slept).
    pub dram_stepped_cycles: u64,
    /// Cycles this partition's request queue was stepped.
    pub to_l2_stepped_cycles: u64,
    /// Cycles this partition's response queue was stepped.
    pub from_l2_stepped_cycles: u64,
}

impl PartitionCounters {
    /// Total bytes moved by this channel over all traffic classes.
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_bytes.iter().sum()
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Warp instructions executed (one warp instruction = up to 32 thread
    /// instructions; IPC here is warp-IPC, consistent across configs).
    pub instructions: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Cold misses.
    pub miss_cold: u64,
    /// Capacity/conflict misses.
    pub miss_2c: u64,
    /// Accesses that bypassed L1.
    pub bypasses: u64,
    /// Victim/register hits ("Reg hit" in Figure 13).
    pub reg_hits: u64,
    /// Store line-writes issued.
    pub stores: u64,
    /// L2 hits / misses.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Register file reads.
    pub rf_reads: u64,
    /// Register file writes.
    pub rf_writes: u64,
    /// Register file bank conflicts.
    pub rf_bank_conflicts: u64,
    /// MSHR structural stalls.
    pub mshr_stalls: u64,
    /// DRAM bytes per traffic class (demand, store, backup, restore).
    pub dram_bytes: [u64; 4],
    /// Per-load counters, keyed by static load id. Only materialized (from
    /// [`SimStats::per_load_dense`]) when a run's stats are collected;
    /// per-SM accumulators leave it empty.
    pub per_load: HashMap<u32, LoadStats>,
    /// Dense per-load accumulators indexed by static load ordinal — the
    /// allocation-free hot path behind [`SimStats::per_load`].
    pub per_load_dense: Vec<LoadStats>,
    /// Per-window RF space samples (averaged for Figures 4 and 9).
    pub rf_samples: Vec<RfSpaceSample>,
    /// Per-window execution timeline (IPC, hit fraction, active CTAs,
    /// victim space), one sample per SM per window.
    pub timeline: Vec<WindowSample>,
    /// Monitoring periods the policy spent finding high-locality loads
    /// (Figure 9's parenthesized numbers); set by the policy.
    pub monitor_periods: u32,
    /// Extra energy charged by policy structures, in pJ.
    pub policy_extra_pj: f64,
    /// Detailed per-load locality windows (Figures 2/3), if enabled. Like
    /// [`SimStats::per_load`], materialized only at collection time.
    pub load_detail: HashMap<u32, LoadWindowDetail>,
    /// Dense accumulators behind [`SimStats::load_detail`].
    pub load_detail_dense: Vec<LoadWindowDetail>,
    /// Hot-path profiler event counters (whole-GPU; filled at run end).
    pub events: ProfileEvents,
    /// Per-memory-partition counters, indexed by partition id (length
    /// `n_mem_partitions`; filled at run end).
    pub partitions: Vec<PartitionCounters>,
    /// Total energy in mJ (filled at run end).
    pub energy_mj: f64,
    /// Whether the kernel fully drained before `max_cycles`.
    pub completed: bool,
}

impl SimStats {
    /// Warp instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total L1-visible memory accesses (all outcomes).
    pub fn mem_accesses(&self) -> u64 {
        self.l1_hits + self.miss_cold + self.miss_2c + self.bypasses + self.reg_hits
    }

    /// Total misses (cold + capacity/conflict).
    pub fn misses(&self) -> u64 {
        self.miss_cold + self.miss_2c
    }

    /// L1 miss ratio over non-bypassed accesses.
    pub fn miss_ratio(&self) -> f64 {
        let denom = self.l1_hits + self.misses() + self.reg_hits;
        if denom == 0 {
            0.0
        } else {
            self.misses() as f64 / denom as f64
        }
    }

    /// Fraction of all accesses with the given outcome (Figure 13 stacks).
    pub fn outcome_fraction(&self, outcome: AccessOutcome) -> f64 {
        let total = self.mem_accesses();
        if total == 0 {
            return 0.0;
        }
        let n = match outcome {
            AccessOutcome::L1Hit => self.l1_hits,
            AccessOutcome::Miss => self.misses(),
            AccessOutcome::Bypass => self.bypasses,
            AccessOutcome::RegHit => self.reg_hits,
        };
        n as f64 / total as f64
    }

    /// Records one L1-level access outcome for `load`.
    ///
    /// Hot path: indexes the dense per-load table directly (growing it to
    /// the load ordinal on first touch — amortized, bounded by the static
    /// load count of the kernel) instead of hashing into a map per access.
    pub fn record_access(
        &mut self,
        load: LoadId,
        outcome: AccessOutcome,
        class: Option<MissClass>,
    ) {
        let i = load.0 as usize;
        if self.per_load_dense.len() <= i {
            self.per_load_dense.resize(i + 1, LoadStats::default());
        }
        let ls = &mut self.per_load_dense[i];
        ls.accesses += 1;
        match outcome {
            AccessOutcome::L1Hit => {
                self.l1_hits += 1;
                ls.l1_hits += 1;
            }
            AccessOutcome::Miss => {
                match class.expect("miss must carry a classification") {
                    MissClass::Cold => self.miss_cold += 1,
                    MissClass::CapacityConflict => self.miss_2c += 1,
                }
                ls.misses += 1;
            }
            AccessOutcome::Bypass => {
                self.bypasses += 1;
                ls.bypasses += 1;
            }
            AccessOutcome::RegHit => {
                self.reg_hits += 1;
                ls.reg_hits += 1;
            }
        }
    }

    /// Records a detailed line touch (Figures 2/3 collection).
    pub fn record_line_touch(&mut self, load: LoadId, line: u64) {
        let i = load.0 as usize;
        if self.load_detail_dense.len() <= i {
            self.load_detail_dense.resize(i + 1, LoadWindowDetail::default());
        }
        let d = &mut self.load_detail_dense[i];
        d.touched = true;
        *d.line_counts.entry(line).or_insert(0) += 1;
    }

    /// Closes the detailed-stats window for all loads.
    pub fn close_detail_window(&mut self) {
        for d in &mut self.load_detail_dense {
            let mut w = WindowLocality::default();
            for (_, &count) in d.line_counts.iter() {
                w.accesses += count as u64;
                w.distinct_lines += 1;
                if count >= 2 {
                    w.reused_ws_bytes += crate::types::LINE_BYTES;
                } else {
                    w.single_use_bytes += crate::types::LINE_BYTES;
                }
            }
            if w.accesses > 0 {
                d.windows.push(w);
            }
            d.line_counts.clear();
        }
    }

    /// Merges another run's dense per-load counters into this one
    /// (index-aligned; used when the GPU folds per-SM stats together).
    pub fn merge_per_load_dense(&mut self, other: &[LoadStats]) {
        if self.per_load_dense.len() < other.len() {
            self.per_load_dense.resize(other.len(), LoadStats::default());
        }
        for (e, ls) in self.per_load_dense.iter_mut().zip(other) {
            e.accesses += ls.accesses;
            e.l1_hits += ls.l1_hits;
            e.misses += ls.misses;
            e.reg_hits += ls.reg_hits;
            e.bypasses += ls.bypasses;
        }
    }

    /// Merges another run's dense detail windows into this one.
    pub fn merge_load_detail_dense(&mut self, other: &[LoadWindowDetail]) {
        if self.load_detail_dense.len() < other.len() {
            self.load_detail_dense.resize(other.len(), LoadWindowDetail::default());
        }
        for (e, d) in self.load_detail_dense.iter_mut().zip(other) {
            e.windows.extend(d.windows.iter().copied());
            // Open-window line counts are per-SM transients and are not
            // merged (the legacy map merge dropped them too), but a touched
            // load must keep its key in the materialized public map.
            e.touched |= d.touched;
        }
    }

    /// Materializes the map-shaped public views (`per_load`, `load_detail`)
    /// from the dense accumulators. Called once per run, at collection; the
    /// key sets match what the per-access map updates used to produce
    /// (loads that were actually touched).
    pub fn materialize_maps(&mut self) {
        self.per_load = self
            .per_load_dense
            .iter()
            .enumerate()
            .filter(|(_, ls)| ls.accesses > 0)
            .map(|(i, ls)| (i as u32, *ls))
            .collect();
        self.load_detail = self
            .load_detail_dense
            .iter()
            .enumerate()
            .filter(|(_, d)| d.touched)
            .map(|(i, d)| (i as u32, d.clone()))
            .collect();
    }

    /// Mean statically-unused registers over sampled windows, in bytes.
    pub fn avg_static_unused_bytes(&self) -> f64 {
        avg_by(&self.rf_samples, |s| s.static_unused) * crate::types::LINE_BYTES as f64
    }

    /// Mean dynamically-unused registers over sampled windows, in bytes.
    pub fn avg_dynamic_unused_bytes(&self) -> f64 {
        avg_by(&self.rf_samples, |s| s.dynamic_unused) * crate::types::LINE_BYTES as f64
    }

    /// Mean victim-storage registers in use, in bytes.
    pub fn avg_victim_in_use_bytes(&self) -> f64 {
        avg_by(&self.rf_samples, |s| s.victim_in_use) * crate::types::LINE_BYTES as f64
    }

    /// Aggregates the per-SM timeline into one series averaged per window
    /// index (SMs are homogeneous, so the mean is representative).
    pub fn timeline_aggregate(&self) -> Vec<WindowSample> {
        use std::collections::BTreeMap;
        let mut by_window: BTreeMap<u32, (WindowSample, u32)> = BTreeMap::new();
        for s in &self.timeline {
            let e = by_window.entry(s.window).or_insert((
                WindowSample { sm: u32::MAX, window: s.window, ..Default::default() },
                0,
            ));
            e.0.ipc += s.ipc;
            e.0.hit_fraction += s.hit_fraction;
            e.0.active_ctas += s.active_ctas;
            e.0.victim_regs += s.victim_regs;
            e.1 += 1;
        }
        by_window
            .into_values()
            .map(|(mut s, n)| {
                let n_f = n as f64;
                s.ipc /= n_f;
                s.hit_fraction /= n_f;
                s.active_ctas = (s.active_ctas as f64 / n_f).round() as u32;
                s.victim_regs = (s.victim_regs as f64 / n_f).round() as u32;
                s
            })
            .collect()
    }
}

fn avg_by(samples: &[RfSpaceSample], f: impl Fn(&RfSpaceSample) -> u32) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| f(s) as u64).sum::<u64>() as f64 / samples.len() as f64
}

/// Geometric mean of a slice of positive ratios (the paper's GM columns).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_zero_when_no_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn record_access_accumulates() {
        let mut s = SimStats::default();
        s.record_access(LoadId(0), AccessOutcome::L1Hit, None);
        s.record_access(LoadId(0), AccessOutcome::Miss, Some(MissClass::Cold));
        s.record_access(LoadId(1), AccessOutcome::Miss, Some(MissClass::CapacityConflict));
        s.record_access(LoadId(1), AccessOutcome::RegHit, None);
        s.record_access(LoadId(1), AccessOutcome::Bypass, None);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.miss_cold, 1);
        assert_eq!(s.miss_2c, 1);
        assert_eq!(s.reg_hits, 1);
        assert_eq!(s.bypasses, 1);
        assert_eq!(s.mem_accesses(), 5);
        assert_eq!(s.per_load_dense[1].accesses, 3);
        s.materialize_maps();
        assert_eq!(s.per_load[&1].accesses, 3);
    }

    #[test]
    #[should_panic(expected = "classification")]
    fn miss_requires_class() {
        let mut s = SimStats::default();
        s.record_access(LoadId(0), AccessOutcome::Miss, None);
    }

    #[test]
    fn outcome_fractions_sum_to_one() {
        let mut s = SimStats::default();
        for _ in 0..3 {
            s.record_access(LoadId(0), AccessOutcome::L1Hit, None);
        }
        s.record_access(LoadId(0), AccessOutcome::Miss, Some(MissClass::Cold));
        let sum = s.outcome_fraction(AccessOutcome::L1Hit)
            + s.outcome_fraction(AccessOutcome::Miss)
            + s.outcome_fraction(AccessOutcome::Bypass)
            + s.outcome_fraction(AccessOutcome::RegHit);
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detail_window_classifies_reuse_and_streaming() {
        let mut s = SimStats::default();
        // Load 0: lines 1,2 touched twice each (reused).
        for _ in 0..2 {
            s.record_line_touch(LoadId(0), 1);
            s.record_line_touch(LoadId(0), 2);
        }
        // Load 1: 20 distinct lines once each (streaming).
        for l in 0..20 {
            s.record_line_touch(LoadId(1), 100 + l);
        }
        s.close_detail_window();
        s.materialize_maps();
        let w0 = s.load_detail[&0].windows[0];
        assert_eq!(w0.reused_ws_bytes, 2 * 128);
        assert!(!w0.is_streaming());
        let w1 = s.load_detail[&1].windows[0];
        assert_eq!(w1.single_use_bytes, 20 * 128);
        assert!(w1.is_streaming());
    }

    #[test]
    fn materialized_maps_skip_untouched_ordinals() {
        let mut s = SimStats::default();
        // Only load 2 is touched; the dense table still has slots 0 and 1.
        s.record_access(LoadId(2), AccessOutcome::L1Hit, None);
        s.record_line_touch(LoadId(2), 5);
        s.materialize_maps();
        assert_eq!(s.per_load.len(), 1);
        assert!(s.per_load.contains_key(&2));
        assert_eq!(s.load_detail.len(), 1);
        assert!(s.load_detail.contains_key(&2));
    }

    #[test]
    fn dense_merge_matches_elementwise_sum() {
        let mut a = SimStats::default();
        a.record_access(LoadId(0), AccessOutcome::L1Hit, None);
        let mut b = SimStats::default();
        b.record_access(LoadId(0), AccessOutcome::Miss, Some(MissClass::Cold));
        b.record_access(LoadId(1), AccessOutcome::Bypass, None);
        a.merge_per_load_dense(&b.per_load_dense);
        assert_eq!(a.per_load_dense[0].accesses, 2);
        assert_eq!(a.per_load_dense[0].l1_hits, 1);
        assert_eq!(a.per_load_dense[0].misses, 1);
        assert_eq!(a.per_load_dense[1].bypasses, 1);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn rf_sample_averages() {
        let mut s = SimStats::default();
        s.rf_samples.push(RfSpaceSample {
            static_unused: 100,
            dynamic_unused: 0,
            victim_in_use: 50,
        });
        s.rf_samples.push(RfSpaceSample {
            static_unused: 300,
            dynamic_unused: 200,
            victim_in_use: 150,
        });
        assert!((s.avg_static_unused_bytes() - 200.0 * 128.0).abs() < 1e-9);
        assert!((s.avg_dynamic_unused_bytes() - 100.0 * 128.0).abs() < 1e-9);
        assert!((s.avg_victim_in_use_bytes() - 100.0 * 128.0).abs() < 1e-9);
    }

    #[test]
    fn miss_ratio_excludes_bypass() {
        let mut s = SimStats::default();
        s.record_access(LoadId(0), AccessOutcome::Miss, Some(MissClass::Cold));
        s.record_access(LoadId(0), AccessOutcome::Bypass, None);
        assert!((s.miss_ratio() - 1.0).abs() < 1e-12);
    }
}
