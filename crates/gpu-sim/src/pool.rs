//! Std-only work-stealing worker pool for parallel SM spans.
//!
//! `Gpu::step` executes the due SMs' `Sm::tick_span` calls as one *round*:
//! the main thread publishes a round, every pool thread (the main thread
//! participates as thread 0) claims items until none remain, and the main
//! thread blocks at a rendezvous barrier until the round is fully drained.
//! The workspace is offline and std-only, so the pool is built from
//! `std::thread` plus a `Mutex`/`Condvar` pair — no rayon, no crossbeam.
//!
//! Work distribution is chunked stealing: the round's items are split into
//! one contiguous chunk per thread, each with an atomic claim cursor. A
//! thread drains its own chunk first (`fetch_add` per item), then sweeps
//! the other chunks and claims their leftovers — so one long LSU-drain
//! span cannot serialize the round behind it; the other threads steal the
//! rest of its owner's chunk and keep the barrier short. Every claim is an
//! atomic `fetch_add` on the chunk cursor, so each item index is executed
//! exactly once no matter how the threads race.
//!
//! Determinism: the pool never touches simulation state itself — it only
//! hands out item indices. The caller's round closure must confine item
//! `k` to state owned by item `k` (for the GPU: the due SM's own state
//! plus a private result slot); everything order-sensitive (partition
//! queue pushes, CTA refill, calendar updates) happens *after* the
//! barrier, on the main thread, in canonical SM-id order. Under that
//! contract the simulation output is byte-identical at any thread count;
//! only the telemetry split across threads (`steals`, barrier-wait time)
//! is timing-dependent.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Raw-pointer wrapper asserting cross-thread use is safe. The GPU's round
/// closure captures `*mut Sm` / `*mut` result slots through this: the pool
/// claims each item index exactly once, item `k` touches only SM `k`'s
/// state and slot `k`, and the publishing thread blocks until the round
/// completes — so the aliasing and lifetime rules hold even though the
/// compiler cannot see it.
pub struct SendPtr<T>(pub *mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. Prefer this over field access inside a round
    /// closure: a method call captures the whole wrapper (which is
    /// `Sync`), while `ptr.0` would make the closure capture the bare
    /// field — a raw pointer, which is not.
    pub fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> std::fmt::Debug for SendPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendPtr({:p})", self.0)
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: see the type-level comment — exclusivity is enforced by the
// round protocol (unique item claims + barrier), not by the type.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// One thread's contiguous slice of a round, with its claim cursor.
struct Chunk {
    /// Next unclaimed item index; claimed by `fetch_add(1)`.
    next: AtomicUsize,
    /// One past the last item of this chunk.
    end: AtomicUsize,
}

/// Type-erased pointer to the round closure. The closure lives on the
/// publishing thread's stack; erasing its lifetime is sound because the
/// publisher clears the slot and joins the barrier before returning.
#[derive(Clone, Copy)]
struct RoundPtr(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: only dereferenced between round publication and the barrier,
// while the pointee is alive and shared (`Fn + Sync`).
unsafe impl Send for RoundPtr {}

struct State {
    /// Round generation counter; bumped on publication so a worker that
    /// re-acquires the lock late still sees exactly one round per bump.
    epoch: u64,
    /// The active round's closure, `None` between rounds.
    round: Option<RoundPtr>,
    /// Worker threads still inside the active round.
    running: usize,
    /// A worker panicked inside a round; the publisher re-raises.
    poisoned: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new round published, or shutdown.
    work: Condvar,
    /// Signals the publisher: `running` reached zero (or a worker died).
    done: Condvar,
    /// Per-thread chunks, reset by the publisher before each round.
    chunks: Vec<Chunk>,
    /// Per-thread spans executed, summed over all rounds. The total is
    /// deterministic (every due SM runs exactly once); the per-thread
    /// split is timing-dependent.
    spans: Vec<AtomicU64>,
    /// Per-thread items claimed from *another* thread's chunk.
    steals: Vec<AtomicU64>,
}

/// Decrements `running` even if the round closure panics, so the publisher
/// observes the failure at the barrier instead of deadlocking on it.
struct RoundGuard<'a> {
    shared: &'a Shared,
}

impl Drop for RoundGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        if std::thread::panicking() {
            st.poisoned = true;
        }
        st.running -= 1;
        if st.running == 0 || st.poisoned {
            self.shared.done.notify_one();
        }
    }
}

/// Aggregate pool telemetry (see [`SmPool::telemetry`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// Rounds executed. Deterministic for a fixed configuration.
    pub rounds: u64,
    /// Items (SM spans) executed across all rounds. Deterministic.
    pub spans: u64,
    /// Items claimed from another thread's chunk. Timing-dependent.
    pub steals: u64,
    /// Nanoseconds the publisher spent blocked at the rendezvous barrier
    /// after finishing its own share. Timing-dependent.
    pub barrier_wait_ns: u64,
    /// Per-thread `(spans, steals)`, thread 0 being the publisher.
    pub per_thread: Vec<(u64, u64)>,
}

/// Persistent worker pool executing rounds of SM spans (see module docs).
pub struct SmPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
    rounds: u64,
    barrier_wait_ns: u64,
}

impl SmPool {
    /// Spawns a pool with `n_threads` total threads (the calling thread
    /// counts as thread 0, so `n_threads - 1` are spawned; clamped to at
    /// least 2 — a 1-thread pool is pointless, use the serial path).
    pub fn new(n_threads: usize) -> Self {
        let n = n_threads.max(2);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                round: None,
                running: 0,
                poisoned: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            chunks: (0..n)
                .map(|_| Chunk { next: AtomicUsize::new(0), end: AtomicUsize::new(0) })
                .collect(),
            spans: (0..n).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..n).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (1..n)
            .map(|t| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lb-sim-{t}"))
                    .spawn(move || worker_loop(&sh, t))
                    .expect("spawn simulation worker")
            })
            .collect();
        SmPool { shared, workers, n_threads: n, rounds: 0, barrier_wait_ns: 0 }
    }

    /// Total threads participating in rounds (including the caller).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Executes one round: `run(k)` is called exactly once for every
    /// `k in 0..n_items`, distributed over all pool threads, and this call
    /// returns only after every item has completed (rendezvous barrier).
    ///
    /// `run` must confine item `k` to state owned by item `k` (see module
    /// docs); it may run on any thread.
    pub fn run_round(&mut self, n_items: usize, run: &(dyn Fn(usize) + Sync)) {
        if n_items == 0 {
            return;
        }
        self.rounds += 1;
        // Split the items into one contiguous chunk per thread (the first
        // `n_items % n` chunks take one extra). Plain stores: the mutex
        // publication below orders them before any worker claim.
        let n = self.n_threads;
        let base = n_items / n;
        let extra = n_items % n;
        let mut start = 0usize;
        for (t, c) in self.shared.chunks.iter().enumerate() {
            let len = base + usize::from(t < extra);
            c.next.store(start, Ordering::Relaxed);
            c.end.store(start + len, Ordering::Relaxed);
            start += len;
        }
        // SAFETY: erase the closure's lifetime for publication; the slot is
        // cleared and the barrier joined before `run` goes out of scope.
        let ptr = RoundPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(run as *const _)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.running, 0, "previous round not drained");
            st.epoch += 1;
            st.round = Some(ptr);
            st.running = self.workers.len();
            self.shared.work.notify_all();
        }
        // The publisher participates as thread 0 rather than idling.
        drive(&self.shared, run, 0);
        // Rendezvous: wait for the workers to drain their shares. This is
        // the barrier-wait the profiler reports — time thread 0 spent idle
        // because the round was imbalanced beyond what stealing fixed.
        let t0 = std::time::Instant::now();
        let mut st = self.shared.state.lock().unwrap();
        while st.running > 0 && !st.poisoned {
            st = self.shared.done.wait(st).unwrap();
        }
        st.round = None;
        let poisoned = st.poisoned;
        drop(st);
        self.barrier_wait_ns += t0.elapsed().as_nanos() as u64;
        if poisoned {
            panic!("simulation worker panicked inside a parallel SM round");
        }
    }

    /// Aggregate telemetry over every round so far.
    pub fn telemetry(&self) -> PoolTelemetry {
        let per_thread: Vec<(u64, u64)> = self
            .shared
            .spans
            .iter()
            .zip(&self.shared.steals)
            .map(|(s, t)| (s.load(Ordering::Relaxed), t.load(Ordering::Relaxed)))
            .collect();
        PoolTelemetry {
            rounds: self.rounds,
            spans: per_thread.iter().map(|(s, _)| s).sum(),
            steals: per_thread.iter().map(|(_, t)| t).sum(),
            barrier_wait_ns: self.barrier_wait_ns,
            per_thread,
        }
    }
}

impl std::fmt::Debug for SmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmPool")
            .field("n_threads", &self.n_threads)
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl Drop for SmPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and executes items for thread `t`: own chunk first, then steal
/// the other chunks' leftovers in cyclic order.
fn drive(shared: &Shared, run: &(dyn Fn(usize) + Sync), t: usize) {
    let n = shared.chunks.len();
    let mut spans = 0u64;
    let mut steals = 0u64;
    for o in 0..n {
        let c = &shared.chunks[(t + o) % n];
        let end = c.end.load(Ordering::Relaxed);
        loop {
            let k = c.next.fetch_add(1, Ordering::Relaxed);
            if k >= end {
                break;
            }
            run(k);
            spans += 1;
            steals += u64::from(o != 0);
        }
    }
    if spans > 0 {
        shared.spans[t].fetch_add(spans, Ordering::Relaxed);
        shared.steals[t].fetch_add(steals, Ordering::Relaxed);
    }
}

fn worker_loop(shared: &Shared, t: usize) {
    let mut seen = 0u64;
    loop {
        let round = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    if let Some(r) = st.round {
                        seen = st.epoch;
                        break r;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let guard = RoundGuard { shared };
        // SAFETY: the publisher keeps the closure alive until the barrier.
        let run = unsafe { &*round.0 };
        drive(shared, run, t);
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_item_runs_exactly_once() {
        let mut pool = SmPool::new(4);
        for round in 0..50 {
            let n = 1 + (round % 13);
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run_round(n, &|k| {
                hits[k].fetch_add(1, Ordering::Relaxed);
            });
            for (k, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "item {k} of round {round}");
            }
        }
        let t = pool.telemetry();
        assert_eq!(t.rounds, 50);
        assert_eq!(t.spans, (0..50).map(|r| 1 + (r % 13)).sum::<u64>());
        assert_eq!(t.per_thread.len(), 4);
        assert_eq!(t.per_thread.iter().map(|(s, _)| s).sum::<u64>(), t.spans);
    }

    #[test]
    fn imbalanced_round_is_stolen() {
        let mut pool = SmPool::new(2);
        // Thread 0's chunk is one long item; thread 1 finishes its own
        // chunk and must steal the remainder of chunk 0 — but on a
        // single-core host the publisher itself usually steals chunk 1.
        // Either way, across many imbalanced rounds *someone* steals.
        for _ in 0..200 {
            let slow = AtomicU64::new(0);
            pool.run_round(8, &|k| {
                if k == 0 {
                    while slow.fetch_add(1, Ordering::Relaxed) < 2_000 {
                        std::hint::spin_loop();
                    }
                }
            });
        }
        let t = pool.telemetry();
        assert_eq!(t.spans, 200 * 8);
        assert!(t.steals > 0, "no steals across 200 imbalanced rounds: {t:?}");
    }

    #[test]
    fn writes_from_workers_are_visible_after_barrier() {
        let mut pool = SmPool::new(3);
        let mut results = vec![0u64; 64];
        let ptr = SendPtr(results.as_mut_ptr());
        pool.run_round(64, &move |k| {
            // SAFETY: distinct k → distinct slot; barrier orders the reads.
            unsafe { *ptr.get().add(k) = (k as u64) * 3 + 1 };
        });
        for (k, &v) in results.iter().enumerate() {
            assert_eq!(v, (k as u64) * 3 + 1);
        }
    }

    #[test]
    fn single_item_round_runs_on_some_thread() {
        let mut pool = SmPool::new(4);
        let hit = AtomicU64::new(0);
        pool.run_round(1, &|_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        assert_eq!(pool.telemetry().rounds, 1);
    }
}
