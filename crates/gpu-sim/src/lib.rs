//! # gpu-sim — a cycle-level GPU microarchitecture simulator
//!
//! This crate is the substrate of the Linebacker (ISCA 2019) reproduction: a
//! from-scratch Rust model of the GPU the paper simulates with GPGPU-Sim
//! v3.2.2 — streaming multiprocessors with Greedy-Then-Oldest warp
//! scheduling, a banked register file, per-SM L1 caches with MSHRs, a shared
//! L2, and a bandwidth/timing-modeled DRAM (Table 1 of the paper).
//!
//! Architecture policies (warp throttling, cache bypassing, victim caching)
//! plug in through the [`policy::SmPolicy`] trait; the Linebacker mechanism
//! and every baseline it is compared against are implementations of that
//! trait living in sibling crates.
//!
//! ## Quick start
//!
//! ```
//! use gpu_sim::config::GpuConfig;
//! use gpu_sim::gpu::run_kernel;
//! use gpu_sim::kernel::KernelBuilder;
//! use gpu_sim::pattern::AccessPattern;
//! use gpu_sim::policy::baseline_factory;
//!
//! // A small kernel with one reused-working-set load.
//! let kernel = KernelBuilder::new("demo")
//!     .grid(8, 4)
//!     .regs_per_thread(32)
//!     .load_then_use(AccessPattern::reuse_working_set(16 * 1024, true), 2)
//!     .alu(4)
//!     .iterations(100)
//!     .build()?;
//!
//! let cfg = GpuConfig::default().with_sms(2).with_windows(5_000, 50_000);
//! let stats = run_kernel(cfg, kernel, &baseline_factory());
//! assert!(stats.instructions > 0);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod calendar;
pub mod coalesce;
pub mod config;
pub mod cta;
pub mod dram;
pub mod energy;
pub mod fastmap;
pub mod gpu;
pub mod icnt;
pub mod kernel;
pub mod mem;
pub mod partition;
pub mod pattern;
pub mod phase_timer;
pub mod policy;
pub mod pool;
pub mod regfile;
pub mod replay;
pub mod scheduler;
pub mod sm;
pub mod stats;
pub mod types;
pub mod warp;

pub use config::GpuConfig;
pub use gpu::{
    capture_kernel, run_kernel, run_kernel_traced, run_replay_capture, run_replay_kernel,
    run_replay_kernel_traced, Gpu,
};
pub use kernel::{KernelBuilder, KernelSpec};
/// The event-trace crate, re-exported so simulator users need not name the
/// `lb-trace` dependency themselves.
pub use lb_trace as trace;
pub use pattern::AccessPattern;
pub use policy::{NullPolicy, SmPolicy};
pub use replay::{CaptureError, ReplayKernel, TraceOp, WarpStream};
pub use stats::SimStats;
