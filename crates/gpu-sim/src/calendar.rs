//! Component calendar: per-component next-due cycles, so `Gpu::step`
//! touches only components with work and `Gpu::try_skip_idle` jumps
//! straight to the next component event.
//!
//! Each component (every SM, plus the DRAM controller) owns one slot. The
//! calendar is a dense array of due cycles, and `next_event` is a linear
//! argmin over it. A `BinaryHeap` keyed by cycle was tried first and lost:
//! with tens of components, a busy SM reschedules every cycle, so the heap
//! pays a push plus a lazy stale-pop per component per cycle (hundreds of
//! ns each step), while the dense scan costs a handful of loads once per
//! skip attempt and makes every reschedule a plain store. A heap only wins
//! when components vastly outnumber the cycles between events, which a GPU
//! with at most a few dozen SMs never approaches.
//!
//! `Cycle::MAX` means "never self-due": the component only acts on external
//! events, which arrive through `wake_at`.

use crate::types::Cycle;

/// Calendar of component due times. Components are dense indices assigned
/// by the owner (the GPU uses `0..n_sms` for SMs and `n_sms` for DRAM).
#[derive(Debug)]
pub struct Calendar {
    /// Authoritative next-due cycle per component (`Cycle::MAX` = never).
    next_due: Vec<Cycle>,
}

impl Calendar {
    /// Creates a calendar with `n` components, all due at cycle 0 (every
    /// component must run its first cycle to discover its own horizon).
    pub fn new(n: usize) -> Self {
        Calendar { next_due: vec![0; n] }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.next_due.len()
    }

    /// True when the calendar tracks no components.
    pub fn is_empty(&self) -> bool {
        self.next_due.is_empty()
    }

    /// The current due cycle of `comp` (`Cycle::MAX` = never self-due).
    pub fn due(&self, comp: usize) -> Cycle {
        self.next_due[comp]
    }

    /// True when `comp` must be stepped at `cycle`.
    pub fn is_due(&self, comp: usize, cycle: Cycle) -> bool {
        self.next_due[comp] <= cycle
    }

    /// Sets `comp`'s next due cycle, replacing any earlier value (the
    /// component was just stepped and reported a fresh horizon).
    pub fn schedule(&mut self, comp: usize, due: Cycle) {
        self.next_due[comp] = due;
    }

    /// Moves `comp`'s due cycle earlier to `due` if it is not already due
    /// sooner (external wake event: a response delivery, a window boundary).
    pub fn wake_at(&mut self, comp: usize, due: Cycle) {
        if due < self.next_due[comp] {
            self.next_due[comp] = due;
        }
    }

    /// Parks `comp`: never self-due until the next `schedule`/`wake_at`.
    /// One-shot components (the GPU's per-SM outbox flush slots) park
    /// themselves after firing, and start parked — `new` arms every slot at
    /// cycle 0, which is right for pipeline components that must discover
    /// their own horizon but would pin `any_due` forever for event slots.
    pub fn park(&mut self, comp: usize) {
        self.next_due[comp] = Cycle::MAX;
    }

    /// True when any component is due at `cycle`. Exits on the first due
    /// slot, so on a busy machine this is a couple of loads — the cheap
    /// pre-check `Gpu::try_skip_idle` runs every cycle before paying for
    /// the full [`Calendar::next_event`] argmin.
    pub fn any_due(&self, cycle: Cycle) -> bool {
        self.next_due.iter().any(|&t| t <= cycle)
    }

    /// Appends to `out` every component in `lo..hi` due at `cycle`, in
    /// index order. The parallel span executor uses this to freeze the
    /// step's due-SM set *before* any SM runs: the serial phase machine
    /// evaluated `is_due` lazily mid-loop, which is only equivalent
    /// because phase 1 never reschedules another SM's slot — collecting
    /// up front makes that independence explicit and hands the pool a
    /// stable work list.
    pub fn collect_due(&self, cycle: Cycle, lo: usize, hi: usize, out: &mut Vec<u32>) {
        for (i, &t) in self.next_due[lo..hi].iter().enumerate() {
            if t <= cycle {
                out.push((lo + i) as u32);
            }
        }
    }

    /// Earliest (due cycle, component) over all components; ties go to the
    /// lowest component index. `None` when no component is ever self-due.
    pub fn next_event(&self) -> Option<(Cycle, u32)> {
        let mut best: Option<(Cycle, u32)> = None;
        for (i, &t) in self.next_due.iter().enumerate() {
            if t != Cycle::MAX && best.is_none_or(|(b, _)| t < b) {
                best = Some((t, i as u32));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_due_at_zero() {
        let c = Calendar::new(3);
        assert_eq!(c.len(), 3);
        assert!(c.is_due(0, 0) && c.is_due(2, 0));
        assert_eq!(c.next_event(), Some((0, 0)));
    }

    #[test]
    fn schedule_replaces() {
        let mut c = Calendar::new(2);
        c.schedule(0, 50);
        c.schedule(1, 10);
        assert_eq!(c.next_event(), Some((10, 1)));
        c.schedule(1, 80);
        assert_eq!(c.next_event(), Some((50, 0)));
        assert!(!c.is_due(0, 49));
        assert!(c.is_due(0, 50));
    }

    #[test]
    fn wake_at_only_moves_earlier() {
        let mut c = Calendar::new(1);
        c.schedule(0, 100);
        c.wake_at(0, 200); // later: ignored
        assert_eq!(c.due(0), 100);
        c.wake_at(0, 30);
        assert_eq!(c.due(0), 30);
        assert_eq!(c.next_event(), Some((30, 0)));
    }

    #[test]
    fn never_due_components_have_no_event() {
        let mut c = Calendar::new(2);
        c.schedule(0, Cycle::MAX);
        c.schedule(1, Cycle::MAX);
        assert_eq!(c.next_event(), None);
        // An external wake revives the component.
        c.wake_at(1, 7);
        assert_eq!(c.next_event(), Some((7, 1)));
    }

    #[test]
    fn park_makes_component_never_due() {
        let mut c = Calendar::new(2);
        c.park(0);
        c.schedule(1, 4);
        assert!(!c.is_due(0, 1_000_000));
        assert_eq!(c.next_event(), Some((4, 1)));
        c.wake_at(0, 2);
        assert_eq!(c.next_event(), Some((2, 0)));
    }

    #[test]
    fn collect_due_returns_index_ordered_subrange() {
        let mut c = Calendar::new(6);
        c.schedule(0, 5);
        c.schedule(1, 11);
        c.schedule(2, 10);
        c.schedule(3, 10);
        c.park(4);
        c.schedule(5, 2);
        let mut due = Vec::new();
        c.collect_due(10, 0, 4, &mut due);
        assert_eq!(due, vec![0, 2, 3], "in-range due components, index order");
        due.clear();
        c.collect_due(10, 4, 6, &mut due);
        assert_eq!(due, vec![5], "range excludes parked slot 4");
    }

    #[test]
    fn ties_resolve_to_lowest_index() {
        let mut c = Calendar::new(3);
        c.schedule(0, 9);
        c.schedule(1, 5);
        c.schedule(2, 5);
        assert_eq!(c.next_event(), Some((5, 1)));
    }
}
