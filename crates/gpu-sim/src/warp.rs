//! Per-warp execution state: a struct-of-arrays slab + the in-order scoreboard.
//!
//! Warp state used to be a per-warp struct (with two heap-allocated `Vec`s)
//! stored as `Vec<Option<WarpState>>`; the scheduler's hot scans then strode
//! over ~190-byte objects to read one field each. [`WarpSlab`] stores each
//! field as a dense column indexed by warp slot instead, so
//! `Sm::issue`/`Sm::tick` touch cache-resident rows, and CTA launch/reap
//! recycles slots by zeroing column ranges without allocating.

use crate::kernel::{InstKind, KernelSpec};
use crate::types::{CtaId, Cycle, LoadId};

/// `meta` bit: slot holds a live (occupied, not retired) warp.
pub const META_LIVE: u32 = 1 << 0;
/// `meta` bit: the warp's CTA is schedulable (status `Active`).
pub const META_CTA_OK: u32 = 1 << 1;
/// `meta` bit: the warp's current instruction is a load.
pub const META_LOAD: u32 = 1 << 2;
/// `meta` bit: the warp's current instruction is a store.
pub const META_STORE: u32 = 1 << 3;
/// `meta` bit: the current instruction waits on an outstanding load (the
/// load's id sits in the high half of the word).
pub const META_DEP: u32 = 1 << 4;
/// Mask selecting both "can issue at all" conditions.
pub const META_READY: u32 = META_LIVE | META_CTA_OK;

/// Struct-of-arrays slab holding every warp slot of one SM.
///
/// A slot is *occupied* from CTA launch until reap; freed slots are reused
/// by later CTAs (the launch path re-zeroes every column). The per-load
/// columns (`outstanding`, `access_index`) are flattened as
/// `slot * n_loads + load` and sized lazily at the first CTA launch — the
/// kernel, and hence the static-load count, is unknown when the SM is built.
#[derive(Debug)]
pub struct WarpSlab {
    /// Static loads per warp (stride of the flattened per-load columns).
    n_loads: usize,
    /// Slot holds a live warp (was `Option::is_some`).
    occupied: Vec<bool>,
    /// CTA slot this warp belongs to.
    cta: Vec<CtaId>,
    /// Globally unique warp number (drives private address patterns).
    global_warp: Vec<u64>,
    /// Launch order for GTO "oldest" tie-breaking.
    age: Vec<u64>,
    /// Index of the next instruction in the kernel body.
    body_pos: Vec<u32>,
    /// Completed loop iterations.
    iter: Vec<u32>,
    /// Finished all iterations.
    done: Vec<bool>,
    /// The warp cannot issue before this cycle (ALU latency, replay).
    next_ready: Vec<Cycle>,
    /// Total outstanding line-requests.
    total_outstanding: Vec<u32>,
    /// Precomputed first operand register (CTA base + intra-CTA offset).
    op_base: Vec<u32>,
    /// Packed issue metadata, maintained at every state transition (launch,
    /// advance, retire, free, CTA status change): `META_*` flag bits in the
    /// low half, the `wait_for` load id in the high half. The scheduler's
    /// per-candidate classify reads this one word instead of re-deriving
    /// liveness, CTA state and the current instruction's shape from five
    /// columns plus the kernel body.
    meta: Vec<u32>,
    /// Residency generation, bumped on `free` (16-bit wrapping). In-flight
    /// memory work captures it at issue; delivery drops completions whose
    /// generation no longer matches, so a slot recycled while a dangling
    /// load (one no instruction waits on) is still in flight cannot have
    /// the stale response credited to its new resident.
    gen: Vec<u32>,
    /// Replay/capture stream id of the warp (`cta_ordinal * warps_per_cta +
    /// lane`). Written at every launch; read only by the trace frontend
    /// (replay execution and capture recording) — dead in synthetic runs.
    stream: Vec<u32>,
    /// Outstanding line-requests per static load (scoreboard), flattened.
    outstanding: Vec<u32>,
    /// Per-load dynamic access counter (pattern phase), flattened.
    access_index: Vec<u64>,
}

impl WarpSlab {
    /// Creates an empty slab with `n_slots` warp slots.
    pub fn new(n_slots: usize) -> Self {
        WarpSlab {
            n_loads: 0,
            occupied: vec![false; n_slots],
            cta: vec![CtaId(0); n_slots],
            global_warp: vec![0; n_slots],
            age: vec![0; n_slots],
            body_pos: vec![0; n_slots],
            iter: vec![0; n_slots],
            done: vec![false; n_slots],
            next_ready: vec![0; n_slots],
            total_outstanding: vec![0; n_slots],
            op_base: vec![0; n_slots],
            meta: vec![0; n_slots],
            gen: vec![0; n_slots],
            stream: vec![0; n_slots],
            outstanding: Vec::new(),
            access_index: Vec::new(),
        }
    }

    /// Number of warp slots.
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        !self.occupied.iter().any(|&o| o)
    }

    /// Sizes the flattened per-load columns for a kernel with `n_loads`
    /// static loads. Called before the first launch; a live slab (one SM
    /// runs one kernel) is never resized.
    pub fn ensure_loads(&mut self, n_loads: usize) {
        if self.n_loads == n_loads && !self.outstanding.is_empty() {
            return;
        }
        debug_assert!(self.is_empty(), "cannot resize the per-load columns of a live slab");
        self.n_loads = n_loads;
        let cells = self.occupied.len() * n_loads.max(1);
        self.outstanding = vec![0; cells];
        self.access_index = vec![0; cells];
    }

    /// Packed `META_*` bits describing the instruction at `pos`.
    fn inst_meta(kernel: &KernelSpec, pos: u32) -> u32 {
        let inst = &kernel.body[pos as usize];
        let mut m = match inst.kind {
            InstKind::Load { .. } => META_LOAD,
            InstKind::Store { .. } => META_STORE,
            InstKind::Alu { .. } => 0,
        };
        if let Some(dep) = inst.wait_for {
            debug_assert!(dep.0 < 1 << 16, "load id must fit the meta high half");
            m |= META_DEP | (dep.0 << 16);
        }
        m
    }

    /// Public view of [`WarpSlab::inst_meta`] for the trace frontend: the
    /// replay path advances by stream cursor, so the SM computes the next
    /// instruction's meta bits from the *trace op's* body position instead
    /// of the warp's own (which is the cursor, not a body index).
    pub(crate) fn inst_meta_at(kernel: &KernelSpec, pos: u32) -> u32 {
        Self::inst_meta(kernel, pos)
    }

    /// Launches a warp into `slot`, resetting every column of the row. A
    /// freshly-launched CTA is `Active`, so the slot starts CTA-schedulable.
    pub fn launch(
        &mut self,
        slot: usize,
        cta: CtaId,
        global_warp: u64,
        age: u64,
        op_base: u32,
        kernel: &KernelSpec,
    ) {
        self.launch_inner(slot, cta, global_warp, age, op_base, Self::inst_meta(kernel, 0));
    }

    /// Launches a warp in trace-replay mode: identical to [`WarpSlab::launch`]
    /// except the first instruction's meta bits come from the warp's trace
    /// stream (its first op's body position) rather than body position 0,
    /// and `body_pos` starts as a stream cursor.
    pub fn launch_trace(
        &mut self,
        slot: usize,
        cta: CtaId,
        global_warp: u64,
        age: u64,
        op_base: u32,
        first_meta: u32,
    ) {
        self.launch_inner(slot, cta, global_warp, age, op_base, first_meta);
    }

    fn launch_inner(
        &mut self,
        slot: usize,
        cta: CtaId,
        global_warp: u64,
        age: u64,
        op_base: u32,
        first_meta: u32,
    ) {
        debug_assert!(!self.occupied[slot], "launch into an occupied slot");
        self.occupied[slot] = true;
        self.cta[slot] = cta;
        self.global_warp[slot] = global_warp;
        self.age[slot] = age;
        self.body_pos[slot] = 0;
        self.iter[slot] = 0;
        self.done[slot] = false;
        self.next_ready[slot] = 0;
        self.total_outstanding[slot] = 0;
        self.op_base[slot] = op_base;
        self.meta[slot] = META_READY | first_meta;
        let lo = slot * self.n_loads;
        self.outstanding[lo..lo + self.n_loads].fill(0);
        self.access_index[lo..lo + self.n_loads].fill(0);
    }

    /// Replay/capture stream id of the warp in `slot`.
    #[inline]
    pub fn stream(&self, slot: usize) -> u32 {
        self.stream[slot]
    }

    /// Assigns the replay/capture stream id of the warp in `slot` (set at
    /// launch by the trace frontend).
    #[inline]
    pub fn set_stream(&mut self, slot: usize, id: u32) {
        self.stream[slot] = id;
    }

    /// Frees `slot` at CTA reap; the row is re-zeroed by the next launch.
    /// Bumping the generation here invalidates every in-flight completion
    /// still addressed to the old resident.
    ///
    /// The generation is 16 bits because it shares a `u32` completion tag
    /// with the slot index (`Sm::complete`). A stale completion could only
    /// alias if the slot were reused exactly 65 536 times while one
    /// response stayed in flight; memory latencies are bounded by a few
    /// thousand cycles and a reuse implies a full CTA lifetime, so the
    /// wrap is unreachable in practice — but it is an assumption of the
    /// tag scheme, not an enforced invariant.
    pub fn free(&mut self, slot: usize) {
        self.occupied[slot] = false;
        self.meta[slot] = 0;
        self.gen[slot] = (self.gen[slot] + 1) & 0xffff;
    }

    /// Residency generation of `slot` (see the `gen` column).
    #[inline]
    pub fn generation(&self, slot: usize) -> u32 {
        self.gen[slot]
    }

    /// Does `slot` hold a live warp?
    #[inline]
    pub fn is_occupied(&self, slot: usize) -> bool {
        self.occupied[slot]
    }

    /// CTA of the warp in `slot`.
    #[inline]
    pub fn cta(&self, slot: usize) -> CtaId {
        self.cta[slot]
    }

    /// Global warp number of the warp in `slot`.
    #[inline]
    pub fn global_warp(&self, slot: usize) -> u64 {
        self.global_warp[slot]
    }

    /// GTO age of the warp in `slot`.
    #[inline]
    pub fn age(&self, slot: usize) -> u64 {
        self.age[slot]
    }

    /// Has the warp in `slot` retired?
    #[inline]
    pub fn done(&self, slot: usize) -> bool {
        self.done[slot]
    }

    /// Earliest cycle the warp in `slot` may issue.
    #[inline]
    pub fn next_ready(&self, slot: usize) -> Cycle {
        self.next_ready[slot]
    }

    /// Blocks the warp in `slot` from issuing before `cycle`.
    #[inline]
    pub fn set_next_ready(&mut self, slot: usize, cycle: Cycle) {
        self.next_ready[slot] = cycle;
    }

    /// Body position of the warp in `slot`.
    #[inline]
    pub fn body_pos(&self, slot: usize) -> u32 {
        self.body_pos[slot]
    }

    /// Total outstanding line-requests of the warp in `slot`.
    #[inline]
    pub fn total_outstanding(&self, slot: usize) -> u32 {
        self.total_outstanding[slot]
    }

    /// Precomputed first operand register of the warp in `slot`.
    #[inline]
    pub fn op_base(&self, slot: usize) -> u32 {
        self.op_base[slot]
    }

    /// Outstanding line-requests of `load` for the warp in `slot`.
    #[inline]
    pub fn outstanding(&self, slot: usize, load: LoadId) -> u32 {
        self.outstanding[slot * self.n_loads + load.0 as usize]
    }

    /// Can the warp in `slot` issue its next instruction at `cycle`?
    /// (Scheduling eligibility; CTA active state is checked by the caller.)
    pub fn can_issue(
        &self,
        slot: usize,
        kernel: &KernelSpec,
        cycle: Cycle,
        max_outstanding: u32,
    ) -> bool {
        if self.done[slot] || self.next_ready[slot] > cycle {
            return false;
        }
        let inst = &kernel.body[self.body_pos[slot] as usize];
        if let Some(dep) = inst.wait_for {
            if self.outstanding[slot * self.n_loads + dep.0 as usize] > 0 {
                return false;
            }
        }
        if matches!(inst.kind, crate::kernel::InstKind::Load { .. })
            && self.total_outstanding[slot] >= max_outstanding
        {
            return false;
        }
        true
    }

    /// Advances the warp in `slot` past its current instruction, wrapping
    /// the loop body and retiring the warp after the final iteration.
    pub fn advance(&mut self, slot: usize, kernel: &KernelSpec) {
        self.body_pos[slot] += 1;
        if self.body_pos[slot] as usize == kernel.body.len() {
            self.body_pos[slot] = 0;
            self.iter[slot] += 1;
            if self.iter[slot] >= kernel.iterations {
                self.done[slot] = true;
                self.meta[slot] &= !META_LIVE;
                return;
            }
        }
        self.meta[slot] =
            (self.meta[slot] & META_READY) | Self::inst_meta(kernel, self.body_pos[slot]);
    }

    /// Advances the warp in `slot` along its trace stream: `body_pos` is
    /// the stream cursor, `next_meta` the meta bits of the next op's body
    /// position (`None` at stream end retires the warp). The stub kernel's
    /// `iterations` is ignored — a stream's length *is* its trip count.
    pub fn advance_trace(&mut self, slot: usize, next_meta: Option<u32>) {
        self.body_pos[slot] += 1;
        match next_meta {
            Some(m) => self.meta[slot] = (self.meta[slot] & META_READY) | m,
            None => {
                self.done[slot] = true;
                self.meta[slot] &= !META_LIVE;
            }
        }
    }

    /// Packed issue metadata of the warp in `slot` (`META_*` flags plus the
    /// dependency load id in the high half).
    #[inline]
    pub fn meta(&self, slot: usize) -> u32 {
        self.meta[slot]
    }

    /// Propagates the owning CTA's schedulability into `slot`'s metadata
    /// (called by the SM whenever a CTA's status flips to or from `Active`).
    pub fn set_cta_ok(&mut self, slot: usize, ok: bool) {
        if ok {
            self.meta[slot] |= META_CTA_OK;
        } else {
            self.meta[slot] &= !META_CTA_OK;
        }
    }

    /// Registers `n` new outstanding line-requests of `load` for the warp in
    /// `slot`.
    pub fn add_outstanding(&mut self, slot: usize, load: LoadId, n: u32) {
        self.outstanding[slot * self.n_loads + load.0 as usize] += n;
        self.total_outstanding[slot] += n;
    }

    /// Completes one outstanding line-request of `load` for the warp in
    /// `slot`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no request of that load is outstanding.
    pub fn complete_one(&mut self, slot: usize, load: LoadId) {
        let cell = slot * self.n_loads + load.0 as usize;
        debug_assert!(self.outstanding[cell] > 0);
        self.outstanding[cell] -= 1;
        self.total_outstanding[slot] -= 1;
    }

    /// Takes the next access index of `load` for the warp in `slot`
    /// (post-incrementing).
    pub fn next_access_index(&mut self, slot: usize, load: LoadId) -> u64 {
        let cell = slot * self.n_loads + load.0 as usize;
        let i = self.access_index[cell];
        self.access_index[cell] += 1;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::kernel::KernelSpec;
    use crate::pattern::AccessPattern;

    fn kernel() -> KernelSpec {
        KernelBuilder::new("k")
            .grid(1, 1)
            .load_then_use(AccessPattern::streaming(128), 0)
            .alu(2)
            .iterations(2)
            .build()
            .unwrap()
    }

    fn slab(k: &KernelSpec) -> WarpSlab {
        let mut s = WarpSlab::new(4);
        s.ensure_loads(k.loads.len());
        s.launch(0, CtaId(0), 0, 0, 0, k);
        s
    }

    #[test]
    fn advance_wraps_and_retires() {
        let k = kernel();
        let mut w = slab(&k);
        let body = k.body.len() as u32;
        for _ in 0..body {
            w.advance(0, &k);
        }
        assert_eq!(w.iter[0], 1);
        assert!(!w.done(0));
        for _ in 0..body {
            w.advance(0, &k);
        }
        assert!(w.done(0));
    }

    #[test]
    fn scoreboard_blocks_consumer() {
        let k = kernel();
        let mut w = slab(&k);
        // Execute the load (inst 0) and leave it outstanding.
        w.add_outstanding(0, LoadId(0), 1);
        w.advance(0, &k);
        // Inst 1 is the consumer with wait_for = load 0.
        assert!(!w.can_issue(0, &k, 100, 8));
        w.complete_one(0, LoadId(0));
        assert!(w.can_issue(0, &k, 100, 8));
    }

    #[test]
    fn outstanding_cap_blocks_loads() {
        let k = kernel();
        let mut w = slab(&k);
        w.add_outstanding(0, LoadId(0), 6);
        // body_pos 0 is a load; cap of 6 reached.
        assert!(!w.can_issue(0, &k, 0, 6));
        assert!(w.can_issue(0, &k, 0, 7));
    }

    #[test]
    fn next_ready_gates_issue() {
        let k = kernel();
        let mut w = slab(&k);
        w.set_next_ready(0, 10);
        assert!(!w.can_issue(0, &k, 9, 8));
        assert!(w.can_issue(0, &k, 10, 8));
    }

    #[test]
    fn access_index_increments() {
        let k = KernelBuilder::new("k2")
            .grid(1, 1)
            .load(AccessPattern::streaming(128))
            .load(AccessPattern::streaming(128))
            .build()
            .unwrap();
        let mut w = WarpSlab::new(2);
        w.ensure_loads(2);
        w.launch(0, CtaId(0), 0, 0, 0, &k);
        assert_eq!(w.next_access_index(0, LoadId(0)), 0);
        assert_eq!(w.next_access_index(0, LoadId(0)), 1);
        assert_eq!(w.next_access_index(0, LoadId(1)), 0);
    }

    #[test]
    fn done_warp_cannot_issue() {
        let k = kernel();
        let mut w = slab(&k);
        w.done[0] = true;
        assert!(!w.can_issue(0, &k, 0, 8));
    }

    /// Slot reuse must behave like a freshly-constructed warp: launch,
    /// dirty every column, free, relaunch — the recycled row starts clean.
    #[test]
    fn slot_reuse_resets_all_columns() {
        let k = kernel();
        let mut w = slab(&k);
        w.add_outstanding(0, LoadId(0), 3);
        w.next_access_index(0, LoadId(0));
        w.advance(0, &k);
        w.set_next_ready(0, 500);
        w.free(0);
        assert!(!w.is_occupied(0));
        w.launch(0, CtaId(1), 77, 9, 24, &k);
        assert!(w.is_occupied(0));
        assert_eq!(w.cta(0), CtaId(1));
        assert_eq!(w.global_warp(0), 77);
        assert_eq!(w.age(0), 9);
        assert_eq!(w.op_base(0), 24);
        assert_eq!(w.body_pos(0), 0);
        assert_eq!(w.next_ready(0), 0);
        assert_eq!(w.total_outstanding(0), 0);
        assert_eq!(w.outstanding(0, LoadId(0)), 0);
        assert_eq!(w.next_access_index(0, LoadId(0)), 0);
    }

    /// The packed metadata column must mirror the slow columns at every
    /// transition: launch, advance (load -> dep'd consumer -> retire), CTA
    /// status flips, free.
    #[test]
    fn meta_tracks_state_transitions() {
        let k = kernel();
        let mut w = slab(&k);
        // body[0] is the load.
        assert_eq!(w.meta(0) & META_READY, META_READY);
        assert_ne!(w.meta(0) & META_LOAD, 0);
        assert_eq!(w.meta(0) & (META_STORE | META_DEP), 0);
        w.advance(0, &k);
        // body[1] is the consumer: wait_for = load 0 in the high half.
        assert_ne!(w.meta(0) & META_DEP, 0);
        assert_eq!(w.meta(0) >> 16, 0);
        assert_eq!(w.meta(0) & (META_LOAD | META_STORE), 0);
        w.set_cta_ok(0, false);
        assert_eq!(w.meta(0) & META_READY, META_LIVE);
        w.set_cta_ok(0, true);
        assert_eq!(w.meta(0) & META_READY, META_READY);
        // Run out both iterations: the retired slot drops META_LIVE.
        let body = k.body.len() as u32;
        for _ in 0..(2 * body - 1) {
            w.advance(0, &k);
        }
        assert!(w.done(0));
        assert_eq!(w.meta(0) & META_LIVE, 0);
        w.free(0);
        assert_eq!(w.meta(0), 0);
    }
}
