//! Per-warp execution state and the in-order scoreboard.

use crate::kernel::KernelSpec;
use crate::types::{CtaId, Cycle, LoadId, WarpId};

/// Execution state of one resident warp.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// SM-local warp id.
    pub id: WarpId,
    /// CTA slot this warp belongs to.
    pub cta: CtaId,
    /// Globally unique warp number (drives private address patterns).
    pub global_warp: u64,
    /// Index of the next instruction in the kernel body.
    pub body_pos: u32,
    /// Completed loop iterations.
    pub iter: u32,
    /// Finished all iterations.
    pub done: bool,
    /// The warp cannot issue before this cycle (ALU latency, replay).
    pub next_ready: Cycle,
    /// Outstanding line-requests per static load (scoreboard).
    pub outstanding: Vec<u32>,
    /// Total outstanding line-requests.
    pub total_outstanding: u32,
    /// Per-load dynamic access counter (pattern phase).
    pub access_index: Vec<u64>,
    /// Launch order for GTO "oldest" tie-breaking.
    pub age: u64,
}

impl WarpState {
    /// Creates a warp at the start of the kernel.
    pub fn new(id: WarpId, cta: CtaId, global_warp: u64, n_loads: usize, age: u64) -> Self {
        WarpState {
            id,
            cta,
            global_warp,
            body_pos: 0,
            iter: 0,
            done: false,
            next_ready: 0,
            outstanding: vec![0; n_loads],
            total_outstanding: 0,
            access_index: vec![0; n_loads],
            age,
        }
    }

    /// Can this warp issue its next instruction at `cycle`?
    /// (Scheduling eligibility; CTA active state is checked by the caller.)
    pub fn can_issue(&self, kernel: &KernelSpec, cycle: Cycle, max_outstanding: u32) -> bool {
        if self.done || self.next_ready > cycle {
            return false;
        }
        let inst = &kernel.body[self.body_pos as usize];
        if let Some(dep) = inst.wait_for {
            if self.outstanding[dep.0 as usize] > 0 {
                return false;
            }
        }
        if matches!(inst.kind, crate::kernel::InstKind::Load { .. })
            && self.total_outstanding >= max_outstanding
        {
            return false;
        }
        true
    }

    /// Advances past the current instruction, wrapping the loop body and
    /// retiring the warp after the final iteration.
    pub fn advance(&mut self, kernel: &KernelSpec) {
        self.body_pos += 1;
        if self.body_pos as usize == kernel.body.len() {
            self.body_pos = 0;
            self.iter += 1;
            if self.iter >= kernel.iterations {
                self.done = true;
            }
        }
    }

    /// Registers `n` new outstanding line-requests for `load`.
    pub fn add_outstanding(&mut self, load: LoadId, n: u32) {
        self.outstanding[load.0 as usize] += n;
        self.total_outstanding += n;
    }

    /// Completes one outstanding line-request of `load`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no request of that load is outstanding.
    pub fn complete_one(&mut self, load: LoadId) {
        debug_assert!(self.outstanding[load.0 as usize] > 0);
        self.outstanding[load.0 as usize] -= 1;
        self.total_outstanding -= 1;
    }

    /// Takes the next access index for `load` (post-incrementing).
    pub fn next_access_index(&mut self, load: LoadId) -> u64 {
        let i = self.access_index[load.0 as usize];
        self.access_index[load.0 as usize] += 1;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::pattern::AccessPattern;

    fn kernel() -> KernelSpec {
        KernelBuilder::new("k")
            .grid(1, 1)
            .load_then_use(AccessPattern::streaming(128), 0)
            .alu(2)
            .iterations(2)
            .build()
            .unwrap()
    }

    #[test]
    fn advance_wraps_and_retires() {
        let k = kernel();
        let mut w = WarpState::new(WarpId(0), CtaId(0), 0, k.loads.len(), 0);
        let body = k.body.len() as u32;
        for _ in 0..body {
            w.advance(&k);
        }
        assert_eq!(w.iter, 1);
        assert!(!w.done);
        for _ in 0..body {
            w.advance(&k);
        }
        assert!(w.done);
    }

    #[test]
    fn scoreboard_blocks_consumer() {
        let k = kernel();
        let mut w = WarpState::new(WarpId(0), CtaId(0), 0, k.loads.len(), 0);
        // Execute the load (inst 0) and leave it outstanding.
        w.add_outstanding(LoadId(0), 1);
        w.advance(&k);
        // Inst 1 is the consumer with wait_for = load 0.
        assert!(!w.can_issue(&k, 100, 8));
        w.complete_one(LoadId(0));
        assert!(w.can_issue(&k, 100, 8));
    }

    #[test]
    fn outstanding_cap_blocks_loads() {
        let k = kernel();
        let mut w = WarpState::new(WarpId(0), CtaId(0), 0, k.loads.len(), 0);
        w.add_outstanding(LoadId(0), 6);
        // body_pos 0 is a load; cap of 6 reached.
        assert!(!w.can_issue(&k, 0, 6));
        assert!(w.can_issue(&k, 0, 7));
    }

    #[test]
    fn next_ready_gates_issue() {
        let k = kernel();
        let mut w = WarpState::new(WarpId(0), CtaId(0), 0, k.loads.len(), 0);
        w.next_ready = 10;
        assert!(!w.can_issue(&k, 9, 8));
        assert!(w.can_issue(&k, 10, 8));
    }

    #[test]
    fn access_index_increments() {
        let mut w = WarpState::new(WarpId(0), CtaId(0), 0, 2, 0);
        assert_eq!(w.next_access_index(LoadId(0)), 0);
        assert_eq!(w.next_access_index(LoadId(0)), 1);
        assert_eq!(w.next_access_index(LoadId(1)), 0);
    }

    #[test]
    fn done_warp_cannot_issue() {
        let k = kernel();
        let mut w = WarpState::new(WarpId(0), CtaId(0), 0, k.loads.len(), 0);
        w.done = true;
        assert!(!w.can_issue(&k, 0, 8));
    }
}
