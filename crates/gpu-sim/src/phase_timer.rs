//! Opt-in wall-clock phase attribution for the simulator's inner loop.
//!
//! The container this project runs in blocks sampling profilers (perf and
//! gprofng both collect zero samples), so the only way to see where a
//! simulated second actually goes is to meter it ourselves. With
//! `LB_PHASE_TIMERS=1` in the environment, `Sm::tick` and `Gpu::step`
//! attribute their wall time to coarse phases in global counters, and
//! [`report`] prints the totals to stderr at the end of a run. Without the
//! variable the instrumentation is a single always-false branch per phase.
//!
//! The meter double-counts nesting by design (SM sub-phases are also part
//! of the step total) and each probe pair costs ~50 ns, so the output ranks
//! phases rather than measuring them exactly — use the per-phase call
//! counts it prints to discount probe overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Metered phases, in report order.
pub const NAMES: [&str; 7] =
    ["sm_drain", "sm_lsu", "sm_issue", "sm_execute", "l2_ingress", "dram", "l2_egress"];

/// [`NAMES`] index: `Sm::drain_completions`.
pub const SM_DRAIN: usize = 0;
/// [`NAMES`] index: `Sm::process_lsu`.
pub const SM_LSU: usize = 1;
/// [`NAMES`] index: `Sm::issue` (includes `SM_EXECUTE` time).
pub const SM_ISSUE: usize = 2;
/// [`NAMES`] index: `Sm::execute_inst` (nested inside `SM_ISSUE`).
pub const SM_EXECUTE: usize = 3;
/// [`NAMES`] index: the L2-ingress phase of `Gpu::step`.
pub const L2_INGRESS: usize = 4;
/// [`NAMES`] index: the DRAM-tick phase of `Gpu::step`.
pub const DRAM: usize = 5;
/// [`NAMES`] index: the response-delivery phase of `Gpu::step`.
pub const L2_EGRESS: usize = 6;

static NANOS: [AtomicU64; NAMES.len()] = [const { AtomicU64::new(0) }; NAMES.len()];
static CALLS: [AtomicU64; NAMES.len()] = [const { AtomicU64::new(0) }; NAMES.len()];

/// Metered event counters (no timing — one relaxed increment when on).
pub const COUNTER_NAMES: [&str; 5] =
    ["classify_calls", "scan_lsu_full", "pick_was_current", "cand_walks", "comp_pushes"];

/// [`COUNTER_NAMES`] index: `Sm::classify` invocations.
pub const CLASSIFY_CALLS: usize = 0;
/// [`COUNTER_NAMES`] index: issue scans entered with a full LSU queue.
pub const SCAN_LSU_FULL: usize = 1;
/// [`COUNTER_NAMES`] index: picks satisfied by the greedily-held warp.
pub const PICK_WAS_CURRENT: usize = 2;
/// [`COUNTER_NAMES`] index: candidate-list walks started.
pub const CAND_WALKS: usize = 3;
/// [`COUNTER_NAMES`] index: completion-heap pushes.
pub const COMP_PUSHES: usize = 4;

static COUNTS: [AtomicU64; COUNTER_NAMES.len()] =
    [const { AtomicU64::new(0) }; COUNTER_NAMES.len()];

/// Bumps event counter `c` when the meter is on (one branch otherwise).
#[inline]
pub fn bump(c: usize) {
    if enabled() {
        COUNTS[c].fetch_add(1, Ordering::Relaxed);
    }
}

fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("LB_PHASE_TIMERS").is_some())
}

/// Starts a probe; `None` (the common case) costs one predictable branch.
#[inline]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Stops a probe started by [`start`], crediting `phase`.
#[inline]
pub fn stop(probe: Option<Instant>, phase: usize) {
    if let Some(t) = probe {
        NANOS[phase].fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        CALLS[phase].fetch_add(1, Ordering::Relaxed);
    }
}

/// Prints accumulated phase totals to stderr (no-op when the meter is off).
pub fn report() {
    if !enabled() {
        return;
    }
    eprintln!("[phase-timers] wall time by simulator phase (probe pairs inflate each call):");
    for (i, name) in NAMES.iter().enumerate() {
        let ns = NANOS[i].load(Ordering::Relaxed);
        let calls = CALLS[i].load(Ordering::Relaxed);
        let per = ns.checked_div(calls).unwrap_or(0);
        eprintln!(
            "[phase-timers]   {name:<10} {:>9.3} s  {calls:>12} calls  {per:>6} ns/call",
            ns as f64 / 1e9
        );
    }
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        eprintln!("[phase-timers]   {name:<18} {:>14}", COUNTS[i].load(Ordering::Relaxed));
    }
}
