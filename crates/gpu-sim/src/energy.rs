//! Activity-based energy model (GPUWattch/CACTI substitute).
//!
//! Energy = static power x runtime + per-event dynamic energies. The absolute
//! joule figures are ballpark, but the *relative* comparisons the paper makes
//! (Figure 18: Linebacker -22.1 % vs baseline, CERF -21.2 %) are driven by
//! runtime reduction plus small per-access adders — which this model captures.
//!
//! # Constant provenance
//!
//! The paper evaluates energy with GPUWattch (Leng et al., ISCA 2013),
//! which derives per-access energies from McPAT/CACTI at 40 nm for a
//! GTX 480-class part; it reports no raw per-event tables of its own. The
//! defaults below are therefore *rounded composites* of the publicly
//! reported GPUWattch/CACTI-class figures for that technology point, not
//! values transcribed from the Linebacker paper:
//!
//! - `inst_pj = 8`: fetch/decode/wavefront-datapath energy per executed
//!   warp instruction, the order GPUWattch attributes to the core pipeline
//!   (a few pJ/op at 40 nm; cf. Leng et al. §4's core-energy split).
//! - `rf_access_pj = 2.4`: one 128 B register-file bank access. CACTI-class
//!   SRAM reads at this width/technology cost single-digit pJ; the paper's
//!   premise (Table 4-style RF vs L1 asymmetry) needs RF ≪ L1, which the
//!   22/2.4 ≈ 9x ratio preserves.
//! - `l1_access_pj = 22` / `l2_access_pj = 56`: per-lookup/fill energies
//!   for the 16-48 KB L1 and the ~MB-scale L2; the 2-3x L2/L1 step matches
//!   the CACTI scaling GPUWattch uses between those array sizes.
//! - `dram_per_byte_pj = 18`: ~144 pJ per 8 B GDDR transfer, the oft-cited
//!   GDDR5-era interface+array cost (≈ 18-20 pJ/bit would be DDR3 DIMMs;
//!   graphics DRAM sits near 2 pJ/bit x 8 bit/byte plus I/O overheads).
//! - `static_pj_per_sm_cycle = 160`: leakage + clock-tree power per SM,
//!   ≈ 110 W idle-ish floor for a 15-SM part at 700 MHz — the share
//!   GPUWattch assigns to constant power on Fermi-class silicon.
//!
//! What the reproduction relies on is the *ratios* (RF ≪ L1 < L2 ≪ DRAM,
//! plus a large static share), which set Figure 18's shape: Linebacker's
//! extra RF traffic is cheap, its runtime cut scales the static term down,
//! and avoided DRAM traffic dominates the dynamic savings. Absolute mJ
//! values should not be quoted against hardware measurements.

/// Per-event energies in picojoules, plus static power.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyConfig {
    /// Energy per executed instruction (datapath + fetch/decode).
    pub inst_pj: f64,
    /// Energy per register-file 128 B access.
    pub rf_access_pj: f64,
    /// Energy per L1 lookup/fill.
    pub l1_access_pj: f64,
    /// Energy per L2 lookup/fill.
    pub l2_access_pj: f64,
    /// Energy per DRAM byte transferred.
    pub dram_per_byte_pj: f64,
    /// Static (leakage + constant) power per SM per cycle, in pJ.
    pub static_pj_per_sm_cycle: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            inst_pj: 8.0,
            rf_access_pj: 2.4,
            l1_access_pj: 22.0,
            l2_access_pj: 56.0,
            dram_per_byte_pj: 18.0,
            static_pj_per_sm_cycle: 160.0,
        }
    }
}

/// Activity counts fed to the model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Activity {
    /// Simulated cycles.
    pub cycles: u64,
    /// Number of SMs.
    pub n_sms: u32,
    /// Instructions executed.
    pub instructions: u64,
    /// Register-file accesses (reads + writes, including victim-cache use).
    pub rf_accesses: u64,
    /// L1 lookups + fills.
    pub l1_accesses: u64,
    /// L2 lookups + fills.
    pub l2_accesses: u64,
    /// DRAM bytes moved (all traffic classes).
    pub dram_bytes: u64,
    /// Extra energy charged by the policy's own structures (e.g. Linebacker's
    /// LM/VTT/CTA-manager accesses), in pJ.
    pub policy_extra_pj: f64,
}

impl EnergyConfig {
    /// Total energy in millijoules for the given activity.
    pub fn total_mj(&self, a: &Activity) -> f64 {
        let dynamic = a.instructions as f64 * self.inst_pj
            + a.rf_accesses as f64 * self.rf_access_pj
            + a.l1_accesses as f64 * self.l1_access_pj
            + a.l2_accesses as f64 * self.l2_access_pj
            + a.dram_bytes as f64 * self.dram_per_byte_pj
            + a.policy_extra_pj;
        let static_e = a.cycles as f64 * a.n_sms as f64 * self.static_pj_per_sm_cycle;
        (dynamic + static_e) / 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_zero_energy() {
        let e = EnergyConfig::default();
        assert_eq!(e.total_mj(&Activity::default()), 0.0);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let e = EnergyConfig::default();
        let a1 = Activity { cycles: 1000, n_sms: 16, ..Default::default() };
        let a2 = Activity { cycles: 2000, n_sms: 16, ..Default::default() };
        assert!((e.total_mj(&a2) - 2.0 * e.total_mj(&a1)).abs() < 1e-12);
    }

    #[test]
    fn shorter_runtime_saves_energy_despite_extra_accesses() {
        // The crux of Figure 18: Linebacker adds RF accesses but cuts cycles.
        let e = EnergyConfig::default();
        let baseline = Activity {
            cycles: 100_000,
            n_sms: 16,
            instructions: 1_000_000,
            rf_accesses: 3_000_000,
            l1_accesses: 300_000,
            l2_accesses: 200_000,
            dram_bytes: 25_600_000,
            policy_extra_pj: 0.0,
        };
        let lb = Activity {
            cycles: 75_000,
            rf_accesses: 3_500_000, // extra victim-cache traffic
            dram_bytes: 20_000_000, // less off-chip traffic
            policy_extra_pj: 1.0e6,
            ..baseline
        };
        assert!(e.total_mj(&lb) < e.total_mj(&baseline));
    }

    #[test]
    fn policy_extra_charged() {
        let e = EnergyConfig::default();
        let a = Activity { policy_extra_pj: 1.0e9, ..Default::default() };
        assert!((e.total_mj(&a) - 1.0).abs() < 1e-12);
    }
}
