//! Activity-based energy model (GPUWattch/CACTI substitute).
//!
//! Energy = static power x runtime + per-event dynamic energies. The absolute
//! joule figures are ballpark, but the *relative* comparisons the paper makes
//! (Figure 18: Linebacker -22.1 % vs baseline, CERF -21.2 %) are driven by
//! runtime reduction plus small per-access adders — which this model captures.

/// Per-event energies in picojoules, plus static power.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyConfig {
    /// Energy per executed instruction (datapath + fetch/decode).
    pub inst_pj: f64,
    /// Energy per register-file 128 B access.
    pub rf_access_pj: f64,
    /// Energy per L1 lookup/fill.
    pub l1_access_pj: f64,
    /// Energy per L2 lookup/fill.
    pub l2_access_pj: f64,
    /// Energy per DRAM byte transferred.
    pub dram_per_byte_pj: f64,
    /// Static (leakage + constant) power per SM per cycle, in pJ.
    pub static_pj_per_sm_cycle: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            inst_pj: 8.0,
            rf_access_pj: 2.4,
            l1_access_pj: 22.0,
            l2_access_pj: 56.0,
            dram_per_byte_pj: 18.0,
            static_pj_per_sm_cycle: 160.0,
        }
    }
}

/// Activity counts fed to the model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Activity {
    /// Simulated cycles.
    pub cycles: u64,
    /// Number of SMs.
    pub n_sms: u32,
    /// Instructions executed.
    pub instructions: u64,
    /// Register-file accesses (reads + writes, including victim-cache use).
    pub rf_accesses: u64,
    /// L1 lookups + fills.
    pub l1_accesses: u64,
    /// L2 lookups + fills.
    pub l2_accesses: u64,
    /// DRAM bytes moved (all traffic classes).
    pub dram_bytes: u64,
    /// Extra energy charged by the policy's own structures (e.g. Linebacker's
    /// LM/VTT/CTA-manager accesses), in pJ.
    pub policy_extra_pj: f64,
}

impl EnergyConfig {
    /// Total energy in millijoules for the given activity.
    pub fn total_mj(&self, a: &Activity) -> f64 {
        let dynamic = a.instructions as f64 * self.inst_pj
            + a.rf_accesses as f64 * self.rf_access_pj
            + a.l1_accesses as f64 * self.l1_access_pj
            + a.l2_accesses as f64 * self.l2_access_pj
            + a.dram_bytes as f64 * self.dram_per_byte_pj
            + a.policy_extra_pj;
        let static_e = a.cycles as f64 * a.n_sms as f64 * self.static_pj_per_sm_cycle;
        (dynamic + static_e) / 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_zero_energy() {
        let e = EnergyConfig::default();
        assert_eq!(e.total_mj(&Activity::default()), 0.0);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let e = EnergyConfig::default();
        let a1 = Activity { cycles: 1000, n_sms: 16, ..Default::default() };
        let a2 = Activity { cycles: 2000, n_sms: 16, ..Default::default() };
        assert!((e.total_mj(&a2) - 2.0 * e.total_mj(&a1)).abs() < 1e-12);
    }

    #[test]
    fn shorter_runtime_saves_energy_despite_extra_accesses() {
        // The crux of Figure 18: Linebacker adds RF accesses but cuts cycles.
        let e = EnergyConfig::default();
        let baseline = Activity {
            cycles: 100_000,
            n_sms: 16,
            instructions: 1_000_000,
            rf_accesses: 3_000_000,
            l1_accesses: 300_000,
            l2_accesses: 200_000,
            dram_bytes: 25_600_000,
            policy_extra_pj: 0.0,
        };
        let lb = Activity {
            cycles: 75_000,
            rf_accesses: 3_500_000, // extra victim-cache traffic
            dram_bytes: 20_000_000, // less off-chip traffic
            policy_extra_pj: 1.0e6,
            ..baseline
        };
        assert!(e.total_mj(&lb) < e.total_mj(&baseline));
    }

    #[test]
    fn policy_extra_charged() {
        let e = EnergyConfig::default();
        let a = Activity { policy_extra_pj: 1.0e9, ..Default::default() };
        assert!((e.total_mj(&a) - 1.0).abs() < 1e-12);
    }
}
