//! Memory partitions: the unit of the partitioned SM-to-DRAM path.
//!
//! A [`MemPartition`] bundles one L2 slice (with its own MSHRs), one DRAM
//! channel (own token bucket, bank set and finish heap) and a private
//! `to_l2`/`from_l2` interconnect queue pair. Lines are steered to
//! partitions by a power-of-two interleave on the line address
//! ([`crate::dram::AddrMap::partition_of`]): partition `p` owns every line
//! with `line & (n_partitions - 1) == p`, so consecutive lines stripe
//! across partitions exactly like GPGPU-Sim's address-interleaved memory
//! partitions.
//!
//! Capacity and bandwidth are split, not replicated: each slice gets
//! `1/n` of the configured L2 capacity and MSHRs, and each channel gets
//! `1/n` of the DRAM banks and bandwidth. With `n_mem_partitions == 1`
//! the single partition is field-for-field the old monolithic memory
//! side — same L2 geometry, same `lines_per_cycle` float (division by
//! 1.0 is exact), same address map (partition shift 0) — which is what
//! keeps the default configuration bit-identical to the pre-partition
//! simulator.
//!
//! # Thread ownership (parallel spans)
//!
//! Partitions are owned by the GPU's main thread, always. Under
//! `sim_threads >= 2` the due SMs' spans run on pool threads, and the
//! parallel phase machine relies on two partition-side invariants:
//!
//! * **Phase 1 never mutates a partition.** SM spans stage their traffic
//!   in per-SM `emissions`/`pending_out` buffers; `to_l2.push` happens
//!   only at the serial rendezvous merge (and `from_l2` only in phases
//!   2–4). This is what lets the GPU snapshot the inbound-delivery
//!   horizon (`from_l2.next_due` across partitions) once per step,
//!   *before* any span runs, and hand every due SM a stable horizon.
//! * **Queue order is canonical.** The merge pushes per SM in id order,
//!   flush-then-drain, so a partition's `to_l2` receives exactly the
//!   sequence a cycle-lockstep, single-threaded run would have produced —
//!   the byte-identity anchor for every thread count.
//!
//! Nothing in this file is itself thread-aware; keep it that way. A
//! method that pool threads could reach (anything called from
//! `Sm::tick_span`) must not be added here without revisiting the
//! parallel phase machine in `gpu.rs`.

use crate::cache::{L2Cache, MshrOutcome};
use crate::config::{CacheConfig, GpuConfig};
use crate::dram::{Dram, DramDone, TrafficClass};
use crate::icnt::IcntQueue;
use crate::mem::{MemReq, MemReqKind};
use crate::types::Cycle;
use lb_trace::{Event as TraceEvent, Tracer};

/// One independent slice of the memory subsystem: L2 slice + MSHRs +
/// DRAM channel + interconnect queue pair.
pub struct MemPartition {
    /// This partition's index (also the trace-event partition id).
    pub(crate) id: u32,
    /// The L2 slice (capacity and MSHRs are 1/n of the GPU total).
    pub(crate) l2: L2Cache,
    /// SM -> L2 request queue of this partition.
    pub(crate) to_l2: IcntQueue<MemReq>,
    /// L2 -> SM response queue of this partition.
    pub(crate) from_l2: IcntQueue<MemReq>,
    /// The DRAM channel (1/n of the banks and bandwidth).
    pub(crate) dram: Dram,
    /// Requests whose DRAM token indexes this table.
    dram_pending: Vec<MemReq>,
    dram_free: Vec<usize>,
    /// Completion scratch for `step_dram` (reused across ticks).
    scratch_done: Vec<DramDone>,
    /// MSHR-waiter scratch for `step_dram` (reused across ticks).
    scratch_waiters: Vec<u64>,
    /// L2 accesses (lookups + fills) serviced by this slice.
    l2_access_count: u64,
    /// DRAM transactions completed by this channel.
    dram_services: u64,
    l2_latency: u64,
    tracer: Tracer,
}

impl MemPartition {
    /// Builds partition `id` of `cfg.n_mem_partitions`, slicing the
    /// GPU-wide L2/DRAM totals in `cfg` down to this partition's share.
    pub fn new(cfg: &GpuConfig, id: u32, tracer: Tracer) -> Self {
        let n = cfg.n_mem_partitions;
        debug_assert!(n.is_power_of_two() && id < n);
        let l2_cfg = CacheConfig {
            size_bytes: cfg.l2.size_bytes / n as u64,
            mshrs: cfg.l2.mshrs / n,
            ..cfg.l2.clone()
        };
        let mut dram_cfg = cfg.dram.clone();
        dram_cfg.banks /= n;
        // Power-of-two division of an f64 only changes the exponent, so
        // the per-channel rate is exact and n == 1 reproduces the
        // monolithic token-bucket sequence bit for bit.
        let lines_per_cycle = cfg.dram_lines_per_cycle() / n as f64;
        let part_shift = n.trailing_zeros();
        // The interconnect's delivery bandwidth is split across partition
        // ports, with a floor of one message per cycle per port.
        let icnt_bw = (cfg.icnt_bandwidth() / n).max(1);
        MemPartition {
            id,
            l2: L2Cache::new(&l2_cfg),
            to_l2: IcntQueue::new(cfg.icnt_latency, icnt_bw),
            from_l2: IcntQueue::new(cfg.icnt_latency, icnt_bw),
            dram: Dram::new_channel(dram_cfg, lines_per_cycle, part_shift, id as u64),
            dram_pending: Vec::new(),
            dram_free: Vec::new(),
            scratch_done: Vec::new(),
            scratch_waiters: Vec::new(),
            l2_access_count: 0,
            dram_services: 0,
            l2_latency: cfg.l2_latency as u64,
            tracer,
        }
    }

    fn alloc_dram_slot(&mut self, req: MemReq) -> u64 {
        if let Some(i) = self.dram_free.pop() {
            self.dram_pending[i] = req;
            i as u64
        } else {
            self.dram_pending.push(req);
            (self.dram_pending.len() - 1) as u64
        }
    }

    /// Handles one request arriving at this partition's L2 slice; returns
    /// the DRAM arrival cycle if the request was forwarded to the channel
    /// (the caller wakes this partition's calendar slot at that cycle).
    pub(crate) fn handle_at_l2(&mut self, req: MemReq, cycle: Cycle) -> Option<Cycle> {
        match req.kind {
            MemReqKind::Read | MemReqKind::BypassRead => {
                self.l2_access_count += 1;
                let hit = self.l2.access(req.line);
                self.tracer.emit(
                    cycle,
                    TraceEvent::L2Access { part: self.id as u64, line: req.line.0, hit },
                );
                if hit {
                    // L2 hit: response after the L2 pipeline latency.
                    self.from_l2.push(req, cycle + self.l2_latency);
                    None
                } else {
                    let token = self.alloc_dram_slot(req);
                    match self.l2.mshrs().allocate(req.line, token) {
                        MshrOutcome::NewEntry => {
                            // The DRAM request itself carries a fresh token
                            // so the fill can find the merged waiter list.
                            let dram_token = self.alloc_dram_slot(req);
                            let arrival = cycle + self.l2_latency;
                            self.dram.push(req.line, TrafficClass::DemandRead, dram_token, arrival);
                            Some(arrival)
                        }
                        MshrOutcome::Merged => {
                            self.tracer.emit(
                                cycle,
                                TraceEvent::MshrMerge {
                                    level: 1,
                                    sm: req.sm.0 as u64,
                                    line: req.line.0,
                                },
                            );
                            None
                        }
                        MshrOutcome::Full => {
                            // Model back-pressure as a retried request.
                            self.to_l2.push(req, cycle + 16);
                            self.dram_free.push(token as usize);
                            None
                        }
                    }
                }
            }
            MemReqKind::Store => {
                // Write-through, no-allocate: straight to DRAM.
                self.l2_access_count += 1;
                let token = self.alloc_dram_slot(req);
                self.dram.push(req.line, TrafficClass::StoreWrite, token, cycle);
                Some(cycle)
            }
            MemReqKind::RegBackup { .. } => {
                let token = self.alloc_dram_slot(req);
                self.dram.push(req.line, TrafficClass::RegBackup, token, cycle);
                Some(cycle)
            }
            MemReqKind::RegRestore { .. } => {
                let token = self.alloc_dram_slot(req);
                self.dram.push(req.line, TrafficClass::RegRestore, token, cycle);
                Some(cycle)
            }
        }
    }

    /// One DRAM-channel tick plus completion fan-out into `from_l2`.
    pub(crate) fn step_dram(&mut self, cycle: Cycle) {
        self.scratch_done.clear();
        self.dram.tick(cycle, &mut self.scratch_done, &self.tracer);
        self.dram_services += self.scratch_done.len() as u64;
        for i in 0..self.scratch_done.len() {
            let d = self.scratch_done[i];
            let req = self.dram_pending[d.token as usize];
            self.dram_free.push(d.token as usize);
            match req.kind {
                MemReqKind::Read | MemReqKind::BypassRead => {
                    self.l2.fill(req.line);
                    self.l2_access_count += 1;
                    // Wake all L2-MSHR waiters merged on this line.
                    let mut waiters = std::mem::take(&mut self.scratch_waiters);
                    self.l2.mshrs().complete_into(req.line, &mut waiters);
                    for &t in &waiters {
                        let waiter = self.dram_pending[t as usize];
                        self.dram_free.push(t as usize);
                        self.from_l2.push(waiter, cycle);
                    }
                    self.scratch_waiters = waiters;
                }
                MemReqKind::Store
                | MemReqKind::RegBackup { .. }
                | MemReqKind::RegRestore { .. } => {
                    // Store-buffer credit / completion notification back to
                    // the SM (backpressure).
                    self.from_l2.push(req, cycle);
                }
            }
        }
    }

    /// Earliest cycle either interconnect queue of this partition can
    /// deliver a message.
    pub(crate) fn icnt_next_due(&self) -> Option<Cycle> {
        match (self.to_l2.next_due(), self.from_l2.next_due()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// No requests in flight anywhere in this partition.
    pub(crate) fn drained(&self) -> bool {
        self.to_l2.in_flight() == 0 && self.from_l2.in_flight() == 0 && self.dram.pending() == 0
    }

    /// L2 accesses (lookups + fills) serviced by this slice.
    pub fn l2_access_count(&self) -> u64 {
        self.l2_access_count
    }

    /// DRAM transactions completed by this channel.
    pub fn dram_services(&self) -> u64 {
        self.dram_services
    }
}

impl std::fmt::Debug for MemPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemPartition")
            .field("id", &self.id)
            .field("l2_accesses", &self.l2_access_count)
            .field("dram_pending", &self.dram.pending())
            .field("to_l2", &self.to_l2.in_flight())
            .field("from_l2", &self.from_l2.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_matches_monolithic_geometry() {
        let cfg = GpuConfig::default();
        let p = MemPartition::new(&cfg, 0, Tracer::off());
        // The lone slice owns the full L2 and the full DRAM channel.
        assert_eq!(p.l2.capacity_lines() as u64, cfg.l2.size_bytes / cfg.l2.line_bytes);
        assert_eq!(p.dram.pending(), 0);
    }

    #[test]
    fn slices_split_capacity_evenly() {
        let cfg = GpuConfig::default().with_mem_partitions(4);
        let slices: Vec<MemPartition> =
            (0..4).map(|i| MemPartition::new(&cfg, i, Tracer::off())).collect();
        let total: u64 = slices.iter().map(|p| p.l2.capacity_lines() as u64).sum();
        assert_eq!(total, cfg.l2.size_bytes / cfg.l2.line_bytes);
    }
}
