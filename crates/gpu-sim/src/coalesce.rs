//! Warp memory coalescer.
//!
//! A warp-wide load produces up to 32 lane addresses; the coalescer merges
//! lanes falling in the same 128 B line into a single memory request, the way
//! GPU load/store units do for global accesses.

use crate::types::{Address, LineAddr};

/// Coalesces lane byte-addresses into distinct line requests, preserving the
/// first-lane order, and appends them to `out`.
///
/// Order preservation matters: the sequence of line requests issued to the L1
/// follows lane order, which keeps replacement behaviour deterministic.
pub fn coalesce_into(lanes: &[Address], out: &mut Vec<LineAddr>) {
    let start = out.len();
    for a in lanes {
        push_line_dedup(out, start, a.line());
    }
}

/// The coalescer's merge rule on one line: append `line` to `out` unless it
/// already appears in `out[start..]` (the lines of the *current* access).
/// Returns whether the line was new.
///
/// Factored out so the group-direct divergent generator and the decoded
/// descriptor replay ([`crate::pattern::LineDesc`]) share one definition
/// with the lane coalescer instead of re-implementing the dedup scan.
#[inline]
pub fn push_line_dedup(out: &mut Vec<LineAddr>, start: usize, line: LineAddr) -> bool {
    // Linear scan: a warp emits at most 32 lines, so this beats hashing.
    for seen in &out[start..] {
        if *seen == line {
            return false;
        }
    }
    out.push(line);
    true
}

/// Convenience wrapper returning a fresh vector.
pub fn coalesce(lanes: &[Address]) -> Vec<LineAddr> {
    let mut out = Vec::with_capacity(4);
    coalesce_into(lanes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LINE_BYTES;

    #[test]
    fn fully_coalesced_warp_is_one_request() {
        let lanes: Vec<Address> = (0..32).map(|l| Address(0x1000 + l * 4)).collect();
        assert_eq!(coalesce(&lanes).len(), 1);
    }

    #[test]
    fn fully_divergent_warp_is_32_requests() {
        let lanes: Vec<Address> = (0..32).map(|l| Address(l * 4096)).collect();
        assert_eq!(coalesce(&lanes).len(), 32);
    }

    #[test]
    fn two_line_straddle() {
        // 16 lanes in one line, 16 in the next.
        let lanes: Vec<Address> = (0..32).map(|l| Address(l * 8)).collect();
        assert_eq!(coalesce(&lanes).len(), 2);
    }

    #[test]
    fn order_preserved() {
        let lanes = [Address(5 * LINE_BYTES), Address(LINE_BYTES), Address(5 * LINE_BYTES)];
        let lines = coalesce(&lanes);
        assert_eq!(lines, vec![LineAddr(5), LineAddr(1)]);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn push_line_dedup_scopes_to_current_access() {
        let mut out = vec![LineAddr(7)];
        // `start` marks the current access: the pre-existing entry is invisible.
        assert!(push_line_dedup(&mut out, 1, LineAddr(7)));
        assert!(!push_line_dedup(&mut out, 1, LineAddr(7)));
        assert_eq!(out, vec![LineAddr(7), LineAddr(7)]);
    }

    #[test]
    fn coalesce_into_appends_after_existing() {
        let mut out = vec![LineAddr(42)];
        coalesce_into(&[Address(42 * LINE_BYTES)], &mut out);
        // The pre-existing entry belongs to a previous access and must not
        // suppress the new request.
        assert_eq!(out, vec![LineAddr(42), LineAddr(42)]);
    }
}
