//! Fast hashing for the simulator's integer-keyed hot-path maps.
//!
//! The memory system keys maps and sets by line address (a `u64` newtype)
//! on every L1/L2 miss and fill. `std`'s default SipHash is DoS-resistant,
//! but these structures never see untrusted keys, and the hash itself was
//! costing more than the probe it guards. [`FxHasher64`] is the classic
//! multiply–xor construction (the `FxHash` used by rustc's own interner):
//! one rotate, one xor and one multiply per word.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply–xor hasher for integer keys. Not DoS-resistant — internal use
/// only, never fed externally controlled keys.
#[derive(Debug, Default)]
pub struct FxHasher64 {
    hash: u64,
}

/// `pi * 2^62`, the odd multiplier from the Fx construction (64-bit form).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher64`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher64>>;

/// `HashSet` keyed with [`FxHasher64`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher64>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_u64_keys() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for k in 0..1000u64 {
            m.insert(k * 0x1_0001, k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 0x1_0001)), Some(&(k as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_distinguishes_dense_lines() {
        // Line addresses are small, dense integers; the hash must spread
        // them well enough that a set behaves (no pathological collisions
        // would show up as wrong membership, only as slowness — this is a
        // correctness smoke test).
        let mut s: FastSet<u64> = FastSet::default();
        for k in 0..4096u64 {
            s.insert(k);
        }
        assert_eq!(s.len(), 4096);
        assert!(s.contains(&17));
        assert!(!s.contains(&4096));
    }

    #[test]
    fn hash_differs_across_neighbouring_keys() {
        use std::hash::Hash;
        let h = |k: u64| {
            let mut hasher = FxHasher64::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(1), h(2));
        assert_ne!(h(0), h(1 << 32));
    }
}
