//! CTA (cooperative thread array) lifecycle state within an SM.

use crate::types::{CtaId, RegNum};

/// Scheduling status of a resident CTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtaStatus {
    /// Warps are schedulable.
    Active,
    /// Deactivated by throttling; register backup in flight.
    BackingUp {
        /// Backup lines still outstanding in the DRAM queue.
        remaining: u32,
    },
    /// Deactivated; registers fully backed up off-chip (C bit set).
    Inactive,
    /// Being re-activated; register restore in flight.
    Restoring {
        /// Restore lines still outstanding.
        remaining: u32,
    },
}

/// One resident CTA.
#[derive(Debug, Clone)]
pub struct CtaState {
    /// Hardware CTA slot id (SM-local).
    pub id: CtaId,
    /// Scheduling status.
    pub status: CtaStatus,
    /// First warp register allocated (the paper's FRN).
    pub first_reg: RegNum,
    /// Warp registers allocated.
    pub reg_count: u32,
    /// SM-local warp ids belonging to this CTA.
    pub warps: Vec<u32>,
    /// Warps that have finished all iterations.
    pub warps_done: u32,
    /// Launch sequence number (GTO age base).
    pub launch_seq: u64,
}

impl CtaState {
    /// Is the CTA finished (all warps done)?
    pub fn is_complete(&self) -> bool {
        self.warps_done as usize == self.warps.len()
    }

    /// Can warps of this CTA issue instructions?
    pub fn schedulable(&self) -> bool {
        matches!(self.status, CtaStatus::Active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cta() -> CtaState {
        CtaState {
            id: CtaId(0),
            status: CtaStatus::Active,
            first_reg: RegNum(0),
            reg_count: 64,
            warps: vec![0, 1, 2, 3],
            warps_done: 0,
            launch_seq: 0,
        }
    }

    #[test]
    fn completion_requires_all_warps() {
        let mut c = cta();
        assert!(!c.is_complete());
        c.warps_done = 4;
        assert!(c.is_complete());
    }

    #[test]
    fn only_active_is_schedulable() {
        let mut c = cta();
        assert!(c.schedulable());
        for s in [
            CtaStatus::BackingUp { remaining: 3 },
            CtaStatus::Inactive,
            CtaStatus::Restoring { remaining: 2 },
        ] {
            c.status = s;
            assert!(!c.schedulable(), "{s:?} must not be schedulable");
        }
    }
}
