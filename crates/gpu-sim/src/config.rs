//! GPU configuration (the paper's Table 1) and a builder for variants.

use crate::types::LINE_BYTES;

/// Full configuration of the simulated GPU.
///
/// Defaults reproduce Table 1 of the paper:
///
/// | parameter | value |
/// |---|---|
/// | SMs | 16 |
/// | clock | 1126 MHz |
/// | SIMD width | 32 |
/// | max threads/warps/CTAs per SM | 2048 / 64 / 32 |
/// | warp scheduling | GTO, 4 schedulers per SM |
/// | register file per SM | 256 KB |
/// | shared memory per SM | 96 KB |
/// | L1 per SM | 48 KB, 8-way, 128 B lines, 64 MSHRs |
/// | L2 shared | 2048 KB, 8-way |
/// | DRAM bandwidth | 352.5 GB/s |
///
/// # Examples
///
/// ```
/// use gpu_sim::config::GpuConfig;
///
/// let cfg = GpuConfig::default();
/// assert_eq!(cfg.n_sms, 16);
/// assert_eq!(cfg.l1.size_bytes, 48 * 1024);
/// assert_eq!(cfg.warp_regs_per_sm(), 2048);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub n_sms: u32,
    /// Core clock frequency in Hz (1126 MHz in the paper).
    pub clock_hz: u64,
    /// SIMD width (threads per warp).
    pub simd_width: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident CTAs per SM.
    pub max_ctas_per_sm: u32,
    /// Number of warp schedulers (issue slots) per SM.
    pub schedulers_per_sm: u32,
    /// Register file bytes per SM (256 KB).
    pub regfile_bytes_per_sm: u64,
    /// Number of register file banks per SM.
    pub regfile_banks: u32,
    /// Shared memory bytes per SM (96 KB). Only used for occupancy limits.
    pub shared_mem_bytes_per_sm: u64,
    /// L1 data cache configuration.
    pub l1: CacheConfig,
    /// L2 shared cache configuration.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u32,
    /// Minimum L2 round-trip latency in cycles (the paper quotes a 200-cycle
    /// minimum for an L2 access).
    pub l2_latency: u32,
    /// Interconnect (SM <-> L2 partition) one-way latency in cycles.
    pub icnt_latency: u32,
    /// L1 cache accesses (line lookups) the LSU can start per cycle per SM.
    pub l1_ports: u32,
    /// Interconnect delivery bandwidth in messages per cycle per direction.
    /// `None` derives the historical default `(n_sms * 2).max(8)`, which
    /// tracks the SM count so the interconnect never becomes the accidental
    /// bottleneck of a scaled-down machine; set an explicit value to model
    /// a fixed-width crossbar.
    pub icnt_bw: Option<u32>,
    /// Number of independent memory partitions. Each partition owns one L2
    /// slice (capacity and MSHRs split evenly), one DRAM channel (bandwidth
    /// and banks split evenly) and its own interconnect queue pair; lines
    /// are steered by a power-of-two interleave on the line address. Must
    /// be a power of two. The default of 1 reproduces the monolithic
    /// memory side bit-exactly.
    pub n_mem_partitions: u32,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Maximum outstanding load line-requests per warp before the scoreboard
    /// stalls further memory instructions.
    pub max_outstanding_per_warp: u32,
    /// Statistics/monitoring window length in core cycles (50 000 in the
    /// paper, for both IPC and per-load locality monitoring).
    pub window_cycles: u64,
    /// Hard cap on simulated cycles (a run terminates at the cap even if the
    /// kernel has not drained; stats are still meaningful rates).
    pub max_cycles: u64,
    /// Enable expensive per-load working-set/streaming statistics
    /// (needed for reproducing Figures 2 and 3 only).
    pub detailed_load_stats: bool,
    /// Enable the per-SM decoded access-descriptor cache: the first
    /// execution of a (warp slot, static load) pair decodes the pattern's
    /// per-warp constants into a [`crate::pattern::LineDesc`] and later
    /// executions replay it, skipping address generation and coalescing.
    /// Replay is exact, so this is a pure speed knob — simulated results
    /// are byte-identical either way (`--no-desc-cache` is the escape
    /// hatch that proves it).
    pub desc_cache: bool,
    /// Hard cap on descriptor-table entries per SM
    /// (`warp slots x static loads`); a kernel exceeding it simply runs
    /// uncached, which cannot change simulated results.
    pub desc_cache_max_entries: u32,
    /// Enable greedy-run burst execution and decoupled SM local clocks:
    /// between interactions with the memory side, an SM simulates several
    /// cycles per `Gpu::step` (a tight local loop bounded by the earliest
    /// possible inbound delivery and the window edge, plus multi-cycle
    /// greedy ALU runs issued in one scan). Every burst is provably
    /// equivalent to cycle-lockstep stepping, so this is a pure simulator
    /// speed knob — simulated results are byte-identical either way
    /// (`--no-burst` is the escape hatch that proves it). Automatically
    /// suspended while an event tracer is attached (the trace wire format
    /// requires globally monotone cycle stamps).
    pub burst: bool,
    /// Worker threads for intra-simulation parallelism: when ≥ 2, the due
    /// SMs of each `Gpu::step` execute their local-clock spans concurrently
    /// on a work-stealing pool and merge their emissions at a rendezvous
    /// barrier in canonical SM-id order. Purely a simulator speed knob —
    /// simulated results are byte-identical at any thread count (the
    /// `--sim-threads` harness flag and its determinism tests prove it).
    /// Automatically pinned to 1 while an event tracer is attached
    /// (lockstep tracing needs a single globally ordered writer). Default 1
    /// = exactly today's serial path.
    pub sim_threads: u32,
    /// Energy model parameters.
    pub energy: crate::energy::EnergyConfig,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            n_sms: 16,
            clock_hz: 1_126_000_000,
            simd_width: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_ctas_per_sm: 32,
            schedulers_per_sm: 4,
            regfile_bytes_per_sm: 256 * 1024,
            regfile_banks: 32,
            shared_mem_bytes_per_sm: 96 * 1024,
            l1: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            l1_hit_latency: 28,
            l2_latency: 200,
            icnt_latency: 8,
            l1_ports: 4,
            icnt_bw: None,
            n_mem_partitions: 1,
            dram: DramConfig::default(),
            max_outstanding_per_warp: 6,
            window_cycles: 50_000,
            max_cycles: 400_000,
            detailed_load_stats: false,
            desc_cache: true,
            desc_cache_max_entries: 64 * 1024,
            burst: true,
            sim_threads: 1,
            energy: crate::energy::EnergyConfig::default(),
        }
    }
}

impl GpuConfig {
    /// Creates the Table 1 baseline configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy with a different L1 size (16/48/64/96/128 KB sweeps of
    /// the paper's Figure 14). Sets remain derived from size/assoc/line.
    pub fn with_l1_size(mut self, bytes: u64) -> Self {
        self.l1.size_bytes = bytes;
        self
    }

    /// Returns a copy with a different SM count (used by the scaled-down
    /// experiment harness; the workload is homogeneous across SMs).
    pub fn with_sms(mut self, n: u32) -> Self {
        assert!(n > 0, "GPU must have at least one SM");
        // Keep per-SM DRAM bandwidth constant when scaling the SM count.
        let per_sm = self.dram.bandwidth_bytes_per_sec / self.n_sms as u64;
        self.dram.bandwidth_bytes_per_sec = per_sm * n as u64;
        self.n_sms = n;
        self
    }

    /// Returns a copy with a different monitoring-window length and cycle cap.
    pub fn with_windows(mut self, window_cycles: u64, max_cycles: u64) -> Self {
        assert!(window_cycles > 0);
        self.window_cycles = window_cycles;
        self.max_cycles = max_cycles;
        self
    }

    /// Returns a copy with an explicit interconnect bandwidth (messages per
    /// cycle per direction), overriding the SM-count-derived default.
    pub fn with_icnt_bw(mut self, per_cycle: u32) -> Self {
        assert!(per_cycle > 0, "interconnect bandwidth must be positive");
        self.icnt_bw = Some(per_cycle);
        self
    }

    /// Returns a copy with a different memory-partition count. The L2
    /// capacity/MSHRs, DRAM bandwidth and DRAM banks configured here stay
    /// GPU-wide totals; each partition receives a 1/n slice at construction
    /// time.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two that divides the L2 geometry and
    /// DRAM bank count evenly.
    pub fn with_mem_partitions(mut self, n: u32) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "partition count must be a power of two, got {n}");
        assert!(
            self.l2.size_bytes.is_multiple_of(n as u64 * self.l2.assoc as u64 * self.l2.line_bytes),
            "L2 capacity must split into {n} whole slices"
        );
        assert!(self.l2.mshrs.is_multiple_of(n), "L2 MSHRs must split evenly across {n} slices");
        assert!(
            self.dram.banks.is_multiple_of(n),
            "DRAM banks must split evenly across {n} channels"
        );
        self.n_mem_partitions = n;
        self
    }

    /// Returns a copy with the decoded access-descriptor cache enabled or
    /// disabled (the `--no-desc-cache` escape hatch). Purely a simulator
    /// speed knob: simulated results are identical either way.
    pub fn with_desc_cache(mut self, enabled: bool) -> Self {
        self.desc_cache = enabled;
        self
    }

    /// Returns a copy with greedy-run burst execution enabled or disabled
    /// (the `--no-burst` escape hatch). Purely a simulator speed knob:
    /// simulated results are identical either way.
    pub fn with_burst(mut self, enabled: bool) -> Self {
        self.burst = enabled;
        self
    }

    /// Returns a copy with the intra-simulation worker-thread count (the
    /// `--sim-threads` knob; clamped to at least 1). Purely a simulator
    /// speed knob: simulated results are byte-identical at any count.
    pub fn with_sim_threads(mut self, n: u32) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// Interconnect delivery bandwidth in messages per cycle per direction:
    /// the explicit `icnt_bw` if set, otherwise the historical
    /// `(n_sms * 2).max(8)` default.
    pub fn icnt_bandwidth(&self) -> u32 {
        self.icnt_bw.unwrap_or_else(|| (self.n_sms * 2).max(8))
    }

    /// Total warp registers (128 B each) in one SM's register file.
    pub fn warp_regs_per_sm(&self) -> u32 {
        (self.regfile_bytes_per_sm / LINE_BYTES) as u32
    }

    /// DRAM service rate expressed in cache lines per core cycle (aggregate
    /// over the whole GPU).
    pub fn dram_lines_per_cycle(&self) -> f64 {
        self.dram.bandwidth_bytes_per_sec as f64 / (LINE_BYTES as f64 * self.clock_hz as f64)
    }
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total data capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity.
    pub assoc: u32,
    /// Line size in bytes (128 throughout the paper).
    pub line_bytes: u64,
    /// Number of MSHR entries (miss-status holding registers).
    pub mshrs: u32,
}

impl CacheConfig {
    /// The paper's L1: 48 KB, 8-way, 128 B lines, 64 MSHRs.
    pub fn l1_default() -> Self {
        CacheConfig { size_bytes: 48 * 1024, assoc: 8, line_bytes: LINE_BYTES, mshrs: 64 }
    }

    /// The paper's L2: 2048 KB, 8-way.
    pub fn l2_default() -> Self {
        CacheConfig { size_bytes: 2048 * 1024, assoc: 8, line_bytes: LINE_BYTES, mshrs: 256 }
    }

    /// Number of sets implied by size/associativity/line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn n_sets(&self) -> u32 {
        let denom = self.assoc as u64 * self.line_bytes;
        assert!(
            denom > 0 && self.size_bytes.is_multiple_of(denom),
            "cache geometry must divide evenly"
        );
        (self.size_bytes / denom) as u32
    }

    /// Total number of lines the cache can hold.
    pub fn n_lines(&self) -> u32 {
        (self.size_bytes / self.line_bytes) as u32
    }
}

/// DRAM model parameters (Table 1's off-chip memory).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Aggregate bandwidth in bytes/second (352.5 GB/s in the paper).
    pub bandwidth_bytes_per_sec: u64,
    /// Number of independent DRAM banks (timing-state machines).
    pub banks: u32,
    /// tRCD: activate-to-read delay, in memory cycles.
    pub t_rcd: u32,
    /// tRP: precharge delay.
    pub t_rp: u32,
    /// tRC: row-cycle time.
    pub t_rc: u32,
    /// tRRD: activate-to-activate (different bank) delay, in tenths.
    pub t_rrd_tenths: u32,
    /// CL: CAS latency.
    pub t_cl: u32,
    /// tWR: write recovery.
    pub t_wr: u32,
    /// tRAS: row-active time.
    pub t_ras: u32,
    /// Row size in bytes (lines mapping to the same row hit the open row).
    pub row_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            bandwidth_bytes_per_sec: 352_500_000_000,
            banks: 16,
            t_rcd: 12,
            t_rp: 12,
            t_rc: 40,
            t_rrd_tenths: 55,
            t_cl: 12,
            t_wr: 12,
            t_ras: 28,
            row_bytes: 2048,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = GpuConfig::default();
        assert_eq!(c.n_sms, 16);
        assert_eq!(c.clock_hz, 1_126_000_000);
        assert_eq!(c.simd_width, 32);
        assert_eq!(c.max_threads_per_sm, 2048);
        assert_eq!(c.max_warps_per_sm, 64);
        assert_eq!(c.max_ctas_per_sm, 32);
        assert_eq!(c.schedulers_per_sm, 4);
        assert_eq!(c.regfile_bytes_per_sm, 256 * 1024);
        assert_eq!(c.shared_mem_bytes_per_sm, 96 * 1024);
        assert_eq!(c.l1.size_bytes, 48 * 1024);
        assert_eq!(c.l1.assoc, 8);
        assert_eq!(c.l1.line_bytes, 128);
        assert_eq!(c.l1.mshrs, 64);
        assert_eq!(c.l2.size_bytes, 2048 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.dram.bandwidth_bytes_per_sec, 352_500_000_000);
        assert_eq!(c.dram.t_rcd, 12);
        assert_eq!(c.dram.t_rp, 12);
        assert_eq!(c.dram.t_rc, 40);
        assert_eq!(c.dram.t_cl, 12);
        assert_eq!(c.dram.t_wr, 12);
        assert_eq!(c.dram.t_ras, 28);
        // Simulator-engineering knobs (not Table 1): descriptor cache on by
        // default, sized far above any real kernel's slot x load product.
        assert!(c.desc_cache);
        assert_eq!(c.desc_cache_max_entries, 64 * 1024);
        assert!(c.burst);
    }

    #[test]
    fn burst_escape_hatch() {
        assert!(!GpuConfig::default().with_burst(false).burst);
        assert!(GpuConfig::default().with_burst(true).burst);
    }

    #[test]
    fn desc_cache_escape_hatch() {
        let c = GpuConfig::default().with_desc_cache(false);
        assert!(!c.desc_cache);
        assert!(GpuConfig::default().with_desc_cache(true).desc_cache);
    }

    #[test]
    fn l1_has_48_sets() {
        // The paper's VTT mirrors the 48-set L1 (48 KB / 8 ways / 128 B).
        assert_eq!(CacheConfig::l1_default().n_sets(), 48);
    }

    #[test]
    fn warp_regs_per_sm_is_2048() {
        assert_eq!(GpuConfig::default().warp_regs_per_sm(), 2048);
    }

    #[test]
    fn dram_lines_per_cycle_sane() {
        let c = GpuConfig::default();
        let r = c.dram_lines_per_cycle();
        // 352.5e9 / (128 * 1.126e9) ~= 2.45 lines per core cycle.
        assert!(r > 2.0 && r < 3.0, "rate = {r}");
    }

    #[test]
    fn l1_size_sweep_changes_sets() {
        let c = GpuConfig::default().with_l1_size(16 * 1024);
        assert_eq!(c.l1.n_sets(), 16);
        let c = GpuConfig::default().with_l1_size(128 * 1024);
        assert_eq!(c.l1.n_sets(), 128);
    }

    #[test]
    fn with_sms_scales_bandwidth() {
        let base = GpuConfig::default();
        let scaled = base.clone().with_sms(4);
        assert_eq!(scaled.n_sms, 4);
        assert_eq!(scaled.dram.bandwidth_bytes_per_sec, base.dram.bandwidth_bytes_per_sec / 4);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn with_sms_zero_panics() {
        let _ = GpuConfig::default().with_sms(0);
    }

    #[test]
    fn icnt_bandwidth_default_tracks_sm_count() {
        // The derived default is (n_sms * 2).max(8): floor of 8 for tiny
        // machines, 2 per SM beyond that.
        assert_eq!(GpuConfig::default().icnt_bandwidth(), 32);
        assert_eq!(GpuConfig::default().with_sms(1).icnt_bandwidth(), 8);
        assert_eq!(GpuConfig::default().with_sms(4).icnt_bandwidth(), 8);
        assert_eq!(GpuConfig::default().with_sms(8).icnt_bandwidth(), 16);
    }

    #[test]
    fn icnt_bandwidth_override_wins() {
        let c = GpuConfig::default().with_icnt_bw(3);
        assert_eq!(c.icnt_bandwidth(), 3);
    }

    #[test]
    fn mem_partitions_default_is_one() {
        assert_eq!(GpuConfig::default().n_mem_partitions, 1);
    }

    #[test]
    fn with_mem_partitions_accepts_powers_of_two() {
        for n in [1u32, 2, 4, 8] {
            assert_eq!(GpuConfig::default().with_mem_partitions(n).n_mem_partitions, n);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_mem_partitions_rejects_non_power_of_two() {
        let _ = GpuConfig::default().with_mem_partitions(3);
    }

    #[test]
    fn n_lines_matches_geometry() {
        let l1 = CacheConfig::l1_default();
        assert_eq!(l1.n_lines(), 384); // 48 KB / 128 B
        assert_eq!(l1.n_lines(), l1.n_sets() * l1.assoc);
    }
}
