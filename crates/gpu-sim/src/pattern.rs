//! Per-load address-stream generators.
//!
//! The paper's observation (§2.3) is that a static load's locality class is
//! stable across warps: a load is either *reused* (its working set is
//! re-accessed) or *streaming* (every access touches new data). Patterns here
//! are stateless functions of `(seed, SM, warp, load, access index)` so that
//! simulation is reproducible and warp state stays tiny.

use crate::types::{LineAddr, LoadId, SmId, LINE_BYTES};

/// Deterministic 64-bit mix (splitmix64 finalizer). Used as a stateless RNG.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Identifies one dynamic execution of a static load by one warp.
#[derive(Debug, Clone, Copy)]
pub struct AccessCtx {
    /// Global seed for the whole simulation.
    pub seed: u64,
    /// SM executing the access (per-SM data partitioning).
    pub sm: SmId,
    /// Globally unique warp number (across CTAs), for private working sets.
    pub global_warp: u64,
    /// The static load being executed.
    pub load: LoadId,
    /// Monotone per-(warp, load) access counter (the loop iteration).
    pub access_index: u64,
}

/// The memory behaviour of one static load.
///
/// All sizes are *per SM* — matching how the paper reports working sets
/// ("per-SM working set size", Figures 2 and 3).
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Cyclic sweep over a working set of `ws_bytes`. If `shared`, all warps
    /// of an SM walk the *same* region (inter-warp reuse); otherwise each
    /// warp owns a private region of that size.
    ReuseWorkingSet {
        /// Working-set size in bytes (per SM if shared, per warp otherwise).
        ws_bytes: u64,
        /// Whether all warps of the SM share the region.
        shared: bool,
    },
    /// Pure streaming: each access touches `bytes_per_access` of brand-new
    /// data, never revisited. Models >95 %-miss loads of Figure 3.
    Streaming {
        /// New bytes consumed per dynamic access (>= one line).
        bytes_per_access: u64,
    },
    /// Blocked reuse: the warp re-reads a `tile_bytes` tile `reuse` times,
    /// then moves to the next tile.
    Tiled {
        /// Tile size in bytes.
        tile_bytes: u64,
        /// Times each tile line is accessed before moving on.
        reuse: u32,
        /// Whether warps of an SM share tiles.
        shared: bool,
    },
    /// Uniform-random line within a working set (hash-based, reproducible).
    RandomInSet {
        /// Working-set size in bytes.
        ws_bytes: u64,
        /// Whether all warps of the SM share the region.
        shared: bool,
    },
    /// Memory-divergent access: the 32 lanes hit `lines_per_access` distinct
    /// random lines of a working set (exercises the coalescer).
    Divergent {
        /// Working-set size in bytes.
        ws_bytes: u64,
        /// Distinct lines produced per access (1..=32).
        lines_per_access: u32,
    },
    /// Sparse streaming: emits one fresh line every `period`-th access and
    /// nothing in between. Models result stores, which are far less frequent
    /// than input loads in typical kernels. Only meaningful for stores —
    /// loads must always access memory.
    SparseStream {
        /// Emit a line when `access_index % period == 0`.
        period: u32,
    },
}

impl AccessPattern {
    /// Convenience constructor for a shared/private cyclic-reuse pattern.
    pub fn reuse_working_set(ws_bytes: u64, shared: bool) -> Self {
        AccessPattern::ReuseWorkingSet { ws_bytes, shared }
    }

    /// Convenience constructor for a streaming pattern.
    pub fn streaming(bytes_per_access: u64) -> Self {
        AccessPattern::Streaming { bytes_per_access }
    }

    /// Is this load a streaming load by construction?
    pub fn is_streaming(&self) -> bool {
        matches!(self, AccessPattern::Streaming { .. } | AccessPattern::SparseStream { .. })
    }

    /// Nominal per-SM reused working-set footprint of this load in bytes
    /// (0 for streaming loads). `warps_per_sm` scales private patterns.
    pub fn nominal_ws_bytes(&self, warps_per_sm: u64) -> u64 {
        match *self {
            AccessPattern::ReuseWorkingSet { ws_bytes, shared } => {
                if shared {
                    ws_bytes
                } else {
                    ws_bytes * warps_per_sm
                }
            }
            AccessPattern::Streaming { .. } => 0,
            AccessPattern::Tiled { tile_bytes, shared, .. } => {
                if shared {
                    tile_bytes
                } else {
                    tile_bytes * warps_per_sm
                }
            }
            AccessPattern::RandomInSet { ws_bytes, shared } => {
                if shared {
                    ws_bytes
                } else {
                    ws_bytes * warps_per_sm
                }
            }
            AccessPattern::Divergent { ws_bytes, .. } => ws_bytes,
            AccessPattern::SparseStream { .. } => 0,
        }
    }

    /// Generates the (already coalesced) line addresses of one dynamic
    /// access, appending them to `out`.
    ///
    /// The common GPU case — a fully coalesced warp access — produces exactly
    /// one line. [`AccessPattern::Divergent`] produces several, via per-lane
    /// address generation and the hardware coalescer model.
    pub fn gen_lines(&self, ctx: AccessCtx, out: &mut Vec<LineAddr>) {
        let region = region_base(ctx.load, ctx.sm);
        match *self {
            AccessPattern::ReuseWorkingSet { ws_bytes, shared } => {
                let lines = ws_lines(ws_bytes);
                let base = if shared { region } else { region + private_slice(ctx.global_warp) };
                // Different warps start at hashed offsets of the same sweep so
                // shared working sets see inter-warp reuse without lockstep.
                let start =
                    if shared { fast_mod(mix64(ctx.seed ^ ctx.global_warp), lines) } else { 0 };
                let idx = fast_mod(start + ctx.access_index, lines);
                out.push(LineAddr(base + idx));
            }
            AccessPattern::Streaming { bytes_per_access } => {
                let n = lines_per_access(bytes_per_access);
                // Unique, never-revisited region per warp.
                let base = region + private_slice(ctx.global_warp);
                let first = ctx.access_index * n;
                for k in 0..n {
                    out.push(LineAddr(base + first + k));
                }
            }
            AccessPattern::Tiled { tile_bytes, reuse, shared } => {
                let tile_lines = ws_lines(tile_bytes);
                let reuse = reuse.max(1) as u64;
                let accesses_per_tile = tile_lines * reuse;
                let tile = fast_div(ctx.access_index, accesses_per_tile);
                let idx = fast_mod(ctx.access_index, tile_lines);
                let base = if shared { region } else { region + private_slice(ctx.global_warp) };
                out.push(LineAddr(base + tile * tile_lines + idx));
            }
            AccessPattern::RandomInSet { ws_bytes, shared } => {
                let lines = ws_lines(ws_bytes);
                let base = if shared { region } else { region + private_slice(ctx.global_warp) };
                let h = mix64(
                    ctx.seed
                        ^ mix64(ctx.access_index ^ ((ctx.load.0 as u64) << 32))
                        ^ if shared { 0 } else { ctx.global_warp },
                );
                out.push(LineAddr(base + fast_mod(h, lines)));
            }
            AccessPattern::Divergent { ws_bytes, lines_per_access } => {
                // A warp's 32 lanes split into `groups` address groups; every
                // lane of one group hashes to the same line (the lane id only
                // picks the intra-line byte), and lanes visit the groups in
                // round-robin order. Generating one line per group in group
                // order and deduplicating against this access's lines is
                // therefore exactly the 32-lane coalescer output — without
                // materializing the per-lane address vector.
                let lines = ws_lines(ws_bytes);
                let groups = lines_per_access.clamp(1, 32) as u64;
                let start = out.len();
                for group in 0..groups {
                    let h =
                        mix64(ctx.seed ^ mix64(ctx.access_index ^ (group << 40) ^ ctx.global_warp));
                    let line = LineAddr(region + fast_mod(h, lines));
                    crate::coalesce::push_line_dedup(out, start, line);
                }
            }
            AccessPattern::SparseStream { period } => {
                let period = period.max(1) as u64;
                if fast_mod(ctx.access_index, period) == 0 {
                    let base = region + private_slice(ctx.global_warp);
                    out.push(LineAddr(base + fast_div(ctx.access_index, period)));
                }
            }
        }
    }

    /// Decodes this pattern's per-(warp, load) constants into a [`LineDesc`],
    /// so repeated dynamic executions replay with only the
    /// `access_index`-dependent arithmetic. `decode(d).replay(i, out)` pushes
    /// exactly the lines of `gen_lines` with `access_index == i` — see
    /// [`LineDesc`] for the per-variant argument.
    pub fn decode(&self, d: DecodeCtx) -> LineDesc {
        let region = region_base(d.load, d.sm);
        match *self {
            AccessPattern::ReuseWorkingSet { ws_bytes, shared } => {
                let lines = ws_lines(ws_bytes);
                let base = if shared { region } else { region + private_slice(d.global_warp) };
                let start = if shared { fast_mod(mix64(d.seed ^ d.global_warp), lines) } else { 0 };
                LineDesc::Cyclic { base, start, lines }
            }
            AccessPattern::Streaming { bytes_per_access } => LineDesc::Stream {
                base: region + private_slice(d.global_warp),
                n: lines_per_access(bytes_per_access),
            },
            AccessPattern::Tiled { tile_bytes, reuse, shared } => {
                let tile_lines = ws_lines(tile_bytes);
                let base = if shared { region } else { region + private_slice(d.global_warp) };
                LineDesc::Tile { base, tile_lines, per_tile: tile_lines * reuse.max(1) as u64 }
            }
            AccessPattern::RandomInSet { ws_bytes, shared } => LineDesc::Hash {
                base: if shared { region } else { region + private_slice(d.global_warp) },
                lines: ws_lines(ws_bytes),
                key: d.seed ^ if shared { 0 } else { d.global_warp },
                loadbits: (d.load.0 as u64) << 32,
            },
            AccessPattern::Divergent { ws_bytes, lines_per_access } => LineDesc::Div {
                region,
                lines: ws_lines(ws_bytes),
                seed: d.seed,
                warp: d.global_warp,
                groups: lines_per_access.clamp(1, 32) as u64,
            },
            AccessPattern::SparseStream { period } => LineDesc::Sparse {
                base: region + private_slice(d.global_warp),
                period: period.max(1) as u64,
            },
        }
    }
}

/// Identifies one (warp, static-load) *decode context*: everything an
/// [`AccessCtx`] carries except the iteration-dependent `access_index`.
/// All addresses a warp's load can ever touch are a function of these four
/// fields plus the access index, which is what makes the decoded-descriptor
/// cache exact.
#[derive(Debug, Clone, Copy)]
pub struct DecodeCtx {
    /// Global seed for the whole simulation.
    pub seed: u64,
    /// SM executing the access.
    pub sm: SmId,
    /// Globally unique warp number (across CTAs).
    pub global_warp: u64,
    /// The static load being executed.
    pub load: LoadId,
}

/// A decoded access descriptor: the per-(warp, load) constants of
/// [`AccessPattern::gen_lines`] folded into closed form, so per-iteration
/// replay applies only the `access_index`-dependent offset.
///
/// Replay is *exact*, not approximate:
/// - arithmetic patterns (`Cyclic`, `Stream`, `Tile`, `Sparse`) pre-add
///   `region_base` + `private_slice` and pre-hash the shared-sweep start,
///   leaving pure offset math per access;
/// - `Hash` folds the index-independent XOR operands — XOR is associative
///   and commutative, so `seed ^ mix64(i ^ loadbits) ^ warp` becomes
///   `key ^ mix64(i ^ loadbits)` with `key = seed ^ warp`;
/// - `Div` necessarily re-hashes per group (the hash input mixes the access
///   index with the group id) but skips `region_base`/`ws_lines` and shares
///   the coalescer dedup rule via [`crate::coalesce::push_line_dedup`].
///
/// The equivalence with `gen_lines` is locked per variant by the
/// `decoded_replay_matches_gen_lines` test and re-checked on every cache
/// miss by a debug assertion in the SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineDesc {
    /// [`AccessPattern::ReuseWorkingSet`]: cyclic sweep of `lines` lines from
    /// `base`, entered at a (pre-hashed) `start` offset.
    Cyclic {
        /// First line of the (possibly per-warp) region.
        base: u64,
        /// Hashed sweep entry offset (0 for private working sets).
        start: u64,
        /// Working-set size in lines.
        lines: u64,
    },
    /// [`AccessPattern::Streaming`]: `n` fresh lines per access.
    Stream {
        /// First line of the warp's private region.
        base: u64,
        /// Lines consumed per dynamic access.
        n: u64,
    },
    /// [`AccessPattern::Tiled`]: sweep a `tile_lines` tile, advance every
    /// `per_tile` accesses.
    Tile {
        /// First line of the (possibly per-warp) region.
        base: u64,
        /// Tile size in lines.
        tile_lines: u64,
        /// Dynamic accesses per tile (`tile_lines * reuse`).
        per_tile: u64,
    },
    /// [`AccessPattern::RandomInSet`]: hashed line within the working set.
    Hash {
        /// First line of the (possibly per-warp) region.
        base: u64,
        /// Working-set size in lines.
        lines: u64,
        /// Pre-folded outer-hash key (`seed`, XOR warp if private).
        key: u64,
        /// Pre-shifted load-id salt for the inner hash.
        loadbits: u64,
    },
    /// [`AccessPattern::Divergent`]: per-group hash + coalescer dedup.
    Div {
        /// First line of the shared region.
        region: u64,
        /// Working-set size in lines.
        lines: u64,
        /// Global seed (outer-hash key).
        seed: u64,
        /// Global warp number (inner-hash salt).
        warp: u64,
        /// Address groups per access (1..=32).
        groups: u64,
    },
    /// [`AccessPattern::SparseStream`]: one fresh line every `period` accesses.
    Sparse {
        /// First line of the warp's private region.
        base: u64,
        /// Access period between emitted lines (>= 1).
        period: u64,
    },
}

impl LineDesc {
    /// Replays the descriptor for one dynamic access, appending exactly the
    /// lines [`AccessPattern::gen_lines`] would generate for the same
    /// context and `access_index`.
    #[inline]
    pub fn replay(&self, access_index: u64, out: &mut Vec<LineAddr>) {
        match *self {
            LineDesc::Cyclic { base, start, lines } => {
                out.push(LineAddr(base + fast_mod(start + access_index, lines)));
            }
            LineDesc::Stream { base, n } => {
                let first = access_index * n;
                for k in 0..n {
                    out.push(LineAddr(base + first + k));
                }
            }
            LineDesc::Tile { base, tile_lines, per_tile } => {
                let tile = fast_div(access_index, per_tile);
                let idx = fast_mod(access_index, tile_lines);
                out.push(LineAddr(base + tile * tile_lines + idx));
            }
            LineDesc::Hash { base, lines, key, loadbits } => {
                let h = mix64(key ^ mix64(access_index ^ loadbits));
                out.push(LineAddr(base + fast_mod(h, lines)));
            }
            LineDesc::Div { region, lines, seed, warp, groups } => {
                let start = out.len();
                for group in 0..groups {
                    let h = mix64(seed ^ mix64(access_index ^ (group << 40) ^ warp));
                    let line = LineAddr(region + fast_mod(h, lines));
                    crate::coalesce::push_line_dedup(out, start, line);
                }
            }
            LineDesc::Sparse { base, period } => {
                if fast_mod(access_index, period) == 0 {
                    out.push(LineAddr(base + fast_div(access_index, period)));
                }
            }
        }
    }
}

/// First line number of the address region owned by `(load, sm)`.
///
/// Regions are disjoint by construction: bits [44..] encode the load, bits
/// [36..44) the SM, leaving 2^36 lines (8 TiB) per (load, SM) slice.
#[inline]
fn region_base(load: LoadId, sm: SmId) -> u64 {
    ((load.0 as u64 + 1) << 44) | ((sm.0 as u64) << 36)
}

/// Per-warp private sub-slice within a region: 65536 warp slices of
/// 2^20 + 1 lines each, so streaming warps never collide within a
/// simulation's footprint. The stride is deliberately *odd* (coprime with
/// the 48/192-set cache geometries): a power-of-two stride would alias every
/// warp's slice into the same few sets of the modulo-indexed caches.
#[inline]
fn private_slice(global_warp: u64) -> u64 {
    (global_warp & 0xffff) * ((1 << 20) + 1)
}

#[inline]
fn ws_lines(ws_bytes: u64) -> u64 {
    (ws_bytes / LINE_BYTES).max(1)
}

/// `x % m` with a bitmask fast path for power-of-two `m` (the common case:
/// working sets are power-of-two KB). Exact for every input; the hot loop
/// issues a load/store pattern per instruction, and a 64-bit `div` costs
/// tens of cycles where the mask costs one.
#[inline]
fn fast_mod(x: u64, m: u64) -> u64 {
    if m.is_power_of_two() {
        x & (m - 1)
    } else {
        x % m
    }
}

/// `x / d` with a shift fast path for power-of-two `d`. Exact counterpart
/// of [`fast_mod`].
#[inline]
fn fast_div(x: u64, d: u64) -> u64 {
    if d.is_power_of_two() {
        x >> d.trailing_zeros()
    } else {
        x / d
    }
}

#[inline]
fn lines_per_access(bytes: u64) -> u64 {
    (bytes / LINE_BYTES).max(1)
}

/// Coalesces per-thread byte addresses into the access's distinct line
/// addresses, preserving first-touch order — the merge a GPU's coalescing
/// unit performs across a warp's lanes. Used by the trace importer to
/// normalize external per-lane address lists into the line-granular streams
/// the replay frontend consumes; the synthetic generator produces
/// already-coalesced lines and never calls this.
pub fn coalesce_bytes(byte_addrs: &[u64], out: &mut Vec<LineAddr>) {
    out.clear();
    for &b in byte_addrs {
        let line = LineAddr(b / LINE_BYTES);
        if !out.contains(&line) {
            out.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(warp: u64, idx: u64) -> AccessCtx {
        AccessCtx { seed: 7, sm: SmId(0), global_warp: warp, load: LoadId(0), access_index: idx }
    }

    #[test]
    fn coalesce_dedups_in_first_touch_order() {
        let mut out = Vec::new();
        // Lanes touching lines 1, 0, 1, 2 coalesce to [1, 0, 2].
        coalesce_bytes(&[128, 0, 130, 300], &mut out);
        assert_eq!(out, vec![LineAddr(1), LineAddr(0), LineAddr(2)]);
    }

    fn gen(p: &AccessPattern, warp: u64, idx: u64) -> Vec<LineAddr> {
        let mut v = Vec::new();
        p.gen_lines(ctx(warp, idx), &mut v);
        v
    }

    #[test]
    fn reuse_pattern_cycles() {
        let p = AccessPattern::reuse_working_set(4 * LINE_BYTES, true);
        let a0 = gen(&p, 0, 0);
        let a4 = gen(&p, 0, 4);
        assert_eq!(a0, a4, "period must equal the working-set line count");
        let all: std::collections::HashSet<_> = (0..16).flat_map(|i| gen(&p, 0, i)).collect();
        assert_eq!(all.len(), 4, "footprint must equal the working set");
    }

    #[test]
    fn shared_reuse_overlaps_across_warps() {
        let p = AccessPattern::reuse_working_set(8 * LINE_BYTES, true);
        let w0: std::collections::HashSet<_> = (0..32).flat_map(|i| gen(&p, 0, i)).collect();
        let w1: std::collections::HashSet<_> = (0..32).flat_map(|i| gen(&p, 1, i)).collect();
        assert_eq!(w0, w1, "shared working sets must coincide across warps");
    }

    #[test]
    fn private_reuse_disjoint_across_warps() {
        let p = AccessPattern::reuse_working_set(8 * LINE_BYTES, false);
        let w0: std::collections::HashSet<_> = (0..8).flat_map(|i| gen(&p, 0, i)).collect();
        let w1: std::collections::HashSet<_> = (0..8).flat_map(|i| gen(&p, 1, i)).collect();
        assert!(w0.is_disjoint(&w1));
    }

    #[test]
    fn streaming_never_repeats() {
        let p = AccessPattern::streaming(LINE_BYTES);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            for l in gen(&p, 3, i) {
                assert!(seen.insert(l), "streaming pattern repeated {l}");
            }
        }
    }

    #[test]
    fn streaming_multi_line_access() {
        let p = AccessPattern::streaming(4 * LINE_BYTES);
        assert_eq!(gen(&p, 0, 0).len(), 4);
    }

    #[test]
    fn tiled_reuses_within_tile() {
        let p = AccessPattern::Tiled { tile_bytes: 2 * LINE_BYTES, reuse: 3, shared: true };
        // 2-line tile, reuse 3 => 6 accesses per tile; indices 0 and 2 hit the
        // same line.
        assert_eq!(gen(&p, 0, 0), gen(&p, 0, 2));
        // After 6 accesses the tile advances.
        assert_ne!(gen(&p, 0, 0), gen(&p, 0, 6));
    }

    #[test]
    fn random_in_set_stays_in_set() {
        let ws = 16 * LINE_BYTES;
        let p = AccessPattern::RandomInSet { ws_bytes: ws, shared: true };
        let base = gen(&p, 0, 0)[0].0 & !0xf;
        for i in 0..200 {
            let l = gen(&p, 0, i)[0];
            assert!(l.0 >= base && l.0 < base + 16 + 16, "line out of working set");
        }
    }

    #[test]
    fn divergent_produces_multiple_coalesced_lines() {
        let p = AccessPattern::Divergent { ws_bytes: 1 << 20, lines_per_access: 8 };
        let lines = gen(&p, 0, 0);
        assert!(lines.len() <= 8, "coalescer must merge same-line lanes");
        assert!(lines.len() > 1, "divergent access should span multiple lines");
        let set: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(set.len(), lines.len(), "coalesced output has no duplicates");
    }

    /// The group-direct divergent generator must reproduce the reference
    /// path it replaced: hash all 32 lane addresses (lane -> group by
    /// round-robin, lane id picks the intra-line byte) and run them through
    /// the hardware coalescer model.
    #[test]
    fn divergent_matches_lane_coalescer_reference() {
        use crate::coalesce::coalesce;
        use crate::types::Address;
        for (ws_bytes, lpa) in [(1u64 << 20, 8u32), (48 * 1024, 4), (1 << 14, 32), (128, 1)] {
            let p = AccessPattern::Divergent { ws_bytes, lines_per_access: lpa };
            for (warp, idx) in [(0u64, 0u64), (3, 7), (11, 123)] {
                let c = ctx(warp, idx);
                let lines = ws_lines(ws_bytes);
                let region = region_base(c.load, c.sm);
                let groups = lpa.clamp(1, 32) as u64;
                let lanes: Vec<Address> = (0..32u64)
                    .map(|lane| {
                        let group = lane % groups;
                        let h =
                            mix64(c.seed ^ mix64(c.access_index ^ (group << 40) ^ c.global_warp));
                        let line = region + h % lines;
                        Address((line << crate::types::LINE_SHIFT) + (lane % 32) * 4)
                    })
                    .collect();
                assert_eq!(gen(&p, warp, idx), coalesce(&lanes), "ws={ws_bytes} lpa={lpa}");
            }
        }
    }

    #[test]
    fn regions_disjoint_across_loads_and_sms() {
        let a = region_base(LoadId(0), SmId(0));
        let b = region_base(LoadId(1), SmId(0));
        let c = region_base(LoadId(0), SmId(1));
        // Each (load, SM) slice spans 2^36 lines.
        assert!(b - a >= 1 << 44);
        assert_eq!(c - a, 1 << 36);
    }

    #[test]
    fn determinism() {
        let p = AccessPattern::RandomInSet { ws_bytes: 1 << 16, shared: false };
        assert_eq!(gen(&p, 5, 99), gen(&p, 5, 99));
    }

    /// The descriptor cache's correctness argument: for every pattern
    /// variant (shared and private, power-of-two and odd sizes), every warp
    /// and every access index, `decode` + `replay` pushes exactly the lines
    /// `gen_lines` generates. This is what makes caching descriptors
    /// output-invariant rather than an approximation.
    #[test]
    fn decoded_replay_matches_gen_lines() {
        let patterns = [
            AccessPattern::ReuseWorkingSet { ws_bytes: 16 * LINE_BYTES, shared: false },
            AccessPattern::ReuseWorkingSet { ws_bytes: 16 * 1024, shared: true },
            AccessPattern::ReuseWorkingSet { ws_bytes: 3 * LINE_BYTES, shared: true },
            AccessPattern::Streaming { bytes_per_access: LINE_BYTES },
            AccessPattern::Streaming { bytes_per_access: 4 * LINE_BYTES },
            AccessPattern::Tiled { tile_bytes: 2 * LINE_BYTES, reuse: 3, shared: true },
            AccessPattern::Tiled { tile_bytes: 8 * LINE_BYTES, reuse: 1, shared: false },
            AccessPattern::RandomInSet { ws_bytes: 1 << 16, shared: true },
            AccessPattern::RandomInSet { ws_bytes: 48 * 1024, shared: false },
            AccessPattern::Divergent { ws_bytes: 1 << 14, lines_per_access: 8 },
            AccessPattern::Divergent { ws_bytes: 128, lines_per_access: 32 },
            AccessPattern::SparseStream { period: 6 },
            AccessPattern::SparseStream { period: 1 },
        ];
        for p in &patterns {
            for (seed, sm, load) in [(7u64, 0u32, 0u32), (0x5eed, 3, 2)] {
                for warp in [0u64, 1, 13, 65_537] {
                    let d = p.decode(DecodeCtx {
                        seed,
                        sm: SmId(sm),
                        global_warp: warp,
                        load: LoadId(load),
                    });
                    for idx in (0..40).chain([997, 12_345]) {
                        let mut reference = vec![LineAddr(0xdead)];
                        p.gen_lines(
                            AccessCtx {
                                seed,
                                sm: SmId(sm),
                                global_warp: warp,
                                load: LoadId(load),
                                access_index: idx,
                            },
                            &mut reference,
                        );
                        let mut replayed = vec![LineAddr(0xdead)];
                        d.replay(idx, &mut replayed);
                        assert_eq!(replayed, reference, "{p:?} warp={warp} idx={idx}");
                    }
                }
            }
        }
    }

    #[test]
    fn nominal_ws_scales_private_patterns() {
        let shared = AccessPattern::reuse_working_set(1024, true);
        let private = AccessPattern::reuse_working_set(1024, false);
        assert_eq!(shared.nominal_ws_bytes(48), 1024);
        assert_eq!(private.nominal_ws_bytes(48), 48 * 1024);
        assert_eq!(AccessPattern::streaming(128).nominal_ws_bytes(48), 0);
    }
}
