//! Memory request/response messages exchanged between SMs and the shared
//! memory system (L2 + DRAM).

use crate::types::{CtaId, LineAddr, LoadId, SmId};

/// What a request is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemReqKind {
    /// Demand read that missed L1 (fills L1 on return).
    Read,
    /// Demand read bypassing L1 (no fill on return).
    BypassRead,
    /// Write-through store (fire-and-forget).
    Store,
    /// Register backup write for a throttled CTA (fire-and-forget, but
    /// completion is tracked to set the CTA's "backup complete" bit).
    RegBackup {
        /// CTA being backed up.
        cta: CtaId,
    },
    /// Register restore read for a re-activated CTA.
    RegRestore {
        /// CTA being restored.
        cta: CtaId,
    },
}

/// A request leaving an SM for the shared memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Issuing SM.
    pub sm: SmId,
    /// Issuing warp (SM-local index; meaningless for CTA register traffic).
    pub warp: u32,
    /// Residency generation of `warp` at issue — the stale-response filter
    /// for warp-completing kinds (0 for traffic that completes no warp).
    pub gen: u32,
    /// Static load (meaningless for CTA register traffic).
    pub load: LoadId,
    /// Requested line.
    pub line: LineAddr,
    /// Request class.
    pub kind: MemReqKind,
}

/// A response returning to an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRsp {
    /// The original request.
    pub req: MemReq,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinguishable() {
        assert_ne!(MemReqKind::Read, MemReqKind::BypassRead);
        assert_ne!(MemReqKind::Store, MemReqKind::RegBackup { cta: CtaId(0) });
        assert_eq!(
            MemReqKind::RegRestore { cta: CtaId(3) },
            MemReqKind::RegRestore { cta: CtaId(3) }
        );
    }
}
