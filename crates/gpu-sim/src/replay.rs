//! Trace-replay workload frontend: per-warp instruction/address streams.
//!
//! The synthetic frontend generates each warp's addresses on the fly from an
//! [`AccessPattern`](crate::pattern::AccessPattern); the replay frontend
//! instead feeds every warp a pre-recorded stream — captured from a synthetic
//! run ([`crate::gpu::capture_kernel`]) or imported from an external
//! SASS-style text trace (the `lb-replay` crate). A [`ReplayKernel`] pairs a
//! plain [`KernelSpec`] *stub* (grid shape, resources, static body — the
//! header every policy transform reads) with one [`WarpStream`] per warp of
//! the grid: the warp's dynamic instruction sequence as indices into the
//! stub body, plus the coalesced line addresses of its memory operations,
//! interned in a per-stream line pool and referenced by (offset, length).
//!
//! Stream identity is by *CTA dispatch ordinal*: the k-th CTA the GPU
//! launches (grid-wide, across SMs) executes streams
//! `k * warps_per_cta .. (k + 1) * warps_per_cta`. Initial dispatch is
//! deterministic round-robin, so a capture sized to one wave (every CTA
//! placed before cycle 0) replays each stream on exactly the SM and warp
//! slot that produced it — the property the cross-policy round-trip tests
//! rely on.

use crate::config::GpuConfig;
use crate::kernel::{InstKind, KernelSpec};
use crate::types::{Cycle, LineAddr};

/// One dynamic instruction of a warp's replay stream.
///
/// `pos` indexes the stub kernel's `body`; the static instruction there
/// supplies the kind, latency, PC and scoreboard edge. Memory operations
/// carry their coalesced line addresses as a `line_off .. line_off +
/// line_len` slice of the owning stream's line pool; ALU operations have
/// `line_len == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Index into the stub kernel's `body`.
    pub pos: u32,
    /// First line of this access in the stream's line pool.
    pub line_off: u32,
    /// Number of coalesced lines (0 for ALU operations).
    pub line_len: u32,
}

/// The recorded execution of one warp: its dynamic instruction sequence and
/// the interned line pool its memory operations reference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpStream {
    /// Dynamic instructions in issue order.
    pub ops: Vec<TraceOp>,
    /// Line pool referenced by the memory operations' (offset, length)
    /// slices. Capture appends raw per-access slices; the `LBW1` encoder
    /// interns duplicates, so a decoded stream shares repeated accesses.
    pub lines: Vec<LineAddr>,
}

/// A trace-driven workload: a kernel stub plus one stream per warp.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayKernel {
    /// Grid shape, resources and static body. Policy transforms and
    /// occupancy read only this; the stub's `AccessPattern`s are never
    /// executed in replay (imported kernels carry placeholders).
    pub stub: KernelSpec,
    /// One stream per warp, indexed `cta_ordinal * warps_per_cta + lane`.
    pub streams: Vec<WarpStream>,
}

impl ReplayKernel {
    /// Total warps in the grid (`grid_ctas * warps_per_cta`).
    pub fn total_streams(&self) -> usize {
        self.stub.grid_ctas as usize * self.stub.warps_per_cta as usize
    }

    /// Total dynamic instructions across all streams.
    pub fn dyn_insts(&self) -> u64 {
        self.streams.iter().map(|s| s.ops.len() as u64).sum()
    }

    /// Validates internal consistency: the stub itself, the stream count
    /// against the grid, every op's body position and line slice, and the
    /// kind agreement between ops and the static instructions they index
    /// (ALU ops must not carry lines; memory ops may carry zero when a
    /// sparse pattern skipped the instance).
    pub fn validate(&self) -> Result<(), String> {
        self.stub.validate()?;
        if self.streams.len() != self.total_streams() {
            return Err(format!(
                "stream count {} does not match grid {} CTAs x {} warps",
                self.streams.len(),
                self.stub.grid_ctas,
                self.stub.warps_per_cta
            ));
        }
        for (si, s) in self.streams.iter().enumerate() {
            if s.ops.is_empty() {
                return Err(format!("stream {si} is empty"));
            }
            for (oi, op) in s.ops.iter().enumerate() {
                let inst = self.stub.body.get(op.pos as usize).ok_or_else(|| {
                    format!("stream {si} op {oi}: body position {} out of range", op.pos)
                })?;
                let end = op.line_off as u64 + op.line_len as u64;
                if end > s.lines.len() as u64 {
                    return Err(format!(
                        "stream {si} op {oi}: line slice {}..{end} exceeds pool of {}",
                        op.line_off,
                        s.lines.len()
                    ));
                }
                // A memory op with zero lines is legal: sparse patterns
                // (e.g. `SparseStream`) skip most instances, touching
                // nothing. Only the converse — an ALU op carrying lines —
                // is a structural error.
                if let InstKind::Alu { .. } = inst.kind {
                    if op.line_len != 0 {
                        return Err(format!(
                            "stream {si} op {oi}: ALU op carries {} lines",
                            op.line_len
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A capture run could not produce a complete trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// The run hit the cycle cap before every warp retired; the recorded
    /// streams would be truncated mid-execution.
    Incomplete {
        /// Cycles simulated when the cap fired.
        cycles: Cycle,
    },
    /// A warp of the grid never issued an instruction (its CTA was never
    /// dispatched) — the grid does not fit the capture configuration.
    EmptyStream {
        /// Index of the first empty stream.
        stream: usize,
    },
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Incomplete { cycles } => {
                write!(f, "capture run incomplete after {cycles} cycles (raise max_cycles or shrink the kernel)")
            }
            CaptureError::EmptyStream { stream } => {
                write!(f, "warp stream {stream} never executed (grid exceeds capture occupancy)")
            }
        }
    }
}

impl std::error::Error for CaptureError {}

/// CTAs of `kernel` simultaneously resident on one SM under `cfg` (the
/// occupancy minimum over warp slots, threads, registers and shared
/// memory — the same limits [`crate::sm::Sm::try_launch_cta`] enforces).
/// Capture grids are sized to `resident_ctas * n_sms` so the whole grid
/// dispatches in one wave and stream placement is policy-invariant.
pub fn resident_ctas(cfg: &GpuConfig, kernel: &KernelSpec) -> u32 {
    let wpc = kernel.warps_per_cta.max(1);
    let by_warps = cfg.max_warps_per_sm / wpc;
    let by_threads = cfg.max_threads_per_sm / (wpc * cfg.simd_width);
    let by_regs = cfg.warp_regs_per_sm() / kernel.regs_per_cta().max(1);
    let by_smem = cfg
        .shared_mem_bytes_per_sm
        .checked_div(kernel.shared_mem_per_cta)
        .map_or(u32::MAX, |n| n.min(u64::from(u32::MAX)) as u32);
    by_warps.min(by_threads).min(by_regs).min(by_smem).min(cfg.max_ctas_per_sm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::pattern::AccessPattern;

    fn stub() -> KernelSpec {
        KernelBuilder::new("t")
            .grid(1, 1)
            .load_then_use(AccessPattern::streaming(128), 0)
            .iterations(1)
            .build()
            .unwrap()
    }

    fn valid_rep() -> ReplayKernel {
        ReplayKernel {
            stub: stub(),
            streams: vec![WarpStream {
                ops: vec![
                    TraceOp { pos: 0, line_off: 0, line_len: 1 },
                    TraceOp { pos: 1, line_off: 0, line_len: 0 },
                ],
                lines: vec![LineAddr(42)],
            }],
        }
    }

    #[test]
    fn valid_replay_kernel_passes() {
        assert!(valid_rep().validate().is_ok());
    }

    #[test]
    fn stream_count_mismatch_rejected() {
        let mut r = valid_rep();
        r.streams.push(WarpStream::default());
        assert!(r.validate().unwrap_err().contains("stream count"));
    }

    #[test]
    fn out_of_range_pos_rejected() {
        let mut r = valid_rep();
        r.streams[0].ops[0].pos = 99;
        assert!(r.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn line_slice_overflow_rejected() {
        let mut r = valid_rep();
        r.streams[0].ops[0].line_len = 7;
        assert!(r.validate().unwrap_err().contains("exceeds pool"));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut r = valid_rep();
        // The ALU consumer at pos 1 must not carry lines.
        r.streams[0].ops[1] = TraceOp { pos: 1, line_off: 0, line_len: 1 };
        assert!(r.validate().unwrap_err().contains("ALU op carries"));
        // A memory op with zero lines is legal (sparse-pattern skip).
        let mut r = valid_rep();
        r.streams[0].ops[0].line_len = 0;
        assert!(r.validate().is_ok());
    }

    #[test]
    fn resident_ctas_respects_register_limit() {
        let cfg = GpuConfig::default();
        let k = KernelBuilder::new("r").grid(64, 8).regs_per_thread(64).alu(1).build().unwrap();
        // 8 warps x 64 regs = 512 regs/CTA; a 2048-reg file fits 4.
        assert_eq!(resident_ctas(&cfg, &k), cfg.warp_regs_per_sm() / 512);
    }
}
