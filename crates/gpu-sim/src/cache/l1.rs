//! Per-SM L1 data cache: tag array + MSHRs + miss classification + the
//! per-line hashed-PC field Linebacker adds (§4, Figure 7).

use crate::cache::mshr::MshrFile;
use crate::cache::tag_array::{Evicted, TagArray};
use crate::config::CacheConfig;
use crate::fastmap::FastSet;
use crate::types::{LineAddr, MissClass};

/// Per-line metadata stored alongside the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineMeta {
    /// 5-bit hashed PC of the load that last fetched or accessed the line.
    /// Linebacker consults this on eviction to decide whether the victim was
    /// produced by a high-locality load.
    pub hpc: u8,
}

/// Result of an L1 lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Lookup {
    /// Line present.
    Hit,
    /// Line absent; classified cold or capacity/conflict.
    Miss(MissClass),
}

/// The L1 data cache of one SM.
#[derive(Debug)]
pub struct L1Cache {
    tags: TagArray<LineMeta>,
    mshrs: MshrFile,
    /// Lines ever resident — distinguishes cold from capacity/conflict
    /// misses per the paper's §2.2 definition.
    ever_resident: FastSet<LineAddr>,
}

impl L1Cache {
    /// Builds an L1 from a [`CacheConfig`].
    pub fn new(cfg: &CacheConfig) -> Self {
        L1Cache {
            tags: TagArray::new(cfg.n_sets(), cfg.assoc),
            mshrs: MshrFile::new(cfg.mshrs),
            ever_resident: FastSet::default(),
        }
    }

    /// Looks up `line`, updating LRU and the per-line HPC on a hit.
    pub fn access(&mut self, line: LineAddr, hpc: u8) -> L1Lookup {
        match self.tags.probe(line) {
            Some(meta) => {
                meta.hpc = hpc;
                L1Lookup::Hit
            }
            None => {
                let class = if self.ever_resident.contains(&line) {
                    MissClass::CapacityConflict
                } else {
                    MissClass::Cold
                };
                L1Lookup::Miss(class)
            }
        }
    }

    /// Fills `line` (tagged with the fetching load's `hpc`), returning the
    /// evicted victim if the set was full.
    pub fn fill(&mut self, line: LineAddr, hpc: u8) -> Option<Evicted<LineMeta>> {
        self.ever_resident.insert(line);
        if self.tags.peek(line).is_some() {
            // A racing fill (e.g. two merged MSHR paths) may try to re-fill;
            // treat as a no-op.
            return None;
        }
        self.tags.fill(line, LineMeta { hpc })
    }

    /// Invalidates `line` (write-evict on store hit). Returns true if the
    /// line was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        self.tags.invalidate(line).is_some()
    }

    /// Is the line currently resident? (No LRU side effects.)
    pub fn contains(&self, line: LineAddr) -> bool {
        self.tags.peek(line).is_some()
    }

    /// Access to the MSHR file.
    pub fn mshrs(&mut self) -> &mut MshrFile {
        &mut self.mshrs
    }

    /// Immutable MSHR view.
    pub fn mshrs_ref(&self) -> &MshrFile {
        &self.mshrs
    }

    /// Resident line count.
    pub fn occupancy(&self) -> usize {
        self.tags.occupancy()
    }

    /// Underlying tag geometry (sets, assoc).
    pub fn geometry(&self) -> (u32, u32) {
        (self.tags.n_sets(), self.tags.assoc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(&CacheConfig::l1_default())
    }

    #[test]
    fn geometry_is_48x8() {
        assert_eq!(l1().geometry(), (48, 8));
    }

    #[test]
    fn first_miss_is_cold_second_is_2c() {
        let mut c = l1();
        assert_eq!(c.access(LineAddr(7), 0), L1Lookup::Miss(MissClass::Cold));
        c.fill(LineAddr(7), 0);
        assert_eq!(c.access(LineAddr(7), 0), L1Lookup::Hit);
        c.invalidate(LineAddr(7));
        assert_eq!(c.access(LineAddr(7), 0), L1Lookup::Miss(MissClass::CapacityConflict));
    }

    #[test]
    fn eviction_makes_next_miss_capacity() {
        let mut c = l1();
        // Fill set 0 (lines congruent mod 48) beyond capacity.
        for i in 0..9u64 {
            c.fill(LineAddr(i * 48), 0);
        }
        // Line 0 was LRU and evicted.
        assert!(!c.contains(LineAddr(0)));
        assert_eq!(c.access(LineAddr(0), 0), L1Lookup::Miss(MissClass::CapacityConflict));
    }

    #[test]
    fn hit_updates_hpc() {
        let mut c = l1();
        c.fill(LineAddr(1), 3);
        c.access(LineAddr(1), 9);
        // Evict it to observe the payload.
        for i in 1..9u64 {
            c.fill(LineAddr(1 + i * 48), 0);
        }
        // Our line should eventually be evicted with the updated HPC.
        let mut evicted_hpc = None;
        let mut c2 = l1();
        c2.fill(LineAddr(1), 3);
        c2.access(LineAddr(1), 9);
        for i in 1..=8u64 {
            if let Some(ev) = c2.fill(LineAddr(1 + i * 48), 0) {
                if ev.line == LineAddr(1) {
                    evicted_hpc = Some(ev.payload.hpc);
                }
            }
        }
        assert_eq!(evicted_hpc, Some(9));
    }

    #[test]
    fn double_fill_is_noop() {
        let mut c = l1();
        assert!(c.fill(LineAddr(5), 1).is_none());
        assert!(c.fill(LineAddr(5), 2).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_missing_line_is_false() {
        let mut c = l1();
        assert!(!c.invalidate(LineAddr(77)));
    }
}
