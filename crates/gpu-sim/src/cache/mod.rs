//! Cache hierarchy building blocks: generic tag array, MSHR file, and the
//! concrete L1/L2 caches.

pub mod l1;
pub mod l2;
pub mod mshr;
pub mod tag_array;

pub use l1::{L1Cache, L1Lookup, LineMeta};
pub use l2::L2Cache;
pub use mshr::{MshrFile, MshrOutcome, WaiterToken};
pub use tag_array::{Evicted, TagArray};
