//! Generic set-associative tag array with true-LRU replacement.
//!
//! Used by the L1 and L2 data caches, by CERF's cache-emulated register file,
//! and (via the same geometry) mirrored by Linebacker's Victim Tag Table.
//!
//! The storage is a single `n_sets * assoc` slab (set-major) rather than a
//! `Vec<Vec<Way>>`: probes and fills touch one contiguous cache-resident
//! stripe of `assoc` ways with no pointer chase, and the structure performs
//! zero heap allocation after construction. Behaviour (probe order, invalid
//! way reuse, true-LRU victim selection) is bit-identical to the nested
//! representation it replaced.

use crate::types::{Cycle, LineAddr};

/// One way of one set. Invalid ways hold a default payload.
#[derive(Debug, Clone)]
struct Way<P> {
    valid: bool,
    line: LineAddr,
    last_use: Cycle,
    payload: P,
}

/// Result of a [`TagArray::fill`]: the line that had to be evicted, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<P> {
    /// Address of the evicted line.
    pub line: LineAddr,
    /// Payload that was stored with it (e.g. the hashed PC of the last
    /// accessor, which Linebacker uses to filter victims).
    pub payload: P,
}

/// A set-associative tag array. `P` is per-line metadata.
#[derive(Debug, Clone)]
pub struct TagArray<P> {
    /// Set-major slab: ways of set `s` live at `s * assoc .. (s + 1) * assoc`.
    ways: Vec<Way<P>>,
    n_sets: usize,
    assoc: usize,
    /// Monotone access counter used as the LRU clock.
    tick: Cycle,
    hits: u64,
    misses: u64,
}

impl<P: Clone + Default> TagArray<P> {
    /// Creates an array with `n_sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_sets: u32, assoc: u32) -> Self {
        assert!(n_sets > 0 && assoc > 0, "tag array must have nonzero geometry");
        let total = n_sets as usize * assoc as usize;
        TagArray {
            ways: (0..total)
                .map(|_| Way {
                    valid: false,
                    line: LineAddr(0),
                    last_use: 0,
                    payload: P::default(),
                })
                .collect(),
            n_sets: n_sets as usize,
            assoc: assoc as usize,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u32 {
        self.n_sets as u32
    }

    /// Associativity.
    pub fn assoc(&self) -> u32 {
        self.assoc as u32
    }

    /// Total (hits, misses) since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Set index for a line. The L1 of the paper has 48 sets, which is not a
    /// power of two, so indexing is modulo rather than bit-sliced.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.0 % self.n_sets as u64) as usize
    }

    /// The slab stripe holding the ways of `line`'s set.
    #[inline]
    fn set_ways(&self, line: LineAddr) -> &[Way<P>] {
        let s = self.set_index(line);
        &self.ways[s * self.assoc..(s + 1) * self.assoc]
    }

    /// Mutable slab stripe holding the ways of `line`'s set.
    #[inline]
    fn set_ways_mut(&mut self, line: LineAddr) -> &mut [Way<P>] {
        let s = self.set_index(line);
        let assoc = self.assoc;
        &mut self.ways[s * assoc..(s + 1) * assoc]
    }

    /// Looks up `line`; on a hit, updates LRU state and returns a mutable
    /// reference to the payload. Counts the access.
    pub fn probe(&mut self, line: LineAddr) -> Option<&mut P> {
        self.tick += 1;
        let tick = self.tick;
        let s = self.set_index(line);
        // Borrow the slab field directly (not via the `&mut self` helper) so
        // the hit/miss counters stay independently borrowable.
        let stripe = &mut self.ways[s * self.assoc..(s + 1) * self.assoc];
        match stripe.iter_mut().find(|w| w.valid && w.line == line) {
            Some(w) => {
                w.last_use = tick;
                self.hits += 1;
                Some(&mut w.payload)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `line` without touching LRU or counters.
    pub fn peek(&self, line: LineAddr) -> Option<&P> {
        self.set_ways(line).iter().find(|w| w.valid && w.line == line).map(|w| &w.payload)
    }

    /// Inserts `line` (which must not be present), evicting the LRU way if
    /// the set is full. Returns the evicted line, if any.
    pub fn fill(&mut self, line: LineAddr, payload: P) -> Option<Evicted<P>> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_ways_mut(line);
        debug_assert!(
            !set.iter().any(|w| w.valid && w.line == line),
            "fill of already-present line {line}"
        );
        // Reuse the leftmost invalid way first.
        if let Some(w) = set.iter_mut().find(|w| !w.valid) {
            *w = Way { valid: true, line, last_use: tick, payload };
            return None;
        }
        // Evict true-LRU, moving the payload out instead of cloning it.
        let victim = set.iter_mut().min_by_key(|w| w.last_use).expect("set is full, so nonempty");
        let evicted =
            Evicted { line: victim.line, payload: std::mem::replace(&mut victim.payload, payload) };
        victim.valid = true;
        victim.line = line;
        victim.last_use = tick;
        Some(evicted)
    }

    /// Invalidates `line` if present; returns its payload (moved out, the
    /// vacated way keeps a default placeholder).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<P> {
        let w = self.set_ways_mut(line).iter_mut().find(|w| w.valid && w.line == line)?;
        w.valid = false;
        Some(std::mem::take(&mut w.payload))
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Iterates over all resident lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.ways.iter().filter(|w| w.valid).map(|w| w.line)
    }

    /// Clears all contents and statistics.
    pub fn reset(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
            w.payload = P::default();
        }
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(sets: u32, assoc: u32) -> TagArray<u8> {
        TagArray::new(sets, assoc)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = arr(4, 2);
        assert!(t.probe(LineAddr(100)).is_none());
        assert!(t.fill(LineAddr(100), 7).is_none());
        assert_eq!(t.probe(LineAddr(100)), Some(&mut 7));
        assert_eq!(t.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = arr(1, 2);
        t.fill(LineAddr(1), 0);
        t.fill(LineAddr(2), 0);
        // Touch line 1 so line 2 becomes LRU.
        t.probe(LineAddr(1));
        let ev = t.fill(LineAddr(3), 0).expect("set full");
        assert_eq!(ev.line, LineAddr(2));
    }

    #[test]
    fn eviction_carries_payload() {
        let mut t = arr(1, 1);
        t.fill(LineAddr(9), 42);
        let ev = t.fill(LineAddr(10), 43).unwrap();
        assert_eq!(ev, Evicted { line: LineAddr(9), payload: 42 });
    }

    #[test]
    fn conflict_within_set_only() {
        let mut t = arr(2, 1);
        t.fill(LineAddr(0), 0); // set 0
        t.fill(LineAddr(1), 0); // set 1
                                // Filling another set-0 line evicts line 0, not line 1.
        let ev = t.fill(LineAddr(2), 0).unwrap();
        assert_eq!(ev.line, LineAddr(0));
        assert!(t.peek(LineAddr(1)).is_some());
    }

    #[test]
    fn invalidate_frees_way() {
        let mut t = arr(1, 1);
        t.fill(LineAddr(5), 1);
        assert_eq!(t.invalidate(LineAddr(5)), Some(1));
        assert!(t.peek(LineAddr(5)).is_none());
        // The invalid way is reused without eviction.
        assert!(t.fill(LineAddr(6), 2).is_none());
    }

    #[test]
    fn occupancy_tracks_fills() {
        let mut t = arr(4, 4);
        for i in 0..10 {
            t.fill(LineAddr(i), 0);
        }
        assert_eq!(t.occupancy(), 10);
        t.invalidate(LineAddr(0));
        assert_eq!(t.occupancy(), 9);
    }

    #[test]
    fn modulo_indexing_for_48_sets() {
        let t = arr(48, 8);
        assert_eq!(t.set_index(LineAddr(48)), 0);
        assert_eq!(t.set_index(LineAddr(49)), 1);
        assert_eq!(t.set_index(LineAddr(47)), 47);
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut t = arr(1, 2);
        t.fill(LineAddr(1), 0);
        t.fill(LineAddr(2), 0);
        t.peek(LineAddr(1));
        // LRU is still line 1 because peek did not touch it.
        let ev = t.fill(LineAddr(3), 0).unwrap();
        assert_eq!(ev.line, LineAddr(1));
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = arr(2, 2);
        t.fill(LineAddr(1), 0);
        t.probe(LineAddr(1));
        t.reset();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.hit_miss(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "nonzero geometry")]
    fn zero_geometry_panics() {
        let _ = arr(0, 1);
    }

    #[test]
    fn invalid_way_reuse_prefers_leftmost() {
        // Slab-specific regression: after invalidating a middle way, the
        // next fill must land in that (leftmost invalid) slot, exactly as
        // the nested representation reused its first `!valid` entry.
        let mut t = arr(1, 4);
        for i in 1..=4u64 {
            t.fill(LineAddr(i), i as u8);
        }
        t.invalidate(LineAddr(2));
        assert!(t.fill(LineAddr(9), 9).is_none(), "invalid way must absorb the fill");
        assert_eq!(t.occupancy(), 4);
        // All original lines except 2 survive.
        for i in [1u64, 3, 4, 9] {
            assert!(t.peek(LineAddr(i)).is_some(), "line {i} must be resident");
        }
    }
}
