//! The shared L2 cache (2048 KB, 8-way in Table 1).
//!
//! The L2 is modeled as a single shared bank with its own MSHR file; its
//! service latency is folded into `GpuConfig::l2_latency`, and misses are
//! forwarded to the DRAM model.

use crate::cache::mshr::MshrFile;
use crate::cache::tag_array::TagArray;
use crate::config::CacheConfig;
use crate::types::{Cycle, LineAddr};

/// The GPU-wide shared L2.
#[derive(Debug)]
pub struct L2Cache {
    tags: TagArray<()>,
    mshrs: MshrFile,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Builds an L2 from a [`CacheConfig`].
    pub fn new(cfg: &CacheConfig) -> Self {
        L2Cache {
            tags: TagArray::new(cfg.n_sets(), cfg.assoc),
            mshrs: MshrFile::new(cfg.mshrs),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `line`. Returns `true` on hit. On miss the caller forwards
    /// the request to DRAM and later calls [`L2Cache::fill`].
    pub fn access(&mut self, line: LineAddr) -> bool {
        if self.tags.probe(line).is_some() {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Fills `line` after a DRAM response. Evictions at L2 are silent (clean
    /// data; write-through traffic is accounted separately).
    pub fn fill(&mut self, line: LineAddr) {
        if self.tags.peek(line).is_none() {
            let _ = self.tags.fill(line, ());
        }
    }

    /// Is the line resident? (No side effects.)
    pub fn contains(&self, line: LineAddr) -> bool {
        self.tags.peek(line).is_some()
    }

    /// The L2 MSHR file (merging concurrent SM misses to one DRAM fetch).
    pub fn mshrs(&mut self) -> &mut MshrFile {
        &mut self.mshrs
    }

    /// (hits, misses) since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total lines this cache can hold (sets × ways) — for a partitioned
    /// L2, the capacity of this slice alone.
    pub fn capacity_lines(&self) -> u32 {
        self.tags.n_sets() * self.tags.assoc()
    }

    /// Component-calendar horizon: always `None`. The L2 (including its
    /// MSHR file) is purely reactive — it acts only when the interconnect
    /// delivers a request or a DRAM fill returns, and both of those are
    /// covered by the icnt queues' and DRAM's own `next_due`. Even
    /// MSHR-full retries re-enter through `to_l2` with their retry delay,
    /// so they ride the icnt horizon too.
    pub fn next_due(&self) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2Cache {
        L2Cache::new(&CacheConfig::l2_default())
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = l2();
        assert!(!c.access(LineAddr(3)));
        c.fill(LineAddr(3));
        assert!(c.access(LineAddr(3)));
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn geometry_2mb() {
        let cfg = CacheConfig::l2_default();
        assert_eq!(cfg.n_sets() * cfg.assoc, 16384); // 2 MB / 128 B
    }

    #[test]
    fn duplicate_fill_is_noop() {
        let mut c = l2();
        c.fill(LineAddr(1));
        c.fill(LineAddr(1));
        assert!(c.contains(LineAddr(1)));
    }
}
