//! Miss-Status Holding Registers: merge concurrent misses to the same line.

use crate::fastmap::FastMap;
use crate::types::LineAddr;

/// A waiter blocked on an outstanding fill: `(sm-local warp id, load id)` is
/// enough for the simulator to credit completion back to the right
/// scoreboard entry. Opaque `u64` keeps the MSHR file generic.
pub type WaiterToken = u64;

/// Outcome of [`MshrFile::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated — the request must be forwarded downstream.
    NewEntry,
    /// Merged into an existing entry — no new downstream request.
    Merged,
    /// The MSHR file is full; the access must be retried later (structural
    /// stall).
    Full,
}

/// A fixed-capacity MSHR file.
///
/// Steady-state it performs no heap allocation: the per-entry waiter
/// vectors retired by [`MshrFile::complete_into`] are pooled and reused by
/// later [`MshrFile::allocate`] calls (the pool is bounded by `capacity`,
/// since at most that many entries ever hold a vector at once).
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: FastMap<LineAddr, Vec<WaiterToken>>,
    /// Retired (empty, capacity-retaining) waiter vectors.
    pool: Vec<Vec<WaiterToken>>,
    merges: u64,
    stalls: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    pub fn new(capacity: u32) -> Self {
        let mut entries = FastMap::default();
        entries.reserve(capacity as usize);
        MshrFile { capacity: capacity as usize, entries, pool: Vec::new(), merges: 0, stalls: 0 }
    }

    /// Records a miss on `line` from `waiter`.
    pub fn allocate(&mut self, line: LineAddr, waiter: WaiterToken) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&line) {
            waiters.push(waiter);
            self.merges += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrOutcome::Full;
        }
        let mut waiters = self.pool.pop().unwrap_or_default();
        waiters.push(waiter);
        self.entries.insert(line, waiters);
        MshrOutcome::NewEntry
    }

    /// Completes the fill of `line`, moving all merged waiters (in merge
    /// order) into `out`, which is cleared first. `out` stays empty if no
    /// entry existed (e.g. a prefetch).
    pub fn complete_into(&mut self, line: LineAddr, out: &mut Vec<WaiterToken>) {
        out.clear();
        if let Some(mut waiters) = self.entries.remove(&line) {
            out.append(&mut waiters);
            self.pool.push(waiters);
        }
    }

    /// Completes the fill of `line`, returning all merged waiters.
    /// Convenience wrapper over [`MshrFile::complete_into`] for tests and
    /// benchmarks; the hot paths use the allocation-free form.
    pub fn complete(&mut self, line: LineAddr) -> Vec<WaiterToken> {
        let mut out = Vec::new();
        self.complete_into(line, &mut out);
        out
    }

    /// Is a fill for `line` already outstanding?
    pub fn pending(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Entries currently in flight.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Lifetime merge count (secondary misses absorbed).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Lifetime structural-stall count (allocation attempts while full).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_allocates() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(LineAddr(1), 10), MshrOutcome::NewEntry);
        assert!(m.pending(LineAddr(1)));
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr(1), 10);
        assert_eq!(m.allocate(LineAddr(1), 11), MshrOutcome::Merged);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn complete_returns_all_waiters() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr(1), 10);
        m.allocate(LineAddr(1), 11);
        let w = m.complete(LineAddr(1));
        assert_eq!(w, vec![10, 11]);
        assert!(!m.pending(LineAddr(1)));
    }

    #[test]
    fn full_file_stalls_new_lines_but_merges_existing() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr(1), 0);
        m.allocate(LineAddr(2), 0);
        assert_eq!(m.allocate(LineAddr(3), 0), MshrOutcome::Full);
        assert_eq!(m.stalls(), 1);
        // Merging into an existing entry is still allowed when full.
        assert_eq!(m.allocate(LineAddr(2), 1), MshrOutcome::Merged);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m = MshrFile::new(2);
        assert!(m.complete(LineAddr(9)).is_empty());
    }

    #[test]
    fn capacity_freed_after_complete() {
        let mut m = MshrFile::new(1);
        m.allocate(LineAddr(1), 0);
        assert_eq!(m.allocate(LineAddr(2), 0), MshrOutcome::Full);
        m.complete(LineAddr(1));
        assert_eq!(m.allocate(LineAddr(2), 0), MshrOutcome::NewEntry);
    }
}
