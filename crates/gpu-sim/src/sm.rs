//! One streaming multiprocessor: issue pipeline, load/store unit, L1, and
//! CTA lifecycle (including throttling-driven register backup/restore).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::cache::{L1Cache, L1Lookup, MshrOutcome};
use crate::config::GpuConfig;
use crate::cta::{CtaState, CtaStatus};
use crate::kernel::{InstKind, KernelSpec};
use crate::mem::{MemReq, MemReqKind};
use crate::pattern::AccessCtx;
use crate::policy::{MissService, PolicyCtx, PreAccess, SmPolicy, WindowInfo};
use crate::regfile::RegFile;
use crate::scheduler::GtoScheduler;
use crate::stats::{RfSpaceSample, SimStats};
use crate::types::{hashed_pc5, CtaId, Cycle, LineAddr, LoadId, Pc, RegNum, SmId, WarpId};
use crate::warp::WarpState;

/// A line request waiting for an L1 port.
#[derive(Debug, Clone, Copy)]
struct LsuReq {
    warp: u32,
    load: LoadId,
    pc: Pc,
    line: LineAddr,
}

/// Maximum LSU queue depth before load issue back-pressures.
const LSU_QUEUE_CAP: usize = 64;

/// Result of [`Sm::skip_check`]: whether the SM may make progress at the
/// current cycle, used by the GPU's idle-cycle fast-forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipCheck {
    /// The SM may do work this cycle; the GPU must step normally.
    Busy,
    /// The SM provably does nothing until the contained cycle (`None` = it
    /// has no self-generated wake-up; only global events can wake it).
    IdleUntil(Option<Cycle>),
}

/// Store-buffer entries per SM: outstanding store lines beyond this stall
/// further store instructions (write-through stores must not outrun DRAM
/// bandwidth unboundedly).
const STORE_BUFFER_CAP: u32 = 64;

/// One streaming multiprocessor.
pub struct Sm {
    /// This SM's id.
    pub id: SmId,
    /// The L1 data cache.
    pub l1: L1Cache,
    /// The register file.
    pub regfile: RegFile,
    /// Per-SM statistics (merged by the GPU at run end).
    pub stats: SimStats,
    /// The architecture policy driving this SM.
    pub policy: Box<dyn SmPolicy>,
    warps: Vec<Option<WarpState>>,
    ctas: Vec<Option<CtaState>>,
    schedulers: Vec<GtoScheduler>,
    lsu_queue: VecDeque<LsuReq>,
    /// Locally-completing accesses: (finish cycle, warp, load).
    completions: BinaryHeap<Reverse<(Cycle, u32, u32)>>,
    /// Outgoing requests for the shared memory system (drained by the GPU).
    pub outbox: Vec<MemReq>,
    /// Current active-CTA limit imposed by the policy.
    cta_limit: Option<u32>,
    /// Monotone CTA launch counter (GTO age base; also makes global warp
    /// numbers unique).
    launch_seq: u64,
    warp_seq: u64,
    /// Backed-up register contents per CTA slot (verifies restore fidelity).
    backup_store: HashMap<u32, Vec<u64>>,
    /// Next backup line offset in this SM's dedicated backup address region.
    backup_cursor: u64,
    window_start_insts: u64,
    window_index: u32,
    /// Scratch buffer for pattern generation.
    line_buf: Vec<LineAddr>,
    /// Scratch buffer of (warp, age) pairs for the scheduler ready list,
    /// reused every cycle so `issue` never allocates.
    ready_buf: Vec<(WarpId, u64)>,
    /// Per-scheduler candidate buckets filled by one pass over the warp
    /// slots (entries carry an is-store flag so the store-credit gate can
    /// be re-evaluated per scheduler with live credits).
    sched_bufs: Vec<Vec<(WarpId, u64, bool)>>,
    /// Issue-scan sleep horizon: while `cycle < issue_sleep_until` and no
    /// wake event arrived, the ready sets are provably empty and `issue`
    /// returns without scanning the warps.
    issue_sleep_until: Cycle,
    /// Set by any event that can change warp eligibility (completion
    /// drain, memory response, CTA launch/reap/limit change, window end).
    issue_wake: bool,
    /// Outstanding store lines in flight toward DRAM.
    stores_in_flight: u32,
    seed: u64,
}

impl Sm {
    /// Creates an SM with the given policy.
    pub fn new(id: SmId, cfg: &GpuConfig, policy: Box<dyn SmPolicy>, seed: u64) -> Self {
        Sm {
            id,
            l1: L1Cache::new(&cfg.l1),
            regfile: RegFile::new(cfg.warp_regs_per_sm(), cfg.regfile_banks, cfg.max_ctas_per_sm),
            stats: SimStats::default(),
            policy,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            ctas: (0..cfg.max_ctas_per_sm).map(|_| None).collect(),
            schedulers: (0..cfg.schedulers_per_sm).map(|_| GtoScheduler::new()).collect(),
            lsu_queue: VecDeque::new(),
            completions: BinaryHeap::new(),
            outbox: Vec::new(),
            cta_limit: None,
            launch_seq: 0,
            warp_seq: 0,
            backup_store: HashMap::new(),
            backup_cursor: 0,
            window_start_insts: 0,
            window_index: 0,
            line_buf: Vec::with_capacity(32),
            ready_buf: Vec::with_capacity(cfg.max_warps_per_sm as usize),
            sched_bufs: (0..cfg.schedulers_per_sm)
                .map(|_| Vec::with_capacity(cfg.max_warps_per_sm as usize))
                .collect(),
            issue_sleep_until: 0,
            issue_wake: true,
            stores_in_flight: 0,
            seed,
        }
    }

    /// Number of resident CTAs (any status).
    pub fn resident_ctas(&self) -> u32 {
        self.ctas.iter().flatten().count() as u32
    }

    /// Number of active (schedulable) CTAs.
    pub fn active_ctas(&self) -> u32 {
        self.ctas.iter().flatten().filter(|c| c.schedulable()).count() as u32
    }

    /// Number of resident but deactivated CTAs (any non-active status).
    pub fn inactive_ctas(&self) -> u32 {
        self.resident_ctas() - self.active_ctas()
    }

    /// All warps retired and no CTAs resident.
    pub fn drained(&self) -> bool {
        self.resident_ctas() == 0 && self.lsu_queue.is_empty() && self.completions.is_empty()
    }

    /// Tries to launch one CTA of `kernel`; returns false when occupancy
    /// limits (slots, warps, threads, registers, shared memory) forbid it.
    pub fn try_launch_cta(&mut self, kernel: &KernelSpec, cfg: &GpuConfig) -> bool {
        let warps_per_cta = kernel.warps_per_cta;
        let resident: u32 = self.resident_ctas();
        if resident >= cfg.max_ctas_per_sm {
            return false;
        }
        let resident_warps: u32 = self.ctas.iter().flatten().map(|c| c.warps.len() as u32).sum();
        if resident_warps + warps_per_cta > cfg.max_warps_per_sm {
            return false;
        }
        if (resident_warps + warps_per_cta) * cfg.simd_width > cfg.max_threads_per_sm {
            return false;
        }
        let smem_used: u64 = resident as u64 * kernel.shared_mem_per_cta;
        if smem_used + kernel.shared_mem_per_cta > cfg.shared_mem_bytes_per_sm {
            return false;
        }
        // Find a free CTA slot and a contiguous block of warp slots.
        let slot = match self.ctas.iter().position(|c| c.is_none()) {
            Some(s) => s as u32,
            None => return false,
        };
        let warp_base = match self.find_warp_slots(warps_per_cta) {
            Some(b) => b,
            None => return false,
        };
        let first_reg = match self.regfile.allocate_cta(CtaId(slot), kernel.regs_per_cta()) {
            Some(r) => r,
            None => return false,
        };
        let seq = self.launch_seq;
        self.launch_seq += 1;
        let mut warp_ids = Vec::with_capacity(warps_per_cta as usize);
        for i in 0..warps_per_cta {
            let wid = warp_base + i;
            let gw = self.warp_seq;
            self.warp_seq += 1;
            self.warps[wid as usize] = Some(WarpState::new(
                WarpId(wid),
                CtaId(slot),
                gw,
                kernel.loads.len(),
                seq * 1000 + i as u64,
            ));
            warp_ids.push(wid);
        }
        self.ctas[slot as usize] = Some(CtaState {
            id: CtaId(slot),
            status: CtaStatus::Active,
            first_reg,
            reg_count: kernel.regs_per_cta(),
            warps: warp_ids,
            warps_done: 0,
            launch_seq: seq,
        });
        let mut ctx =
            PolicyCtx { cycle: 0, sm: self.id, regfile: &mut self.regfile, stats: &mut self.stats };
        self.policy.on_cta_launch(CtaId(slot), first_reg, &mut ctx);
        self.issue_wake = true;
        true
    }

    fn find_warp_slots(&self, count: u32) -> Option<u32> {
        let n = self.warps.len() as u32;
        let mut run = 0u32;
        for i in 0..n {
            if self.warps[i as usize].is_none() {
                run += 1;
                if run == count {
                    return Some(i + 1 - count);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Advances this SM one cycle. Emits memory requests into `outbox`.
    pub fn tick(&mut self, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        self.drain_completions(cycle);
        self.process_lsu(cycle, cfg);
        self.issue(cycle, kernel, cfg);
    }

    fn drain_completions(&mut self, cycle: Cycle) {
        while let Some(Reverse((t, warp, load))) = self.completions.peek().copied() {
            if t > cycle {
                break;
            }
            self.completions.pop();
            self.issue_wake = true;
            if let Some(w) = self.warps[warp as usize].as_mut() {
                w.complete_one(LoadId(load));
            }
        }
    }

    fn process_lsu(&mut self, cycle: Cycle, cfg: &GpuConfig) {
        for _ in 0..cfg.l1_ports {
            let Some(req) = self.lsu_queue.pop_front() else { break };
            let hpc = hashed_pc5(req.pc);
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            if self.policy.pre_access(req.warp, req.pc, req.load, req.line, &mut ctx)
                == PreAccess::Bypass
            {
                self.stats.record_access(req.load, crate::types::AccessOutcome::Bypass, None);
                self.outbox.push(MemReq {
                    sm: self.id,
                    warp: req.warp,
                    load: req.load,
                    line: req.line,
                    kind: MemReqKind::BypassRead,
                });
                continue;
            }
            match self.l1.access(req.line, hpc) {
                L1Lookup::Hit => {
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_hit(req.pc, req.load, req.line, &mut ctx);
                    self.stats.record_access(req.load, crate::types::AccessOutcome::L1Hit, None);
                    self.completions.push(Reverse((
                        cycle + cfg.l1_hit_latency as u64,
                        req.warp,
                        req.load.0,
                    )));
                }
                L1Lookup::Miss(class) => {
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    match self.policy.on_miss(req.pc, req.load, req.line, &mut ctx) {
                        MissService::VictimHit { extra_latency } => {
                            self.stats.record_access(
                                req.load,
                                crate::types::AccessOutcome::RegHit,
                                None,
                            );
                            self.completions.push(Reverse((
                                cycle + (cfg.l1_hit_latency + extra_latency) as u64,
                                req.warp,
                                req.load.0,
                            )));
                        }
                        MissService::ToL2 => {
                            let token = (req.warp as u64) << 32 | req.load.0 as u64;
                            match self.l1.mshrs().allocate(req.line, token) {
                                MshrOutcome::Merged => {
                                    self.stats.record_access(
                                        req.load,
                                        crate::types::AccessOutcome::Miss,
                                        Some(class),
                                    );
                                }
                                MshrOutcome::NewEntry => {
                                    self.stats.record_access(
                                        req.load,
                                        crate::types::AccessOutcome::Miss,
                                        Some(class),
                                    );
                                    self.outbox.push(MemReq {
                                        sm: self.id,
                                        warp: req.warp,
                                        load: req.load,
                                        line: req.line,
                                        kind: MemReqKind::Read,
                                    });
                                }
                                MshrOutcome::Full => {
                                    // Structural stall: retry next cycle.
                                    self.stats.mshr_stalls += 1;
                                    self.lsu_queue.push_front(req);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn issue(&mut self, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        // Event-driven fast path: if the last full scan proved every ready
        // set empty, nothing can become issueable before `issue_sleep_until`
        // unless a wake event fired (completion drain, memory response, CTA
        // launch/reap/limit change, window end). Warp latencies expire at
        // known cycles; everything else is event-driven, so skipping the
        // scan is exactly equivalent to running it.
        if !self.issue_wake && cycle < self.issue_sleep_until {
            return;
        }
        self.issue_wake = false;

        let n_scheds = self.schedulers.len() as u32;
        let lsu_full = self.lsu_queue.len() >= LSU_QUEUE_CAP;
        // One pass over the warp slots buckets candidates per scheduler in
        // slot order — identical ordering to a per-scheduler filtered scan.
        // The store-credit gate is deliberately NOT applied here: scheduler
        // k's issue can consume the last credit, so it must be re-checked
        // per scheduler with live credits below.
        let mut gated_by_lsu = false;
        let mut timed_wake: Option<Cycle> = None;
        for b in &mut self.sched_bufs {
            b.clear();
        }
        for w in self.warps.iter().flatten() {
            if w.done {
                continue;
            }
            let cta_ok =
                self.ctas[w.cta.0 as usize].as_ref().map(|c| c.schedulable()).unwrap_or(false);
            if !cta_ok {
                continue;
            }
            if !w.can_issue(kernel, cycle, cfg.max_outstanding_per_warp) {
                // Sleep-horizon bookkeeping: a warp blocked purely on its
                // latency becomes ready at `next_ready`; warps blocked on
                // dependencies or the load cap wake via completion events.
                if w.next_ready > cycle
                    && w.can_issue(kernel, w.next_ready, cfg.max_outstanding_per_warp)
                {
                    timed_wake = Some(timed_wake.map_or(w.next_ready, |t| t.min(w.next_ready)));
                }
                continue;
            }
            // Back-pressure: loads/stores need LSU space.
            let inst = &kernel.body[w.body_pos as usize];
            let is_store = matches!(inst.kind, InstKind::Store { .. });
            if lsu_full && (is_store || matches!(inst.kind, InstKind::Load { .. })) {
                gated_by_lsu = true;
                continue;
            }
            self.sched_bufs[(w.id.0 % n_scheds) as usize].push((w.id, w.age, is_store));
        }

        let mut issued_any = false;
        for s in 0..n_scheds as usize {
            self.ready_buf.clear();
            for i in 0..self.sched_bufs[s].len() {
                let (id, age, is_store) = self.sched_bufs[s][i];
                // Live store-credit check: an earlier scheduler may have
                // consumed the last credit this very cycle.
                if is_store && self.stores_in_flight >= STORE_BUFFER_CAP {
                    continue;
                }
                self.ready_buf.push((id, age));
            }
            let picked = self.schedulers[s].pick(&self.ready_buf);
            let Some(wid) = picked else { continue };
            issued_any = true;
            self.execute_inst(wid, cycle, kernel, cfg);
        }

        // Arm the sleep horizon only when this scan did nothing and no warp
        // was held back by LSU back-pressure (the LSU drains without firing
        // a wake event; but then the queue is non-empty, so those cycles
        // are busy anyway and re-scanning is cheap relative to the drain).
        self.issue_sleep_until = if issued_any || gated_by_lsu {
            cycle // re-scan next cycle
        } else {
            timed_wake.unwrap_or(Cycle::MAX)
        };
    }

    /// Idle-cycle skip eligibility for [`Gpu::run`]'s fast-forward
    /// (`crate::gpu::Gpu::run`): decides whether this SM could do any work at
    /// `cycle`, and if not, the earliest future cycle at which it could wake
    /// *on its own* (warp latency expiry or a locally queued completion).
    ///
    /// Warps blocked on scoreboard dependencies, the outstanding-load cap,
    /// store-buffer credits, or a non-schedulable CTA are deliberately
    /// excluded from the next-event computation: they wake only via events
    /// the GPU already tracks globally (interconnect deliveries, DRAM
    /// completions, window boundaries).
    pub fn skip_check(&self, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) -> SkipCheck {
        // A non-empty LSU queue makes per-cycle progress (and per-cycle
        // MSHR-stall accounting); a non-empty outbox must drain; a finished
        // CTA awaits reaping. All three force a real step.
        if !self.lsu_queue.is_empty() || !self.outbox.is_empty() {
            return SkipCheck::Busy;
        }
        if self
            .ctas
            .iter()
            .flatten()
            .any(|c| c.is_complete() && matches!(c.status, CtaStatus::Active))
        {
            return SkipCheck::Busy;
        }
        let mut next: Option<Cycle> = None;
        if let Some(Reverse((t, _, _))) = self.completions.peek().copied() {
            if t <= cycle {
                return SkipCheck::Busy;
            }
            next = Some(t);
        }
        for w in self.warps.iter().flatten() {
            if w.done {
                continue;
            }
            let cta_ok =
                self.ctas[w.cta.0 as usize].as_ref().map(|c| c.schedulable()).unwrap_or(false);
            if !cta_ok {
                continue;
            }
            // The LSU queue is empty here, so the only issue back-pressure
            // left is the store-buffer credit (released by store responses,
            // a globally tracked event).
            let inst = &kernel.body[w.body_pos as usize];
            if self.stores_in_flight >= STORE_BUFFER_CAP
                && matches!(inst.kind, InstKind::Store { .. })
            {
                continue;
            }
            if w.can_issue(kernel, cycle, cfg.max_outstanding_per_warp) {
                return SkipCheck::Busy;
            }
            // Blocked only by its latency timer: the warp becomes issueable
            // at `next_ready` with no external event, so that is a wake-up.
            if w.next_ready > cycle
                && w.can_issue(kernel, w.next_ready, cfg.max_outstanding_per_warp)
            {
                next = Some(next.map_or(w.next_ready, |t| t.min(w.next_ready)));
            }
        }
        SkipCheck::IdleUntil(next)
    }

    fn execute_inst(&mut self, wid: WarpId, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        let w = self.warps[wid.0 as usize].as_mut().expect("picked warp exists");
        let cta = self.ctas[w.cta.0 as usize].as_ref().expect("warp's CTA exists");
        let inst = &kernel.body[w.body_pos as usize];
        self.stats.instructions += 1;

        // Operand traffic: two reads and one write on the warp's registers.
        let warp_local = wid.0 % kernel.warps_per_cta.max(1);
        let base = cta.first_reg.0 + warp_local * kernel.regs_per_warp();
        let span = kernel.regs_per_warp().max(1);
        let rot = w.body_pos;
        let mut extra_delay = 0u32;
        for (k, write) in [(0u32, false), (1, false), (2, true)] {
            let reg = RegNum(base + (rot.wrapping_mul(3).wrapping_add(k)) % span);
            extra_delay += self.regfile.access(reg, cycle, write);
        }

        match inst.kind {
            InstKind::Alu { latency } => {
                w.next_ready = cycle + latency.max(1) as u64 + extra_delay as u64;
            }
            InstKind::Load { load } => {
                let idx = w.next_access_index(load);
                let spec = kernel.load(load);
                self.line_buf.clear();
                spec.pattern.gen_lines(
                    AccessCtx {
                        seed: self.seed,
                        sm: self.id,
                        global_warp: w.global_warp,
                        load,
                        access_index: idx,
                    },
                    &mut self.line_buf,
                );
                let n = self.line_buf.len() as u32;
                w.add_outstanding(load, n);
                w.next_ready = cycle + 1 + extra_delay as u64;
                let warp_idx = wid.0;
                for &line in &self.line_buf {
                    if cfg.detailed_load_stats {
                        self.stats.record_line_touch(load, line.0);
                    }
                    self.lsu_queue.push_back(LsuReq { warp: warp_idx, load, pc: spec.pc, line });
                }
            }
            InstKind::Store { load } => {
                let idx = w.next_access_index(load);
                let spec = kernel.load(load);
                self.line_buf.clear();
                spec.pattern.gen_lines(
                    AccessCtx {
                        seed: self.seed,
                        sm: self.id,
                        global_warp: w.global_warp,
                        load,
                        access_index: idx,
                    },
                    &mut self.line_buf,
                );
                w.next_ready = cycle + 1 + extra_delay as u64;
                let warp_idx = wid.0;
                // Write-evict (hit) / write-no-allocate (miss): invalidate L1
                // copy, notify the policy so victim copies are invalidated
                // too, and send the store through to memory.
                for i in 0..self.line_buf.len() {
                    let line = self.line_buf[i];
                    self.stats.stores += 1;
                    self.stores_in_flight += 1;
                    self.l1.invalidate(line);
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_store(line, &mut ctx);
                    self.outbox.push(MemReq {
                        sm: self.id,
                        warp: warp_idx,
                        load,
                        line,
                        kind: MemReqKind::Store,
                    });
                }
            }
        }

        // Advance the warp past this instruction and retire if finished.
        let w = self.warps[wid.0 as usize].as_mut().expect("warp exists");
        w.advance(kernel);
        if w.done {
            let cta_id = w.cta;
            self.schedulers[(wid.0 % cfg.schedulers_per_sm) as usize].release(wid);
            let cta = self.ctas[cta_id.0 as usize].as_mut().expect("CTA exists");
            cta.warps_done += 1;
        }
    }

    /// Handles a response from the shared memory system.
    ///
    /// `load_pc` maps a static load id to its PC (precomputed from the
    /// kernel), used to tag the L1 fill with the fetching load's hashed PC.
    pub fn handle_response(&mut self, req: MemReq, cycle: Cycle, load_pc: &[Pc]) {
        // Any response can change warp eligibility (load completion, store
        // credit return, backup/restore progress toggling CTA status).
        self.issue_wake = true;
        match req.kind {
            MemReqKind::Read => {
                // Fill L1; evicted victim goes to the policy.
                let waiters = self.l1.mshrs().complete(req.line);
                let fill_hpc = waiters
                    .first()
                    .map(|&t| {
                        let load = (t & 0xffff_ffff) as u32;
                        hashed_pc5(load_pc[load as usize])
                    })
                    .unwrap_or(0);
                let evicted = self.l1.fill(req.line, fill_hpc);
                if let Some(ev) = evicted {
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_evict(ev.line, ev.payload.hpc, &mut ctx);
                }
                for t in waiters {
                    let warp = (t >> 32) as u32;
                    let load = (t & 0xffff_ffff) as u32;
                    if let Some(w) = self.warps[warp as usize].as_mut() {
                        w.complete_one(LoadId(load));
                    }
                }
            }
            MemReqKind::BypassRead => {
                if let Some(w) = self.warps[req.warp as usize].as_mut() {
                    w.complete_one(req.load);
                }
            }
            MemReqKind::Store => {
                self.stores_in_flight = self.stores_in_flight.saturating_sub(1);
            }
            MemReqKind::RegBackup { cta } => self.backup_line_done(cta, cycle),
            MemReqKind::RegRestore { cta } => self.restore_line_done(cta, cycle),
        }
    }

    /// Ends the current monitoring window: computes IPC, consults the
    /// policy, enforces any CTA limit, and samples RF occupancy.
    pub fn end_window(&mut self, cycle: Cycle, cfg: &GpuConfig) {
        self.issue_wake = true;
        let insts = self.stats.instructions - self.window_start_insts;
        self.window_start_insts = self.stats.instructions;
        let info = WindowInfo {
            index: self.window_index,
            cycles: cfg.window_cycles,
            instructions: insts,
            ipc: insts as f64 / cfg.window_cycles as f64,
            active_ctas: self.active_ctas(),
            inactive_ctas: self.inactive_ctas(),
        };
        self.window_index += 1;
        let mut ctx =
            PolicyCtx { cycle, sm: self.id, regfile: &mut self.regfile, stats: &mut self.stats };
        let limit = self.policy.on_window(&info, &mut ctx);
        self.cta_limit = limit;
        self.enforce_cta_limit(cycle);
        // Sample RF occupancy for Figures 4 and 9.
        let space = self.regfile.space();
        let victim = self.policy.victim_space_regs();
        self.stats.rf_samples.push(RfSpaceSample {
            static_unused: space.static_unused,
            dynamic_unused: space.dynamic_unused,
            victim_in_use: victim,
        });
        // Timeline point (window-level hit fraction is cumulative-delta
        // based; fall back to the cumulative fraction for simplicity —
        // accurate enough per window given the monotone counters).
        let total = self.stats.mem_accesses().max(1);
        self.stats.timeline.push(crate::stats::WindowSample {
            sm: self.id.0,
            window: info.index,
            ipc: info.ipc,
            hit_fraction: (self.stats.l1_hits + self.stats.reg_hits) as f64 / total as f64,
            active_ctas: self.active_ctas(),
            victim_regs: victim,
        });
        if cfg.detailed_load_stats {
            self.stats.close_detail_window();
        }
    }

    /// Applies the current CTA limit: deactivates the highest-id active CTAs
    /// or re-activates inactive ones.
    pub fn enforce_cta_limit(&mut self, cycle: Cycle) {
        let Some(limit) = self.cta_limit else {
            // No limit: re-activate everything that is inactive.
            self.activate_up_to(u32::MAX, cycle);
            return;
        };
        let limit = limit.max(1);
        while self.active_ctas() > limit {
            // Deactivate the active CTA with the largest hardware id (§4.1).
            let victim = self
                .ctas
                .iter()
                .flatten()
                .filter(|c| c.schedulable())
                .map(|c| c.id)
                .max_by_key(|c| c.0);
            let Some(victim) = victim else { break };
            self.deactivate_cta(victim, cycle);
        }
        if self.active_ctas() < limit {
            self.activate_up_to(limit, cycle);
        }
    }

    fn activate_up_to(&mut self, limit: u32, cycle: Cycle) {
        loop {
            if self.active_ctas() >= limit {
                break;
            }
            let candidate = self
                .ctas
                .iter()
                .flatten()
                .filter(|c| matches!(c.status, CtaStatus::Inactive))
                .map(|c| c.id)
                .min_by_key(|c| c.0);
            let Some(c) = candidate else { break };
            self.activate_cta(c, cycle);
        }
    }

    fn deactivate_cta(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let (first, count) = match self.regfile.cta_range(cta) {
            Some(r) => r,
            None => return,
        };
        {
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            self.policy.on_cta_deactivate(cta, &mut ctx);
        }
        // Snapshot architectural state for fidelity checking.
        let contents: Vec<u64> =
            (first.0..first.0 + count).map(|r| self.regfile.read_contents(RegNum(r))).collect();
        self.backup_store.insert(cta.0, contents);
        // Emit backup traffic: one line per warp register.
        for i in 0..count {
            let line = self.backup_line_addr(i);
            self.outbox.push(MemReq {
                sm: self.id,
                warp: 0,
                load: LoadId(0),
                line,
                kind: MemReqKind::RegBackup { cta },
            });
        }
        self.backup_cursor += count as u64;
        if let Some(c) = self.ctas[slot].as_mut() {
            c.status = CtaStatus::BackingUp { remaining: count };
        }
    }

    fn activate_cta(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let (_, count) = match self.regfile.cta_range(cta) {
            Some(r) => r,
            None => return,
        };
        {
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            // Victim partitions over this CTA's registers must be released
            // before the restore overwrites them.
            self.policy.on_cta_activate(cta, &mut ctx);
        }
        for i in 0..count {
            let line = self.backup_line_addr(i);
            self.outbox.push(MemReq {
                sm: self.id,
                warp: 0,
                load: LoadId(0),
                line,
                kind: MemReqKind::RegRestore { cta },
            });
        }
        self.backup_cursor += count as u64;
        if let Some(c) = self.ctas[slot].as_mut() {
            c.status = CtaStatus::Restoring { remaining: count };
        }
    }

    fn backup_line_addr(&self, i: u32) -> LineAddr {
        // Dedicated backup region: "load 0" slice of this SM's address space
        // is reserved (kernel loads are numbered from 1 in the pattern
        // region map via `load + 1`).
        LineAddr(((self.id.0 as u64) << 36) | (self.backup_cursor + i as u64))
    }

    fn backup_line_done(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let Some(c) = self.ctas[slot].as_mut() else { return };
        if let CtaStatus::BackingUp { remaining } = &mut c.status {
            *remaining -= 1;
            if *remaining == 0 {
                c.status = CtaStatus::Inactive;
                self.regfile.mark_backed_up(cta);
                let mut ctx = PolicyCtx {
                    cycle,
                    sm: self.id,
                    regfile: &mut self.regfile,
                    stats: &mut self.stats,
                };
                self.policy.on_backup_complete(cta, &mut ctx);
            }
        }
    }

    fn restore_line_done(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let Some(c) = self.ctas[slot].as_mut() else { return };
        if let CtaStatus::Restoring { remaining } = &mut c.status {
            *remaining -= 1;
            if *remaining == 0 {
                c.status = CtaStatus::Active;
                let _ = cycle;
                if let Some((first, count)) = self.regfile.mark_restored(cta) {
                    if let Some(saved) = self.backup_store.remove(&cta.0) {
                        debug_assert_eq!(saved.len(), count as usize);
                        for (i, v) in saved.into_iter().enumerate() {
                            self.regfile.write_contents(RegNum(first.0 + i as u32), v);
                        }
                    }
                }
            }
        }
    }

    /// Reaps completed CTAs; returns how many were freed (the GPU refills).
    pub fn reap_completed_ctas(&mut self, cycle: Cycle) -> u32 {
        let mut freed = 0;
        for slot in 0..self.ctas.len() {
            let complete = self.ctas[slot]
                .as_ref()
                .map(|c| c.is_complete() && matches!(c.status, CtaStatus::Active))
                .unwrap_or(false);
            if !complete {
                continue;
            }
            let cta = self.ctas[slot].take().expect("checked above");
            for wid in &cta.warps {
                self.warps[*wid as usize] = None;
            }
            self.regfile.free_cta(cta.id);
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            self.policy.on_cta_complete(cta.id, &mut ctx);
            freed += 1;
        }
        if freed > 0 {
            self.issue_wake = true;
            // A finished CTA frees an active slot: prefer re-activating a
            // throttled CTA over launching a new one (paper §3.2, P5).
            self.enforce_cta_limit(cycle);
        }
        freed
    }

    /// True when the SM can accept another CTA under the current limit.
    pub fn wants_new_cta(&self) -> bool {
        match self.cta_limit {
            Some(l) => self.active_ctas() + self.inactive_ctas() < l.max(1),
            None => true,
        }
    }

    /// Current active-CTA limit (None = unlimited).
    pub fn cta_limit(&self) -> Option<u32> {
        self.cta_limit
    }

    /// Sets the CTA limit directly (used by tests and static policies before
    /// the first window fires).
    pub fn set_cta_limit(&mut self, limit: Option<u32>, cycle: Cycle) {
        self.issue_wake = true;
        self.cta_limit = limit;
        self.enforce_cta_limit(cycle);
    }

    /// Snapshot of backed-up register contents for a CTA (tests).
    pub fn backup_snapshot(&self, cta: CtaId) -> Option<&[u64]> {
        self.backup_store.get(&cta.0).map(|v| v.as_slice())
    }

    /// Finalizes per-SM stats (MSHR stall counts etc.).
    pub fn finalize_stats(&mut self) {
        let (reads, writes, conflicts) = self.regfile.stats();
        self.stats.rf_reads = reads;
        self.stats.rf_writes = writes;
        self.stats.rf_bank_conflicts = conflicts;
        self.stats.monitor_periods = self.policy.monitor_periods();
    }
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field("resident_ctas", &self.resident_ctas())
            .field("active_ctas", &self.active_ctas())
            .field("policy", &self.policy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::pattern::AccessPattern;
    use crate::policy::NullPolicy;

    fn small_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(1)
    }

    fn kernel() -> KernelSpec {
        KernelBuilder::new("k")
            .grid(8, 2)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::reuse_working_set(16 * 1024, true), 2)
            .alu(4)
            .iterations(50)
            .build()
            .unwrap()
    }

    fn sm() -> Sm {
        Sm::new(SmId(0), &small_cfg(), Box::new(NullPolicy), 42)
    }

    #[test]
    fn launch_respects_register_limit() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("fat")
            .grid(8, 8)
            .regs_per_thread(128) // 8 warps x 128 regs = 1024 regs per CTA
            .alu(1)
            .iterations(1)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(sm.try_launch_cta(&k, &cfg));
        // Third CTA would need 3072 > 2048 registers.
        assert!(!sm.try_launch_cta(&k, &cfg));
        assert_eq!(sm.resident_ctas(), 2);
    }

    #[test]
    fn launch_respects_warp_limit() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("wide")
            .grid(8, 32)
            .regs_per_thread(8)
            .alu(1)
            .iterations(1)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(!sm.try_launch_cta(&k, &cfg), "64-warp limit reached");
    }

    #[test]
    fn ticking_executes_instructions() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        let pcs: Vec<Pc> = k.loads.iter().map(|l| l.pc).collect();
        assert!(sm.try_launch_cta(&k, &cfg));
        for c in 0..2000 {
            sm.tick(c, &k, &cfg);
            // Service memory requests instantly for this unit test.
            let reqs: Vec<_> = sm.outbox.drain(..).collect();
            for r in reqs {
                if matches!(r.kind, MemReqKind::Read | MemReqKind::BypassRead) {
                    sm.handle_response(r, c, &pcs);
                }
            }
        }
        assert!(sm.stats.instructions > 100, "issued {}", sm.stats.instructions);
        assert!(sm.stats.mem_accesses() > 0);
    }

    #[test]
    fn cta_completes_and_is_reaped() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("tiny")
            .grid(1, 1)
            .regs_per_thread(8)
            .alu(1)
            .iterations(3)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        for c in 0..100 {
            sm.tick(c, &k, &cfg);
            sm.reap_completed_ctas(c);
        }
        assert_eq!(sm.resident_ctas(), 0);
        assert!(sm.drained());
    }

    #[test]
    fn throttle_deactivates_highest_id_cta() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        let pcs: Vec<Pc> = k.loads.iter().map(|l| l.pc).collect();
        for _ in 0..4 {
            assert!(sm.try_launch_cta(&k, &cfg));
        }
        sm.set_cta_limit(Some(2), 0);
        // Backup traffic must be in the outbox.
        let backups =
            sm.outbox.iter().filter(|r| matches!(r.kind, MemReqKind::RegBackup { .. })).count()
                as u32;
        assert_eq!(backups, 2 * k.regs_per_cta());
        assert_eq!(sm.active_ctas(), 2);
        // CTAs 2 and 3 (highest ids) are the deactivated ones.
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        for r in &reqs {
            if let MemReqKind::RegBackup { cta } = r.kind {
                assert!(cta.0 >= 2);
            }
        }
        // Complete the backups.
        for r in reqs {
            sm.handle_response(r, 10, &pcs);
        }
        assert_eq!(sm.inactive_ctas(), 2);
        assert!(sm.regfile.is_backed_up(CtaId(2)));
        assert!(sm.regfile.is_backed_up(CtaId(3)));
    }

    #[test]
    fn restore_roundtrips_register_contents() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        let pcs: Vec<Pc> = k.loads.iter().map(|l| l.pc).collect();
        for _ in 0..4 {
            sm.try_launch_cta(&k, &cfg);
        }
        let (first, count) = sm.regfile.cta_range(CtaId(3)).unwrap();
        let before: Vec<u64> =
            (first.0..first.0 + count).map(|r| sm.regfile.read_contents(RegNum(r))).collect();

        sm.set_cta_limit(Some(3), 0);
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        for r in reqs {
            sm.handle_response(r, 5, &pcs);
        }
        assert!(sm.regfile.is_backed_up(CtaId(3)));
        // Clobber the register contents (as victim caching would).
        for r in first.0..first.0 + count {
            sm.regfile.write_contents(RegNum(r), 0xbad);
        }
        // Lift the limit: CTA 3 restores.
        sm.set_cta_limit(None, 100);
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        assert!(reqs.iter().all(|r| matches!(r.kind, MemReqKind::RegRestore { .. })));
        for r in reqs {
            sm.handle_response(r, 200, &pcs);
        }
        let after: Vec<u64> =
            (first.0..first.0 + count).map(|r| sm.regfile.read_contents(RegNum(r))).collect();
        assert_eq!(before, after, "restore must reproduce the backed-up state");
        assert_eq!(sm.active_ctas(), 4);
    }

    #[test]
    fn window_end_samples_rf_space() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        sm.try_launch_cta(&k, &cfg);
        sm.end_window(50_000, &cfg);
        assert_eq!(sm.stats.rf_samples.len(), 1);
        let s = sm.stats.rf_samples[0];
        assert_eq!(s.static_unused, 2048 - k.regs_per_cta());
    }

    #[test]
    fn drained_only_when_everything_empty() {
        let sm = sm();
        assert!(sm.drained());
    }
}
