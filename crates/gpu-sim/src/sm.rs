//! One streaming multiprocessor: issue pipeline, load/store unit, L1, and
//! CTA lifecycle (including throttling-driven register backup/restore).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use crate::cache::{L1Cache, L1Lookup, MshrOutcome};
use crate::config::GpuConfig;
use crate::cta::{CtaState, CtaStatus};
use crate::kernel::{InstKind, KernelSpec};
use crate::mem::{MemReq, MemReqKind};
use crate::pattern::{AccessCtx, DecodeCtx, LineDesc};
use crate::phase_timer;
use crate::policy::{MissService, PolicyCtx, PreAccess, SmPolicy, WindowInfo};
use crate::regfile::RegFile;
use crate::replay::{ReplayKernel, TraceOp, WarpStream};
use crate::scheduler::{CandList, GtoScheduler};
use crate::stats::{RfSpaceSample, SimStats};
use crate::types::{
    hashed_pc5, CtaId, Cycle, LineAddr, LoadId, MissClass, Pc, RegNum, SmId, WarpId,
};
use crate::warp::{WarpSlab, META_DEP, META_LOAD, META_READY, META_STORE};
use lb_trace::{Event as TraceEvent, L1Outcome as TraceL1Outcome, Tracer};

/// A line request waiting for an L1 port.
#[derive(Debug, Clone, Copy)]
struct LsuReq {
    warp: u32,
    /// Warp-slot residency generation at issue; completions deliver only
    /// while it still matches (the slot may recycle underneath a queued
    /// request whose warp retired without waiting on it).
    gen: u32,
    load: LoadId,
    pc: Pc,
    /// The load's hashed PC (precomputed once per static load at kernel
    /// init instead of re-folded per queued line).
    hpc: u8,
    line: LineAddr,
}

/// Maximum LSU queue depth before load issue back-pressures.
const LSU_QUEUE_CAP: usize = 64;

/// Store-buffer entries per SM: outstanding store lines beyond this stall
/// further store instructions (write-through stores must not outrun DRAM
/// bandwidth unboundedly).
const STORE_BUFFER_CAP: u32 = 64;

/// Timer-wheel horizon in cycles. A warp blocked purely on a `next_ready`
/// within this many cycles parks in `wake_ring` (it leaves the candidate
/// lists and the exact slot re-lists it); the rare longer latency stays a
/// candidate and is re-examined instead.
const WAKE_RING: u64 = 256;

/// Completion-ring span in cycles (power of two). Must exceed every local
/// completion delay (`l1_hit_latency`, plus the victim-probe penalty on a
/// register-file hit); longer delays spill to `comp_overflow`.
const COMP_RING: usize = 64;

/// Issue eligibility of one warp this cycle, as seen by the lazy GTO walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpClass {
    /// Can issue right now.
    Eligible,
    /// Ready, but its load/store needs LSU queue space (drains without a
    /// warp event — stays a candidate, and the SM re-walks next cycle).
    GatedLsu,
    /// Ready store, but no store credit (returns via a store ack, which
    /// fires a wake — stays a candidate).
    GatedStore,
    /// Blocked only on a latency expiring at the carried cycle, within the
    /// timer-wheel horizon: park it there.
    TimeNear(Cycle),
    /// Latency expiring beyond the wheel horizon: stays a candidate and
    /// bounds the sleep horizon with the carried cycle.
    TimeFar(Cycle),
    /// Event-blocked (retired, CTA not schedulable, dependency or load
    /// cap): leaves the candidate list until an event re-lists it.
    Blocked,
}

/// One streaming multiprocessor.
pub struct Sm {
    /// This SM's id.
    pub id: SmId,
    /// The L1 data cache.
    pub l1: L1Cache,
    /// The register file.
    pub regfile: RegFile,
    /// Per-SM statistics (merged by the GPU at run end).
    pub stats: SimStats,
    /// The architecture policy driving this SM.
    pub policy: Box<dyn SmPolicy>,
    /// All warp state, as struct-of-arrays columns indexed by warp slot.
    warps: WarpSlab,
    /// Per-scheduler candidate lists — GTO's age-sorted fallback order —
    /// holding every warp that may be issueable. The issue walk takes the
    /// greedily-held warp if it is eligible, else the first eligible
    /// candidate; candidates proven event-blocked on the way (retired, CTA
    /// not schedulable, waiting on a dependency or the outstanding-load
    /// cap) are removed, and warps blocked only on a known `next_ready`
    /// park in the timer wheel. Every unblocking event re-inserts: a load
    /// completion re-arms its warp, a restore finishing re-arms its CTA's
    /// warps, and CTA launch / reap / limit changes / window ends
    /// conservatively rebuild all lists. Warps held back by LSU
    /// back-pressure or store credits stay listed — those gates clear
    /// without any warp event firing.
    cands: Vec<CandList>,
    /// Timer wheel for warps blocked only on a known `next_ready`: slot
    /// `(t % WAKE_RING) * words..` holds the bitmask of warp slots to
    /// re-list at cycle `t`. The issue walk fires the current slot before
    /// picking, and the sleep horizon of an empty walk is the nearest
    /// non-empty slot — the walk therefore visits every cycle with a
    /// parked timer (`issue_sleep_until` never exceeds the earliest one),
    /// so slots cannot be skipped over.
    wake_ring: Vec<u64>,
    /// Bits currently set across `wake_ring` (lets quiet paths skip it).
    ring_timers: u32,
    ctas: Vec<Option<CtaState>>,
    schedulers: Vec<GtoScheduler>,
    lsu_queue: VecDeque<LsuReq>,
    /// Locally-completing accesses, bucketed by finish cycle: ring slot
    /// `t & (COMP_RING - 1)` holds the `(tagged warp, load)` pairs finishing
    /// at cycle `t`, where the tagged warp packs the slot's residency
    /// generation in bits 31..16 and the warp slot in bits 15..0 (the same
    /// layout the MSHR waiter tokens carry in their upper word). Local latencies are small constants (an L1 hit, or a hit
    /// plus the victim-probe penalty), so every push lands within
    /// `COMP_RING` cycles of `comp_head` and the heap this replaces paid
    /// its ordering cost for nothing; `comp_overflow` catches configs with
    /// outsized latencies. Slot vectors keep their capacity across reuse.
    comp_ring: Vec<Vec<(u32, u32)>>,
    /// Occupancy bitmask over `comp_ring` (bit `s` set iff slot `s` holds
    /// entries); makes the earliest-completion lookup a rotate + ctz.
    comp_mask: u64,
    /// Earliest cycle not yet drained; after `drain_completions(cycle)`
    /// this is `cycle + 1`, which pins every ring entry into the window
    /// `[comp_head, comp_head + COMP_RING)` (pushes only happen later in
    /// the same tick, with bounded delays). Entries sharing a slot
    /// therefore always share the same finish cycle.
    comp_head: Cycle,
    /// Completions whose delay exceeds the ring span (none with the
    /// default config; correctness backstop, drained by cycle like the
    /// ring).
    comp_overflow: BinaryHeap<Reverse<(Cycle, u32, u32)>>,
    /// Outgoing requests for the shared memory system (drained by the GPU).
    pub outbox: Vec<MemReq>,
    /// Emission batches a local-clock span produced before returning: each
    /// entry is one tick's outbox stamped with its emission cycle, in
    /// non-decreasing stamp order. The GPU queues them for
    /// interconnect entry at exactly those cycles, letting the span run on
    /// through a miss drain instead of bouncing back to the global loop at
    /// every emitting cycle.
    pub emissions: Vec<(Cycle, Vec<MemReq>)>,
    /// Recycled emission-batch allocations (refilled by the GPU's flush).
    pub outbox_pool: Vec<Vec<MemReq>>,
    /// Current active-CTA limit imposed by the policy.
    cta_limit: Option<u32>,
    /// Monotone CTA launch counter (GTO age base; also makes global warp
    /// numbers unique).
    launch_seq: u64,
    warp_seq: u64,
    /// Backed-up register contents per CTA slot (verifies restore fidelity).
    backup_store: HashMap<u32, Vec<u64>>,
    /// Next backup line offset in this SM's dedicated backup address region.
    backup_cursor: u64,
    window_start_insts: u64,
    window_index: u32,
    /// Scratch buffer for pattern generation.
    line_buf: Vec<LineAddr>,
    /// Scratch buffer for MSHR waiter draining (fill completion).
    waiter_buf: Vec<u64>,
    /// Issue-scan sleep horizon: while `cycle < issue_sleep_until` and no
    /// wake event arrived, the ready sets are provably empty and `issue`
    /// returns without scanning the warps.
    issue_sleep_until: Cycle,
    /// Set by any event that can change warp eligibility (completion
    /// drain, memory response, CTA launch/reap/limit change, window end).
    issue_wake: bool,
    /// Bit `s`: scheduler `s`'s greedily-held warp classified `Blocked`
    /// (dependency, outstanding-load cap, or non-`Active` CTA) on a past
    /// scan and no wake event has fired since, so it is still blocked and
    /// the scan skips re-classifying it. Cleared wholesale when a scan
    /// consumes `issue_wake` (the same events that end the issue sleep are
    /// the only ones that can unblock a warp), and per scheduler when a
    /// new pick replaces the held warp.
    cur_blocked: u64,
    /// A warp retired or a CTA returned to `Active` since the last reap:
    /// only then can `is_complete() && Active` newly hold for some CTA, so
    /// `reap_completed_ctas` skips its slot scan otherwise.
    reap_pending: bool,
    /// Outstanding store lines in flight toward DRAM.
    stores_in_flight: u32,
    seed: u64,
    /// Decoded access-descriptor table: `warp slot * desc_stride + load`
    /// holds the interned [`LineDesc`] of that (warp, load) pair, or `None`
    /// until its first execution. A CTA launch clears the rows of the slots
    /// it occupies (slot reuse changes the global warp number, so stale
    /// descriptors must never survive a relaunch).
    desc_table: Vec<Option<LineDesc>>,
    /// Loads per warp slot in `desc_table`; 0 while the cache is disabled
    /// (`--no-desc-cache`, a load-free kernel, or the sizing cap).
    desc_stride: usize,
    /// Precomputed operand rotation per body position:
    /// `(pos * 3) % regs_per_warp`. The issue stage reads it once per
    /// instruction instead of paying a hardware divide (the divisor is a
    /// runtime kernel parameter, so the compiler cannot strength-reduce
    /// it).
    rot3: Vec<u32>,
    /// `schedulers_per_sm - 1` when the count is a power of two (the
    /// common configuration), else 0 with [`Sm::sched_of`] falling back to
    /// a real modulo. Warp-to-scheduler mapping runs on every wake event.
    sched_mask: Option<u32>,
    /// Descriptor-cache hits (replays) this run.
    desc_hits: u64,
    /// Descriptor-cache misses (decode + intern) this run.
    desc_misses: u64,
    /// Per-load hashed PC, precomputed at kernel init.
    load_hpc: Vec<u8>,
    /// Stepped SM-cycles whose LSU phase had queued work (per-phase cycle
    /// attribution for the profiler).
    lsu_busy_cycles: u64,
    /// Stepped SM-cycles whose issue phase ran a real candidate scan.
    issue_scan_cycles: u64,
    /// Local-clock spans started (one per [`Sm::tick_span`] call with a
    /// multi-cycle horizon).
    bursts: u64,
    /// Cycles simulated inside those spans (mean span length is
    /// `burst_cycles / bursts`).
    burst_cycles: u64,
    /// Span-length histogram: buckets 1, 2–3, 4–7, 8–15, 16–63, 64+.
    burst_hist: [u64; 6],
    /// LSU queue entries serviced on local cycles after the first tick of a
    /// span — i.e. drained without a global `Gpu::step` rendezvous.
    lsu_batched: u64,
    /// Monotone count of LSU entries serviced (popped with their access
    /// resolved); `tick_span` differences it to attribute `lsu_batched`.
    lsu_serviced: u64,
    /// Scratch: the `(scheduler, warp)` picks of the current issue scan, in
    /// scheduler order — the candidate set for a greedy-run burst.
    burst_set: Vec<(u32, u32)>,
    /// Event-trace capture handle (shared with the GPU; off by default).
    tracer: Tracer,
    /// Trace-replay frontend: when set, warps execute their pre-recorded
    /// streams instead of the synthetic pattern generator (`body_pos`
    /// becomes a stream cursor; `gen_access_lines` is never called).
    replay: Option<Arc<ReplayKernel>>,
    /// Workload-trace capture: when set, every executed instruction appends
    /// a [`TraceOp`] (memory ops with their coalesced lines) to its warp's
    /// stream. Indexed by grid-wide stream id; each stream executes on
    /// exactly one SM, so the GPU merges per-SM vectors at run end.
    capture: Option<Vec<WarpStream>>,
    /// Grid-wide dispatch ordinal of the *next* CTA this SM launches
    /// (stream base = ordinal x warps_per_cta). Set by the GPU immediately
    /// before every `try_launch_cta`; a dead store outside trace mode.
    next_cta_ordinal: u64,
}

impl Sm {
    /// Creates an SM with the given policy.
    pub fn new(id: SmId, cfg: &GpuConfig, policy: Box<dyn SmPolicy>, seed: u64) -> Self {
        Sm {
            id,
            l1: L1Cache::new(&cfg.l1),
            regfile: RegFile::new(cfg.warp_regs_per_sm(), cfg.regfile_banks, cfg.max_ctas_per_sm),
            stats: SimStats::default(),
            policy,
            warps: WarpSlab::new(cfg.max_warps_per_sm as usize),
            cands: (0..cfg.schedulers_per_sm)
                .map(|_| CandList::with_capacity(cfg.max_warps_per_sm as usize))
                .collect(),
            wake_ring: vec![0; WAKE_RING as usize * cfg.max_warps_per_sm.div_ceil(64) as usize],
            ring_timers: 0,
            ctas: (0..cfg.max_ctas_per_sm).map(|_| None).collect(),
            schedulers: (0..cfg.schedulers_per_sm).map(|_| GtoScheduler::new()).collect(),
            lsu_queue: VecDeque::new(),
            comp_ring: vec![Vec::new(); COMP_RING],
            comp_mask: 0,
            comp_head: 0,
            comp_overflow: BinaryHeap::new(),
            outbox: Vec::new(),
            emissions: Vec::new(),
            outbox_pool: Vec::new(),
            cta_limit: None,
            launch_seq: 0,
            warp_seq: 0,
            backup_store: HashMap::new(),
            backup_cursor: 0,
            window_start_insts: 0,
            window_index: 0,
            line_buf: Vec::with_capacity(32),
            waiter_buf: Vec::with_capacity(32),
            issue_sleep_until: 0,
            issue_wake: true,
            cur_blocked: 0,
            reap_pending: false,
            stores_in_flight: 0,
            seed,
            desc_table: Vec::new(),
            desc_stride: 0,
            rot3: Vec::new(),
            sched_mask: cfg.schedulers_per_sm.is_power_of_two().then(|| cfg.schedulers_per_sm - 1),
            desc_hits: 0,
            desc_misses: 0,
            load_hpc: Vec::new(),
            lsu_busy_cycles: 0,
            issue_scan_cycles: 0,
            bursts: 0,
            burst_cycles: 0,
            burst_hist: [0; 6],
            lsu_batched: 0,
            lsu_serviced: 0,
            burst_set: Vec::with_capacity(cfg.schedulers_per_sm as usize),
            tracer: Tracer::off(),
            replay: None,
            capture: None,
            next_cta_ordinal: 0,
        }
    }

    /// Installs an event-trace capture handle (a clone of the GPU's).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Switches this SM to the trace-replay frontend: warps execute the
    /// streams of `rep` instead of generating accesses synthetically. Must
    /// be installed before the first CTA launch.
    pub fn set_replay(&mut self, rep: Arc<ReplayKernel>) {
        debug_assert_eq!(self.launch_seq, 0, "replay must be installed before any launch");
        self.replay = Some(rep);
    }

    /// Enables workload-trace capture with `n_streams` grid-wide streams.
    /// Must be installed before the first CTA launch.
    pub fn enable_capture(&mut self, n_streams: usize) {
        debug_assert_eq!(self.launch_seq, 0, "capture must be enabled before any launch");
        self.capture = Some(vec![WarpStream::default(); n_streams]);
    }

    /// Takes the captured streams (empty entries belong to CTAs launched on
    /// other SMs); `None` when capture was never enabled.
    pub fn take_capture(&mut self) -> Option<Vec<WarpStream>> {
        self.capture.take()
    }

    /// Sets the grid-wide dispatch ordinal of the next CTA launched here
    /// (called by the GPU before every `try_launch_cta`).
    #[inline]
    pub fn set_next_cta_ordinal(&mut self, ord: u64) {
        self.next_cta_ordinal = ord;
    }

    /// Scheduler owning warp slot `wi` (`wi % schedulers_per_sm`, with the
    /// divide strength-reduced for power-of-two scheduler counts).
    #[inline]
    fn sched_of(&self, wi: usize) -> usize {
        match self.sched_mask {
            Some(m) => wi & m as usize,
            None => wi % self.schedulers.len(),
        }
    }

    /// Re-lists one warp as a scheduling candidate (no-op for vacated
    /// slots or warps already listed). Called on events that can unblock
    /// exactly this warp, i.e. its own load completions and timer expiry.
    #[inline]
    fn wake_warp(&mut self, wi: usize) {
        if !self.warps.is_occupied(wi) {
            return;
        }
        let s = self.sched_of(wi);
        // This event may unblock this warp; if it is scheduler `s`'s held
        // warp, the blocked memo no longer certifies anything.
        self.cur_blocked &= !(1 << s);
        self.cands[s].insert(self.warps.age(wi), wi as u32);
    }

    /// Conservatively re-lists every resident warp. Called on CTA-level
    /// events (launch, reap, limit change, window end) whose eligibility
    /// effects span warps.
    fn wake_all_warps(&mut self) {
        self.cur_blocked = 0;
        for v in &mut self.cands {
            v.clear();
        }
        let n_scheds = self.schedulers.len();
        for slot in 0..self.warps.len() {
            if self.warps.is_occupied(slot) {
                self.cands[slot % n_scheds].push_unsorted(self.warps.age(slot), slot as u32);
            }
        }
        for v in &mut self.cands {
            v.sort();
        }
    }

    /// Number of resident CTAs (any status).
    pub fn resident_ctas(&self) -> u32 {
        self.ctas.iter().flatten().count() as u32
    }

    /// Number of active (schedulable) CTAs.
    pub fn active_ctas(&self) -> u32 {
        self.ctas.iter().flatten().filter(|c| c.schedulable()).count() as u32
    }

    /// Number of resident but deactivated CTAs (any non-active status).
    pub fn inactive_ctas(&self) -> u32 {
        self.resident_ctas() - self.active_ctas()
    }

    /// All warps retired and no CTAs resident. Called once per run-loop
    /// iteration, so the slot scan short-circuits on the first resident
    /// CTA instead of counting them all.
    pub fn drained(&self) -> bool {
        self.ctas.iter().all(|c| c.is_none())
            && self.lsu_queue.is_empty()
            && self.comp_mask == 0
            && self.comp_overflow.is_empty()
    }

    /// Tries to launch one CTA of `kernel`; returns false when occupancy
    /// limits (slots, warps, threads, registers, shared memory) forbid it.
    pub fn try_launch_cta(&mut self, kernel: &KernelSpec, cfg: &GpuConfig) -> bool {
        if self.launch_seq == 0 {
            // One SM runs one kernel: size the kernel-derived tables once,
            // before the first CTA can issue anything.
            self.warps.ensure_loads(kernel.loads.len());
            self.load_hpc = kernel.loads.iter().map(|l| hashed_pc5(l.pc)).collect();
            let span = kernel.regs_per_warp().max(1);
            self.rot3 = (0..kernel.body.len() as u32).map(|p| (p * 3) % span).collect();
            let entries = self.warps.len() * kernel.loads.len();
            // Replay never decodes patterns (lines come from the trace, and
            // the stream's interned line pool already plays the descriptor
            // role), so the table would only cost memory and stats noise.
            if self.replay.is_none()
                && cfg.desc_cache
                && entries > 0
                && entries <= cfg.desc_cache_max_entries as usize
            {
                self.desc_stride = kernel.loads.len();
                self.desc_table = vec![None; entries];
            }
        }
        let warps_per_cta = kernel.warps_per_cta;
        let resident: u32 = self.resident_ctas();
        if resident >= cfg.max_ctas_per_sm {
            return false;
        }
        let resident_warps: u32 = self.ctas.iter().flatten().map(|c| c.warps.len() as u32).sum();
        if resident_warps + warps_per_cta > cfg.max_warps_per_sm {
            return false;
        }
        if (resident_warps + warps_per_cta) * cfg.simd_width > cfg.max_threads_per_sm {
            return false;
        }
        let smem_used: u64 = resident as u64 * kernel.shared_mem_per_cta;
        if smem_used + kernel.shared_mem_per_cta > cfg.shared_mem_bytes_per_sm {
            return false;
        }
        // Find a free CTA slot and a contiguous block of warp slots.
        let slot = match self.ctas.iter().position(|c| c.is_none()) {
            Some(s) => s as u32,
            None => return false,
        };
        let warp_base = match self.find_warp_slots(warps_per_cta) {
            Some(b) => b,
            None => return false,
        };
        let first_reg = match self.regfile.allocate_cta(CtaId(slot), kernel.regs_per_cta()) {
            Some(r) => r,
            None => return false,
        };
        let seq = self.launch_seq;
        self.launch_seq += 1;
        // Trace frontend: the k-th dispatched CTA (grid-wide) executes
        // streams `k * warps_per_cta + lane`. The Arc clone keeps the borrow
        // checker off the slab while launching (CTA launches are rare).
        let rep = self.replay.clone();
        let stream_base = self.next_cta_ordinal * kernel.warps_per_cta as u64;
        let mut warp_ids = Vec::with_capacity(warps_per_cta as usize);
        for i in 0..warps_per_cta {
            let wid = warp_base + i;
            let gw = self.warp_seq;
            self.warp_seq += 1;
            // Operand base: the warp's first register, precomputed here so
            // the issue stage does one column read instead of re-deriving
            // it per instruction.
            let op_base =
                first_reg.0 + (wid % kernel.warps_per_cta.max(1)) * kernel.regs_per_warp();
            match &rep {
                Some(rep) => {
                    let sid = stream_base + i as u64;
                    let first =
                        WarpSlab::inst_meta_at(kernel, rep.streams[sid as usize].ops[0].pos);
                    self.warps.launch_trace(
                        wid as usize,
                        CtaId(slot),
                        gw,
                        seq * 1000 + i as u64,
                        op_base,
                        first,
                    );
                    self.warps.set_stream(wid as usize, sid as u32);
                }
                None => {
                    self.warps.launch(
                        wid as usize,
                        CtaId(slot),
                        gw,
                        seq * 1000 + i as u64,
                        op_base,
                        kernel,
                    );
                    if self.capture.is_some() {
                        self.warps.set_stream(wid as usize, (stream_base + i as u64) as u32);
                    }
                }
            }
            // Slot reuse changes the global warp number: stale descriptors
            // of the previous tenant must never replay.
            if self.desc_stride != 0 {
                let lo = wid as usize * self.desc_stride;
                self.desc_table[lo..lo + self.desc_stride].fill(None);
            }
            warp_ids.push(wid);
        }
        for wid in warp_base..warp_base + warps_per_cta {
            self.wake_warp(wid as usize);
        }
        self.ctas[slot as usize] = Some(CtaState {
            id: CtaId(slot),
            status: CtaStatus::Active,
            first_reg,
            reg_count: kernel.regs_per_cta(),
            warps: warp_ids,
            warps_done: 0,
            launch_seq: seq,
        });
        let mut ctx =
            PolicyCtx { cycle: 0, sm: self.id, regfile: &mut self.regfile, stats: &mut self.stats };
        self.policy.on_cta_launch(CtaId(slot), first_reg, &mut ctx);
        self.issue_wake = true;
        true
    }

    fn find_warp_slots(&self, count: u32) -> Option<u32> {
        let n = self.warps.len() as u32;
        let mut run = 0u32;
        for i in 0..n {
            if !self.warps.is_occupied(i as usize) {
                run += 1;
                if run == count {
                    return Some(i + 1 - count);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Advances this SM one cycle. Emits memory requests into `outbox`.
    pub fn tick(&mut self, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        self.tick_bounded(cycle, cycle + 1, kernel, cfg);
    }

    /// Advances this SM at `cycle`; with `limit > cycle + 1` the issue
    /// stage may extend into a greedy-run burst, issuing K back-to-back
    /// cycles of the held warps' independent ALU runs in this one call.
    /// Returns the last cycle actually simulated (`cycle` unless a burst
    /// ran). Every burst cycle is charged exactly as the per-cycle loop
    /// would charge it; `limit` must not exceed the caller's safe horizon.
    pub fn tick_bounded(
        &mut self,
        cycle: Cycle,
        limit: Cycle,
        kernel: &KernelSpec,
        cfg: &GpuConfig,
    ) -> Cycle {
        let probe = phase_timer::start();
        self.drain_completions(cycle);
        phase_timer::stop(probe, phase_timer::SM_DRAIN);
        let probe = phase_timer::start();
        self.process_lsu(cycle, cfg);
        phase_timer::stop(probe, phase_timer::SM_LSU);
        let probe = phase_timer::start();
        let end = self.issue(cycle, limit, kernel, cfg);
        phase_timer::stop(probe, phase_timer::SM_ISSUE);
        end
    }

    /// Runs a tight local-clock loop from `cycle` up to (but excluding)
    /// `horizon`: repeated exact single-cycle ticks at this SM's own due
    /// cycles, plus in-issue greedy bursts, without returning to the global
    /// step loop in between. An outbox emission does not end the span: the
    /// batch is parked in `emissions` under its emission cycle (the GPU
    /// feeds it to the interconnect at exactly that cycle), and the span
    /// runs on — bounded by the earliest cycle a response to it could come
    /// back, two interconnect flights after the emission. The span does
    /// stop at the first pending CTA reap (the GPU refills freed slots the
    /// same cycle). Returns `(last simulated cycle, locally stepped
    /// cycles)`.
    ///
    /// The caller guarantees that no external event (memory response,
    /// window boundary, CTA dispatch) can target this SM before `horizon`;
    /// under that guarantee every local tick observes exactly the state the
    /// per-cycle loop would have shown it, so stats, policy callbacks and
    /// completion schedules are bit-identical.
    ///
    /// # Thread ownership (parallel spans)
    ///
    /// When `GpuConfig::sim_threads >= 2`, the GPU executes the due SMs'
    /// spans concurrently, so this method may run on any pool thread. The
    /// contract that makes that sound: a span touches *only* state owned
    /// by this SM — its pipeline, warps, L1, MSHRs, register file, RNG,
    /// stats, its policy instance (fresh per SM by the [`PolicyFactory`]
    /// contract), and its own `outbox`/`emissions`/`outbox_pool` staging —
    /// never the partitions, the calendar, another SM, or the shared CTA
    /// counters. Everything shared is deferred to `Gpu::absorb_span`,
    /// which the GPU runs serially in SM-id order at the rendezvous
    /// barrier. A tracer would break this (one `Rc<RefCell>` writer shared
    /// by all SMs), which is why traced runs never build a pool. Adding an
    /// emit site or any other shared-state access inside the span path
    /// means revisiting that gate.
    ///
    /// [`PolicyFactory`]: crate::policy::PolicyFactory
    pub fn tick_span(
        &mut self,
        cycle: Cycle,
        horizon: Cycle,
        kernel: &KernelSpec,
        cfg: &GpuConfig,
    ) -> (Cycle, u64) {
        let mut c = cycle;
        let mut ticks = 0u64;
        let mut first = true;
        // Inclusive last cycle this span may simulate. Tightened at each
        // emission: a request entering the interconnect at `e` reaches its
        // partition no sooner than `e + icnt_latency` and its response
        // reaches this SM no sooner than `e + 2*icnt_latency` — and a
        // delivery at cycle `t` lands after the SM's own phase-1 view of
        // `t`, so the SM may still simulate `t` itself.
        let mut bound = horizon - 1;
        loop {
            let serviced_before = self.lsu_serviced;
            let end = self.tick_bounded(c, bound + 1, kernel, cfg);
            ticks += end - c + 1;
            if !first {
                // LSU entries drained on a local cycle: no global step was
                // paid for them.
                self.lsu_batched += self.lsu_serviced - serviced_before;
            }
            first = false;
            c = end;
            if !self.outbox.is_empty() {
                bound = bound.min(end + 2 * cfg.icnt_latency as Cycle);
                let batch =
                    std::mem::replace(&mut self.outbox, self.outbox_pool.pop().unwrap_or_default());
                self.emissions.push((end, batch));
            }
            if self.reap_pending {
                break;
            }
            match self.next_due(c) {
                Some(n) if n <= bound => c = n,
                _ => break,
            }
        }
        self.bursts += 1;
        self.burst_cycles += ticks;
        let bucket = match ticks {
            1 => 0,
            2..=3 => 1,
            4..=7 => 2,
            8..=15 => 3,
            16..=63 => 4,
            _ => 5,
        };
        self.burst_hist[bucket] += 1;
        (c, ticks)
    }

    fn drain_completions(&mut self, cycle: Cycle) {
        while self.comp_mask != 0 {
            let base = (self.comp_head & (COMP_RING as u64 - 1)) as u32;
            let d = self.comp_mask.rotate_right(base).trailing_zeros() as u64;
            let t = self.comp_head + d;
            if t > cycle {
                break;
            }
            let slot = (t & (COMP_RING as u64 - 1)) as usize;
            self.comp_mask &= !(1u64 << slot);
            let mut batch = std::mem::take(&mut self.comp_ring[slot]);
            for (warp_tag, load) in batch.drain(..) {
                self.complete(warp_tag, load);
            }
            self.comp_ring[slot] = batch;
            self.comp_head = t + 1;
        }
        self.comp_head = self.comp_head.max(cycle + 1);
        // Same-cycle completions commute (counter decrements plus deduped
        // sorted candidate inserts), so draining any overflow after the
        // ring preserves the retired heap's output exactly.
        while let Some(&Reverse((t, warp_tag, load))) = self.comp_overflow.peek() {
            if t > cycle {
                break;
            }
            self.comp_overflow.pop();
            self.complete(warp_tag, load);
        }
    }

    /// Delivers one completion to `warp_tag` (generation in the upper
    /// half, warp slot in the lower): credit the load and wake the warp —
    /// unless the slot was recycled since issue (generation mismatch), in
    /// which case the completion is stale and dropped rather than credited
    /// to the slot's new resident.
    #[inline]
    fn complete(&mut self, warp_tag: u32, load: u32) {
        self.issue_wake = true;
        let warp = (warp_tag & 0xffff) as usize;
        if self.warps.generation(warp) != warp_tag >> 16 {
            return;
        }
        if self.warps.is_occupied(warp) {
            self.warps.complete_one(warp, LoadId(load));
        }
        self.wake_warp(warp);
    }

    /// Parks a local completion for cycle `t` (ring slot when the delay
    /// fits, overflow heap otherwise). `process_lsu` runs after the drain,
    /// so `comp_head` is already `cycle + 1` here; clamping keeps a
    /// zero-latency config on the heap's schedule (delivery next tick).
    #[inline]
    fn push_completion(&mut self, t: Cycle, warp_tag: u32, load: u32) {
        phase_timer::bump(phase_timer::COMP_PUSHES);
        let t = t.max(self.comp_head);
        if t - self.comp_head < COMP_RING as u64 {
            let slot = (t & (COMP_RING as u64 - 1)) as usize;
            self.comp_ring[slot].push((warp_tag, load));
            self.comp_mask |= 1u64 << slot;
        } else {
            self.comp_overflow.push(Reverse((t, warp_tag, load)));
        }
    }

    fn process_lsu(&mut self, cycle: Cycle, cfg: &GpuConfig) {
        if self.lsu_queue.is_empty() {
            return;
        }
        self.lsu_busy_cycles += 1;
        for _ in 0..cfg.l1_ports {
            // Peek, don't pop: the blocked-head path (MSHR full) leaves the
            // deque untouched instead of popping and pushing the same entry
            // back every retry cycle.
            let Some(&req) = self.lsu_queue.front() else { break };
            let hpc = req.hpc;
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            if self.policy.pre_access(req.warp, req.pc, req.load, req.line, &mut ctx)
                == PreAccess::Bypass
            {
                self.stats.record_access(req.load, crate::types::AccessOutcome::Bypass, None);
                self.tracer.emit(
                    cycle,
                    TraceEvent::L1Access {
                        sm: self.id.0 as u64,
                        warp: req.warp as u64,
                        line: req.line.0,
                        outcome: TraceL1Outcome::Bypass,
                    },
                );
                self.outbox.push(MemReq {
                    sm: self.id,
                    warp: req.warp,
                    gen: req.gen,
                    load: req.load,
                    line: req.line,
                    kind: MemReqKind::BypassRead,
                });
                self.lsu_queue.pop_front();
                self.lsu_serviced += 1;
                continue;
            }
            match self.l1.access(req.line, hpc) {
                L1Lookup::Hit => {
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_hit(req.pc, req.load, req.line, &mut ctx);
                    self.stats.record_access(req.load, crate::types::AccessOutcome::L1Hit, None);
                    self.tracer.emit(
                        cycle,
                        TraceEvent::L1Access {
                            sm: self.id.0 as u64,
                            warp: req.warp as u64,
                            line: req.line.0,
                            outcome: TraceL1Outcome::Hit,
                        },
                    );
                    self.push_completion(
                        cycle + cfg.l1_hit_latency as u64,
                        req.gen << 16 | req.warp,
                        req.load.0,
                    );
                }
                L1Lookup::Miss(class) => {
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    match self.policy.on_miss(req.pc, req.load, req.line, &mut ctx) {
                        MissService::VictimHit { extra_latency } => {
                            self.stats.record_access(
                                req.load,
                                crate::types::AccessOutcome::RegHit,
                                None,
                            );
                            self.tracer.emit(
                                cycle,
                                TraceEvent::L1Access {
                                    sm: self.id.0 as u64,
                                    warp: req.warp as u64,
                                    line: req.line.0,
                                    outcome: TraceL1Outcome::RegHit,
                                },
                            );
                            self.push_completion(
                                cycle + (cfg.l1_hit_latency + extra_latency) as u64,
                                req.gen << 16 | req.warp,
                                req.load.0,
                            );
                        }
                        MissService::ToL2 => {
                            // Waiter-token layout: generation in bits
                            // 63..48, warp slot in 47..32, load in 31..0
                            // (slots and generations are both 16-bit).
                            debug_assert!(req.warp < 1 << 16);
                            let token = (req.gen as u64) << 48
                                | (req.warp as u64) << 32
                                | req.load.0 as u64;
                            let miss_outcome = match class {
                                MissClass::Cold => TraceL1Outcome::MissCold,
                                MissClass::CapacityConflict => TraceL1Outcome::MissCapacity,
                            };
                            match self.l1.mshrs().allocate(req.line, token) {
                                MshrOutcome::Merged => {
                                    self.stats.record_access(
                                        req.load,
                                        crate::types::AccessOutcome::Miss,
                                        Some(class),
                                    );
                                    self.tracer.emit(
                                        cycle,
                                        TraceEvent::L1Access {
                                            sm: self.id.0 as u64,
                                            warp: req.warp as u64,
                                            line: req.line.0,
                                            outcome: miss_outcome,
                                        },
                                    );
                                    self.tracer.emit(
                                        cycle,
                                        TraceEvent::MshrMerge {
                                            level: 0,
                                            sm: self.id.0 as u64,
                                            line: req.line.0,
                                        },
                                    );
                                }
                                MshrOutcome::NewEntry => {
                                    self.stats.record_access(
                                        req.load,
                                        crate::types::AccessOutcome::Miss,
                                        Some(class),
                                    );
                                    self.tracer.emit(
                                        cycle,
                                        TraceEvent::L1Access {
                                            sm: self.id.0 as u64,
                                            warp: req.warp as u64,
                                            line: req.line.0,
                                            outcome: miss_outcome,
                                        },
                                    );
                                    self.outbox.push(MemReq {
                                        sm: self.id,
                                        warp: req.warp,
                                        gen: req.gen,
                                        load: req.load,
                                        line: req.line,
                                        kind: MemReqKind::Read,
                                    });
                                }
                                MshrOutcome::Full => {
                                    // Structural stall: the head stays in
                                    // place and retries next cycle.
                                    self.stats.mshr_stalls += 1;
                                    return;
                                }
                            }
                        }
                    }
                }
            }
            self.lsu_queue.pop_front();
            self.lsu_serviced += 1;
        }
    }

    fn issue(&mut self, cycle: Cycle, limit: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) -> Cycle {
        // Event-driven fast path: if the last full scan proved every ready
        // set empty, nothing can become issueable before `issue_sleep_until`
        // unless a wake event fired (completion drain, memory response, CTA
        // launch/reap/limit change, window end). Warp latencies expire at
        // known cycles; everything else is event-driven, so skipping the
        // scan is exactly equivalent to running it.
        if !self.issue_wake && cycle < self.issue_sleep_until {
            return cycle;
        }
        self.issue_wake = false;
        self.issue_scan_cycles += 1;
        self.burst_set.clear();

        // Fire due warp timers: re-list warps whose `next_ready` is now.
        let nw = self.wake_ring.len() / WAKE_RING as usize;
        if self.ring_timers > 0 {
            let base = (cycle % WAKE_RING) as usize * nw;
            for wdx in 0..nw {
                let mut fired = self.wake_ring[base + wdx];
                if fired != 0 {
                    self.wake_ring[base + wdx] = 0;
                    self.ring_timers -= fired.count_ones();
                    while fired != 0 {
                        let b = fired.trailing_zeros() as usize;
                        fired &= fired - 1;
                        // A parked warp may have been reaped since;
                        // `wake_warp` ignores vacated slots.
                        self.wake_warp(wdx * 64 + b);
                    }
                }
            }
        }

        let lsu_full = self.lsu_queue.len() >= LSU_QUEUE_CAP;
        if lsu_full {
            phase_timer::bump(phase_timer::SCAN_LSU_FULL);
        }
        let mut gated_by_lsu = false;
        let mut timed_wake: Option<Cycle> = None;
        let mut issued_any = false;

        // Lazy GTO per scheduler: take the greedily-held warp if it is
        // still eligible, else walk the age-sorted candidate list and take
        // the first eligible entry — exactly `GtoScheduler::pick` over the
        // full ready set, without materializing it. The walk prunes
        // event-blocked candidates and parks latency-blocked ones in the
        // timer wheel as it passes them; entries it never reaches stay
        // listed for the next walk. Store credits are re-checked live per
        // scheduler (an earlier scheduler's issue can consume the last
        // credit), and `can_issue`/CTA eligibility of one warp cannot be
        // changed by another warp's same-cycle execution, so evaluating
        // lazily is equivalent to the former full pre-scan.
        for s in 0..self.schedulers.len() {
            let mut pick: Option<WarpId> = None;
            if let Some(cur) = self.schedulers[s].current() {
                // Timer fast-out: a warp whose `next_ready` lies ahead can
                // only classify as `Blocked`/`Time*` (never `Eligible` or
                // `GatedLsu`, both of which require an expired timer), and
                // the current-warp check ignores that distinction — so one
                // column read replaces the full classify. Exact. The
                // `cur_blocked` memo is the same trick for event-blocked
                // warps: `Blocked` can only end via a wake event, and every
                // wake event clears the memo, so a set bit certifies the
                // classify would return `Blocked` again.
                if self.cur_blocked & (1 << s) == 0
                    && self.warps.next_ready(cur.0 as usize) <= cycle
                {
                    match self.classify(cur.0 as usize, cycle, cfg, lsu_full) {
                        WarpClass::Eligible => {
                            phase_timer::bump(phase_timer::PICK_WAS_CURRENT);
                            pick = Some(cur)
                        }
                        WarpClass::GatedLsu => gated_by_lsu = true,
                        WarpClass::Blocked => self.cur_blocked |= 1 << s,
                        _ => {}
                    }
                }
            }
            if pick.is_none() {
                phase_timer::bump(phase_timer::CAND_WALKS);
                let mut k = 0;
                while k < self.cands[s].len() {
                    let (_, wid) = self.cands[s].get(k);
                    match self.classify(wid as usize, cycle, cfg, lsu_full) {
                        WarpClass::Eligible => {
                            pick = Some(WarpId(wid));
                            break;
                        }
                        WarpClass::GatedLsu => {
                            gated_by_lsu = true;
                            k += 1;
                        }
                        WarpClass::GatedStore => k += 1,
                        WarpClass::TimeNear(t) => {
                            let idx = (t % WAKE_RING) as usize * nw + wid as usize / 64;
                            let bit = 1u64 << (wid as usize % 64);
                            if self.wake_ring[idx] & bit == 0 {
                                self.wake_ring[idx] |= bit;
                                self.ring_timers += 1;
                            }
                            self.cands[s].remove(k);
                        }
                        WarpClass::TimeFar(t) => {
                            timed_wake = Some(timed_wake.map_or(t, |x| x.min(t)));
                            k += 1;
                        }
                        WarpClass::Blocked => {
                            self.cands[s].remove(k);
                        }
                    }
                }
            }
            if let Some(wid) = pick {
                self.cur_blocked &= !(1 << s);
                self.schedulers[s].note_pick(wid);
                self.burst_set.push((s as u32, wid.0));
                issued_any = true;
                let probe = phase_timer::start();
                self.execute_inst(wid, cycle, kernel, cfg);
                phase_timer::stop(probe, phase_timer::SM_EXECUTE);
            }
        }

        // Greedy-run burst: GTO holds each picked warp until it stalls, so
        // while every picked warp keeps a back-to-back independent ALU run
        // and no other warp can wake, the next scans are fully determined —
        // replay them here instead of bouncing through the global loop.
        // Preconditions: the caller granted local headroom, nothing escaped
        // the SM this cycle (no LSU entry, no outbox message, no finished
        // CTA), and no candidate is waiting on LSU back-pressure.
        let mut end = cycle;
        if limit > cycle + 1
            && !self.burst_set.is_empty()
            && !gated_by_lsu
            && self.lsu_queue.is_empty()
            && self.outbox.is_empty()
            && !self.reap_pending
        {
            end = self.greedy_burst(cycle, limit, kernel, cfg);
        }

        // Arm the sleep horizon only when this scan did nothing and no warp
        // was held back by LSU back-pressure (the LSU drains without firing
        // a wake event; but then the queue is non-empty, so those cycles
        // are busy anyway and re-scanning is cheap relative to the drain).
        self.issue_sleep_until = if issued_any || gated_by_lsu {
            end // re-scan next cycle
        } else {
            // The nearest parked timer bounds the horizon too. Any parked
            // wake lies within (cycle, cycle + WAKE_RING), so the forward
            // walk always finds it — and usually within a few slots.
            if self.ring_timers > 0 {
                for d in 1..WAKE_RING {
                    let t = cycle + d;
                    let base = (t % WAKE_RING) as usize * nw;
                    if self.wake_ring[base..base + nw].iter().any(|&w| w != 0) {
                        timed_wake = Some(timed_wake.map_or(t, |x| x.min(t)));
                        break;
                    }
                }
            }
            timed_wake.unwrap_or(Cycle::MAX)
        };
        end
    }

    /// Continues this cycle's issue into a greedy-run burst: re-issues the
    /// exact set of warps just picked (`burst_set`) on consecutive cycles
    /// for as long as the per-cycle scan would provably re-pick the same
    /// set and nothing else, charging each cycle's stats and occupancy
    /// identically. Returns the last cycle executed.
    ///
    /// Legality is all-or-nothing per cycle:
    /// - no timer-wheel slot fires that cycle (a woken warp could create a
    ///   pick on a scheduler outside the set; burst schedulers' held warps
    ///   outrank any wake under GTO, but we end conservatively and let the
    ///   real scan fire the timers),
    /// - no load completion comes due (its drain could wake a
    ///   dependency-blocked warp before the scan),
    /// - every burst warp is ready exactly that cycle with a plain ALU op
    ///   (`next_ready` chains back-to-back; live, not a load/store, no
    ///   unresolved dependency),
    /// - nothing escapes the SM (LSU queue and outbox stay empty, no CTA
    ///   finishes).
    fn greedy_burst(
        &mut self,
        cycle: Cycle,
        limit: Cycle,
        kernel: &KernelSpec,
        cfg: &GpuConfig,
    ) -> Cycle {
        // Upper bound: the caller's horizon, the timer wheel's unambiguous
        // range, and the first pending load completion.
        let mut bound = (limit - 1).min(cycle + WAKE_RING - 1);
        if self.comp_mask != 0 {
            let base = (self.comp_head & (COMP_RING as u64 - 1)) as u32;
            let d = self.comp_mask.rotate_right(base).trailing_zeros() as u64;
            bound = bound.min((self.comp_head + d).saturating_sub(1));
        }
        if let Some(&Reverse((t, ..))) = self.comp_overflow.peek() {
            bound = bound.min(t.saturating_sub(1));
        }
        // A non-burst scheduler's held warp that merely waits out a latency
        // re-enters via its parked timer (caught per cycle below); capping
        // on it directly as well is free, and divergence is not.
        for s in 0..self.schedulers.len() {
            if self.burst_set.iter().any(|&(bs, _)| bs as usize == s) {
                continue;
            }
            if let Some(cur) = self.schedulers[s].current() {
                let nr = self.warps.next_ready(cur.0 as usize);
                if nr > cycle {
                    bound = bound.min(nr - 1);
                }
            }
        }
        let nw = self.wake_ring.len() / WAKE_RING as usize;
        let set = std::mem::take(&mut self.burst_set);
        let mut end = cycle;
        'cycles: for c in cycle + 1..=bound {
            // The real scan fires due timers before picking; end the burst
            // at the first cycle with a parked wake instead of replaying
            // that path (the slot stays intact for the real scan).
            if self.ring_timers > 0 {
                let base = (c % WAKE_RING) as usize * nw;
                if self.wake_ring[base..base + nw].iter().any(|&w| w != 0) {
                    break;
                }
            }
            for &(_, w) in &set {
                let wi = w as usize;
                let meta = self.warps.meta(wi);
                if self.warps.next_ready(wi) != c
                    || meta & META_READY != META_READY
                    || meta & (META_LOAD | META_STORE) != 0
                    || (meta & META_DEP != 0 && self.warps.outstanding(wi, LoadId(meta >> 16)) > 0)
                {
                    break 'cycles;
                }
            }
            // This cycle is now exactly what the per-cycle loop would do:
            // scan, re-pick every held warp, execute in scheduler order.
            self.issue_scan_cycles += 1;
            for &(s, w) in &set {
                self.schedulers[s as usize].note_pick(WarpId(w));
                self.execute_inst(WarpId(w), c, kernel, cfg);
            }
            end = c;
            if self.reap_pending || !self.lsu_queue.is_empty() || !self.outbox.is_empty() {
                break;
            }
        }
        self.burst_set = set;
        end
    }

    /// Classifies one warp slot's issue eligibility this cycle (pure; the
    /// caller does the candidate-list / timer-wheel bookkeeping).
    ///
    /// Single pass over the slab's packed `meta` word plus (at most) the
    /// scoreboard and timer columns. The word carries liveness, CTA
    /// schedulability and the current instruction's shape — maintained at
    /// the state transitions, so the per-candidate cost is three dependent
    /// loads instead of re-deriving the same facts from five columns, the
    /// CTA table and the kernel body. A warp blocked on a dependency or
    /// the outstanding-load cap is `Blocked` regardless of its latency
    /// timer (a load completion wakes it); a warp blocked *only* on its
    /// timer is `Time*`-parked. This is exactly the split the former
    /// double `can_issue` probe (now, then again at `next_ready`)
    /// computed.
    #[inline]
    fn classify(&self, wi: usize, cycle: Cycle, cfg: &GpuConfig, lsu_full: bool) -> WarpClass {
        phase_timer::bump(phase_timer::CLASSIFY_CALLS);
        let meta = self.warps.meta(wi);
        // Dead slot, retired warp, or CTA not `Active`: all encode as a
        // missing READY bit (launch sets both, retire/free/deactivate
        // clear their half).
        if meta & META_READY != META_READY {
            return WarpClass::Blocked;
        }
        if meta & META_DEP != 0 && self.warps.outstanding(wi, LoadId(meta >> 16)) > 0 {
            return WarpClass::Blocked;
        }
        let is_load = meta & META_LOAD != 0;
        if is_load && self.warps.total_outstanding(wi) >= cfg.max_outstanding_per_warp {
            return WarpClass::Blocked;
        }
        let nr = self.warps.next_ready(wi);
        if nr > cycle {
            // Blocked purely on latency: ready again at `next_ready`.
            if nr - cycle < WAKE_RING {
                return WarpClass::TimeNear(nr);
            }
            return WarpClass::TimeFar(nr);
        }
        // Back-pressure: loads/stores need LSU space; stores need a credit.
        let is_store = meta & META_STORE != 0;
        if lsu_full && (is_store || is_load) {
            return WarpClass::GatedLsu;
        }
        if is_store && self.stores_in_flight >= STORE_BUFFER_CAP {
            return WarpClass::GatedStore;
        }
        WarpClass::Eligible
    }

    /// Earliest future cycle at which this SM can make progress without an
    /// external event — its slot in the GPU's component calendar. Must be
    /// called right after the SM's phase of the current cycle (tick, CTA
    /// reap, outbox drain), so the cached issue horizon and completion heap
    /// reflect this cycle. `None` means only external events (memory
    /// responses, window boundaries, CTA dispatch) can wake the SM, and the
    /// GPU re-arms the calendar slot whenever it delivers one.
    ///
    /// Unlike the per-cycle warp scan this replaces, the horizon is O(1):
    /// it reuses the `issue_sleep_until` bookkeeping the issue scan already
    /// maintains (a scan that finds no candidate records the earliest
    /// latency-expiry wake-up; warps blocked on dependencies, the
    /// outstanding-load cap, or store credits wake via response events,
    /// which set `issue_wake` and re-arm the slot). A completed-but-active
    /// CTA can exist only inside a tick (completion happens in the issue
    /// stage and the GPU reaps in the same phase), so no reap is ever
    /// pending while the SM sleeps.
    pub fn next_due(&self, cycle: Cycle) -> Option<Cycle> {
        // A non-empty LSU queue makes per-cycle progress (and per-cycle
        // MSHR-stall accounting); a non-empty outbox must drain; a pending
        // wake event requires a fresh issue scan. All three mean the next
        // cycle is a real step.
        if !self.lsu_queue.is_empty() || !self.outbox.is_empty() || self.issue_wake {
            return Some(cycle + 1);
        }
        let mut next: Option<Cycle> = None;
        if self.comp_mask != 0 {
            let base = (self.comp_head & (COMP_RING as u64 - 1)) as u32;
            let d = self.comp_mask.rotate_right(base).trailing_zeros() as u64;
            next = Some((self.comp_head + d).max(cycle + 1));
        }
        if let Some(&Reverse((t, ..))) = self.comp_overflow.peek() {
            let t = t.max(cycle + 1);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        if self.issue_sleep_until != Cycle::MAX {
            let t = self.issue_sleep_until.max(cycle + 1);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    fn execute_inst(&mut self, wid: WarpId, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        if self.replay.is_some() {
            return self.execute_trace_inst(wid, cycle, kernel, cfg);
        }
        let slot = wid.0 as usize;
        let body_pos = self.warps.body_pos(slot);
        let inst = &kernel.body[body_pos as usize];
        self.stats.instructions += 1;
        self.tracer.emit(
            cycle,
            TraceEvent::Issue { sm: self.id.0 as u64, warp: wid.0 as u64, pos: body_pos as u64 },
        );

        // Operand traffic: two reads and one write on the warp's registers,
        // rotated by the body position. The base register is a precomputed
        // slab column (set at CTA launch), not re-derived per instruction.
        let extra_delay = self.regfile.access_operands(
            self.warps.op_base(slot),
            kernel.regs_per_warp().max(1),
            self.rot3[body_pos as usize],
            cycle,
        );

        match inst.kind {
            InstKind::Alu { latency } => {
                self.capture_op(slot, body_pos, false);
                self.warps.set_next_ready(slot, cycle + latency.max(1) as u64 + extra_delay as u64);
            }
            InstKind::Load { load } => {
                let idx = self.warps.next_access_index(slot, load);
                self.gen_access_lines(slot, load, idx, kernel);
                self.capture_op(slot, body_pos, true);
                let n = self.line_buf.len() as u32;
                self.warps.add_outstanding(slot, load, n);
                self.warps.set_next_ready(slot, cycle + 1 + extra_delay as u64);
                let pc = kernel.load(load).pc;
                let hpc = self.load_hpc[load.0 as usize];
                let gen = self.warps.generation(slot);
                for &line in &self.line_buf {
                    if cfg.detailed_load_stats {
                        self.stats.record_line_touch(load, line.0);
                    }
                    self.lsu_queue.push_back(LsuReq { warp: wid.0, gen, load, pc, hpc, line });
                }
            }
            InstKind::Store { load } => {
                let idx = self.warps.next_access_index(slot, load);
                self.gen_access_lines(slot, load, idx, kernel);
                self.capture_op(slot, body_pos, true);
                self.warps.set_next_ready(slot, cycle + 1 + extra_delay as u64);
                // Write-evict (hit) / write-no-allocate (miss): invalidate L1
                // copy, notify the policy so victim copies are invalidated
                // too, and send the store through to memory.
                for i in 0..self.line_buf.len() {
                    let line = self.line_buf[i];
                    self.stats.stores += 1;
                    self.stores_in_flight += 1;
                    self.l1.invalidate(line);
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_store(line, &mut ctx);
                    self.outbox.push(MemReq {
                        sm: self.id,
                        warp: wid.0,
                        gen: 0,
                        load,
                        line,
                        kind: MemReqKind::Store,
                    });
                }
            }
        }

        // Advance the warp past this instruction and retire if finished.
        self.warps.advance(slot, kernel);
        if self.warps.done(slot) {
            let cta_id = self.warps.cta(slot);
            self.schedulers[(wid.0 % cfg.schedulers_per_sm) as usize].release(wid);
            let cta = self.ctas[cta_id.0 as usize].as_mut().expect("CTA exists");
            cta.warps_done += 1;
            self.reap_pending = true;
        }
    }

    /// Trace-mode twin of [`Sm::execute_inst`]: the warp's dynamic
    /// instruction comes from its stream cursor (`body_pos`), the static
    /// instruction from the stub body at the op's recorded position, and a
    /// memory op's coalesced lines from the stream's interned line pool —
    /// `gen_access_lines` (and the access-index counter feeding it) is never
    /// consulted. Everything downstream — operand traffic, scoreboard,
    /// LSU/L1 path, store write-through, retirement — is byte-for-byte the
    /// synthetic path, so the burst legality checks (which read only the
    /// packed meta word) and every policy hook keep working unchanged.
    fn execute_trace_inst(
        &mut self,
        wid: WarpId,
        cycle: Cycle,
        kernel: &KernelSpec,
        cfg: &GpuConfig,
    ) {
        let rep = self.replay.clone().expect("trace mode");
        let slot = wid.0 as usize;
        let stream = &rep.streams[self.warps.stream(slot) as usize];
        let cursor = self.warps.body_pos(slot) as usize;
        let op = stream.ops[cursor];
        let pos = op.pos;
        let inst = &kernel.body[pos as usize];
        self.stats.instructions += 1;
        self.tracer.emit(
            cycle,
            TraceEvent::Issue { sm: self.id.0 as u64, warp: wid.0 as u64, pos: pos as u64 },
        );

        let extra_delay = self.regfile.access_operands(
            self.warps.op_base(slot),
            kernel.regs_per_warp().max(1),
            self.rot3[pos as usize],
            cycle,
        );

        match inst.kind {
            InstKind::Alu { latency } => {
                self.capture_op(slot, pos, false);
                self.warps.set_next_ready(slot, cycle + latency.max(1) as u64 + extra_delay as u64);
            }
            InstKind::Load { load } => {
                self.line_buf.clear();
                self.line_buf.extend_from_slice(
                    &stream.lines[op.line_off as usize..(op.line_off + op.line_len) as usize],
                );
                self.capture_op(slot, pos, true);
                let n = self.line_buf.len() as u32;
                self.warps.add_outstanding(slot, load, n);
                self.warps.set_next_ready(slot, cycle + 1 + extra_delay as u64);
                let pc = kernel.load(load).pc;
                let hpc = self.load_hpc[load.0 as usize];
                let gen = self.warps.generation(slot);
                for &line in &self.line_buf {
                    if cfg.detailed_load_stats {
                        self.stats.record_line_touch(load, line.0);
                    }
                    self.lsu_queue.push_back(LsuReq { warp: wid.0, gen, load, pc, hpc, line });
                }
            }
            InstKind::Store { load } => {
                self.line_buf.clear();
                self.line_buf.extend_from_slice(
                    &stream.lines[op.line_off as usize..(op.line_off + op.line_len) as usize],
                );
                self.capture_op(slot, pos, true);
                self.warps.set_next_ready(slot, cycle + 1 + extra_delay as u64);
                for i in 0..self.line_buf.len() {
                    let line = self.line_buf[i];
                    self.stats.stores += 1;
                    self.stores_in_flight += 1;
                    self.l1.invalidate(line);
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_store(line, &mut ctx);
                    self.outbox.push(MemReq {
                        sm: self.id,
                        warp: wid.0,
                        gen: 0,
                        load,
                        line,
                        kind: MemReqKind::Store,
                    });
                }
            }
        }

        // Advance the stream cursor; the warp retires at stream end.
        let next_meta = stream.ops.get(cursor + 1).map(|o| WarpSlab::inst_meta_at(kernel, o.pos));
        self.warps.advance_trace(slot, next_meta);
        if self.warps.done(slot) {
            let cta_id = self.warps.cta(slot);
            self.schedulers[(wid.0 % cfg.schedulers_per_sm) as usize].release(wid);
            let cta = self.ctas[cta_id.0 as usize].as_mut().expect("CTA exists");
            cta.warps_done += 1;
            self.reap_pending = true;
        }
    }

    /// Appends the instruction just executed to its warp's capture stream
    /// (no-op unless capture is enabled). Memory ops record the current
    /// `line_buf` contents as a raw slice appended to the stream's line
    /// pool; the `LBW1` encoder interns duplicate slices at serialization
    /// time, so capture stays allocation-cheap on the hot path.
    #[inline]
    fn capture_op(&mut self, slot: usize, pos: u32, mem: bool) {
        let Sm { capture, line_buf, warps, .. } = self;
        let Some(cap) = capture.as_mut() else { return };
        let s = &mut cap[warps.stream(slot) as usize];
        if mem {
            let off = s.lines.len() as u32;
            s.lines.extend_from_slice(line_buf);
            s.ops.push(TraceOp { pos, line_off: off, line_len: line_buf.len() as u32 });
        } else {
            s.ops.push(TraceOp { pos, line_off: 0, line_len: 0 });
        }
    }

    /// Generates the coalesced line addresses of one dynamic access of
    /// `load` into `line_buf` — the single entry point shared by the Load
    /// and Store arms of [`Sm::execute_inst`], so the cached and uncached
    /// paths cannot drift.
    ///
    /// With the descriptor cache enabled, the first execution of a
    /// (warp slot, load) pair decodes the pattern's per-warp constants into
    /// a [`LineDesc`] and interns it; every later execution replays the
    /// descriptor with only the access index applied. Replay is exact (see
    /// `pattern::decoded_replay_matches_gen_lines`), and a debug assertion
    /// re-checks it against `gen_lines` on every miss.
    fn gen_access_lines(&mut self, slot: usize, load: LoadId, idx: u64, kernel: &KernelSpec) {
        self.line_buf.clear();
        if self.desc_stride != 0 {
            let cell = slot * self.desc_stride + load.0 as usize;
            let desc = match self.desc_table[cell] {
                Some(d) => {
                    self.desc_hits += 1;
                    d
                }
                None => {
                    self.desc_misses += 1;
                    let d = kernel.load(load).pattern.decode(DecodeCtx {
                        seed: self.seed,
                        sm: self.id,
                        global_warp: self.warps.global_warp(slot),
                        load,
                    });
                    self.desc_table[cell] = Some(d);
                    d
                }
            };
            desc.replay(idx, &mut self.line_buf);
            #[cfg(debug_assertions)]
            {
                let mut reference = Vec::new();
                kernel.load(load).pattern.gen_lines(
                    AccessCtx {
                        seed: self.seed,
                        sm: self.id,
                        global_warp: self.warps.global_warp(slot),
                        load,
                        access_index: idx,
                    },
                    &mut reference,
                );
                debug_assert_eq!(
                    self.line_buf, reference,
                    "descriptor replay diverged from gen_lines (slot {slot}, load {load:?})"
                );
            }
            return;
        }
        kernel.load(load).pattern.gen_lines(
            AccessCtx {
                seed: self.seed,
                sm: self.id,
                global_warp: self.warps.global_warp(slot),
                load,
                access_index: idx,
            },
            &mut self.line_buf,
        );
    }

    /// Handles a response from the shared memory system. The L1 fill is
    /// tagged with the fetching load's hashed PC (precomputed per static
    /// load at kernel init).
    pub fn handle_response(&mut self, req: MemReq, cycle: Cycle) {
        // Any response can change warp eligibility (load completion, store
        // credit return, backup/restore progress toggling CTA status).
        self.issue_wake = true;
        match req.kind {
            MemReqKind::Read => {
                // Fill L1; evicted victim goes to the policy. The waiter
                // list is drained into a reusable scratch buffer (taken out
                // of `self` for the duration so `wake_warp` below can
                // borrow freely).
                let mut waiters = std::mem::take(&mut self.waiter_buf);
                self.l1.mshrs().complete_into(req.line, &mut waiters);
                let fill_hpc = waiters
                    .first()
                    .map(|&t| self.load_hpc[(t & 0xffff_ffff) as usize])
                    .unwrap_or(0);
                let evicted = self.l1.fill(req.line, fill_hpc);
                if let Some(ev) = evicted {
                    let preserved = {
                        let mut ctx = PolicyCtx {
                            cycle,
                            sm: self.id,
                            regfile: &mut self.regfile,
                            stats: &mut self.stats,
                        };
                        self.policy.on_evict(ev.line, ev.payload.hpc, &mut ctx)
                    };
                    self.tracer.emit(
                        cycle,
                        TraceEvent::Evict {
                            sm: self.id.0 as u64,
                            line: ev.line.0,
                            hpc: ev.payload.hpc as u64,
                            preserved,
                        },
                    );
                }
                for &t in &waiters {
                    // The token's upper word is exactly the tagged warp.
                    self.complete((t >> 32) as u32, (t & 0xffff_ffff) as u32);
                }
                self.waiter_buf = waiters;
            }
            MemReqKind::BypassRead => {
                self.complete(req.gen << 16 | req.warp, req.load.0);
            }
            MemReqKind::Store => {
                self.stores_in_flight = self.stores_in_flight.saturating_sub(1);
            }
            MemReqKind::RegBackup { cta } => self.backup_line_done(cta, cycle),
            MemReqKind::RegRestore { cta } => self.restore_line_done(cta, cycle),
        }
    }

    /// Ends the current monitoring window: computes IPC, consults the
    /// policy, enforces any CTA limit, and samples RF occupancy.
    pub fn end_window(&mut self, cycle: Cycle, cfg: &GpuConfig) {
        self.issue_wake = true;
        self.wake_all_warps();
        let insts = self.stats.instructions - self.window_start_insts;
        self.window_start_insts = self.stats.instructions;
        let info = WindowInfo {
            index: self.window_index,
            cycles: cfg.window_cycles,
            instructions: insts,
            ipc: insts as f64 / cfg.window_cycles as f64,
            active_ctas: self.active_ctas(),
            inactive_ctas: self.inactive_ctas(),
        };
        self.window_index += 1;
        self.tracer
            .emit(cycle, TraceEvent::Window { sm: self.id.0 as u64, window: info.index as u64 });
        let mut ctx =
            PolicyCtx { cycle, sm: self.id, regfile: &mut self.regfile, stats: &mut self.stats };
        let limit = self.policy.on_window(&info, &mut ctx);
        self.cta_limit = limit;
        self.enforce_cta_limit(cycle);
        // Sample RF occupancy for Figures 4 and 9.
        let space = self.regfile.space();
        let victim = self.policy.victim_space_regs();
        self.stats.rf_samples.push(RfSpaceSample {
            static_unused: space.static_unused,
            dynamic_unused: space.dynamic_unused,
            victim_in_use: victim,
        });
        // Timeline point (window-level hit fraction is cumulative-delta
        // based; fall back to the cumulative fraction for simplicity —
        // accurate enough per window given the monotone counters).
        let total = self.stats.mem_accesses().max(1);
        self.stats.timeline.push(crate::stats::WindowSample {
            sm: self.id.0,
            window: info.index,
            ipc: info.ipc,
            hit_fraction: (self.stats.l1_hits + self.stats.reg_hits) as f64 / total as f64,
            active_ctas: self.active_ctas(),
            victim_regs: victim,
        });
        if cfg.detailed_load_stats {
            self.stats.close_detail_window();
        }
    }

    /// Applies the current CTA limit: deactivates the highest-id active CTAs
    /// or re-activates inactive ones.
    pub fn enforce_cta_limit(&mut self, cycle: Cycle) {
        let Some(limit) = self.cta_limit else {
            // No limit: re-activate everything that is inactive.
            self.activate_up_to(u32::MAX, cycle);
            return;
        };
        let limit = limit.max(1);
        while self.active_ctas() > limit {
            // Deactivate the active CTA with the largest hardware id (§4.1).
            let victim = self
                .ctas
                .iter()
                .flatten()
                .filter(|c| c.schedulable())
                .map(|c| c.id)
                .max_by_key(|c| c.0);
            let Some(victim) = victim else { break };
            self.deactivate_cta(victim, cycle);
        }
        if self.active_ctas() < limit {
            self.activate_up_to(limit, cycle);
        }
    }

    fn activate_up_to(&mut self, limit: u32, cycle: Cycle) {
        loop {
            if self.active_ctas() >= limit {
                break;
            }
            let candidate = self
                .ctas
                .iter()
                .flatten()
                .filter(|c| matches!(c.status, CtaStatus::Inactive))
                .map(|c| c.id)
                .min_by_key(|c| c.0);
            let Some(c) = candidate else { break };
            self.activate_cta(c, cycle);
        }
    }

    fn deactivate_cta(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let (first, count) = match self.regfile.cta_range(cta) {
            Some(r) => r,
            None => return,
        };
        {
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            self.policy.on_cta_deactivate(cta, &mut ctx);
        }
        self.tracer.emit(cycle, TraceEvent::Backup { sm: self.id.0 as u64, cta: cta.0 as u64 });
        // Snapshot architectural state for fidelity checking.
        let contents: Vec<u64> =
            (first.0..first.0 + count).map(|r| self.regfile.read_contents(RegNum(r))).collect();
        self.backup_store.insert(cta.0, contents);
        // Emit backup traffic: one line per warp register.
        for i in 0..count {
            let line = self.backup_line_addr(i);
            self.outbox.push(MemReq {
                sm: self.id,
                warp: 0,
                gen: 0,
                load: LoadId(0),
                line,
                kind: MemReqKind::RegBackup { cta },
            });
        }
        self.backup_cursor += count as u64;
        if let Some(c) = self.ctas[slot].as_mut() {
            c.status = CtaStatus::BackingUp { remaining: count };
            // The CTA's warps occupy one contiguous ascending block.
            let lo = *c.warps.first().expect("CTA has warps");
            let hi = *c.warps.last().expect("CTA has warps");
            for wi in lo..=hi {
                self.warps.set_cta_ok(wi as usize, false);
            }
        }
    }

    fn activate_cta(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let (_, count) = match self.regfile.cta_range(cta) {
            Some(r) => r,
            None => return,
        };
        {
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            // Victim partitions over this CTA's registers must be released
            // before the restore overwrites them.
            self.policy.on_cta_activate(cta, &mut ctx);
        }
        self.tracer.emit(cycle, TraceEvent::Restore { sm: self.id.0 as u64, cta: cta.0 as u64 });
        for i in 0..count {
            let line = self.backup_line_addr(i);
            self.outbox.push(MemReq {
                sm: self.id,
                warp: 0,
                gen: 0,
                load: LoadId(0),
                line,
                kind: MemReqKind::RegRestore { cta },
            });
        }
        self.backup_cursor += count as u64;
        if let Some(c) = self.ctas[slot].as_mut() {
            c.status = CtaStatus::Restoring { remaining: count };
        }
    }

    fn backup_line_addr(&self, i: u32) -> LineAddr {
        // Dedicated backup region: "load 0" slice of this SM's address space
        // is reserved (kernel loads are numbered from 1 in the pattern
        // region map via `load + 1`).
        LineAddr(((self.id.0 as u64) << 36) | (self.backup_cursor + i as u64))
    }

    fn backup_line_done(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let Some(c) = self.ctas[slot].as_mut() else { return };
        if let CtaStatus::BackingUp { remaining } = &mut c.status {
            *remaining -= 1;
            if *remaining == 0 {
                c.status = CtaStatus::Inactive;
                self.regfile.mark_backed_up(cta);
                let mut ctx = PolicyCtx {
                    cycle,
                    sm: self.id,
                    regfile: &mut self.regfile,
                    stats: &mut self.stats,
                };
                self.policy.on_backup_complete(cta, &mut ctx);
            }
        }
    }

    fn restore_line_done(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let Some(c) = self.ctas[slot].as_mut() else { return };
        if let CtaStatus::Restoring { remaining } = &mut c.status {
            *remaining -= 1;
            if *remaining == 0 {
                c.status = CtaStatus::Active;
                self.reap_pending = true;
                // The CTA's warps occupy one contiguous ascending block.
                let lo = *c.warps.first().expect("CTA has warps");
                let hi = *c.warps.last().expect("CTA has warps");
                let _ = cycle;
                if let Some((first, count)) = self.regfile.mark_restored(cta) {
                    if let Some(saved) = self.backup_store.remove(&cta.0) {
                        debug_assert_eq!(saved.len(), count as usize);
                        for (i, v) in saved.into_iter().enumerate() {
                            self.regfile.write_contents(RegNum(first.0 + i as u32), v);
                        }
                    }
                }
                // The CTA is schedulable again: re-list its warps.
                for wi in lo..=hi {
                    self.warps.set_cta_ok(wi as usize, true);
                    self.wake_warp(wi as usize);
                }
            }
        }
    }

    /// Reaps completed CTAs; returns how many were freed (the GPU refills).
    pub fn reap_completed_ctas(&mut self, cycle: Cycle) -> u32 {
        if !self.reap_pending {
            return 0;
        }
        self.reap_pending = false;
        let mut freed = 0;
        for slot in 0..self.ctas.len() {
            let complete = self.ctas[slot]
                .as_ref()
                .map(|c| c.is_complete() && matches!(c.status, CtaStatus::Active))
                .unwrap_or(false);
            if !complete {
                continue;
            }
            let cta = self.ctas[slot].take().expect("checked above");
            for wid in &cta.warps {
                self.warps.free(*wid as usize);
            }
            self.regfile.free_cta(cta.id);
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            self.policy.on_cta_complete(cta.id, &mut ctx);
            freed += 1;
        }
        if freed > 0 {
            self.issue_wake = true;
            self.wake_all_warps();
            // A finished CTA frees an active slot: prefer re-activating a
            // throttled CTA over launching a new one (paper §3.2, P5).
            self.enforce_cta_limit(cycle);
        }
        freed
    }

    /// True when the SM can accept another CTA under the current limit.
    pub fn wants_new_cta(&self) -> bool {
        match self.cta_limit {
            Some(l) => self.active_ctas() + self.inactive_ctas() < l.max(1),
            None => true,
        }
    }

    /// Current active-CTA limit (None = unlimited).
    pub fn cta_limit(&self) -> Option<u32> {
        self.cta_limit
    }

    /// Sets the CTA limit directly (used by tests and static policies before
    /// the first window fires).
    pub fn set_cta_limit(&mut self, limit: Option<u32>, cycle: Cycle) {
        self.issue_wake = true;
        self.wake_all_warps();
        self.cta_limit = limit;
        self.enforce_cta_limit(cycle);
    }

    /// Snapshot of backed-up register contents for a CTA (tests).
    pub fn backup_snapshot(&self, cta: CtaId) -> Option<&[u64]> {
        self.backup_store.get(&cta.0).map(|v| v.as_slice())
    }

    /// Finalizes per-SM stats (MSHR stall counts etc.).
    pub fn finalize_stats(&mut self) {
        let (reads, writes, conflicts) = self.regfile.stats();
        self.stats.rf_reads = reads;
        self.stats.rf_writes = writes;
        self.stats.rf_bank_conflicts = conflicts;
        self.stats.monitor_periods = self.policy.monitor_periods();
        self.stats.events.desc_hits = self.desc_hits;
        self.stats.events.desc_misses = self.desc_misses;
        self.stats.events.desc_entries =
            self.desc_table.iter().filter(|d| d.is_some()).count() as u64;
        self.stats.events.desc_bytes =
            (self.desc_table.len() * std::mem::size_of::<Option<LineDesc>>()) as u64;
        self.stats.events.sm_lsu_busy_cycles = self.lsu_busy_cycles;
        self.stats.events.sm_issue_scan_cycles = self.issue_scan_cycles;
        self.stats.events.sm_bursts = self.bursts;
        self.stats.events.sm_burst_cycles = self.burst_cycles;
        self.stats.events.sm_burst_len_1 = self.burst_hist[0];
        self.stats.events.sm_burst_len_2_3 = self.burst_hist[1];
        self.stats.events.sm_burst_len_4_7 = self.burst_hist[2];
        self.stats.events.sm_burst_len_8_15 = self.burst_hist[3];
        self.stats.events.sm_burst_len_16_63 = self.burst_hist[4];
        self.stats.events.sm_burst_len_64p = self.burst_hist[5];
        self.stats.events.sm_lsu_batched = self.lsu_batched;
    }
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field("resident_ctas", &self.resident_ctas())
            .field("active_ctas", &self.active_ctas())
            .field("policy", &self.policy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::pattern::AccessPattern;
    use crate::policy::NullPolicy;

    fn small_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(1)
    }

    fn kernel() -> KernelSpec {
        KernelBuilder::new("k")
            .grid(8, 2)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::reuse_working_set(16 * 1024, true), 2)
            .alu(4)
            .iterations(50)
            .build()
            .unwrap()
    }

    fn sm() -> Sm {
        Sm::new(SmId(0), &small_cfg(), Box::new(NullPolicy), 42)
    }

    #[test]
    fn launch_respects_register_limit() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("fat")
            .grid(8, 8)
            .regs_per_thread(128) // 8 warps x 128 regs = 1024 regs per CTA
            .alu(1)
            .iterations(1)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(sm.try_launch_cta(&k, &cfg));
        // Third CTA would need 3072 > 2048 registers.
        assert!(!sm.try_launch_cta(&k, &cfg));
        assert_eq!(sm.resident_ctas(), 2);
    }

    #[test]
    fn launch_respects_warp_limit() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("wide")
            .grid(8, 32)
            .regs_per_thread(8)
            .alu(1)
            .iterations(1)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(!sm.try_launch_cta(&k, &cfg), "64-warp limit reached");
    }

    #[test]
    fn ticking_executes_instructions() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        for c in 0..2000 {
            sm.tick(c, &k, &cfg);
            // Service memory requests instantly for this unit test.
            let reqs: Vec<_> = sm.outbox.drain(..).collect();
            for r in reqs {
                if matches!(r.kind, MemReqKind::Read | MemReqKind::BypassRead) {
                    sm.handle_response(r, c);
                }
            }
        }
        assert!(sm.stats.instructions > 100, "issued {}", sm.stats.instructions);
        assert!(sm.stats.mem_accesses() > 0);
    }

    /// The descriptor cache must be a pure speed knob: identical counters
    /// with it on (default) and off, hits recorded only when enabled.
    #[test]
    fn desc_cache_is_output_invariant() {
        let run = |cfg: GpuConfig| {
            let k = kernel();
            let mut sm = Sm::new(SmId(0), &cfg, Box::new(NullPolicy), 42);
            assert!(sm.try_launch_cta(&k, &cfg));
            for c in 0..3000 {
                sm.tick(c, &k, &cfg);
                let reqs: Vec<_> = sm.outbox.drain(..).collect();
                for r in reqs {
                    if matches!(r.kind, MemReqKind::Read | MemReqKind::BypassRead) {
                        sm.handle_response(r, c);
                    }
                }
            }
            sm.finalize_stats();
            sm.stats
        };
        let on = run(small_cfg());
        let off = run(small_cfg().with_desc_cache(false));
        assert_eq!(on.instructions, off.instructions);
        assert_eq!(on.l1_hits, off.l1_hits);
        assert_eq!(on.miss_cold, off.miss_cold);
        assert_eq!(on.miss_2c, off.miss_2c);
        assert_eq!(on.rf_reads, off.rf_reads);
        assert!(on.events.desc_hits > 0, "cached run must replay descriptors");
        assert!(on.events.desc_misses > 0, "first executions decode");
        assert_eq!(off.events.desc_hits, 0);
        assert_eq!(off.events.desc_misses, 0);
        assert_eq!(off.events.desc_entries, 0);
        assert_eq!(off.events.desc_bytes, 0);
    }

    #[test]
    fn cta_completes_and_is_reaped() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("tiny")
            .grid(1, 1)
            .regs_per_thread(8)
            .alu(1)
            .iterations(3)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        for c in 0..100 {
            sm.tick(c, &k, &cfg);
            sm.reap_completed_ctas(c);
        }
        assert_eq!(sm.resident_ctas(), 0);
        assert!(sm.drained());
    }

    #[test]
    fn throttle_deactivates_highest_id_cta() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        for _ in 0..4 {
            assert!(sm.try_launch_cta(&k, &cfg));
        }
        sm.set_cta_limit(Some(2), 0);
        // Backup traffic must be in the outbox.
        let backups =
            sm.outbox.iter().filter(|r| matches!(r.kind, MemReqKind::RegBackup { .. })).count()
                as u32;
        assert_eq!(backups, 2 * k.regs_per_cta());
        assert_eq!(sm.active_ctas(), 2);
        // CTAs 2 and 3 (highest ids) are the deactivated ones.
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        for r in &reqs {
            if let MemReqKind::RegBackup { cta } = r.kind {
                assert!(cta.0 >= 2);
            }
        }
        // Complete the backups.
        for r in reqs {
            sm.handle_response(r, 10);
        }
        assert_eq!(sm.inactive_ctas(), 2);
        assert!(sm.regfile.is_backed_up(CtaId(2)));
        assert!(sm.regfile.is_backed_up(CtaId(3)));
    }

    #[test]
    fn restore_roundtrips_register_contents() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        for _ in 0..4 {
            sm.try_launch_cta(&k, &cfg);
        }
        let (first, count) = sm.regfile.cta_range(CtaId(3)).unwrap();
        let before: Vec<u64> =
            (first.0..first.0 + count).map(|r| sm.regfile.read_contents(RegNum(r))).collect();

        sm.set_cta_limit(Some(3), 0);
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        for r in reqs {
            sm.handle_response(r, 5);
        }
        assert!(sm.regfile.is_backed_up(CtaId(3)));
        // Clobber the register contents (as victim caching would).
        for r in first.0..first.0 + count {
            sm.regfile.write_contents(RegNum(r), 0xbad);
        }
        // Lift the limit: CTA 3 restores.
        sm.set_cta_limit(None, 100);
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        assert!(reqs.iter().all(|r| matches!(r.kind, MemReqKind::RegRestore { .. })));
        for r in reqs {
            sm.handle_response(r, 200);
        }
        let after: Vec<u64> =
            (first.0..first.0 + count).map(|r| sm.regfile.read_contents(RegNum(r))).collect();
        assert_eq!(before, after, "restore must reproduce the backed-up state");
        assert_eq!(sm.active_ctas(), 4);
    }

    #[test]
    fn window_end_samples_rf_space() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        sm.try_launch_cta(&k, &cfg);
        sm.end_window(50_000, &cfg);
        assert_eq!(sm.stats.rf_samples.len(), 1);
        let s = sm.stats.rf_samples[0];
        assert_eq!(s.static_unused, 2048 - k.regs_per_cta());
    }

    #[test]
    fn drained_only_when_everything_empty() {
        let sm = sm();
        assert!(sm.drained());
    }
}
