//! One streaming multiprocessor: issue pipeline, load/store unit, L1, and
//! CTA lifecycle (including throttling-driven register backup/restore).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::cache::{L1Cache, L1Lookup, MshrOutcome};
use crate::config::GpuConfig;
use crate::cta::{CtaState, CtaStatus};
use crate::kernel::{InstKind, KernelSpec};
use crate::mem::{MemReq, MemReqKind};
use crate::pattern::AccessCtx;
use crate::policy::{MissService, PolicyCtx, PreAccess, SmPolicy, WindowInfo};
use crate::regfile::RegFile;
use crate::scheduler::GtoScheduler;
use crate::stats::{RfSpaceSample, SimStats};
use crate::types::{
    hashed_pc5, CtaId, Cycle, LineAddr, LoadId, MissClass, Pc, RegNum, SmId, WarpId,
};
use crate::warp::WarpState;
use lb_trace::{Event as TraceEvent, L1Outcome as TraceL1Outcome, Tracer};

/// A line request waiting for an L1 port.
#[derive(Debug, Clone, Copy)]
struct LsuReq {
    warp: u32,
    load: LoadId,
    pc: Pc,
    line: LineAddr,
}

/// Maximum LSU queue depth before load issue back-pressures.
const LSU_QUEUE_CAP: usize = 64;

/// Store-buffer entries per SM: outstanding store lines beyond this stall
/// further store instructions (write-through stores must not outrun DRAM
/// bandwidth unboundedly).
const STORE_BUFFER_CAP: u32 = 64;

/// Timer-wheel horizon in cycles. A warp blocked purely on a `next_ready`
/// within this many cycles parks in `wake_ring` (it leaves the candidate
/// lists and the exact slot re-lists it); the rare longer latency stays a
/// candidate and is re-examined instead.
const WAKE_RING: u64 = 256;

/// Issue eligibility of one warp this cycle, as seen by the lazy GTO walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpClass {
    /// Can issue right now.
    Eligible,
    /// Ready, but its load/store needs LSU queue space (drains without a
    /// warp event — stays a candidate, and the SM re-walks next cycle).
    GatedLsu,
    /// Ready store, but no store credit (returns via a store ack, which
    /// fires a wake — stays a candidate).
    GatedStore,
    /// Blocked only on a latency expiring at the carried cycle, within the
    /// timer-wheel horizon: park it there.
    TimeNear(Cycle),
    /// Latency expiring beyond the wheel horizon: stays a candidate and
    /// bounds the sleep horizon with the carried cycle.
    TimeFar(Cycle),
    /// Event-blocked (retired, CTA not schedulable, dependency or load
    /// cap): leaves the candidate list until an event re-lists it.
    Blocked,
}

/// One streaming multiprocessor.
pub struct Sm {
    /// This SM's id.
    pub id: SmId,
    /// The L1 data cache.
    pub l1: L1Cache,
    /// The register file.
    pub regfile: RegFile,
    /// Per-SM statistics (merged by the GPU at run end).
    pub stats: SimStats,
    /// The architecture policy driving this SM.
    pub policy: Box<dyn SmPolicy>,
    warps: Vec<Option<WarpState>>,
    /// Per-scheduler candidate lists of `(age, warp slot)` sorted
    /// ascending — GTO's fallback order — holding every warp that may be
    /// issueable. The issue walk takes the greedily-held warp if it is
    /// eligible, else the first eligible candidate; candidates proven
    /// event-blocked on the way (retired, CTA not schedulable, waiting on
    /// a dependency or the outstanding-load cap) are removed, and warps
    /// blocked only on a known `next_ready` park in the timer wheel.
    /// Every unblocking event re-inserts: a load completion re-arms its
    /// warp, a restore finishing re-arms its CTA's warps, and CTA launch /
    /// reap / limit changes / window ends conservatively rebuild all
    /// lists. Warps held back by LSU back-pressure or store credits stay
    /// listed — those gates clear without any warp event firing.
    cands: Vec<Vec<(u64, u32)>>,
    /// Timer wheel for warps blocked only on a known `next_ready`: slot
    /// `(t % WAKE_RING) * words..` holds the bitmask of warp slots to
    /// re-list at cycle `t`. The issue walk fires the current slot before
    /// picking, and the sleep horizon of an empty walk is the nearest
    /// non-empty slot — the walk therefore visits every cycle with a
    /// parked timer (`issue_sleep_until` never exceeds the earliest one),
    /// so slots cannot be skipped over.
    wake_ring: Vec<u64>,
    /// Bits currently set across `wake_ring` (lets quiet paths skip it).
    ring_timers: u32,
    ctas: Vec<Option<CtaState>>,
    schedulers: Vec<GtoScheduler>,
    lsu_queue: VecDeque<LsuReq>,
    /// Locally-completing accesses: (finish cycle, warp, load).
    completions: BinaryHeap<Reverse<(Cycle, u32, u32)>>,
    /// Outgoing requests for the shared memory system (drained by the GPU).
    pub outbox: Vec<MemReq>,
    /// Current active-CTA limit imposed by the policy.
    cta_limit: Option<u32>,
    /// Monotone CTA launch counter (GTO age base; also makes global warp
    /// numbers unique).
    launch_seq: u64,
    warp_seq: u64,
    /// Backed-up register contents per CTA slot (verifies restore fidelity).
    backup_store: HashMap<u32, Vec<u64>>,
    /// Next backup line offset in this SM's dedicated backup address region.
    backup_cursor: u64,
    window_start_insts: u64,
    window_index: u32,
    /// Scratch buffer for pattern generation.
    line_buf: Vec<LineAddr>,
    /// Issue-scan sleep horizon: while `cycle < issue_sleep_until` and no
    /// wake event arrived, the ready sets are provably empty and `issue`
    /// returns without scanning the warps.
    issue_sleep_until: Cycle,
    /// Set by any event that can change warp eligibility (completion
    /// drain, memory response, CTA launch/reap/limit change, window end).
    issue_wake: bool,
    /// Outstanding store lines in flight toward DRAM.
    stores_in_flight: u32,
    seed: u64,
    /// Event-trace capture handle (shared with the GPU; off by default).
    tracer: Tracer,
}

impl Sm {
    /// Creates an SM with the given policy.
    pub fn new(id: SmId, cfg: &GpuConfig, policy: Box<dyn SmPolicy>, seed: u64) -> Self {
        Sm {
            id,
            l1: L1Cache::new(&cfg.l1),
            regfile: RegFile::new(cfg.warp_regs_per_sm(), cfg.regfile_banks, cfg.max_ctas_per_sm),
            stats: SimStats::default(),
            policy,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            cands: (0..cfg.schedulers_per_sm)
                .map(|_| Vec::with_capacity(cfg.max_warps_per_sm as usize))
                .collect(),
            wake_ring: vec![0; WAKE_RING as usize * cfg.max_warps_per_sm.div_ceil(64) as usize],
            ring_timers: 0,
            ctas: (0..cfg.max_ctas_per_sm).map(|_| None).collect(),
            schedulers: (0..cfg.schedulers_per_sm).map(|_| GtoScheduler::new()).collect(),
            lsu_queue: VecDeque::new(),
            completions: BinaryHeap::new(),
            outbox: Vec::new(),
            cta_limit: None,
            launch_seq: 0,
            warp_seq: 0,
            backup_store: HashMap::new(),
            backup_cursor: 0,
            window_start_insts: 0,
            window_index: 0,
            line_buf: Vec::with_capacity(32),
            issue_sleep_until: 0,
            issue_wake: true,
            stores_in_flight: 0,
            seed,
            tracer: Tracer::off(),
        }
    }

    /// Installs an event-trace capture handle (a clone of the GPU's).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Re-lists one warp as a scheduling candidate (no-op for vacated
    /// slots or warps already listed). Called on events that can unblock
    /// exactly this warp, i.e. its own load completions and timer expiry.
    #[inline]
    fn wake_warp(&mut self, wi: usize) {
        let Some(w) = self.warps[wi].as_ref() else { return };
        let key = (w.age, w.id.0);
        let v = &mut self.cands[(w.id.0 as usize) % self.schedulers.len()];
        if let Err(pos) = v.binary_search(&key) {
            v.insert(pos, key);
        }
    }

    /// Conservatively re-lists every resident warp. Called on CTA-level
    /// events (launch, reap, limit change, window end) whose eligibility
    /// effects span warps.
    fn wake_all_warps(&mut self) {
        for v in &mut self.cands {
            v.clear();
        }
        let n_scheds = self.schedulers.len();
        for slot in &self.warps {
            if let Some(w) = slot.as_ref() {
                self.cands[(w.id.0 as usize) % n_scheds].push((w.age, w.id.0));
            }
        }
        for v in &mut self.cands {
            v.sort_unstable();
        }
    }

    /// Number of resident CTAs (any status).
    pub fn resident_ctas(&self) -> u32 {
        self.ctas.iter().flatten().count() as u32
    }

    /// Number of active (schedulable) CTAs.
    pub fn active_ctas(&self) -> u32 {
        self.ctas.iter().flatten().filter(|c| c.schedulable()).count() as u32
    }

    /// Number of resident but deactivated CTAs (any non-active status).
    pub fn inactive_ctas(&self) -> u32 {
        self.resident_ctas() - self.active_ctas()
    }

    /// All warps retired and no CTAs resident. Called once per run-loop
    /// iteration, so the slot scan short-circuits on the first resident
    /// CTA instead of counting them all.
    pub fn drained(&self) -> bool {
        self.ctas.iter().all(|c| c.is_none())
            && self.lsu_queue.is_empty()
            && self.completions.is_empty()
    }

    /// Tries to launch one CTA of `kernel`; returns false when occupancy
    /// limits (slots, warps, threads, registers, shared memory) forbid it.
    pub fn try_launch_cta(&mut self, kernel: &KernelSpec, cfg: &GpuConfig) -> bool {
        let warps_per_cta = kernel.warps_per_cta;
        let resident: u32 = self.resident_ctas();
        if resident >= cfg.max_ctas_per_sm {
            return false;
        }
        let resident_warps: u32 = self.ctas.iter().flatten().map(|c| c.warps.len() as u32).sum();
        if resident_warps + warps_per_cta > cfg.max_warps_per_sm {
            return false;
        }
        if (resident_warps + warps_per_cta) * cfg.simd_width > cfg.max_threads_per_sm {
            return false;
        }
        let smem_used: u64 = resident as u64 * kernel.shared_mem_per_cta;
        if smem_used + kernel.shared_mem_per_cta > cfg.shared_mem_bytes_per_sm {
            return false;
        }
        // Find a free CTA slot and a contiguous block of warp slots.
        let slot = match self.ctas.iter().position(|c| c.is_none()) {
            Some(s) => s as u32,
            None => return false,
        };
        let warp_base = match self.find_warp_slots(warps_per_cta) {
            Some(b) => b,
            None => return false,
        };
        let first_reg = match self.regfile.allocate_cta(CtaId(slot), kernel.regs_per_cta()) {
            Some(r) => r,
            None => return false,
        };
        let seq = self.launch_seq;
        self.launch_seq += 1;
        let mut warp_ids = Vec::with_capacity(warps_per_cta as usize);
        for i in 0..warps_per_cta {
            let wid = warp_base + i;
            let gw = self.warp_seq;
            self.warp_seq += 1;
            self.warps[wid as usize] = Some(WarpState::new(
                WarpId(wid),
                CtaId(slot),
                gw,
                kernel.loads.len(),
                seq * 1000 + i as u64,
            ));
            warp_ids.push(wid);
        }
        for wid in warp_base..warp_base + warps_per_cta {
            self.wake_warp(wid as usize);
        }
        self.ctas[slot as usize] = Some(CtaState {
            id: CtaId(slot),
            status: CtaStatus::Active,
            first_reg,
            reg_count: kernel.regs_per_cta(),
            warps: warp_ids,
            warps_done: 0,
            launch_seq: seq,
        });
        let mut ctx =
            PolicyCtx { cycle: 0, sm: self.id, regfile: &mut self.regfile, stats: &mut self.stats };
        self.policy.on_cta_launch(CtaId(slot), first_reg, &mut ctx);
        self.issue_wake = true;
        true
    }

    fn find_warp_slots(&self, count: u32) -> Option<u32> {
        let n = self.warps.len() as u32;
        let mut run = 0u32;
        for i in 0..n {
            if self.warps[i as usize].is_none() {
                run += 1;
                if run == count {
                    return Some(i + 1 - count);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Advances this SM one cycle. Emits memory requests into `outbox`.
    pub fn tick(&mut self, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        self.drain_completions(cycle);
        self.process_lsu(cycle, cfg);
        self.issue(cycle, kernel, cfg);
    }

    fn drain_completions(&mut self, cycle: Cycle) {
        while let Some(Reverse((t, warp, load))) = self.completions.peek().copied() {
            if t > cycle {
                break;
            }
            self.completions.pop();
            self.issue_wake = true;
            if let Some(w) = self.warps[warp as usize].as_mut() {
                w.complete_one(LoadId(load));
            }
            self.wake_warp(warp as usize);
        }
    }

    fn process_lsu(&mut self, cycle: Cycle, cfg: &GpuConfig) {
        for _ in 0..cfg.l1_ports {
            let Some(req) = self.lsu_queue.pop_front() else { break };
            let hpc = hashed_pc5(req.pc);
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            if self.policy.pre_access(req.warp, req.pc, req.load, req.line, &mut ctx)
                == PreAccess::Bypass
            {
                self.stats.record_access(req.load, crate::types::AccessOutcome::Bypass, None);
                self.tracer.emit(
                    cycle,
                    TraceEvent::L1Access {
                        sm: self.id.0 as u64,
                        warp: req.warp as u64,
                        line: req.line.0,
                        outcome: TraceL1Outcome::Bypass,
                    },
                );
                self.outbox.push(MemReq {
                    sm: self.id,
                    warp: req.warp,
                    load: req.load,
                    line: req.line,
                    kind: MemReqKind::BypassRead,
                });
                continue;
            }
            match self.l1.access(req.line, hpc) {
                L1Lookup::Hit => {
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_hit(req.pc, req.load, req.line, &mut ctx);
                    self.stats.record_access(req.load, crate::types::AccessOutcome::L1Hit, None);
                    self.tracer.emit(
                        cycle,
                        TraceEvent::L1Access {
                            sm: self.id.0 as u64,
                            warp: req.warp as u64,
                            line: req.line.0,
                            outcome: TraceL1Outcome::Hit,
                        },
                    );
                    self.completions.push(Reverse((
                        cycle + cfg.l1_hit_latency as u64,
                        req.warp,
                        req.load.0,
                    )));
                }
                L1Lookup::Miss(class) => {
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    match self.policy.on_miss(req.pc, req.load, req.line, &mut ctx) {
                        MissService::VictimHit { extra_latency } => {
                            self.stats.record_access(
                                req.load,
                                crate::types::AccessOutcome::RegHit,
                                None,
                            );
                            self.tracer.emit(
                                cycle,
                                TraceEvent::L1Access {
                                    sm: self.id.0 as u64,
                                    warp: req.warp as u64,
                                    line: req.line.0,
                                    outcome: TraceL1Outcome::RegHit,
                                },
                            );
                            self.completions.push(Reverse((
                                cycle + (cfg.l1_hit_latency + extra_latency) as u64,
                                req.warp,
                                req.load.0,
                            )));
                        }
                        MissService::ToL2 => {
                            let token = (req.warp as u64) << 32 | req.load.0 as u64;
                            let miss_outcome = match class {
                                MissClass::Cold => TraceL1Outcome::MissCold,
                                MissClass::CapacityConflict => TraceL1Outcome::MissCapacity,
                            };
                            match self.l1.mshrs().allocate(req.line, token) {
                                MshrOutcome::Merged => {
                                    self.stats.record_access(
                                        req.load,
                                        crate::types::AccessOutcome::Miss,
                                        Some(class),
                                    );
                                    self.tracer.emit(
                                        cycle,
                                        TraceEvent::L1Access {
                                            sm: self.id.0 as u64,
                                            warp: req.warp as u64,
                                            line: req.line.0,
                                            outcome: miss_outcome,
                                        },
                                    );
                                    self.tracer.emit(
                                        cycle,
                                        TraceEvent::MshrMerge {
                                            level: 0,
                                            sm: self.id.0 as u64,
                                            line: req.line.0,
                                        },
                                    );
                                }
                                MshrOutcome::NewEntry => {
                                    self.stats.record_access(
                                        req.load,
                                        crate::types::AccessOutcome::Miss,
                                        Some(class),
                                    );
                                    self.tracer.emit(
                                        cycle,
                                        TraceEvent::L1Access {
                                            sm: self.id.0 as u64,
                                            warp: req.warp as u64,
                                            line: req.line.0,
                                            outcome: miss_outcome,
                                        },
                                    );
                                    self.outbox.push(MemReq {
                                        sm: self.id,
                                        warp: req.warp,
                                        load: req.load,
                                        line: req.line,
                                        kind: MemReqKind::Read,
                                    });
                                }
                                MshrOutcome::Full => {
                                    // Structural stall: retry next cycle.
                                    self.stats.mshr_stalls += 1;
                                    self.lsu_queue.push_front(req);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn issue(&mut self, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        // Event-driven fast path: if the last full scan proved every ready
        // set empty, nothing can become issueable before `issue_sleep_until`
        // unless a wake event fired (completion drain, memory response, CTA
        // launch/reap/limit change, window end). Warp latencies expire at
        // known cycles; everything else is event-driven, so skipping the
        // scan is exactly equivalent to running it.
        if !self.issue_wake && cycle < self.issue_sleep_until {
            return;
        }
        self.issue_wake = false;

        // Fire due warp timers: re-list warps whose `next_ready` is now.
        let nw = self.wake_ring.len() / WAKE_RING as usize;
        if self.ring_timers > 0 {
            let base = (cycle % WAKE_RING) as usize * nw;
            for wdx in 0..nw {
                let mut fired = self.wake_ring[base + wdx];
                if fired != 0 {
                    self.wake_ring[base + wdx] = 0;
                    self.ring_timers -= fired.count_ones();
                    while fired != 0 {
                        let b = fired.trailing_zeros() as usize;
                        fired &= fired - 1;
                        // A parked warp may have been reaped since;
                        // `wake_warp` ignores vacated slots.
                        self.wake_warp(wdx * 64 + b);
                    }
                }
            }
        }

        let lsu_full = self.lsu_queue.len() >= LSU_QUEUE_CAP;
        let mut gated_by_lsu = false;
        let mut timed_wake: Option<Cycle> = None;
        let mut issued_any = false;

        // Lazy GTO per scheduler: take the greedily-held warp if it is
        // still eligible, else walk the age-sorted candidate list and take
        // the first eligible entry — exactly `GtoScheduler::pick` over the
        // full ready set, without materializing it. The walk prunes
        // event-blocked candidates and parks latency-blocked ones in the
        // timer wheel as it passes them; entries it never reaches stay
        // listed for the next walk. Store credits are re-checked live per
        // scheduler (an earlier scheduler's issue can consume the last
        // credit), and `can_issue`/CTA eligibility of one warp cannot be
        // changed by another warp's same-cycle execution, so evaluating
        // lazily is equivalent to the former full pre-scan.
        for s in 0..self.schedulers.len() {
            let mut pick: Option<WarpId> = None;
            if let Some(cur) = self.schedulers[s].current() {
                match self.classify(cur.0 as usize, cycle, kernel, cfg, lsu_full) {
                    WarpClass::Eligible => pick = Some(cur),
                    WarpClass::GatedLsu => gated_by_lsu = true,
                    _ => {}
                }
            }
            if pick.is_none() {
                let mut k = 0;
                while k < self.cands[s].len() {
                    let (_, wid) = self.cands[s][k];
                    match self.classify(wid as usize, cycle, kernel, cfg, lsu_full) {
                        WarpClass::Eligible => {
                            pick = Some(WarpId(wid));
                            break;
                        }
                        WarpClass::GatedLsu => {
                            gated_by_lsu = true;
                            k += 1;
                        }
                        WarpClass::GatedStore => k += 1,
                        WarpClass::TimeNear(t) => {
                            let idx = (t % WAKE_RING) as usize * nw + wid as usize / 64;
                            let bit = 1u64 << (wid as usize % 64);
                            if self.wake_ring[idx] & bit == 0 {
                                self.wake_ring[idx] |= bit;
                                self.ring_timers += 1;
                            }
                            self.cands[s].remove(k);
                        }
                        WarpClass::TimeFar(t) => {
                            timed_wake = Some(timed_wake.map_or(t, |x| x.min(t)));
                            k += 1;
                        }
                        WarpClass::Blocked => {
                            self.cands[s].remove(k);
                        }
                    }
                }
            }
            if let Some(wid) = pick {
                self.schedulers[s].note_pick(wid);
                issued_any = true;
                self.execute_inst(wid, cycle, kernel, cfg);
            }
        }

        // Arm the sleep horizon only when this scan did nothing and no warp
        // was held back by LSU back-pressure (the LSU drains without firing
        // a wake event; but then the queue is non-empty, so those cycles
        // are busy anyway and re-scanning is cheap relative to the drain).
        self.issue_sleep_until = if issued_any || gated_by_lsu {
            cycle // re-scan next cycle
        } else {
            // The nearest parked timer bounds the horizon too. Any parked
            // wake lies within (cycle, cycle + WAKE_RING), so the forward
            // walk always finds it — and usually within a few slots.
            if self.ring_timers > 0 {
                for d in 1..WAKE_RING {
                    let t = cycle + d;
                    let base = (t % WAKE_RING) as usize * nw;
                    if self.wake_ring[base..base + nw].iter().any(|&w| w != 0) {
                        timed_wake = Some(timed_wake.map_or(t, |x| x.min(t)));
                        break;
                    }
                }
            }
            timed_wake.unwrap_or(Cycle::MAX)
        };
    }

    /// Classifies one warp slot's issue eligibility this cycle (pure; the
    /// caller does the candidate-list / timer-wheel bookkeeping).
    #[inline]
    fn classify(
        &self,
        wi: usize,
        cycle: Cycle,
        kernel: &KernelSpec,
        cfg: &GpuConfig,
        lsu_full: bool,
    ) -> WarpClass {
        let Some(w) = self.warps[wi].as_ref() else { return WarpClass::Blocked };
        if w.done {
            return WarpClass::Blocked;
        }
        let cta_ok = self.ctas[w.cta.0 as usize].as_ref().map(|c| c.schedulable()).unwrap_or(false);
        if !cta_ok {
            return WarpClass::Blocked;
        }
        if !w.can_issue(kernel, cycle, cfg.max_outstanding_per_warp) {
            // A warp blocked purely on its latency becomes ready at
            // `next_ready`; warps blocked on dependencies or the load cap
            // wake via completion events instead.
            if w.next_ready > cycle
                && w.can_issue(kernel, w.next_ready, cfg.max_outstanding_per_warp)
            {
                if w.next_ready - cycle < WAKE_RING {
                    return WarpClass::TimeNear(w.next_ready);
                }
                return WarpClass::TimeFar(w.next_ready);
            }
            return WarpClass::Blocked;
        }
        // Back-pressure: loads/stores need LSU space; stores need a credit.
        let inst = &kernel.body[w.body_pos as usize];
        let is_store = matches!(inst.kind, InstKind::Store { .. });
        if lsu_full && (is_store || matches!(inst.kind, InstKind::Load { .. })) {
            return WarpClass::GatedLsu;
        }
        if is_store && self.stores_in_flight >= STORE_BUFFER_CAP {
            return WarpClass::GatedStore;
        }
        WarpClass::Eligible
    }

    /// Earliest future cycle at which this SM can make progress without an
    /// external event — its slot in the GPU's component calendar. Must be
    /// called right after the SM's phase of the current cycle (tick, CTA
    /// reap, outbox drain), so the cached issue horizon and completion heap
    /// reflect this cycle. `None` means only external events (memory
    /// responses, window boundaries, CTA dispatch) can wake the SM, and the
    /// GPU re-arms the calendar slot whenever it delivers one.
    ///
    /// Unlike the per-cycle warp scan this replaces, the horizon is O(1):
    /// it reuses the `issue_sleep_until` bookkeeping the issue scan already
    /// maintains (a scan that finds no candidate records the earliest
    /// latency-expiry wake-up; warps blocked on dependencies, the
    /// outstanding-load cap, or store credits wake via response events,
    /// which set `issue_wake` and re-arm the slot). A completed-but-active
    /// CTA can exist only inside a tick (completion happens in the issue
    /// stage and the GPU reaps in the same phase), so no reap is ever
    /// pending while the SM sleeps.
    pub fn next_due(&self, cycle: Cycle) -> Option<Cycle> {
        // A non-empty LSU queue makes per-cycle progress (and per-cycle
        // MSHR-stall accounting); a non-empty outbox must drain; a pending
        // wake event requires a fresh issue scan. All three mean the next
        // cycle is a real step.
        if !self.lsu_queue.is_empty() || !self.outbox.is_empty() || self.issue_wake {
            return Some(cycle + 1);
        }
        let mut next: Option<Cycle> = None;
        if let Some(Reverse((t, _, _))) = self.completions.peek().copied() {
            next = Some(t.max(cycle + 1));
        }
        if self.issue_sleep_until != Cycle::MAX {
            let t = self.issue_sleep_until.max(cycle + 1);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    fn execute_inst(&mut self, wid: WarpId, cycle: Cycle, kernel: &KernelSpec, cfg: &GpuConfig) {
        let w = self.warps[wid.0 as usize].as_mut().expect("picked warp exists");
        let cta = self.ctas[w.cta.0 as usize].as_ref().expect("warp's CTA exists");
        let inst = &kernel.body[w.body_pos as usize];
        self.stats.instructions += 1;
        self.tracer.emit(
            cycle,
            TraceEvent::Issue { sm: self.id.0 as u64, warp: wid.0 as u64, pos: w.body_pos as u64 },
        );

        // Operand traffic: two reads and one write on the warp's registers.
        let warp_local = wid.0 % kernel.warps_per_cta.max(1);
        let base = cta.first_reg.0 + warp_local * kernel.regs_per_warp();
        let span = kernel.regs_per_warp().max(1);
        let rot = w.body_pos;
        let mut extra_delay = 0u32;
        // One divide seeds the rotation; the two follow-up operands wrap by
        // subtraction (`r + 1 < 2 * span` always), replacing three hardware
        // divides per instruction with one.
        let mut r = rot.wrapping_mul(3) % span;
        for write in [false, false, true] {
            let reg = RegNum(base + r);
            extra_delay += self.regfile.access(reg, cycle, write);
            r += 1;
            if r >= span {
                r -= span;
            }
        }

        match inst.kind {
            InstKind::Alu { latency } => {
                w.next_ready = cycle + latency.max(1) as u64 + extra_delay as u64;
            }
            InstKind::Load { load } => {
                let idx = w.next_access_index(load);
                let spec = kernel.load(load);
                self.line_buf.clear();
                spec.pattern.gen_lines(
                    AccessCtx {
                        seed: self.seed,
                        sm: self.id,
                        global_warp: w.global_warp,
                        load,
                        access_index: idx,
                    },
                    &mut self.line_buf,
                );
                let n = self.line_buf.len() as u32;
                w.add_outstanding(load, n);
                w.next_ready = cycle + 1 + extra_delay as u64;
                let warp_idx = wid.0;
                for &line in &self.line_buf {
                    if cfg.detailed_load_stats {
                        self.stats.record_line_touch(load, line.0);
                    }
                    self.lsu_queue.push_back(LsuReq { warp: warp_idx, load, pc: spec.pc, line });
                }
            }
            InstKind::Store { load } => {
                let idx = w.next_access_index(load);
                let spec = kernel.load(load);
                self.line_buf.clear();
                spec.pattern.gen_lines(
                    AccessCtx {
                        seed: self.seed,
                        sm: self.id,
                        global_warp: w.global_warp,
                        load,
                        access_index: idx,
                    },
                    &mut self.line_buf,
                );
                w.next_ready = cycle + 1 + extra_delay as u64;
                let warp_idx = wid.0;
                // Write-evict (hit) / write-no-allocate (miss): invalidate L1
                // copy, notify the policy so victim copies are invalidated
                // too, and send the store through to memory.
                for i in 0..self.line_buf.len() {
                    let line = self.line_buf[i];
                    self.stats.stores += 1;
                    self.stores_in_flight += 1;
                    self.l1.invalidate(line);
                    let mut ctx = PolicyCtx {
                        cycle,
                        sm: self.id,
                        regfile: &mut self.regfile,
                        stats: &mut self.stats,
                    };
                    self.policy.on_store(line, &mut ctx);
                    self.outbox.push(MemReq {
                        sm: self.id,
                        warp: warp_idx,
                        load,
                        line,
                        kind: MemReqKind::Store,
                    });
                }
            }
        }

        // Advance the warp past this instruction and retire if finished.
        let w = self.warps[wid.0 as usize].as_mut().expect("warp exists");
        w.advance(kernel);
        if w.done {
            let cta_id = w.cta;
            self.schedulers[(wid.0 % cfg.schedulers_per_sm) as usize].release(wid);
            let cta = self.ctas[cta_id.0 as usize].as_mut().expect("CTA exists");
            cta.warps_done += 1;
        }
    }

    /// Handles a response from the shared memory system.
    ///
    /// `load_pc` maps a static load id to its PC (precomputed from the
    /// kernel), used to tag the L1 fill with the fetching load's hashed PC.
    pub fn handle_response(&mut self, req: MemReq, cycle: Cycle, load_pc: &[Pc]) {
        // Any response can change warp eligibility (load completion, store
        // credit return, backup/restore progress toggling CTA status).
        self.issue_wake = true;
        match req.kind {
            MemReqKind::Read => {
                // Fill L1; evicted victim goes to the policy.
                let waiters = self.l1.mshrs().complete(req.line);
                let fill_hpc = waiters
                    .first()
                    .map(|&t| {
                        let load = (t & 0xffff_ffff) as u32;
                        hashed_pc5(load_pc[load as usize])
                    })
                    .unwrap_or(0);
                let evicted = self.l1.fill(req.line, fill_hpc);
                if let Some(ev) = evicted {
                    let preserved = {
                        let mut ctx = PolicyCtx {
                            cycle,
                            sm: self.id,
                            regfile: &mut self.regfile,
                            stats: &mut self.stats,
                        };
                        self.policy.on_evict(ev.line, ev.payload.hpc, &mut ctx)
                    };
                    self.tracer.emit(
                        cycle,
                        TraceEvent::Evict {
                            sm: self.id.0 as u64,
                            line: ev.line.0,
                            hpc: ev.payload.hpc as u64,
                            preserved,
                        },
                    );
                }
                for t in waiters {
                    let warp = (t >> 32) as u32;
                    let load = (t & 0xffff_ffff) as u32;
                    if let Some(w) = self.warps[warp as usize].as_mut() {
                        w.complete_one(LoadId(load));
                    }
                    self.wake_warp(warp as usize);
                }
            }
            MemReqKind::BypassRead => {
                if let Some(w) = self.warps[req.warp as usize].as_mut() {
                    w.complete_one(req.load);
                }
                self.wake_warp(req.warp as usize);
            }
            MemReqKind::Store => {
                self.stores_in_flight = self.stores_in_flight.saturating_sub(1);
            }
            MemReqKind::RegBackup { cta } => self.backup_line_done(cta, cycle),
            MemReqKind::RegRestore { cta } => self.restore_line_done(cta, cycle),
        }
    }

    /// Ends the current monitoring window: computes IPC, consults the
    /// policy, enforces any CTA limit, and samples RF occupancy.
    pub fn end_window(&mut self, cycle: Cycle, cfg: &GpuConfig) {
        self.issue_wake = true;
        self.wake_all_warps();
        let insts = self.stats.instructions - self.window_start_insts;
        self.window_start_insts = self.stats.instructions;
        let info = WindowInfo {
            index: self.window_index,
            cycles: cfg.window_cycles,
            instructions: insts,
            ipc: insts as f64 / cfg.window_cycles as f64,
            active_ctas: self.active_ctas(),
            inactive_ctas: self.inactive_ctas(),
        };
        self.window_index += 1;
        self.tracer
            .emit(cycle, TraceEvent::Window { sm: self.id.0 as u64, window: info.index as u64 });
        let mut ctx =
            PolicyCtx { cycle, sm: self.id, regfile: &mut self.regfile, stats: &mut self.stats };
        let limit = self.policy.on_window(&info, &mut ctx);
        self.cta_limit = limit;
        self.enforce_cta_limit(cycle);
        // Sample RF occupancy for Figures 4 and 9.
        let space = self.regfile.space();
        let victim = self.policy.victim_space_regs();
        self.stats.rf_samples.push(RfSpaceSample {
            static_unused: space.static_unused,
            dynamic_unused: space.dynamic_unused,
            victim_in_use: victim,
        });
        // Timeline point (window-level hit fraction is cumulative-delta
        // based; fall back to the cumulative fraction for simplicity —
        // accurate enough per window given the monotone counters).
        let total = self.stats.mem_accesses().max(1);
        self.stats.timeline.push(crate::stats::WindowSample {
            sm: self.id.0,
            window: info.index,
            ipc: info.ipc,
            hit_fraction: (self.stats.l1_hits + self.stats.reg_hits) as f64 / total as f64,
            active_ctas: self.active_ctas(),
            victim_regs: victim,
        });
        if cfg.detailed_load_stats {
            self.stats.close_detail_window();
        }
    }

    /// Applies the current CTA limit: deactivates the highest-id active CTAs
    /// or re-activates inactive ones.
    pub fn enforce_cta_limit(&mut self, cycle: Cycle) {
        let Some(limit) = self.cta_limit else {
            // No limit: re-activate everything that is inactive.
            self.activate_up_to(u32::MAX, cycle);
            return;
        };
        let limit = limit.max(1);
        while self.active_ctas() > limit {
            // Deactivate the active CTA with the largest hardware id (§4.1).
            let victim = self
                .ctas
                .iter()
                .flatten()
                .filter(|c| c.schedulable())
                .map(|c| c.id)
                .max_by_key(|c| c.0);
            let Some(victim) = victim else { break };
            self.deactivate_cta(victim, cycle);
        }
        if self.active_ctas() < limit {
            self.activate_up_to(limit, cycle);
        }
    }

    fn activate_up_to(&mut self, limit: u32, cycle: Cycle) {
        loop {
            if self.active_ctas() >= limit {
                break;
            }
            let candidate = self
                .ctas
                .iter()
                .flatten()
                .filter(|c| matches!(c.status, CtaStatus::Inactive))
                .map(|c| c.id)
                .min_by_key(|c| c.0);
            let Some(c) = candidate else { break };
            self.activate_cta(c, cycle);
        }
    }

    fn deactivate_cta(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let (first, count) = match self.regfile.cta_range(cta) {
            Some(r) => r,
            None => return,
        };
        {
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            self.policy.on_cta_deactivate(cta, &mut ctx);
        }
        self.tracer.emit(cycle, TraceEvent::Backup { sm: self.id.0 as u64, cta: cta.0 as u64 });
        // Snapshot architectural state for fidelity checking.
        let contents: Vec<u64> =
            (first.0..first.0 + count).map(|r| self.regfile.read_contents(RegNum(r))).collect();
        self.backup_store.insert(cta.0, contents);
        // Emit backup traffic: one line per warp register.
        for i in 0..count {
            let line = self.backup_line_addr(i);
            self.outbox.push(MemReq {
                sm: self.id,
                warp: 0,
                load: LoadId(0),
                line,
                kind: MemReqKind::RegBackup { cta },
            });
        }
        self.backup_cursor += count as u64;
        if let Some(c) = self.ctas[slot].as_mut() {
            c.status = CtaStatus::BackingUp { remaining: count };
        }
    }

    fn activate_cta(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let (_, count) = match self.regfile.cta_range(cta) {
            Some(r) => r,
            None => return,
        };
        {
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            // Victim partitions over this CTA's registers must be released
            // before the restore overwrites them.
            self.policy.on_cta_activate(cta, &mut ctx);
        }
        self.tracer.emit(cycle, TraceEvent::Restore { sm: self.id.0 as u64, cta: cta.0 as u64 });
        for i in 0..count {
            let line = self.backup_line_addr(i);
            self.outbox.push(MemReq {
                sm: self.id,
                warp: 0,
                load: LoadId(0),
                line,
                kind: MemReqKind::RegRestore { cta },
            });
        }
        self.backup_cursor += count as u64;
        if let Some(c) = self.ctas[slot].as_mut() {
            c.status = CtaStatus::Restoring { remaining: count };
        }
    }

    fn backup_line_addr(&self, i: u32) -> LineAddr {
        // Dedicated backup region: "load 0" slice of this SM's address space
        // is reserved (kernel loads are numbered from 1 in the pattern
        // region map via `load + 1`).
        LineAddr(((self.id.0 as u64) << 36) | (self.backup_cursor + i as u64))
    }

    fn backup_line_done(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let Some(c) = self.ctas[slot].as_mut() else { return };
        if let CtaStatus::BackingUp { remaining } = &mut c.status {
            *remaining -= 1;
            if *remaining == 0 {
                c.status = CtaStatus::Inactive;
                self.regfile.mark_backed_up(cta);
                let mut ctx = PolicyCtx {
                    cycle,
                    sm: self.id,
                    regfile: &mut self.regfile,
                    stats: &mut self.stats,
                };
                self.policy.on_backup_complete(cta, &mut ctx);
            }
        }
    }

    fn restore_line_done(&mut self, cta: CtaId, cycle: Cycle) {
        let slot = cta.0 as usize;
        let Some(c) = self.ctas[slot].as_mut() else { return };
        if let CtaStatus::Restoring { remaining } = &mut c.status {
            *remaining -= 1;
            if *remaining == 0 {
                c.status = CtaStatus::Active;
                // The CTA's warps occupy one contiguous ascending block.
                let lo = *c.warps.first().expect("CTA has warps");
                let hi = *c.warps.last().expect("CTA has warps");
                let _ = cycle;
                if let Some((first, count)) = self.regfile.mark_restored(cta) {
                    if let Some(saved) = self.backup_store.remove(&cta.0) {
                        debug_assert_eq!(saved.len(), count as usize);
                        for (i, v) in saved.into_iter().enumerate() {
                            self.regfile.write_contents(RegNum(first.0 + i as u32), v);
                        }
                    }
                }
                // The CTA is schedulable again: re-list its warps.
                for wi in lo..=hi {
                    self.wake_warp(wi as usize);
                }
            }
        }
    }

    /// Reaps completed CTAs; returns how many were freed (the GPU refills).
    pub fn reap_completed_ctas(&mut self, cycle: Cycle) -> u32 {
        let mut freed = 0;
        for slot in 0..self.ctas.len() {
            let complete = self.ctas[slot]
                .as_ref()
                .map(|c| c.is_complete() && matches!(c.status, CtaStatus::Active))
                .unwrap_or(false);
            if !complete {
                continue;
            }
            let cta = self.ctas[slot].take().expect("checked above");
            for wid in &cta.warps {
                self.warps[*wid as usize] = None;
            }
            self.regfile.free_cta(cta.id);
            let mut ctx = PolicyCtx {
                cycle,
                sm: self.id,
                regfile: &mut self.regfile,
                stats: &mut self.stats,
            };
            self.policy.on_cta_complete(cta.id, &mut ctx);
            freed += 1;
        }
        if freed > 0 {
            self.issue_wake = true;
            self.wake_all_warps();
            // A finished CTA frees an active slot: prefer re-activating a
            // throttled CTA over launching a new one (paper §3.2, P5).
            self.enforce_cta_limit(cycle);
        }
        freed
    }

    /// True when the SM can accept another CTA under the current limit.
    pub fn wants_new_cta(&self) -> bool {
        match self.cta_limit {
            Some(l) => self.active_ctas() + self.inactive_ctas() < l.max(1),
            None => true,
        }
    }

    /// Current active-CTA limit (None = unlimited).
    pub fn cta_limit(&self) -> Option<u32> {
        self.cta_limit
    }

    /// Sets the CTA limit directly (used by tests and static policies before
    /// the first window fires).
    pub fn set_cta_limit(&mut self, limit: Option<u32>, cycle: Cycle) {
        self.issue_wake = true;
        self.wake_all_warps();
        self.cta_limit = limit;
        self.enforce_cta_limit(cycle);
    }

    /// Snapshot of backed-up register contents for a CTA (tests).
    pub fn backup_snapshot(&self, cta: CtaId) -> Option<&[u64]> {
        self.backup_store.get(&cta.0).map(|v| v.as_slice())
    }

    /// Finalizes per-SM stats (MSHR stall counts etc.).
    pub fn finalize_stats(&mut self) {
        let (reads, writes, conflicts) = self.regfile.stats();
        self.stats.rf_reads = reads;
        self.stats.rf_writes = writes;
        self.stats.rf_bank_conflicts = conflicts;
        self.stats.monitor_periods = self.policy.monitor_periods();
    }
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field("resident_ctas", &self.resident_ctas())
            .field("active_ctas", &self.active_ctas())
            .field("policy", &self.policy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::pattern::AccessPattern;
    use crate::policy::NullPolicy;

    fn small_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(1)
    }

    fn kernel() -> KernelSpec {
        KernelBuilder::new("k")
            .grid(8, 2)
            .regs_per_thread(16)
            .load_then_use(AccessPattern::reuse_working_set(16 * 1024, true), 2)
            .alu(4)
            .iterations(50)
            .build()
            .unwrap()
    }

    fn sm() -> Sm {
        Sm::new(SmId(0), &small_cfg(), Box::new(NullPolicy), 42)
    }

    #[test]
    fn launch_respects_register_limit() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("fat")
            .grid(8, 8)
            .regs_per_thread(128) // 8 warps x 128 regs = 1024 regs per CTA
            .alu(1)
            .iterations(1)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(sm.try_launch_cta(&k, &cfg));
        // Third CTA would need 3072 > 2048 registers.
        assert!(!sm.try_launch_cta(&k, &cfg));
        assert_eq!(sm.resident_ctas(), 2);
    }

    #[test]
    fn launch_respects_warp_limit() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("wide")
            .grid(8, 32)
            .regs_per_thread(8)
            .alu(1)
            .iterations(1)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(sm.try_launch_cta(&k, &cfg));
        assert!(!sm.try_launch_cta(&k, &cfg), "64-warp limit reached");
    }

    #[test]
    fn ticking_executes_instructions() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        let pcs: Vec<Pc> = k.loads.iter().map(|l| l.pc).collect();
        assert!(sm.try_launch_cta(&k, &cfg));
        for c in 0..2000 {
            sm.tick(c, &k, &cfg);
            // Service memory requests instantly for this unit test.
            let reqs: Vec<_> = sm.outbox.drain(..).collect();
            for r in reqs {
                if matches!(r.kind, MemReqKind::Read | MemReqKind::BypassRead) {
                    sm.handle_response(r, c, &pcs);
                }
            }
        }
        assert!(sm.stats.instructions > 100, "issued {}", sm.stats.instructions);
        assert!(sm.stats.mem_accesses() > 0);
    }

    #[test]
    fn cta_completes_and_is_reaped() {
        let cfg = small_cfg();
        let k = KernelBuilder::new("tiny")
            .grid(1, 1)
            .regs_per_thread(8)
            .alu(1)
            .iterations(3)
            .build()
            .unwrap();
        let mut sm = sm();
        assert!(sm.try_launch_cta(&k, &cfg));
        for c in 0..100 {
            sm.tick(c, &k, &cfg);
            sm.reap_completed_ctas(c);
        }
        assert_eq!(sm.resident_ctas(), 0);
        assert!(sm.drained());
    }

    #[test]
    fn throttle_deactivates_highest_id_cta() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        let pcs: Vec<Pc> = k.loads.iter().map(|l| l.pc).collect();
        for _ in 0..4 {
            assert!(sm.try_launch_cta(&k, &cfg));
        }
        sm.set_cta_limit(Some(2), 0);
        // Backup traffic must be in the outbox.
        let backups =
            sm.outbox.iter().filter(|r| matches!(r.kind, MemReqKind::RegBackup { .. })).count()
                as u32;
        assert_eq!(backups, 2 * k.regs_per_cta());
        assert_eq!(sm.active_ctas(), 2);
        // CTAs 2 and 3 (highest ids) are the deactivated ones.
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        for r in &reqs {
            if let MemReqKind::RegBackup { cta } = r.kind {
                assert!(cta.0 >= 2);
            }
        }
        // Complete the backups.
        for r in reqs {
            sm.handle_response(r, 10, &pcs);
        }
        assert_eq!(sm.inactive_ctas(), 2);
        assert!(sm.regfile.is_backed_up(CtaId(2)));
        assert!(sm.regfile.is_backed_up(CtaId(3)));
    }

    #[test]
    fn restore_roundtrips_register_contents() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        let pcs: Vec<Pc> = k.loads.iter().map(|l| l.pc).collect();
        for _ in 0..4 {
            sm.try_launch_cta(&k, &cfg);
        }
        let (first, count) = sm.regfile.cta_range(CtaId(3)).unwrap();
        let before: Vec<u64> =
            (first.0..first.0 + count).map(|r| sm.regfile.read_contents(RegNum(r))).collect();

        sm.set_cta_limit(Some(3), 0);
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        for r in reqs {
            sm.handle_response(r, 5, &pcs);
        }
        assert!(sm.regfile.is_backed_up(CtaId(3)));
        // Clobber the register contents (as victim caching would).
        for r in first.0..first.0 + count {
            sm.regfile.write_contents(RegNum(r), 0xbad);
        }
        // Lift the limit: CTA 3 restores.
        sm.set_cta_limit(None, 100);
        let reqs: Vec<_> = sm.outbox.drain(..).collect();
        assert!(reqs.iter().all(|r| matches!(r.kind, MemReqKind::RegRestore { .. })));
        for r in reqs {
            sm.handle_response(r, 200, &pcs);
        }
        let after: Vec<u64> =
            (first.0..first.0 + count).map(|r| sm.regfile.read_contents(RegNum(r))).collect();
        assert_eq!(before, after, "restore must reproduce the backed-up state");
        assert_eq!(sm.active_ctas(), 4);
    }

    #[test]
    fn window_end_samples_rf_space() {
        let cfg = small_cfg();
        let k = kernel();
        let mut sm = sm();
        sm.try_launch_cta(&k, &cfg);
        sm.end_window(50_000, &cfg);
        assert_eq!(sm.stats.rf_samples.len(), 1);
        let s = sm.stats.rf_samples[0];
        assert_eq!(s.static_unused, 2048 - k.regs_per_cta());
    }

    #[test]
    fn drained_only_when_everything_empty() {
        let sm = sm();
        assert!(sm.drained());
    }
}
