//! Core newtypes shared across the simulator.
//!
//! Every identifier in the simulator is a dedicated newtype so that a warp
//! index can never be confused with a CTA index or a register number
//! (C-NEWTYPE). All of them are cheap `Copy` wrappers around integers.

use std::fmt;

/// A byte address in the simulated global memory space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

/// A cache-line address: a byte [`Address`] with the line offset stripped.
///
/// Lines are 128 bytes throughout (the paper matches the L1 line size to the
/// 32-lane x 4-byte warp register width), so `LineAddr = Address >> 7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

/// Line size in bytes. Identical to the warp-register width (32 lanes x 4 B).
pub const LINE_BYTES: u64 = 128;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 7;

impl Address {
    /// Returns the cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset of this address within its cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl LineAddr {
    /// First byte address covered by this line.
    #[inline]
    pub fn base(self) -> Address {
        Address(self.0 << LINE_SHIFT)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// Program counter of a static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u32);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

/// Index of a streaming multiprocessor within the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmId(pub u32);

/// Index of a warp *within one SM* (0..max_warps_per_sm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(pub u32);

/// Hardware CTA slot index *within one SM* (0..max_ctas_per_sm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtaId(pub u32);

/// Identifier of a static load instruction within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LoadId(pub u32);

/// A physical warp-register index in the register file.
///
/// One warp register is 128 B wide (32 lanes x 4 B) — exactly one cache line.
/// A 256 KB register file therefore holds 2048 warp registers (RN 0..2047).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegNum(pub u32);

impl fmt::Display for RegNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A point in simulated time, in core clock cycles.
pub type Cycle = u64;

/// XOR-folds a 32-bit PC into 5 bits — the paper's Hashed PC (HPC).
///
/// Linebacker tags every L1 line and Load-Monitor entry with this value;
/// aliasing between static loads is part of the modeled hardware (GPU kernels
/// rarely have more than 32 global loads, §4.1).
///
/// # Examples
///
/// ```
/// use gpu_sim::types::{hashed_pc5, Pc};
/// assert!(hashed_pc5(Pc(0x1234)) < 32);
/// assert_eq!(hashed_pc5(Pc(0)), 0);
/// ```
#[inline]
pub fn hashed_pc5(pc: Pc) -> u8 {
    let x = pc.0;
    let folded = x ^ (x >> 5) ^ (x >> 10) ^ (x >> 15) ^ (x >> 20) ^ (x >> 25) ^ (x >> 30);
    (folded & 0x1f) as u8
}

/// The kind of service a memory request ultimately received.
///
/// These categories are exactly the stacks of the paper's Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Hit in the L1 data cache.
    L1Hit,
    /// Missed L1 (and any victim storage) and was serviced by L2/DRAM.
    Miss,
    /// Bypassed L1 entirely (PCAL-style) and went straight to L2/DRAM.
    Bypass,
    /// Hit in register-file-resident victim storage (Linebacker) or the
    /// cache-emulated register file (CERF). The paper calls this "Reg hit".
    RegHit,
}

impl fmt::Display for AccessOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessOutcome::L1Hit => "hit",
            AccessOutcome::Miss => "miss",
            AccessOutcome::Bypass => "bypass",
            AccessOutcome::RegHit => "reg-hit",
        };
        f.write_str(s)
    }
}

/// Classification of an L1 miss (paper §2.2): a miss to a line that was
/// previously resident is a capacity/conflict ("2C") miss; a miss to a line
/// never seen before is a cold miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever access to the line.
    Cold,
    /// The line was previously cached and has been evicted: capacity or
    /// conflict miss.
    CapacityConflict,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_line_roundtrip() {
        let a = Address(0x1234_5678);
        let l = a.line();
        assert_eq!(l.0, 0x1234_5678 >> 7);
        assert!(l.base().0 <= a.0);
        assert!(a.0 - l.base().0 < LINE_BYTES);
    }

    #[test]
    fn line_offset_within_line() {
        for off in [0u64, 1, 64, 127] {
            let a = Address((42 << LINE_SHIFT) + off);
            assert_eq!(a.line_offset(), off);
            assert_eq!(a.line().0, 42);
        }
    }

    #[test]
    fn line_bytes_matches_shift() {
        assert_eq!(1u64 << LINE_SHIFT, LINE_BYTES);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", Address(0)).is_empty());
        assert!(!format!("{}", LineAddr(0)).is_empty());
        assert!(!format!("{}", Pc(0)).is_empty());
        assert!(!format!("{}", RegNum(0)).is_empty());
        assert!(!format!("{}", AccessOutcome::RegHit).is_empty());
    }

    #[test]
    fn ordering_of_ids() {
        assert!(WarpId(1) < WarpId(2));
        assert!(CtaId(0) < CtaId(31));
        assert!(RegNum(511) < RegNum(512));
    }
}
