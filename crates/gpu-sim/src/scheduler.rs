//! Greedy-Then-Oldest (GTO) warp scheduling.
//!
//! Each SM has four schedulers (Table 1); warps are statically partitioned
//! across them by `warp_id % 4`. A scheduler keeps issuing from its current
//! warp until that warp stalls, then falls back to the *oldest* ready warp
//! (smallest launch age), which is the behaviour that gives GTO its strong
//! intra-warp locality.

use crate::types::WarpId;

/// One GTO warp scheduler.
#[derive(Debug, Clone)]
pub struct GtoScheduler {
    /// The greedily-held warp, if any.
    current: Option<WarpId>,
    issues: u64,
    switches: u64,
}

impl Default for GtoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl GtoScheduler {
    /// Creates an idle scheduler.
    pub fn new() -> Self {
        GtoScheduler { current: None, issues: 0, switches: 0 }
    }

    /// Picks the warp to issue this cycle.
    ///
    /// `ready` holds `(warp, age)` pairs for all warps of this scheduler
    /// that can issue (a borrowed scratch slice — the SM reuses one buffer
    /// across cycles instead of allocating). Greedy: if the held warp is
    /// ready, keep it; otherwise select the ready warp with the smallest age.
    pub fn pick(&mut self, ready: &[(WarpId, u64)]) -> Option<WarpId> {
        if let Some(cur) = self.current {
            if ready.iter().any(|&(w, _)| w == cur) {
                self.issues += 1;
                return Some(cur);
            }
        }
        let oldest = ready.iter().min_by_key(|&&(w, age)| (age, w.0)).map(|&(w, _)| w);
        if let Some(w) = oldest {
            if self.current != Some(w) {
                self.switches += 1;
            }
            self.current = Some(w);
            self.issues += 1;
        }
        oldest
    }

    /// The greedily-held warp, if any (the SM's lazy candidate walk checks
    /// it first, mirroring `pick`'s greedy branch).
    pub fn current(&self) -> Option<WarpId> {
        self.current
    }

    /// Records an issue chosen by the SM's lazy candidate walk without
    /// materializing the ready list. Accounting is identical to `pick`:
    /// re-issuing the held warp counts no switch; any other pick (or a
    /// pick from idle) counts one and becomes the held warp.
    pub fn note_pick(&mut self, w: WarpId) {
        if self.current != Some(w) {
            self.switches += 1;
        }
        self.current = Some(w);
        self.issues += 1;
    }

    /// Notes that the held warp stalled or retired, releasing greediness.
    pub fn release(&mut self, warp: WarpId) {
        if self.current == Some(warp) {
            self.current = None;
        }
    }

    /// (instructions issued, greedy-warp switches).
    pub fn stats(&self) -> (u64, u64) {
        (self.issues, self.switches)
    }
}

/// One scheduler's candidate list: `(age, warp slot)` pairs kept sorted
/// ascending — GTO's fallback order — holding every warp that *may* be
/// issueable. The SM's lazy issue walk scans it front-to-back, pruning
/// entries it proves event-blocked; unblocking events re-insert.
///
/// Lives next to [`GtoScheduler`] because the pair is the scheduling state
/// of one scheduler: the greedy hold plus the age-ordered fallback queue.
/// The dense `(u64, u32)` rows (no warp-struct pointers) are what lets the
/// walk stay cache-resident after the SoA warp-state split.
#[derive(Debug, Clone, Default)]
pub struct CandList {
    entries: Vec<(u64, u32)>,
}

impl CandList {
    /// Creates an empty list with room for `cap` warps.
    pub fn with_capacity(cap: usize) -> Self {
        CandList { entries: Vec::with_capacity(cap) }
    }

    /// Inserts a warp in age order; a no-op when already listed.
    #[inline]
    pub fn insert(&mut self, age: u64, slot: u32) {
        let key = (age, slot);
        if let Err(pos) = self.entries.binary_search(&key) {
            self.entries.insert(pos, key);
        }
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends without keeping order; callers pair it with [`CandList::sort`]
    /// when rebuilding the list wholesale.
    #[inline]
    pub fn push_unsorted(&mut self, age: u64, slot: u32) {
        self.entries.push((age, slot));
    }

    /// Restores age order after a wholesale rebuild.
    pub fn sort(&mut self) {
        self.entries.sort_unstable();
    }

    /// Number of listed warps.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no warp is listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(age, warp slot)` pair at walk position `k`.
    #[inline]
    pub fn get(&self, k: usize) -> (u64, u32) {
        self.entries[k]
    }

    /// Removes the entry at walk position `k` (proven event-blocked or
    /// parked in the timer wheel).
    #[inline]
    pub fn remove(&mut self, k: usize) {
        self.entries.remove(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(v: &[(u32, u64)]) -> Vec<(WarpId, u64)> {
        v.iter().map(|&(w, a)| (WarpId(w), a)).collect()
    }

    #[test]
    fn picks_oldest_first() {
        let mut s = GtoScheduler::new();
        let ready = [(3u32, 30u64), (1, 10), (2, 20)];
        assert_eq!(s.pick(&pairs(&ready)), Some(WarpId(1)));
    }

    #[test]
    fn greedy_sticks_with_current() {
        let mut s = GtoScheduler::new();
        let ready = [(1u32, 10u64), (2, 5)];
        // First pick: oldest is warp 2.
        assert_eq!(s.pick(&pairs(&ready)), Some(WarpId(2)));
        // Even though warp 1 is also ready, greedy keeps warp 2.
        assert_eq!(s.pick(&pairs(&ready)), Some(WarpId(2)));
    }

    #[test]
    fn falls_back_to_oldest_when_current_stalls() {
        let mut s = GtoScheduler::new();
        let all = [(1u32, 10u64), (2, 5)];
        assert_eq!(s.pick(&pairs(&all)), Some(WarpId(2)));
        // Warp 2 stalled: not in the ready set anymore.
        let only1 = [(1u32, 10u64)];
        assert_eq!(s.pick(&pairs(&only1)), Some(WarpId(1)));
        // Warp 2 returns; greedy now holds warp 1.
        assert_eq!(s.pick(&pairs(&all)), Some(WarpId(1)));
    }

    #[test]
    fn empty_ready_set_issues_nothing() {
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick(&[]), None);
        assert_eq!(s.stats().0, 0);
    }

    #[test]
    fn release_clears_greedy_hold() {
        let mut s = GtoScheduler::new();
        let all = [(1u32, 10u64), (2, 5)];
        assert_eq!(s.pick(&pairs(&all)), Some(WarpId(2)));
        s.release(WarpId(2));
        // After release, picks oldest again (still warp 2 by age) — but if
        // warp 2 retired and only warp 1 remains, it must switch cleanly.
        let only1 = [(1u32, 10u64)];
        assert_eq!(s.pick(&pairs(&only1)), Some(WarpId(1)));
    }

    #[test]
    fn age_tie_broken_by_warp_id() {
        let mut s = GtoScheduler::new();
        let ready = [(7u32, 5u64), (3, 5)];
        assert_eq!(s.pick(&pairs(&ready)), Some(WarpId(3)));
    }

    #[test]
    fn cand_list_keeps_age_order_and_dedups() {
        let mut c = CandList::with_capacity(4);
        c.insert(30, 3);
        c.insert(10, 1);
        c.insert(20, 2);
        c.insert(10, 1); // duplicate: no-op
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), (10, 1));
        assert_eq!(c.get(1), (20, 2));
        assert_eq!(c.get(2), (30, 3));
        c.remove(1);
        assert_eq!(c.get(1), (30, 3));
    }

    #[test]
    fn cand_list_rebuild_matches_incremental_order() {
        let mut inc = CandList::default();
        let mut bulk = CandList::default();
        for &(age, slot) in &[(5u64, 9u32), (1, 4), (5, 2), (3, 7)] {
            inc.insert(age, slot);
            bulk.push_unsorted(age, slot);
        }
        bulk.sort();
        assert_eq!(inc.len(), bulk.len());
        for k in 0..inc.len() {
            assert_eq!(inc.get(k), bulk.get(k));
        }
    }
}
