//! # testkit — dependency-free property-testing and benchmarking helpers
//!
//! The container this repository builds in has no access to crates.io, so
//! the usual `proptest`/`criterion` dev-dependencies are replaced by this
//! tiny in-tree crate: a deterministic splitmix/xorshift PRNG, a case
//! runner for randomized property tests, and a wall-clock micro-benchmark
//! timer. Everything is seeded and reproducible — a failing case prints
//! the seed and iteration needed to replay it.

#![warn(missing_docs)]

use std::time::Instant;

/// A small, fast, deterministic PRNG (xorshift64* seeded via splitmix64).
///
/// Not cryptographic; plenty for generating test cases.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // splitmix64 of the seed avoids weak xorshift states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng { state: (z ^ (z >> 31)) | 1 }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u64() % (hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// A vector of `len in [min_len, max_len)` values drawn by `gen`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let n = self.range_usize(min_len, max_len);
        (0..n).map(|_| gen(self)).collect()
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }
}

/// Default number of cases run by [`check`].
pub const DEFAULT_CASES: u32 = 256;

/// Runs `f` for [`DEFAULT_CASES`] seeded cases; the closure receives a
/// fresh deterministic [`Rng`] per case. Panics from `f` are augmented
/// with the case index so failures replay exactly.
pub fn check(name: &str, f: impl Fn(&mut Rng)) {
    check_n(name, DEFAULT_CASES, f);
}

/// [`check`] with an explicit case count.
pub fn check_n(name: &str, cases: u32, f: impl Fn(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::new(0xC0FFEE ^ (case as u64).wrapping_mul(0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            eprintln!("property '{name}' failed at case {case}/{cases}");
            std::panic::resume_unwind(e);
        }
    }
}

/// One timed benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Iterations measured.
    pub iters: u32,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest single iteration in nanoseconds.
    pub min_ns: f64,
}

impl BenchResult {
    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.2} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.2} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.2} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>12}/iter (min {:>12}, {} iters)",
            self.name,
            Self::fmt_ns(self.mean_ns),
            Self::fmt_ns(self.min_ns),
            self.iters
        )
    }
}

/// Times `f` for `iters` iterations (after one untimed warm-up) and prints
/// the result. Use [`std::hint::black_box`] inside `f` to keep the
/// optimizer honest.
pub fn bench(name: &str, iters: u32, mut f: impl FnMut()) -> BenchResult {
    assert!(iters > 0);
    f(); // warm-up
    let mut min_ns = f64::INFINITY;
    let total = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        f();
        min_ns = min_ns.min(t.elapsed().as_nanos() as f64);
    }
    let r = BenchResult {
        name: name.to_string(),
        iters,
        mean_ns: total.elapsed().as_nanos() as f64 / iters as f64,
        min_ns,
    };
    println!("{r}");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let (mut a, mut b) = (Rng::new(1), Rng::new(2));
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = Rng::new(3);
        let seen: std::collections::HashSet<u64> = (0..1000).map(|_| r.range_u64(0, 8)).collect();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut r = Rng::new(5);
        for _ in 0..100 {
            let v = r.vec(1, 10, |r| r.bool());
            assert!((1..10).contains(&v.len()));
        }
    }

    #[test]
    fn check_runs_all_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = AtomicU32::new(0);
        check_n("count", 17, |_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn bench_reports_positive_time() {
        let r = bench("noop-ish", 3, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(r.mean_ns > 0.0 && r.min_ns <= r.mean_ns * 3.0 + 1.0);
    }
}
