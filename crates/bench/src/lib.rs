//! # lb-bench — the experiment harness of the Linebacker reproduction
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | id | paper artifact |
//! |---|---|
//! | `table2` | Table 2 (suite + cache-sensitivity classification) |
//! | `fig01`..`fig05` | the motivational studies (§2) |
//! | `overhead` | §4.2 storage overhead |
//! | `fig09`..`fig18` | the evaluation (§5) |
//!
//! Use the `lb-experiments` binary:
//!
//! ```text
//! lb-experiments --scale default all
//! lb-experiments --jobs 8 fig12 fig13
//! ```
//!
//! The harness is layered: experiments *plan* their simulations as typed
//! [`RunKey`]s ([`experiments::plan`]), the [`engine`] executes the
//! deduplicated union across a worker pool with single-flight semantics,
//! and rendering reads from the warm memo. Figures that share run sets
//! (12/13/16/17/18) therefore cost one set of simulations, executed in
//! parallel (`--jobs`/`LB_JOBS`, default: all cores) with bit-identical
//! results at any worker count.

#![warn(missing_docs)]

pub mod arch;
pub mod engine;
pub mod experiments;
pub mod profile;
pub mod runkey;
pub mod runner;
pub mod scale;
pub mod table;

pub use arch::Arch;
pub use engine::Engine;
pub use profile::Profile;
pub use runkey::{ArchSpec, RunKey};
pub use runner::Runner;
pub use scale::Scale;
pub use table::Table;

/// A process-wide runner at [`Scale::Quick`], shared by the test suite so
/// memoized simulations are reused across test functions.
pub fn shared_quick_runner() -> &'static Runner {
    use std::sync::OnceLock;
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    RUNNER.get_or_init(|| Runner::new(Scale::Quick))
}
