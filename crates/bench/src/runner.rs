//! Memoized experiment runner: many figures share the same simulations
//! (Figures 12, 13, 16, 17 and 18 all read the same five-architecture run
//! set), so results are cached per (app, architecture, L1 size, detail flag)
//! within one harness invocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::stats::SimStats;
use workloads::AppSpec;

use crate::arch::Arch;
use crate::scale::Scale;

/// Candidate CTA limits tried by the Best-SWL oracle sweep.
pub const SWL_CANDIDATES: [u32; 8] = [1, 2, 3, 4, 6, 8, 12, 16];

/// The memoized runner.
#[derive(Debug)]
pub struct Runner {
    scale: Scale,
    cfg: GpuConfig,
    memo: Mutex<HashMap<String, Arc<SimStats>>>,
    /// Simulations actually executed (cache misses).
    sims_run: AtomicU64,
    /// Progress reporting to stderr.
    pub verbose: bool,
}

impl Runner {
    /// Creates a runner at the given scale.
    pub fn new(scale: Scale) -> Self {
        Runner {
            cfg: scale.config(),
            scale,
            memo: Mutex::new(HashMap::new()),
            sims_run: AtomicU64::new(0),
            verbose: false,
        }
    }

    /// The scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The base configuration (before per-architecture transforms).
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Number of simulations actually executed so far.
    pub fn sims_run(&self) -> u64 {
        self.sims_run.load(Ordering::Relaxed)
    }

    /// Runs (or recalls) `app` under `arch` on the scale's base config.
    pub fn run(&self, app: &AppSpec, arch: Arch) -> Arc<SimStats> {
        self.run_inner(app, arch, None, false)
    }

    /// Runs with an overridden L1 size (Figure 14 sweeps).
    pub fn run_l1(&self, app: &AppSpec, arch: Arch, l1_bytes: u64) -> Arc<SimStats> {
        self.run_inner(app, arch, Some(l1_bytes), false)
    }

    /// Runs the baseline with detailed per-load statistics (Figures 2/3).
    ///
    /// The paper defines reuse and streaming over 50 000-cycle windows;
    /// shorter scale windows cannot observe typical reuse distances, so
    /// detailed runs always use the paper's window length (and enough
    /// cycles for several windows), independent of the scale.
    pub fn run_detailed(&self, app: &AppSpec) -> Arc<SimStats> {
        self.run_inner(app, Arch::Baseline, None, true)
    }

    fn run_inner(
        &self,
        app: &AppSpec,
        arch: Arch,
        l1_bytes: Option<u64>,
        detailed: bool,
    ) -> Arc<SimStats> {
        let key = format!("{}/{:?}/{:?}/{}", app.abbrev, arch, l1_bytes, detailed);
        if let Some(hit) = self.memo.lock().get(&key) {
            return Arc::clone(hit);
        }
        let mut cfg = self.cfg.clone();
        if let Some(l1) = l1_bytes {
            cfg = cfg.with_l1_size(l1);
        }
        cfg = arch.transform_config(&cfg, app);
        cfg.detailed_load_stats = detailed;
        if detailed {
            // Figures 2/3 use the paper's 50 k-cycle window definition.
            let max = cfg.max_cycles.max(250_000);
            cfg = cfg.with_windows(50_000, max);
        }
        if self.verbose {
            eprintln!("  sim {key}");
        }
        let kernel = app.kernel(cfg.n_sms);
        let stats = Arc::new(run_kernel(cfg, kernel, &arch.factory()));
        self.sims_run.fetch_add(1, Ordering::Relaxed);
        self.memo.lock().insert(key, Arc::clone(&stats));
        stats
    }

    /// Best-SWL oracle for `app`: sweeps [`SWL_CANDIDATES`] plus unlimited
    /// and returns `(best limit, stats of the best run)`. `None` means the
    /// unlimited baseline won.
    pub fn best_swl(&self, app: &AppSpec) -> (Option<u32>, Arc<SimStats>) {
        let resident = app.resident_ctas(&self.cfg);
        let mut best: (Option<u32>, Arc<SimStats>) = (None, self.run(app, Arch::Baseline));
        for l in SWL_CANDIDATES {
            if l >= resident {
                continue; // no throttling effect
            }
            let s = self.run(app, Arch::StaticLimit(l));
            if s.ipc() > best.1.ipc() {
                best = (Some(l), s);
            }
        }
        best
    }

    /// IPC of the Best-SWL oracle (the usual normalization denominator).
    pub fn best_swl_ipc(&self, app: &AppSpec) -> f64 {
        self.best_swl(app).1.ipc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::app;

    #[test]
    fn memoization_avoids_reruns() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let s1 = r.run(&a, Arch::Baseline);
        let n = r.sims_run();
        let s2 = r.run(&a, Arch::Baseline);
        assert_eq!(r.sims_run(), n, "second call must hit the memo");
        assert!(Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn l1_override_is_distinct_key() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let _ = r.run(&a, Arch::Baseline);
        let _ = r.run_l1(&a, Arch::Baseline, 16 * 1024);
        assert_eq!(r.sims_run(), 2);
    }

    #[test]
    fn best_swl_never_below_baseline() {
        let r = Runner::new(Scale::Quick);
        let a = app("S2").unwrap();
        let base = r.run(&a, Arch::Baseline).ipc();
        let (_, best) = r.best_swl(&a);
        assert!(best.ipc() >= base - 1e-12);
    }

    #[test]
    fn detailed_run_collects_load_windows() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let s = r.run_detailed(&a);
        assert!(!s.load_detail.is_empty(), "detailed stats must be collected");
    }
}
