//! Memoized experiment runner: many figures share the same simulations
//! (Figures 12, 13, 16, 17 and 18 all read the same five-architecture run
//! set), so results are cached per [`RunKey`] within one harness
//! invocation.
//!
//! The runner is a thin policy layer over the [`Engine`]: it owns the scale
//! and base configuration, translates the legacy `run`/`run_l1`/
//! `run_detailed` entry points into typed [`RunKey`]s, and adds the
//! Best-SWL oracle (a per-app memoized *plan node*: its candidate sweep is
//! expressible as `Vec<RunKey>` up front via [`Runner::best_swl_plan`], so
//! batch prefetching covers it, and the arg-max itself is cached so repeat
//! calls re-run nothing).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::{run_kernel, run_kernel_traced, run_replay_kernel, run_replay_kernel_traced};
use gpu_sim::stats::SimStats;
use gpu_sim::trace::{TraceWriter, Tracer};
use workloads::AppSpec;

use crate::arch::Arch;
use crate::engine::Engine;
use crate::profile::Profile;
use crate::runkey::RunKey;
use crate::scale::Scale;

/// Candidate CTA limits tried by the Best-SWL oracle sweep.
pub const SWL_CANDIDATES: [u32; 8] = [1, 2, 3, 4, 6, 8, 12, 16];

/// A Best-SWL oracle verdict: the winning CTA limit (`None` = unlimited
/// baseline) and the stats of the winning run.
pub type BestSwl = (Option<u32>, Arc<SimStats>);

/// Event-trace capture configuration for a whole harness invocation: each
/// distinct simulation writes `<dir>/<sanitized RunKey>.lbt`.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Directory receiving one `.lbt` file per distinct simulation.
    pub dir: std::path::PathBuf,
    /// Event-kind selection mask (see [`gpu_sim::trace::parse_mask`]).
    pub mask: u64,
}

/// Turns a `RunKey` display string (`GA/Baseline+l1=16K`) into a safe file
/// stem (`GA_Baseline+l1=16K`).
pub fn sanitize_key(key: &str) -> String {
    key.chars()
        .map(|c| if c.is_ascii_alphanumeric() || "+=.-".contains(c) { c } else { '_' })
        .collect()
}

/// The memoized runner.
pub struct Runner {
    scale: Scale,
    cfg: GpuConfig,
    engine: Engine,
    /// Memoized Best-SWL oracle results per app (the arg-max over the
    /// sweep, not just the individual runs).
    best_swl: Mutex<HashMap<&'static str, BestSwl>>,
    /// Worker threads used by [`Runner::prefetch`].
    jobs: usize,
    /// Progress reporting to stderr.
    pub verbose: bool,
    /// Hot-path profiler: per-sim wall-clock and event counters
    /// (always collected — one `Instant` pair per simulation — and
    /// reported when the harness runs with `--profile`).
    profile: Mutex<Profile>,
    /// Event-trace capture (`--trace`): when set, every distinct simulation
    /// writes one `.lbt` file named after its run key.
    trace: Option<TraceSpec>,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("scale", &self.scale)
            .field("jobs", &self.jobs)
            .field("sims_run", &self.sims_run())
            .finish()
    }
}

impl Runner {
    /// Creates a runner at the given scale. The worker count defaults to
    /// the machine's available parallelism (override with
    /// [`Runner::set_jobs`], or the `--jobs`/`LB_JOBS` knobs of
    /// `lb-experiments`).
    pub fn new(scale: Scale) -> Self {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Runner {
            cfg: scale.config(),
            scale,
            engine: Engine::new(),
            best_swl: Mutex::new(HashMap::new()),
            jobs,
            verbose: false,
            profile: Mutex::new(Profile::default()),
            trace: None,
        }
    }

    /// Enables per-simulation event tracing: each distinct run key writes
    /// `<dir>/<sanitized key>.lbt` with the given event mask. The directory
    /// is created here; simulation behavior is unchanged (tracing is
    /// strictly observational).
    pub fn set_trace(&mut self, dir: std::path::PathBuf, mask: u64) -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        self.trace = Some(TraceSpec { dir, mask });
        Ok(())
    }

    /// The active trace capture configuration, if any.
    pub fn trace_spec(&self) -> Option<&TraceSpec> {
        self.trace.as_ref()
    }

    /// Overrides the memory-partition count of the base configuration
    /// (the `--partitions` knob of `lb-experiments`). Per-key overrides
    /// via [`RunKey::with_partitions`] still take precedence.
    pub fn set_partitions(&mut self, n: u32) {
        self.cfg = self.cfg.clone().with_mem_partitions(n);
    }

    /// Enables or disables the decoded access-descriptor cache (the
    /// `--no-desc-cache` escape hatch of the harness binaries). Output is
    /// byte-identical either way; the cache is purely a speed optimization.
    pub fn set_desc_cache(&mut self, on: bool) {
        self.cfg = self.cfg.clone().with_desc_cache(on);
    }

    /// Enables or disables greedy-run burst execution and SM local clocks
    /// (the `--no-burst` escape hatch of the harness binaries). Output is
    /// byte-identical either way; bursting is purely a speed optimization.
    pub fn set_burst(&mut self, on: bool) {
        self.cfg = self.cfg.clone().with_burst(on);
    }

    /// Sets the intra-simulation worker-thread count: each simulation's
    /// due SMs are stepped on a work-stealing pool of `n` threads (the
    /// `--sim-threads`/`LB_SIM_THREADS` knobs of the harness binaries).
    /// Output is byte-identical at any count; `1` (the default) is the
    /// exact serial path. Not part of [`RunKey`], so the memo is shared
    /// across thread counts — which is sound precisely because results
    /// cannot differ.
    pub fn set_sim_threads(&mut self, n: u32) {
        self.cfg = self.cfg.clone().with_sim_threads(n);
    }

    /// The configured intra-simulation worker-thread count.
    pub fn sim_threads(&self) -> u32 {
        self.cfg.sim_threads
    }

    /// The scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The base configuration (before per-architecture transforms).
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Worker threads used by [`Runner::prefetch`].
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Number of simulations actually executed so far. Each distinct
    /// [`RunKey`] contributes at most one, no matter how many figures (or
    /// threads) request it.
    pub fn sims_run(&self) -> u64 {
        self.engine.sims_run()
    }

    /// Runs (or recalls) `app` under `arch` on the scale's base config.
    pub fn run(&self, app: &AppSpec, arch: Arch) -> Arc<SimStats> {
        self.run_key(RunKey::for_app(app, arch))
    }

    /// Runs with an overridden L1 size (Figure 14 sweeps).
    pub fn run_l1(&self, app: &AppSpec, arch: Arch, l1_bytes: u64) -> Arc<SimStats> {
        self.run_key(RunKey::for_app(app, arch).with_l1(l1_bytes))
    }

    /// Runs the baseline with detailed per-load statistics (Figures 2/3).
    ///
    /// The paper defines reuse and streaming over 50 000-cycle windows;
    /// shorter scale windows cannot observe typical reuse distances, so
    /// detailed runs always use the paper's window length (and enough
    /// cycles for several windows), independent of the scale.
    pub fn run_detailed(&self, app: &AppSpec) -> Arc<SimStats> {
        self.run_key(RunKey::for_app(app, Arch::Baseline).with_detailed())
    }

    /// Runs (or recalls) an explicit [`RunKey`].
    pub fn run_key(&self, key: RunKey) -> Arc<SimStats> {
        self.engine.run(key, |k| self.compute(k))
    }

    /// Executes a batch of keys across [`Runner::jobs`] worker threads with
    /// single-flight deduplication; every key is warm in the memo
    /// afterwards, so rendering never simulates. Duplicate and
    /// already-memoized keys cost nothing.
    pub fn prefetch(&self, keys: &[RunKey]) {
        self.engine.prefetch(keys, self.jobs, self.verbose, |k| self.compute(k));
    }

    /// The single place a simulation is actually launched: builds the
    /// config from the key's [`crate::runkey::ArchSpec`] and calls the pure
    /// `run_kernel`.
    fn compute(&self, key: &RunKey) -> SimStats {
        // Trace-driven workloads (`trace:<name>` keys) resolve through the
        // runtime registry; everything else through the synthetic app table.
        let replay = workloads::traces::get(key.app);
        let (cfg, kernel) = match &replay {
            Some(rep) => (key.spec().config_for_kernel(&self.cfg, &rep.stub), None),
            None => {
                let app = workloads::app(key.app)
                    .unwrap_or_else(|| panic!("unknown app in run key: {key}"));
                let cfg = key.spec().config(&self.cfg, &app);
                let kernel = app.kernel(cfg.n_sms);
                (cfg, Some(kernel))
            }
        };
        let t0 = std::time::Instant::now();
        let mut trace_io = None;
        let stats = match &self.trace {
            None => match &replay {
                Some(rep) => run_replay_kernel(cfg, rep, &key.arch.factory()),
                None => run_kernel(cfg, kernel.unwrap(), &key.arch.factory()),
            },
            Some(spec) => {
                // Partitioned runs carry per-record partition ids in the
                // wire format; the flag bit sits outside `parse_mask`'s
                // reach, so it is OR'd in here, never by the user.
                let mask = if cfg.n_mem_partitions > 1 {
                    spec.mask | gpu_sim::trace::FLAG_PART_IDS
                } else {
                    spec.mask
                };
                let path = spec.dir.join(format!("{}.lbt", sanitize_key(&key.to_string())));
                let writer = TraceWriter::to_file(&path, mask)
                    .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
                let tracer = Tracer::new(writer);
                let stats = match &replay {
                    Some(rep) => {
                        run_replay_kernel_traced(cfg, rep, &key.arch.factory(), tracer.clone())
                    }
                    None => {
                        run_kernel_traced(cfg, kernel.unwrap(), &key.arch.factory(), tracer.clone())
                    }
                };
                tracer
                    .finish()
                    .unwrap_or_else(|e| panic!("cannot flush trace file {}: {e}", path.display()));
                trace_io = Some((tracer.bytes(), tracer.events()));
                stats
            }
        };
        let mut prof = self.profile.lock().unwrap();
        prof.record(key.to_string(), t0.elapsed().as_secs_f64(), &stats);
        if let Some((bytes, events)) = trace_io {
            prof.record_trace(bytes, events);
        }
        drop(prof);
        stats
    }

    /// Snapshot of the hot-path profile accumulated so far.
    pub fn profile(&self) -> Profile {
        self.profile.lock().unwrap().clone()
    }

    /// The keys the Best-SWL oracle for `app` needs: the unlimited baseline
    /// plus every effective [`SWL_CANDIDATES`] point. Prefetching these
    /// makes a later [`Runner::best_swl`] call pure table lookup.
    pub fn best_swl_plan(&self, app: &AppSpec) -> Vec<RunKey> {
        let resident = app.resident_ctas(&self.cfg);
        std::iter::once(RunKey::for_app(app, Arch::Baseline))
            .chain(
                SWL_CANDIDATES
                    .into_iter()
                    .filter(|&l| l < resident) // l >= resident: no throttling effect
                    .map(|l| RunKey::for_app(app, Arch::StaticLimit(l))),
            )
            .collect()
    }

    /// Best-SWL oracle for `app`: sweeps [`SWL_CANDIDATES`] plus unlimited
    /// and returns `(best limit, stats of the best run)`. `None` means the
    /// unlimited baseline won. The result is memoized per app, so repeat
    /// calls (every normalized figure takes this denominator) cost nothing.
    pub fn best_swl(&self, app: &AppSpec) -> BestSwl {
        if let Some(hit) = self.best_swl.lock().unwrap().get(app.abbrev) {
            return hit.clone();
        }
        // Compute outside the lock: the sweep may simulate for minutes and
        // the engine already deduplicates the underlying runs, so a
        // concurrent racer computes the same arg-max from the same stats.
        let mut best: BestSwl = (None, self.run(app, Arch::Baseline));
        for key in self.best_swl_plan(app) {
            if key.arch == Arch::Baseline {
                continue;
            }
            let s = self.run_key(key);
            if s.ipc() > best.1.ipc() {
                let limit = match key.arch {
                    Arch::StaticLimit(l) => Some(l),
                    _ => unreachable!("best_swl_plan emits only baseline/static-limit keys"),
                };
                best = (limit, s);
            }
        }
        self.best_swl.lock().unwrap().insert(app.abbrev, best.clone());
        best
    }

    /// IPC of the Best-SWL oracle (the usual normalization denominator).
    pub fn best_swl_ipc(&self, app: &AppSpec) -> f64 {
        self.best_swl(app).1.ipc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::app;

    #[test]
    fn memoization_avoids_reruns() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let s1 = r.run(&a, Arch::Baseline);
        let n = r.sims_run();
        let s2 = r.run(&a, Arch::Baseline);
        assert_eq!(r.sims_run(), n, "second call must hit the memo");
        assert!(Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn l1_override_is_distinct_key() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let _ = r.run(&a, Arch::Baseline);
        let _ = r.run_l1(&a, Arch::Baseline, 16 * 1024);
        assert_eq!(r.sims_run(), 2);
    }

    #[test]
    fn best_swl_never_below_baseline() {
        let r = Runner::new(Scale::Quick);
        let a = app("S2").unwrap();
        let base = r.run(&a, Arch::Baseline).ipc();
        let (_, best) = r.best_swl(&a);
        assert!(best.ipc() >= base - 1e-12);
    }

    #[test]
    fn detailed_run_collects_load_windows() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let s = r.run_detailed(&a);
        assert!(!s.load_detail.is_empty(), "detailed stats must be collected");
    }

    #[test]
    fn best_swl_result_is_memoized() {
        let r = Runner::new(Scale::Quick);
        let a = app("S2").unwrap();
        let first = r.best_swl(&a);
        let n = r.sims_run();
        let second = r.best_swl(&a);
        assert_eq!(r.sims_run(), n, "second best_swl call must not simulate");
        assert_eq!(first.0, second.0);
        assert!(Arc::ptr_eq(&first.1, &second.1));
    }

    #[test]
    fn prefetched_plan_makes_best_swl_free() {
        let r = Runner::new(Scale::Quick);
        let a = app("S2").unwrap();
        let plan = r.best_swl_plan(&a);
        assert!(plan.len() >= 2, "sweep must include baseline plus candidates");
        r.prefetch(&plan);
        let n = r.sims_run();
        assert_eq!(n as usize, plan.len());
        let _ = r.best_swl(&a);
        assert_eq!(r.sims_run(), n, "best_swl after prefetch must be lookup only");
    }

    #[test]
    fn prefetch_deduplicates_keys() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let key = RunKey::for_app(&a, Arch::Baseline);
        r.prefetch(&[key, key, key]);
        assert_eq!(r.sims_run(), 1);
    }

    #[test]
    fn run_key_matches_legacy_entry_points() {
        let r = Runner::new(Scale::Quick);
        let a = app("GA").unwrap();
        let via_key = r.run_key(RunKey::for_app(&a, Arch::Baseline).with_l1(16 * 1024));
        let via_legacy = r.run_l1(&a, Arch::Baseline, 16 * 1024);
        assert!(Arc::ptr_eq(&via_key, &via_legacy));
        assert_eq!(r.sims_run(), 1);
    }
}
