//! Figure 14: L1 cache-size sweep (16/48/64/96/128 KB). Within each cache
//! configuration, Linebacker and CERF are normalized to the baseline with
//! the same L1 size. The paper reports LB/CERF improvements of 78.0/58.1 %
//! at 16 KB shrinking to 12.0/6.1 % at 128 KB.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// The swept L1 sizes in KB.
pub const L1_SIZES_KB: [u64; 5] = [16, 48, 64, 96, 128];

/// Runs the cache-size sweep.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig14",
        "L1 size sweep: LB and CERF geometric-mean speedup vs same-size baseline",
        vec!["l1_kb".into(), "LB".into(), "CERF".into()],
    );
    for kbs in L1_SIZES_KB {
        let bytes = kbs * 1024;
        let mut lb_ratios = Vec::new();
        let mut cerf_ratios = Vec::new();
        for app in all_apps() {
            let base = r.run_l1(&app, Arch::Baseline, bytes).ipc();
            let lb = r.run_l1(&app, Arch::Linebacker, bytes).ipc();
            let cerf = r.run_l1(&app, Arch::Cerf, bytes).ipc();
            lb_ratios.push(lb / base.max(1e-9));
            cerf_ratios.push(cerf / base.max(1e-9));
        }
        t.row(vec![
            kbs.to_string(),
            f3(gpu_sim::stats::geometric_mean(&lb_ratios)),
            f3(gpu_sim::stats::geometric_mean(&cerf_ratios)),
        ]);
    }
    t.note("paper: 16KB LB 1.78 / CERF 1.58; 48KB LB 1.44; 128KB LB 1.12 / CERF 1.06");
    t.note("expected shape: gains shrink as the L1 grows; LB >= CERF throughout");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for kbs in L1_SIZES_KB {
        let bytes = kbs * 1024;
        for app in all_apps() {
            for arch in [Arch::Baseline, Arch::Linebacker, Arch::Cerf] {
                keys.push(RunKey::for_app(&app, arch).with_l1(bytes));
            }
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_shrink_with_cache_size_and_lb_leads() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let lb: Vec<f64> = t.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        let cerf: Vec<f64> = t.rows.iter().map(|row| row[2].parse().unwrap()).collect();
        // Gains shrink as the cache grows: the 48 KB point must beat the
        // 128 KB point (the 16 KB point is noisy at quick scale because the
        // severely thrashed baseline slows warp progress).
        assert!(lb[1] > *lb.last().unwrap(), "LB gain should shrink from 48KB to 128KB: {lb:?}");
        // LB never seriously harms any cache size.
        for (i, v) in lb.iter().enumerate() {
            assert!(*v > 0.93, "LB harmful at sweep point {i}: {v}");
        }
        // CERF also shrinks with cache size (its gain comes from the same
        // extra capacity).
        assert!(cerf[1] > 0.95, "CERF harmful at 48KB: {}", cerf[1]);
        // LB improves on the baseline at 48 KB.
        assert!(lb[1] > 1.0, "LB must beat the 48KB baseline");
        // Known deviation vs the paper at large caches: LB's victim space is
        // bounded by partition alignment above the LRN, while our CERF model
        // uses all statically idle registers — so CERF can lead at 96-128 KB
        // here (the paper has LB lead throughout). Documented in
        // EXPERIMENTS.md; not asserted.
    }
}
