//! Figure 12: the headline comparison — Baseline, Best-SWL, PCAL, CERF and
//! Linebacker, normalized to Best-SWL. The paper's geometric means are
//! 0.775 / 1.000 / 1.076 / 1.196 / 1.290.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Runs the headline comparison.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig12",
        "performance vs previous approaches (normalized to Best-SWL)",
        vec![
            "app".into(),
            "Baseline".into(),
            "Best-SWL".into(),
            "PCAL".into(),
            "CERF".into(),
            "LB".into(),
        ],
    );
    for app in all_apps() {
        let bswl = r.best_swl_ipc(&app);
        let norm = |arch: Arch| f3(r.run(&app, arch).ipc() / bswl.max(1e-9));
        t.row(vec![
            app.abbrev.into(),
            norm(Arch::Baseline),
            "1.000".into(),
            norm(Arch::Pcal),
            norm(Arch::Cerf),
            norm(Arch::Linebacker),
        ]);
    }
    t.gm_row("GM", &[1, 2, 3, 4, 5]);
    t.note("paper GM: baseline 0.775, PCAL 1.076, CERF 1.196, LB 1.290");
    t.note("known deviation: our PCAL lands below Best-SWL (see EXPERIMENTS.md)");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        keys.extend(r.best_swl_plan(&app));
        for arch in [Arch::Baseline, Arch::Pcal, Arch::Cerf, Arch::Linebacker] {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ordering_holds() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = t.rows.last().unwrap();
        let base: f64 = gm[1].parse().unwrap();
        let cerf: f64 = gm[4].parse().unwrap();
        let lb: f64 = gm[5].parse().unwrap();
        assert!(base < 1.0, "baseline must lose to Best-SWL (got {base})");
        assert!(lb > 1.0, "LB must beat Best-SWL (got {lb})");
        // At quick scale (single SM, short run) LB pays its probe cost but
        // cannot amortize it; require parity within 5%. The default scale
        // reproduces the paper's LB > CERF ordering (see EXPERIMENTS.md).
        assert!(lb > cerf * 0.95, "LB ({lb}) must not lose clearly to CERF ({cerf})");
        assert!(cerf > base, "CERF must beat baseline");
    }
}
