//! Figure 17: off-chip memory traffic, normalized to the baseline, and the
//! register backup/restore overhead of Linebacker. The paper reports LB
//! reducing traffic by 24.0 % vs the baseline (4.6 % more reduction than
//! CERF), with backup/restore under 1 % of total traffic.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, pct, Table};

/// Runs the traffic comparison.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig17",
        "off-chip traffic (normalized to baseline, per instruction) and LB backup overhead",
        vec!["app".into(), "CERF".into(), "LB".into(), "lb_backup_share".into()],
    );
    for app in all_apps() {
        let per_inst = |s: &gpu_sim::stats::SimStats| {
            s.dram_bytes.iter().sum::<u64>() as f64 / s.instructions.max(1) as f64
        };
        let base = per_inst(&r.run(&app, Arch::Baseline)).max(1e-12);
        let cerf = per_inst(&r.run(&app, Arch::Cerf));
        let lb_stats = r.run(&app, Arch::Linebacker);
        let lb = per_inst(&lb_stats);
        let total: u64 = lb_stats.dram_bytes.iter().sum();
        let backup = lb_stats.dram_bytes[2] + lb_stats.dram_bytes[3];
        t.row(vec![
            app.abbrev.into(),
            f3(cerf / base),
            f3(lb / base),
            pct(backup as f64 / total.max(1) as f64),
        ]);
    }
    t.gm_row("GM", &[1, 2]);
    t.note("paper: LB traffic 0.760 of baseline (CERF 0.806); backup/restore <1% everywhere");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        for arch in [Arch::Baseline, Arch::Cerf, Arch::Linebacker] {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_reduces_traffic_and_backup_is_negligible() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = &t.rows[t.rows.len() - 1];
        let lb: f64 = gm[2].parse().unwrap();
        assert!(lb < 1.0, "LB must reduce per-instruction traffic (got {lb})");
        // Backup overhead is a one-time cost per CTA switch; over the
        // paper's multi-million-cycle runs it is <1% of traffic. Short
        // quick-scale runs cannot amortize it, especially in apps whose
        // demand traffic collapses once the victim cache works, so the
        // bound here is loose; the share shrinks with run length.
        for row in &t.rows[..t.rows.len() - 1] {
            let share: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(share < 40.0, "{}: backup share {share}% too high", row[0]);
        }
    }

    #[test]
    fn lb_at_least_matches_cerf_reduction() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = &t.rows[t.rows.len() - 1];
        let cerf: f64 = gm[1].parse().unwrap();
        let lb: f64 = gm[2].parse().unwrap();
        // LB's backup/restore traffic is amortized only over long runs;
        // allow CERF a margin at quick scale.
        assert!(lb <= cerf * 1.25, "LB ({lb}) should reduce roughly as much as CERF ({cerf})");
    }
}
