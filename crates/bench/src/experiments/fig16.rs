//! Figure 16: register-file bank conflicts of CERF and Linebacker,
//! normalized to the baseline. The paper reports +52.4 % for CERF and
//! +29.1 % for Linebacker: both add victim traffic to the register banks,
//! but LB filters streaming data and hits more often in L1.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Runs the bank-conflict comparison.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig16",
        "register-file bank conflicts (normalized to baseline)",
        vec!["app".into(), "CERF".into(), "LB".into()],
    );
    for app in all_apps() {
        let base = r.run(&app, Arch::Baseline);
        // Normalize per executed instruction so IPC differences between the
        // architectures do not distort the conflict comparison.
        let rate = |s: &gpu_sim::stats::SimStats| {
            s.rf_bank_conflicts as f64 / s.instructions.max(1) as f64
        };
        let b = rate(&base).max(1e-12);
        let cerf = rate(&r.run(&app, Arch::Cerf));
        let lb = rate(&r.run(&app, Arch::Linebacker));
        t.row(vec![app.abbrev.into(), f3(cerf / b), f3(lb / b)]);
    }
    t.gm_row("GM", &[1, 2]);
    t.note("paper: CERF 1.524, LB 1.291 (conflicts per run, normalized to baseline)");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        for arch in [Arch::Baseline, Arch::Cerf, Arch::Linebacker] {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cerf_has_more_conflicts_than_lb() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = t.rows.last().unwrap();
        let cerf: f64 = gm[1].parse().unwrap();
        let lb: f64 = gm[2].parse().unwrap();
        assert!(cerf > lb, "CERF ({cerf}) must produce more bank conflicts than LB ({lb})");
        assert!(cerf > 1.0, "CERF must add conflicts over baseline");
    }
}
