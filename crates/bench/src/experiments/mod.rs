//! One module per reproduced artifact of the paper's evaluation.

pub mod ablation;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod overhead;
pub mod table2;

use crate::runner::Runner;
use crate::table::Table;

/// Experiment ids in presentation order.
pub const ALL: [&str; 18] = [
    "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "overhead", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation",
];

/// Runs one experiment by id.
pub fn run(id: &str, r: &Runner) -> Option<Table> {
    let t = match id {
        "table2" => table2::run(r),
        "fig01" | "fig1" => fig01::run(r),
        "fig02" | "fig2" => fig02::run(r),
        "fig03" | "fig3" => fig03::run(r),
        "fig04" | "fig4" => fig04::run(r),
        "fig05" | "fig5" => fig05::run(r),
        "fig09" | "fig9" => fig09::run(r),
        "fig10" => fig10::run(r),
        "fig11" => fig11::run(r),
        "fig12" => fig12::run(r),
        "fig13" => fig13::run(r),
        "fig14" => fig14::run(r),
        "fig15" => fig15::run(r),
        "fig16" => fig16::run(r),
        "fig17" => fig17::run(r),
        "fig18" => fig18::run(r),
        "overhead" => overhead::run(r),
        "ablation" => ablation::run(r),
        _ => return None,
    };
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        let r = crate::shared_quick_runner();
        assert!(run("fig99", &r).is_none());
    }

    #[test]
    fn alias_ids_resolve() {
        let r = crate::shared_quick_runner();
        assert!(run("overhead", &r).is_some());
    }
}
