//! One module per reproduced artifact of the paper's evaluation.

pub mod ablation;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod overhead;
pub mod partition;
pub mod table2;
pub mod trace_replay;

use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::Table;

/// Experiment ids in presentation order.
///
/// The `partition` sensitivity sweep and the `trace_replay` corpus study
/// are runnable by explicit id but deliberately not listed here: the
/// default suite's output must stay byte-identical to the synthetic-only
/// harness.
pub const ALL: [&str; 18] = [
    "table2", "fig01", "fig02", "fig03", "fig04", "fig05", "overhead", "fig09", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation",
];

/// Runs one experiment by id.
pub fn run(id: &str, r: &Runner) -> Option<Table> {
    let t = match id {
        "table2" => table2::run(r),
        "fig01" | "fig1" => fig01::run(r),
        "fig02" | "fig2" => fig02::run(r),
        "fig03" | "fig3" => fig03::run(r),
        "fig04" | "fig4" => fig04::run(r),
        "fig05" | "fig5" => fig05::run(r),
        "fig09" | "fig9" => fig09::run(r),
        "fig10" => fig10::run(r),
        "fig11" => fig11::run(r),
        "fig12" => fig12::run(r),
        "fig13" => fig13::run(r),
        "fig14" => fig14::run(r),
        "fig15" => fig15::run(r),
        "fig16" => fig16::run(r),
        "fig17" => fig17::run(r),
        "fig18" => fig18::run(r),
        "overhead" => overhead::run(r),
        "ablation" => ablation::run(r),
        "partition" => partition::run(r),
        "trace_replay" => trace_replay::run(r),
        _ => return None,
    };
    Some(t)
}

/// First-round simulation plan of one experiment: the [`RunKey`]s its
/// [`run`] will request. Collecting plans across experiments up front lets
/// the harness execute the deduplicated union in parallel before any
/// rendering. Returns `None` for unknown ids. Planning itself never
/// simulates.
pub fn plan(id: &str, r: &Runner) -> Option<Vec<RunKey>> {
    let keys = match id {
        "table2" => table2::runs(r),
        "fig01" | "fig1" => fig01::runs(r),
        "fig02" | "fig2" => fig02::runs(r),
        "fig03" | "fig3" => fig03::runs(r),
        "fig04" | "fig4" => fig04::runs(r),
        "fig05" | "fig5" => fig05::runs(r),
        "fig09" | "fig9" => fig09::runs(r),
        "fig10" => fig10::runs(r),
        "fig11" => fig11::runs(r),
        "fig12" => fig12::runs(r),
        "fig13" => fig13::runs(r),
        "fig14" => fig14::runs(r),
        "fig15" => fig15::runs(r),
        "fig16" => fig16::runs(r),
        "fig17" => fig17::runs(r),
        "fig18" => fig18::runs(r),
        "overhead" => overhead::runs(r),
        "ablation" => ablation::runs(r),
        "partition" => partition::runs(r),
        "trace_replay" => trace_replay::runs(r),
        _ => return None,
    };
    Some(keys)
}

/// Second-round keys whose identity depends on first-round results (Figure
/// 5's Best-SWL+CacheExt point needs the sweep winner). Call after the
/// [`plan`] batch has executed; with a warm memo this is a cheap arg-max,
/// not a simulation. Returns `None` for unknown ids.
pub fn followup(id: &str, r: &Runner) -> Option<Vec<RunKey>> {
    match id {
        "fig05" | "fig5" => Some(fig05::followup_runs(r)),
        _ => plan(id, r).map(|_| Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        let r = crate::shared_quick_runner();
        assert!(run("fig99", r).is_none());
    }

    #[test]
    fn alias_ids_resolve() {
        let r = crate::shared_quick_runner();
        assert!(run("overhead", r).is_some());
    }

    #[test]
    fn partition_sweep_is_opt_in() {
        // Runnable by explicit id, absent from the default suite (whose
        // output must stay byte-identical to the pre-partition harness).
        assert!(!ALL.contains(&"partition"));
        let r = crate::shared_quick_runner();
        assert!(plan("partition", r).is_some());
        assert!(followup("partition", r).is_some());
    }

    #[test]
    fn trace_replay_is_opt_in() {
        // Runnable by explicit id, absent from the default suite (whose
        // output must stay byte-identical to the synthetic-only harness).
        assert!(!ALL.contains(&"trace_replay"));
        let r = crate::shared_quick_runner();
        assert!(plan("trace_replay", r).is_some());
        assert!(followup("trace_replay", r).is_some());
    }

    #[test]
    fn every_experiment_has_a_plan() {
        let r = crate::shared_quick_runner();
        for id in ALL {
            assert!(plan(id, r).is_some(), "{id} has no plan");
            assert!(followup(id, r).is_some(), "{id} has no followup plan");
        }
        assert!(plan("fig99", r).is_none());
    }

    #[test]
    fn plan_covers_render_for_fig01_and_table2() {
        let r = crate::shared_quick_runner();
        for id in ["fig01", "table2"] {
            r.prefetch(&plan(id, r).unwrap());
            let warm = r.sims_run();
            let _ = run(id, r).unwrap();
            assert_eq!(r.sims_run(), warm, "{id} simulated during rendering");
        }
    }

    #[test]
    fn fig05_followup_completes_the_plan() {
        let r = crate::shared_quick_runner();
        r.prefetch(&plan("fig05", r).unwrap());
        r.prefetch(&followup("fig05", r).unwrap());
        let warm = r.sims_run();
        let _ = run("fig05", r).unwrap();
        assert_eq!(r.sims_run(), warm, "fig05 simulated during rendering");
    }
}
