//! Figure 5: the idealized enhanced-L1 study (§2.4). CacheExt enlarges the
//! L1 by the statically unused register space; Best-SWL+CacheExt adds the
//! dynamically unused space as well. The paper reports geometric-mean
//! speedups over the baseline of 11.5 % (Best-SWL), 54.3 % (CacheExt) and
//! 77.0 % (Best-SWL+CacheExt).

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Runs the CacheExt motivation experiment.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig05",
        "idealized enhanced-L1 performance (normalized to baseline)",
        vec!["app".into(), "Best-SWL".into(), "CacheExt".into(), "BSWL+CacheExt".into()],
    );
    for app in all_apps() {
        let base = r.run(&app, Arch::Baseline).ipc();
        let (limit, swl) = r.best_swl(&app);
        let ext = r.run(&app, Arch::CacheExt).ipc();
        // Best-SWL+CacheExt: the oracle limit plus the L1 absorbing SUR+DUR.
        let resident = app.resident_ctas(r.config());
        let both = match limit {
            Some(l) => r.run(&app, Arch::BestSwlCacheExt(l)).ipc(),
            None => r.run(&app, Arch::BestSwlCacheExt(resident)).ipc(),
        };
        t.row(vec![app.abbrev.into(), f3(swl.ipc() / base), f3(ext / base), f3(both / base)]);
    }
    t.gm_row("GM", &[1, 2, 3]);
    t.note("paper GM: Best-SWL 1.115, CacheExt 1.543, Best-SWL+CacheExt 1.770");
    t
}

/// The first-round simulations [`run`] needs, as a prefetchable plan.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        keys.extend(r.best_swl_plan(&app));
        keys.push(RunKey::for_app(&app, Arch::CacheExt));
    }
    keys
}

/// Second-round keys whose identity depends on first-round results: the
/// Best-SWL+CacheExt point uses the winning limit of the sweep. Cheap once
/// the [`runs`] batch is warm (the arg-max is a memo lookup).
pub fn followup_runs(r: &Runner) -> Vec<RunKey> {
    all_apps()
        .iter()
        .map(|app| {
            let (limit, _) = r.best_swl(app);
            let l = limit.unwrap_or_else(|| app.resident_ctas(r.config()));
            RunKey::for_app(app, Arch::BestSwlCacheExt(l))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ext_beats_best_swl_on_average() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = t.rows.last().unwrap();
        let swl: f64 = gm[1].parse().unwrap();
        let ext: f64 = gm[2].parse().unwrap();
        let both: f64 = gm[3].parse().unwrap();
        assert!(ext > swl, "CacheExt ({ext}) must beat Best-SWL ({swl}) on GM");
        // The Best-SWL limit is tuned for the small cache and can be
        // suboptimal once the L1 is enlarged; require it to stay in the
        // ballpark of CacheExt and clearly above Best-SWL alone.
        assert!(both >= ext * 0.80, "combined ({both}) far below CacheExt ({ext})");
        assert!(both > swl, "combined ({both}) must beat Best-SWL alone ({swl})");
        assert!(swl >= 0.99, "Best-SWL must not lose to baseline");
    }
}
