//! Trace-replay study (simulator-infrastructure experiment, not a paper
//! artifact): every workload trace in the checked-in corpus, replayed
//! under the four headline policies.
//!
//! The corpus under `crates/lb-replay/testdata/` holds LBW1 captures of
//! synthetic applications plus an imported Accel-Sim-style text trace, so
//! this experiment exercises the whole trace frontend end-to-end: decode
//! (or import), registry resolution through `trace:<name>` run keys, and
//! the replay execution path under Baseline, CacheExt, PCAL and
//! Linebacker. Rows report IPC and the L1/register-file hit split — the
//! same axes the paper's headline figures use for the synthetic suite.
//!
//! Not registered in [`crate::experiments::ALL`]: the default suite's
//! output must stay byte-identical to the synthetic-only harness. Run
//! explicitly with `lb-experiments trace_replay`.

use std::sync::Arc;

use gpu_sim::types::AccessOutcome;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, pct, Table};

/// The four policies every trace is replayed under.
pub const ARCHS: [Arch; 4] = [Arch::Baseline, Arch::CacheExt, Arch::Pcal, Arch::Linebacker];

/// Registers the checked-in corpus (every `.lbw1` and `.traceg` file under
/// `crates/lb-replay/testdata/`, by file stem) and returns every registered
/// trace key, sorted — the corpus plus any traces the harness loaded via
/// `--workload trace:PATH`. Idempotent: re-registration reuses existing
/// keys, so repeated calls (tests, plan + run) never grow the registry.
pub fn corpus_keys() -> Vec<&'static str> {
    let dir = lb_replay::testdata_dir();
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default();
    files.sort();
    for path in files {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
        let rep = match path.extension().and_then(|e| e.to_str()) {
            Some("lbw1") => lb_replay::read_file(&path),
            Some("traceg") => lb_replay::import_file(&path),
            _ => continue,
        };
        let rep = rep.unwrap_or_else(|e| panic!("corpus file {} unreadable: {e}", path.display()));
        workloads::traces::register(stem, Arc::new(rep));
    }
    workloads::traces::names()
}

/// Replays the corpus under every policy and renders the comparison table.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "trace_replay",
        "trace corpus replayed under the headline policies",
        vec![
            "trace".into(),
            "arch".into(),
            "IPC".into(),
            "l1_hit".into(),
            "reg_hit".into(),
            "insts".into(),
        ],
    );
    let keys = corpus_keys();
    for key in &keys {
        for arch in ARCHS {
            let s = r.run_key(RunKey::new(key, arch));
            t.row(vec![
                key.strip_prefix("trace:").unwrap_or(key).into(),
                arch.label(),
                f3(s.ipc()),
                pct(s.outcome_fraction(AccessOutcome::L1Hit)),
                pct(s.outcome_fraction(AccessOutcome::RegHit)),
                s.instructions.to_string(),
            ]);
        }
    }
    if keys.is_empty() {
        t.note("corpus empty: no .lbw1/.traceg files under crates/lb-replay/testdata/");
    } else {
        t.note(format!(
            "{} traces × {} policies; traces are finite, so runs are work-bounded",
            keys.len(),
            ARCHS.len()
        ));
    }
    t
}

/// The experiment's simulation plan: every (trace, policy) point.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    corpus_keys()
        .into_iter()
        .flat_map(|key| ARCHS.into_iter().map(move |arch| RunKey::new(key, arch)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_registers_and_plan_covers_render() {
        let keys = corpus_keys();
        assert!(!keys.is_empty(), "checked-in corpus must not be empty");
        assert!(keys.iter().all(|k| k.starts_with("trace:")));
        // Idempotent: a second scan returns the same leaked keys.
        assert_eq!(corpus_keys(), keys);
        let r = crate::shared_quick_runner();
        r.prefetch(&runs(r));
        let warm = r.sims_run();
        let t = run(r);
        assert_eq!(r.sims_run(), warm, "trace_replay simulated during rendering");
        assert_eq!(t.rows.len(), keys.len() * ARCHS.len());
    }
}
