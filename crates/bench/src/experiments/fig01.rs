//! Figure 1: breakdown of cold vs capacity/conflict (2C) miss ratio in the
//! baseline. The paper reports an average total miss ratio of 66.6 % with
//! 44.6 % capacity/conflict (67 % of all misses).

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{pct, Table};

/// Runs the miss-breakdown experiment.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig01",
        "cold vs capacity/conflict miss ratio breakdown (baseline)",
        vec!["app".into(), "cold".into(), "2C".into(), "total_miss".into(), "2C_share".into()],
    );
    let mut cold_sum = 0.0;
    let mut c2_sum = 0.0;
    for app in all_apps() {
        let s = r.run(&app, Arch::Baseline);
        let denom = (s.l1_hits + s.misses()) as f64;
        let cold = s.miss_cold as f64 / denom.max(1.0);
        let c2 = s.miss_2c as f64 / denom.max(1.0);
        cold_sum += cold;
        c2_sum += c2;
        let share = if s.misses() > 0 { s.miss_2c as f64 / s.misses() as f64 } else { 0.0 };
        t.row(vec![app.abbrev.into(), pct(cold), pct(c2), pct(cold + c2), pct(share)]);
    }
    let n = 20.0;
    t.row(vec![
        "AVG".into(),
        pct(cold_sum / n),
        pct(c2_sum / n),
        pct((cold_sum + c2_sum) / n),
        pct(c2_sum / (cold_sum + c2_sum)),
    ]);
    t.note("paper: avg total miss 66.6%, avg 2C 44.6% (67.0% of all misses)");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    all_apps().iter().map(|a| RunKey::for_app(a, Arch::Baseline)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_dominated_by_capacity_conflict() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        // The AVG row's 2C share should exceed 50% (paper: 67%).
        let avg = t.rows.last().unwrap();
        let share: f64 = avg[4].trim_end_matches('%').parse().unwrap();
        assert!(share > 33.0, "2C share {share}% too low");
        // Total miss ratio should be substantial (paper: 66.6%).
        let total: f64 = avg[3].trim_end_matches('%').parse().unwrap();
        assert!(total > 40.0, "total miss ratio {total}% too low");
    }
}
