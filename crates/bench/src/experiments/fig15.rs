//! Figure 15: combinations of previous works (§5.5) — PCAL+CERF,
//! Baseline+SVC, PCAL+SVC, full Linebacker, and LB+CacheExt, normalized to
//! Best-SWL. The paper reports 1.213 / (VC) / 1.251 / 1.290 / 1.419.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Runs the combination study.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig15",
        "combinations of warp scheduling and cache structures (normalized to Best-SWL)",
        vec![
            "app".into(),
            "Base+SVC".into(),
            "PCAL+CERF".into(),
            "PCAL+SVC".into(),
            "LB".into(),
            "LB+CacheExt".into(),
        ],
    );
    for app in all_apps() {
        let bswl = r.best_swl_ipc(&app);
        let norm = |arch: Arch| f3(r.run(&app, arch).ipc() / bswl.max(1e-9));
        t.row(vec![
            app.abbrev.into(),
            norm(Arch::BaselineSvc),
            norm(Arch::PcalCerf),
            norm(Arch::PcalSvc),
            norm(Arch::Linebacker),
            norm(Arch::LbCacheExt),
        ]);
    }
    t.gm_row("GM", &[1, 2, 3, 4, 5]);
    t.note("paper GM: PCAL+CERF 1.213, PCAL+SVC 1.251, LB 1.290, LB+CacheExt 1.419");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        keys.extend(r.best_swl_plan(&app));
        for arch in
            [Arch::BaselineSvc, Arch::PcalCerf, Arch::PcalSvc, Arch::Linebacker, Arch::LbCacheExt]
        {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_beats_partial_combinations() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = t.rows.last().unwrap();
        let base_svc: f64 = gm[1].parse().unwrap();
        let lb: f64 = gm[4].parse().unwrap();
        let lb_ext: f64 = gm[5].parse().unwrap();
        assert!(lb >= base_svc, "full LB ({lb}) must beat SVC without throttling ({base_svc})");
        assert!(lb_ext >= lb * 0.98, "LB+CacheExt ({lb_ext}) should not lose to LB ({lb})");
    }
}
