//! §4.2: Linebacker's storage overhead (≈5.88 KB per SM, ~0.9 % of SM area).

use linebacker::StorageOverhead;

use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::Table;

/// Computes the storage-overhead table.
pub fn run(_r: &Runner) -> Table {
    let o = StorageOverhead::default();
    let mut t = Table::new(
        "overhead",
        "Linebacker per-SM storage overhead (§4.2)",
        vec!["structure".into(), "bytes".into()],
    );
    t.row(vec!["L1 per-line HPC fields".into(), o.hpc_fields_bytes.to_string()]);
    t.row(vec!["Load Monitor (32 entries)".into(), o.lm_bytes.to_string()]);
    t.row(vec!["IPC monitor".into(), o.ipc_monitor_bytes.to_string()]);
    t.row(vec!["CTA manager common info".into(), o.cta_common_bytes.to_string()]);
    t.row(vec!["Per-CTA info (32 entries)".into(), o.per_cta_bytes.to_string()]);
    t.row(vec!["Victim tag table (1536 entries)".into(), o.vtt_bytes.to_string()]);
    t.row(vec!["6-entry transfer buffer".into(), o.buffer_bytes.to_string()]);
    t.row(vec!["TOTAL".into(), o.total_bytes().to_string()]);
    t.note(format!("total {:.2} KB (paper: 5.88 KB, <0.9% of SM area)", o.total_kb()));
    t
}

/// [`run`] is analytic; it needs no simulations.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_close_to_paper() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let total: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        let kb = total / 1024.0;
        assert!((5.5..6.2).contains(&kb), "total {kb} KB should be ~5.88 KB");
    }
}
