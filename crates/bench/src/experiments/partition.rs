//! Partition-sensitivity sweep (simulator-infrastructure study, not a
//! paper artifact): IPC and total memory traffic across P ∈ {1, 2, 4, 8}
//! memory partitions.
//!
//! The partitioned memory subsystem splits the L2 and DRAM into P
//! identical slice/channel pairs with aggregate capacity, MSHRs, banks
//! and bandwidth held constant. The `conserved` column compares each
//! row's L2-access and DRAM-transaction totals against the P=1 row;
//! `DRIFT` (greppable) marks rows whose totals moved. At the harness
//! scales, runs are *cycle-bounded* (rate-based kernels outlive the
//! cycle cap), so a partition count that changes memory timing changes
//! how much work fits in the budget — DRIFT at P>1 therefore measures
//! timing sensitivity, not lost traffic. The strict conservation
//! invariants (per-partition counters sum to the global scalars, and
//! work-bounded runs do identical work at every P) are locked by the
//! `partition_conservation` and `partition_goldens` integration tests.
//!
//! Not registered in [`crate::experiments::ALL`]: the default suite must
//! stay byte-identical to the pre-partition harness. Run explicitly with
//! `lb-experiments partition`.

use gpu_sim::stats::SimStats;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Partition counts swept (powers of two; 1 is the monolithic baseline).
pub const SWEEP: [u32; 4] = [1, 2, 4, 8];

/// Apps under study: GE (cache-sensitive), LI (streaming), S2
/// (cache-sensitive, the paper's headline app).
pub const APPS: [&str; 3] = ["GE", "LI", "S2"];

/// Total L2 accesses and DRAM transactions of one run, summed over its
/// partitions.
fn totals(s: &SimStats) -> (u64, u64) {
    let l2 = s.partitions.iter().map(|p| p.l2_accesses).sum();
    let dram = s.partitions.iter().map(|p| p.dram_services).sum();
    (l2, dram)
}

/// Runs the sweep and renders the sensitivity table.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "partition",
        "memory-partition sensitivity (P = L2 slices = DRAM channels)",
        vec![
            "app".into(),
            "P".into(),
            "IPC".into(),
            "l2_acc".into(),
            "dram_tx".into(),
            "conserved".into(),
        ],
    );
    let mut drifted = 0u32;
    for app in APPS {
        let spec = workloads::app(app).expect("sweep app exists");
        let base = r.run_key(RunKey::for_app(&spec, Arch::Baseline).with_partitions(1));
        let (base_l2, base_dram) = totals(&base);
        for p in SWEEP {
            let s = r.run_key(RunKey::for_app(&spec, Arch::Baseline).with_partitions(p));
            let (l2, dram) = totals(&s);
            let conserved = l2 == base_l2 && dram == base_dram;
            if !conserved {
                drifted += 1;
            }
            t.row(vec![
                app.into(),
                p.to_string(),
                f3(s.ipc()),
                l2.to_string(),
                dram.to_string(),
                if conserved { "yes".into() } else { "DRIFT".into() },
            ]);
        }
    }
    if drifted == 0 {
        t.note("traffic conserved at every partition count (totals match P=1 exactly)");
    } else {
        t.note(format!(
            "DRIFT: {drifted} rows diverge from their P=1 totals (cycle-bounded runs: \
             partition timing changes how much work fits the cycle budget; the \
             work-bounded conservation invariant is locked by partition_conservation)"
        ));
    }
    t.note("aggregate L2/MSHR/bank/bandwidth capacity held constant across P");
    t
}

/// The sweep's simulation plan: every (app, P) point.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in APPS {
        let spec = workloads::app(app).expect("sweep app exists");
        for p in SWEEP {
            keys.push(RunKey::for_app(&spec, Arch::Baseline).with_partitions(p));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_render() {
        let r = crate::shared_quick_runner();
        r.prefetch(&runs(r));
        let warm = r.sims_run();
        let t = run(r);
        assert_eq!(r.sims_run(), warm, "partition sweep simulated during rendering");
        assert_eq!(t.rows.len(), APPS.len() * SWEEP.len());
    }

    #[test]
    fn sweep_points_are_distinct_keys() {
        let keys = runs(crate::shared_quick_runner());
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }
}
