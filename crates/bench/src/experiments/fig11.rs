//! Figure 11: the Linebacker ablation — plain Victim Caching (no selection),
//! Selective Victim Caching (no throttling), and the full design
//! (Throttling + SVC), normalized to Best-SWL.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Runs the ablation.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig11",
        "Linebacker technique breakdown (normalized to Best-SWL)",
        vec!["app".into(), "VictimCaching".into(), "SelectiveVC".into(), "Throttling+SVC".into()],
    );
    for app in all_apps() {
        let bswl = r.best_swl_ipc(&app);
        let vc = r.run(&app, Arch::VictimCaching).ipc();
        let svc = r.run(&app, Arch::Svc).ipc();
        let full = r.run(&app, Arch::Linebacker).ipc();
        t.row(vec![app.abbrev.into(), f3(vc / bswl), f3(svc / bswl), f3(full / bswl)]);
    }
    t.gm_row("GM", &[1, 2, 3]);
    t.note("paper: SVC gains >7% over VC in stream-heavy apps (BI, BC, BG, SR2, SP);");
    t.note("paper: Throttling+SVC gains 7.7% over SVC; full design = 1.29 vs Best-SWL");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        keys.extend(r.best_swl_plan(&app));
        for arch in [Arch::VictimCaching, Arch::Svc, Arch::Linebacker] {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_technique_adds_on_average() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = t.rows.last().unwrap();
        let vc: f64 = gm[1].parse().unwrap();
        let svc: f64 = gm[2].parse().unwrap();
        let full: f64 = gm[3].parse().unwrap();
        // At quick scale SVC pays its 2-3 monitoring windows out of a short
        // run, so plain VC (which preserves from window 0) can edge ahead on
        // GM; the default scale reproduces the paper's VC < SVC ordering.
        assert!(svc >= vc * 0.90, "selection far below plain VC (svc {svc} vc {vc})");
        assert!(full >= svc * 0.98, "throttling should not lose vs SVC (full {full} svc {svc})");
    }
}
