//! Figure 10: effect of VTT-partition set-associativity. The paper sweeps
//! 1/4/16-way partitions: 1-way uses 92.8 % of idle register space but pays
//! long sequential searches; 16-way wastes space (71.1 % utilization); 4-way
//! is best (88.5 % utilization, 29.0 % speedup over Best-SWL).

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, pct, Table};

/// The swept associativities.
pub const ASSOCS: [u32; 3] = [1, 4, 16];

/// Runs the associativity sweep.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig10",
        "VTT partition associativity: idle-RF utilization and performance vs Best-SWL",
        vec!["assoc".into(), "utilization".into(), "perf_vs_bswl_GM".into()],
    );
    for assoc in ASSOCS {
        let arch = if assoc == 4 { Arch::Linebacker } else { Arch::LinebackerAssoc(assoc) };
        let mut ratios = Vec::new();
        let mut util_num = 0.0;
        let mut util_den = 0.0;
        for app in all_apps() {
            let s = r.run(&app, arch);
            let bswl = r.best_swl_ipc(&app);
            ratios.push(s.ipc() / bswl.max(1e-9));
            util_num += s.avg_victim_in_use_bytes();
            util_den += s.avg_static_unused_bytes() + s.avg_dynamic_unused_bytes();
        }
        let gm = gpu_sim::stats::geometric_mean(&ratios);
        t.row(vec![format!("{assoc}-way"), pct(util_num / util_den.max(1.0)), f3(gm)]);
    }
    t.note("paper: 1-way 92.8% util; 4-way 88.5% util, best perf (1.29); 16-way 71.1% util");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        keys.extend(r.best_swl_plan(&app));
        for assoc in ASSOCS {
            let arch = if assoc == 4 { Arch::Linebacker } else { Arch::LinebackerAssoc(assoc) };
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_is_best_and_utilization_falls_with_assoc() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let util: Vec<f64> =
            t.rows.iter().map(|row| row[1].trim_end_matches('%').parse().unwrap()).collect();
        let perf: Vec<f64> = t.rows.iter().map(|row| row[2].parse().unwrap()).collect();
        // Utilization: 1-way >= 4-way >= 16-way.
        assert!(util[0] >= util[1] && util[1] >= util[2], "utilization order {util:?}");
        // 4-way performance should be at least as good as 16-way.
        assert!(perf[1] >= perf[2] * 0.98, "4-way {} vs 16-way {}", perf[1], perf[2]);
    }
}
