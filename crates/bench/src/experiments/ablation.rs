//! Ablation sweeps over Linebacker's design parameters (beyond the paper's
//! Figure 10 associativity sweep): the Load-Monitor hit threshold, the
//! monitoring-window length, and the IPC variation bounds. These quantify
//! the sensitivity of the Table 3 choices.

use gpu_sim::stats::geometric_mean;
use workloads::{all_apps, Sensitivity};

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Hit-ratio thresholds swept (Table 3 default: 0.20).
pub const THRESHOLDS: [f64; 3] = [0.05, 0.20, 0.50];
/// Window lengths swept, as multiples of the scale's window.
pub const WINDOW_FACTORS: [f64; 3] = [0.5, 1.0, 2.0];
/// IPC bound magnitudes swept (Table 3 default: 0.10).
pub const BOUNDS: [f64; 3] = [0.05, 0.10, 0.20];

fn sensitive_apps() -> Vec<workloads::AppSpec> {
    all_apps().into_iter().filter(|a| a.sensitivity == Sensitivity::CacheSensitive).collect()
}

/// Sweep values are carried in [`Arch`] variants as integer hundredths
/// (`f64` is not `Hash`/`Eq`, so it cannot live in a [`RunKey`]).
fn hundredths(x: f64) -> u32 {
    (x * 100.0).round() as u32
}

/// Runs the three ablation sweeps. Geometric means are over the ten
/// cache-sensitive apps, normalized to the Best-SWL oracle.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "ablation",
        "Linebacker parameter ablations (GM over cache-sensitive apps, vs Best-SWL)",
        vec!["parameter".into(), "value".into(), "perf_GM".into()],
    );
    let apps = sensitive_apps();
    let bswl: Vec<f64> = apps.iter().map(|a| r.best_swl_ipc(a)).collect();

    // 1) Hit threshold (memoized through the runner; prefetched by `runs`).
    for &th in &THRESHOLDS {
        let mut ratios = Vec::new();
        for (a, &b) in apps.iter().zip(&bswl) {
            let s = r.run(a, Arch::LbThreshold(hundredths(th)));
            ratios.push(s.ipc() / b.max(1e-9));
        }
        t.row(vec!["hit_threshold".into(), format!("{th:.2}"), f3(geometric_mean(&ratios))]);
    }

    // 2) Monitoring-window length (both LB and its Best-SWL reference would
    //    shift, so normalize to the *same* window's baseline instead). Runs
    //    through the runner like every other sweep: the window override is
    //    part of the RunKey, the 1.0x centre point collapses to the plain
    //    keys the rest of the suite has already simulated, and the off-
    //    centre points are memoized, profiled, and counted like any run.
    for &f in &WINDOW_FACTORS {
        let pct = hundredths(f);
        let mut ratios = Vec::new();
        for a in &apps {
            let base = r.run_key(RunKey::for_app(a, Arch::Baseline).with_window_pct(pct));
            let lb = r.run_key(RunKey::for_app(a, Arch::Linebacker).with_window_pct(pct));
            ratios.push(lb.ipc() / base.ipc().max(1e-9));
        }
        t.row(vec![
            "window_factor(vs baseline)".into(),
            format!("{f:.1}x"),
            f3(geometric_mean(&ratios)),
        ]);
    }

    // 3) IPC variation bounds (memoized through the runner).
    for &bnd in &BOUNDS {
        let mut ratios = Vec::new();
        for (a, &b) in apps.iter().zip(&bswl) {
            let s = r.run(a, Arch::LbIpcBound(hundredths(bnd)));
            ratios.push(s.ipc() / b.max(1e-9));
        }
        t.row(vec!["ipc_bounds".into(), format!("±{bnd:.2}"), f3(geometric_mean(&ratios))]);
    }

    t.note("Table 3 defaults: threshold 0.20, window 50k cycles, bounds ±0.10");
    t.note("window sweep is normalized to the same-window baseline (not Best-SWL)");
    t
}

/// The plannable simulations [`run`] needs, window-factor sweep included:
/// the window length is carried in the [`RunKey`] (`with_window_pct`), so
/// every ablation point participates in planning, deduplication, and the
/// profiler; the 1.0x centre point collapses to the suite's plain keys.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in sensitive_apps() {
        keys.extend(r.best_swl_plan(&app));
        for &th in &THRESHOLDS {
            keys.push(RunKey::for_app(&app, Arch::LbThreshold(hundredths(th))));
        }
        for &f in &WINDOW_FACTORS {
            keys.push(RunKey::for_app(&app, Arch::Baseline).with_window_pct(hundredths(f)));
            keys.push(RunKey::for_app(&app, Arch::Linebacker).with_window_pct(hundredths(f)));
        }
        for &bnd in &BOUNDS {
            keys.push(RunKey::for_app(&app, Arch::LbIpcBound(hundredths(bnd))));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_not_dominated() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        // Rows 0..3 are the threshold sweep; the 0.20 default (row 1) should
        // be within 10% of the best threshold tried.
        let vals: Vec<f64> = t.rows[..3].iter().map(|row| row[2].parse().unwrap()).collect();
        let best = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(vals[1] >= best * 0.90, "default threshold ({}) far below best ({best})", vals[1]);
    }

    #[test]
    fn all_sweep_points_run() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        assert_eq!(t.rows.len(), 9);
        for row in &t.rows {
            let v: f64 = row[2].parse().unwrap();
            assert!(v > 0.3, "{} {} collapsed: {v}", row[0], row[1]);
        }
    }
}
