//! Table 2: the application suite and its cache-sensitivity classification
//! (>30 % speedup with a 192 KB L1 vs the 48 KB baseline).

use workloads::{all_apps, Sensitivity};

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f2, f3, Table};

/// Runs the classification experiment.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "table2",
        "application suite and cache-sensitivity classification",
        vec![
            "app".into(),
            "ipc@48KB".into(),
            "ipc@192KB".into(),
            "speedup".into(),
            "measured".into(),
            "expected".into(),
        ],
    );
    let mut agree = 0;
    for app in all_apps() {
        let small = r.run(&app, Arch::Baseline);
        let large = r.run_l1(&app, Arch::Baseline, 192 * 1024);
        let speedup = if small.ipc() > 0.0 { large.ipc() / small.ipc() } else { 1.0 };
        let measured = if speedup > 1.30 { "sensitive" } else { "insensitive" };
        let expected = match app.sensitivity {
            Sensitivity::CacheSensitive => "sensitive",
            Sensitivity::CacheInsensitive => "insensitive",
        };
        if measured == expected {
            agree += 1;
        }
        t.row(vec![
            app.abbrev.into(),
            f3(small.ipc()),
            f3(large.ipc()),
            f2(speedup),
            measured.into(),
            expected.into(),
        ]);
    }
    t.note(format!("{agree}/20 apps match the paper's Table 2 classification"));
    t.note("paper threshold: >30% speedup with 192 KB L1 => cache-sensitive");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        keys.push(RunKey::for_app(&app, Arch::Baseline));
        keys.push(RunKey::for_app(&app, Arch::Baseline).with_l1(192 * 1024));
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_mostly_agrees_at_quick_scale() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        assert_eq!(t.rows.len(), 20);
        let agree: u32 = t.notes[0].split('/').next().unwrap().parse().unwrap();
        assert!(agree >= 16, "classification agreement too low: {agree}/20");
    }
}
