//! Figure 3: per-SM streaming data size per window. A load is streaming if
//! its miss ratio with an infinite cache exceeds 95 % in a window (§2.3).
//! The paper finds >16 KB of streaming data in 9 of 20 apps, with BI, LI,
//! SR2, 2D and HS exceeding the 48 KB cache size.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{kb, Table};

/// Runs the streaming-size measurement.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig03",
        "per-SM streaming data size per window (KB)",
        vec!["app".into(), "streaming_kb".into(), "has_streaming_load".into()],
    );
    let n_sms = r.config().n_sms as f64;
    let mut over_16 = 0;
    for app in all_apps() {
        let s = r.run_detailed(&app);
        let mut bytes = 0.0;
        for d in s.load_detail.values() {
            if d.windows.is_empty() {
                continue;
            }
            // The paper's definition: >95% infinite-cache miss ratio.
            let streaming =
                d.windows.iter().filter(|w| w.is_streaming()).count() * 2 > d.windows.len();
            if streaming {
                bytes += d.windows.iter().map(|w| w.single_use_bytes).sum::<u64>() as f64
                    / d.windows.len() as f64;
            }
        }
        bytes /= n_sms;
        if bytes > 16.0 * 1024.0 {
            over_16 += 1;
        }
        t.row(vec![
            app.abbrev.into(),
            kb(bytes),
            if app.has_streaming_load() { "yes" } else { "no" }.into(),
        ]);
    }
    t.note(format!("{over_16}/20 apps stream more than 16 KB per window (paper: 9/20)"));
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    all_apps().iter().map(|a| RunKey::for_app(a, Arch::Baseline).with_detailed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_apps_detected() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        // Apps modeled with streaming loads must show streaming bytes.
        for row in &t.rows {
            if row[2] == "yes" {
                let v: f64 = row[1].parse().unwrap();
                assert!(v > 0.0, "{} has a streaming load but 0 bytes", row[0]);
            }
        }
        // FD (pure streaming) must dwarf GA (pure reuse).
        let get = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[1].parse().unwrap()
        };
        assert!(get("FD") > get("GA"));
    }
}
