//! Figure 18: energy consumption of CERF and Linebacker normalized to the
//! baseline. The paper reports LB at 0.779 of baseline energy (-22.1 %) and
//! CERF at 0.788 (-21.2 %): both win mostly by cutting runtime.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{f3, Table};

/// Runs the energy comparison. Energy is normalized per instruction so
/// rate-based runs (fixed cycle budget) compare fairly.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig18",
        "energy consumption (normalized to baseline, per instruction)",
        vec!["app".into(), "CERF".into(), "LB".into()],
    );
    for app in all_apps() {
        let per_inst = |s: &gpu_sim::stats::SimStats| s.energy_mj / s.instructions.max(1) as f64;
        let base = per_inst(&r.run(&app, Arch::Baseline)).max(1e-18);
        let cerf = per_inst(&r.run(&app, Arch::Cerf));
        let lb = per_inst(&r.run(&app, Arch::Linebacker));
        t.row(vec![app.abbrev.into(), f3(cerf / base), f3(lb / base)]);
    }
    t.gm_row("GM", &[1, 2]);
    t.note("paper: CERF 0.788, LB 0.779 of baseline energy");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        for arch in [Arch::Baseline, Arch::Cerf, Arch::Linebacker] {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_saves_energy() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let gm = t.rows.last().unwrap();
        let lb: f64 = gm[2].parse().unwrap();
        assert!(lb < 1.0, "LB must save energy per instruction (got {lb})");
    }
}
