//! Figure 2: per-SM reused working-set size of the top-4 most frequently
//! executed non-streaming loads (re-accessed within a 50 000-cycle window).
//! The paper finds this exceeds the 48 KB L1 in 13 of 20 applications.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{kb, Table};

/// Runs the working-set measurement.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig02",
        "per-SM reused working set of top-4 non-streaming loads (KB/window)",
        vec!["app".into(), "reused_ws_kb".into(), "exceeds_l1".into()],
    );
    let n_sms = r.config().n_sms as f64;
    let mut exceeds = 0;
    for app in all_apps() {
        let s = r.run_detailed(&app);
        // Rank loads by window accesses, excluding streaming loads (the
        // paper's methodology), then sum the top 4 reused working sets.
        let mut per_load: Vec<(u64, f64)> = s
            .load_detail
            .values()
            .filter_map(|d| {
                if d.windows.is_empty() {
                    return None;
                }
                let accesses: u64 = d.windows.iter().map(|w| w.accesses).sum();
                let streaming =
                    d.windows.iter().filter(|w| w.is_streaming()).count() * 2 > d.windows.len();
                if streaming {
                    return None;
                }
                let avg_ws = d.windows.iter().map(|w| w.reused_ws_bytes).sum::<u64>() as f64
                    / d.windows.len() as f64;
                Some((accesses, avg_ws))
            })
            .collect();
        per_load.sort_by_key(|&(accesses, _)| std::cmp::Reverse(accesses));
        // Detail windows are aggregated over all SMs; divide by SM count.
        let total: f64 = per_load.iter().take(4).map(|(_, ws)| ws).sum::<f64>() / n_sms;
        if total > 48.0 * 1024.0 {
            exceeds += 1;
        }
        t.row(vec![
            app.abbrev.into(),
            kb(total),
            if total > 48.0 * 1024.0 { "yes" } else { "no" }.into(),
        ]);
    }
    t.note(format!("{exceeds}/20 apps exceed the 48 KB L1 (paper: 13/20)"));
    t.note("window length scales with the run scale; sizes are per SM");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    all_apps().iter().map(|a| RunKey::for_app(a, Arch::Baseline).with_detailed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitive_apps_have_large_reused_working_sets() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        assert_eq!(t.rows.len(), 20);
        // A majority of apps should exceed L1 (paper: 13/20). At quick scale
        // windows are short, so require at least 8.
        let exceeds: u32 = t.notes[0].split('/').next().unwrap().parse().unwrap();
        assert!(exceeds >= 8, "only {exceeds}/20 exceed L1");
    }
}
