//! Figure 9: idle register-file space available as victim-cache storage
//! under Linebacker, and the number of locality-monitoring periods spent
//! before the high-locality loads were identified.

use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{kb, Table};

/// Runs the idle-space measurement.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig09",
        "idle RF space under Linebacker (KB, per SM) and monitoring periods",
        vec![
            "app".into(),
            "static_kb".into(),
            "dynamic_kb".into(),
            "victim_in_use_kb".into(),
            "monitor_periods".into(),
        ],
    );
    let n_windows_per_sm = |samples: usize| (samples as f64 / r.config().n_sms as f64).max(1.0);
    let mut stat_sum = 0.0;
    let mut dyn_sum = 0.0;
    for app in all_apps() {
        let s = r.run(&app, Arch::Linebacker);
        // rf_samples are concatenated across SMs; the averages are per SM.
        let _ = n_windows_per_sm(s.rf_samples.len());
        let stat = s.avg_static_unused_bytes();
        let dynu = s.avg_dynamic_unused_bytes();
        stat_sum += stat;
        dyn_sum += dynu;
        t.row(vec![
            app.abbrev.into(),
            kb(stat),
            kb(dynu),
            kb(s.avg_victim_in_use_bytes()),
            s.monitor_periods.to_string(),
        ]);
    }
    t.note(format!(
        "avg static {} KB (paper 88.5), avg dynamic {} KB (paper 48.5)",
        kb(stat_sum / 20.0),
        kb(dyn_sum / 20.0)
    ));
    t.note("paper: high-locality loads found within ~2 periods in most apps");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(_r: &Runner) -> Vec<RunKey> {
    all_apps().iter().map(|a| RunKey::for_app(a, Arch::Linebacker)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitoring_converges_quickly() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        // Most apps should converge (or disable) within a handful of
        // periods, as in the paper.
        let fast = t.rows.iter().filter(|row| row[4].parse::<u32>().unwrap() <= 5).count();
        assert!(fast >= 15, "only {fast}/20 apps converged within 5 periods");
    }

    #[test]
    fn throttling_produces_dynamic_space_somewhere() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let with_dur = t.rows.iter().filter(|row| row[2].parse::<f64>().unwrap() > 0.0).count();
        assert!(with_dur >= 3, "no dynamically unused space found ({with_dur} apps)");
    }
}
