//! Figure 13: L1 hit / miss / bypass / register-hit breakdown for the
//! Baseline (B), Best-SWL (S), PCAL (P), CERF (C) and Linebacker (L).
//! The paper reports LB's combined hit ratio at 65.1 % (40.4 % of accesses
//! served from registers) vs CERF's 57.9 %.

use gpu_sim::types::AccessOutcome;
use workloads::all_apps;

use crate::arch::Arch;
use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{pct, Table};

/// Runs the request-breakdown experiment.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig13",
        "memory request breakdown (hit/reg-hit/bypass/miss fractions)",
        vec![
            "app".into(),
            "arch".into(),
            "hit".into(),
            "reg_hit".into(),
            "bypass".into(),
            "miss".into(),
        ],
    );
    let archs = [
        ("B", Arch::Baseline),
        ("S", Arch::StaticLimit(0)), // placeholder; replaced per app below
        ("P", Arch::Pcal),
        ("C", Arch::Cerf),
        ("L", Arch::Linebacker),
    ];
    let mut agg: Vec<(f64, f64)> = vec![(0.0, 0.0); archs.len()]; // (hit+reg, reg)
    for app in all_apps() {
        let (limit, _) = r.best_swl(&app);
        for (i, (label, arch)) in archs.iter().enumerate() {
            let arch = if *label == "S" {
                match limit {
                    Some(l) => Arch::StaticLimit(l),
                    None => Arch::Baseline,
                }
            } else {
                *arch
            };
            let s = r.run(&app, arch);
            let hit = s.outcome_fraction(AccessOutcome::L1Hit);
            let reg = s.outcome_fraction(AccessOutcome::RegHit);
            let byp = s.outcome_fraction(AccessOutcome::Bypass);
            let miss = s.outcome_fraction(AccessOutcome::Miss);
            agg[i].0 += hit + reg;
            agg[i].1 += reg;
            t.row(vec![
                app.abbrev.into(),
                (*label).into(),
                pct(hit),
                pct(reg),
                pct(byp),
                pct(miss),
            ]);
        }
    }
    for (i, (label, _)) in archs.iter().enumerate() {
        t.note(format!(
            "{label}: avg combined hit {} (reg hits {})",
            pct(agg[i].0 / 20.0),
            pct(agg[i].1 / 20.0)
        ));
    }
    t.note("paper: LB combined 65.1% (40.4% reg hits); CERF 57.9%");
    t
}

/// The simulations [`run`] needs, as a prefetchable plan. The "S" column
/// resolves to `StaticLimit(winning limit)` (or the baseline), both already
/// members of the Best-SWL sweep, so no second round is needed.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for app in all_apps() {
        keys.extend(r.best_swl_plan(&app));
        for arch in [Arch::Baseline, Arch::Pcal, Arch::Cerf, Arch::Linebacker] {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_has_best_combined_hit_ratio() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let get_avg = |label: &str| -> f64 {
            t.notes
                .iter()
                .find(|n| n.starts_with(&format!("{label}:")))
                .and_then(|n| n.split("combined hit ").nth(1))
                .and_then(|s| s.split('%').next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap()
        };
        let b = get_avg("B");
        let l = get_avg("L");
        let c = get_avg("C");
        assert!(l > b, "LB combined hits ({l}) must beat baseline ({b})");
        assert!(l >= c * 0.95, "LB ({l}) should be at least near CERF ({c})");
    }

    #[test]
    fn lb_serves_requests_from_registers() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        // At least some apps should show double-digit reg-hit fractions.
        let strong = t
            .rows
            .iter()
            .filter(|row| row[1] == "L")
            .filter(|row| row[3].trim_end_matches('%').parse::<f64>().unwrap() > 10.0)
            .count();
        assert!(strong >= 5, "only {strong} apps show >10% reg hits under LB");
    }
}
