//! Figure 4: statically (SUR) and dynamically (DUR) unused register file
//! space under the Best-SWL configuration. The paper reports SUR from
//! 4-144 KB (avg 87.1 KB) and DUR of 27-173 KB in 13/20 apps (avg 58.7 KB).

use workloads::all_apps;

use crate::runkey::RunKey;
use crate::runner::Runner;
use crate::table::{kb, Table};

/// Runs the unused-register measurement.
pub fn run(r: &Runner) -> Table {
    let mut t = Table::new(
        "fig04",
        "statically (SUR) and dynamically (DUR) unused register space under Best-SWL (KB)",
        vec!["app".into(), "sur_kb".into(), "dur_kb".into(), "best_swl_limit".into()],
    );
    let cfg = r.config();
    let mut sur_sum = 0.0;
    let mut dur_sum = 0.0;
    let mut dur_apps = 0;
    for app in all_apps() {
        let sur = app.static_unused_bytes(cfg) as f64;
        let (limit, _) = r.best_swl(&app);
        let resident = app.resident_ctas(cfg);
        let regs_per_cta = (app.warps_per_cta * app.regs_per_thread) as u64;
        let dur = match limit {
            Some(l) if l < resident => ((resident - l) as u64 * regs_per_cta * 128) as f64,
            _ => 0.0,
        };
        sur_sum += sur;
        dur_sum += dur;
        if dur > 0.0 {
            dur_apps += 1;
        }
        t.row(vec![
            app.abbrev.into(),
            kb(sur),
            kb(dur),
            limit.map(|l| l.to_string()).unwrap_or_else(|| "none".into()),
        ]);
    }
    t.note(format!(
        "avg SUR {} KB (paper 87.1), avg DUR {} KB over all apps (paper 58.7 in {}...13/20 apps)",
        kb(sur_sum / 20.0),
        kb(dur_sum / 20.0),
        dur_apps
    ));
    t
}

/// The simulations [`run`] needs, as a prefetchable plan.
pub fn runs(r: &Runner) -> Vec<RunKey> {
    all_apps().iter().flat_map(|a| r.best_swl_plan(a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sur_spread_is_wide() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let surs: Vec<f64> = t.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        let max = surs.iter().cloned().fold(0.0, f64::max);
        let min = surs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max >= 64.0, "max SUR {max} KB too small");
        assert!(min <= 32.0, "min SUR {min} KB too big");
    }

    #[test]
    fn throttled_apps_show_dur() {
        let r = crate::shared_quick_runner();
        let t = run(r);
        let with_dur = t.rows.iter().filter(|row| row[2].parse::<f64>().unwrap() > 0.0).count();
        assert!(with_dur >= 3, "only {with_dur} apps show DUR");
    }
}
