//! Command-line experiment harness.
//!
//! ```text
//! lb-experiments [--scale quick|default|full] [--jobs N] [--sim-threads N]
//!                [--verbose] [ids... | all]
//! ```
//!
//! Execution is plan-then-render: every requested experiment first reports
//! its simulation plan as typed run keys, the deduplicated union executes
//! across a worker pool (`--jobs`, or the `LB_JOBS` environment variable,
//! default: all cores), then a second round covers plan nodes whose
//! identity depends on first-round results (the Best-SWL+CacheExt points).
//! Rendering reads from the warm memo, so tables are byte-identical at any
//! worker count.

use std::io::Write;

use lb_bench::{experiments, Runner, Scale};

fn main() {
    let mut scale = Scale::Default;
    let mut ids: Vec<String> = Vec::new();
    let mut verbose = false;
    let mut out_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut profile = false;
    let mut profile_out = String::from("BENCH_PR10.json");
    let mut sim_threads: Option<usize> = None;
    let mut trace_dir: Option<String> = None;
    let mut trace_mask = gpu_sim::trace::MASK_ALL;
    let mut partitions: Option<u32> = None;
    let mut desc_cache = true;
    let mut burst = true;
    let mut workloads_specs: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (quick|default|full)");
                    std::process::exit(2);
                });
            }
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_default();
                jobs = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--jobs expects a positive integer, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--sim-threads" => {
                let v = args.next().unwrap_or_default();
                sim_threads = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--sim-threads expects a positive integer, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--verbose" => verbose = true,
            "--out" => out_path = args.next(),
            "--csv-dir" => csv_dir = args.next(),
            "--profile" => profile = true,
            "--profile-out" => {
                profile_out = args.next().unwrap_or_else(|| {
                    eprintln!("--profile-out expects a file path");
                    std::process::exit(2);
                });
            }
            "--trace" => {
                trace_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace expects a directory path");
                    std::process::exit(2);
                }));
            }
            "--trace-events" => {
                let v = args.next().unwrap_or_default();
                trace_mask = gpu_sim::trace::parse_mask(&v).unwrap_or_else(|e| {
                    eprintln!("--trace-events: {e}");
                    std::process::exit(2);
                });
            }
            "--partitions" => {
                let v = args.next().unwrap_or_default();
                partitions = match v.parse::<u32>() {
                    Ok(n) if n >= 1 && n.is_power_of_two() => Some(n),
                    _ => {
                        eprintln!("--partitions expects a power of two (1, 2, 4, ...), got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--no-desc-cache" => desc_cache = false,
            "--no-burst" => burst = false,
            "--workload" => {
                workloads_specs.push(args.next().unwrap_or_else(|| {
                    eprintln!("--workload expects trace:PATH");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: lb-experiments [--scale quick|default|full] [--jobs N] \
                     [--sim-threads N] [--verbose] [--out FILE] [--csv-dir DIR] \
                     [--profile] [--profile-out FILE] [--trace DIR] \
                     [--trace-events MASK] [--partitions N] [--no-desc-cache] \
                     [--no-burst] [--workload trace:PATH]... [ids... | all]\n  \
                     LB_JOBS=N overrides the default worker count (all cores); \
                     --jobs beats LB_JOBS\n  --sim-threads N (or LB_SIM_THREADS=N) \
                     budgets N intra-simulation threads for parallel SM spans; \
                     the budget is split across --jobs workers (floor, min 1) \
                     so the two knobs compose without oversubscription; output \
                     is byte-identical at any value\n  --profile prints a \
                     hot-path throughput report to stderr and writes \
                     BENCH_PR10.json\n  --trace DIR \
                     captures one .lbt event trace per simulation into DIR; \
                     --trace-events narrows the captured kinds (names like \
                     issue,l1,dram, a 0x hex mask, or 'all')\n  --partitions N \
                     splits the memory subsystem into N L2-slice/DRAM-channel \
                     pairs (power of two; default 1)\n  --no-desc-cache disables \
                     the decoded access-descriptor cache (slower, byte-identical \
                     output; a verification escape hatch)\n  --no-burst disables \
                     greedy-run burst execution and SM local clocks (slower, \
                     byte-identical output; a verification escape hatch)\n  \
                     --workload trace:PATH loads a workload trace (.lbw1, or \
                     .traceg to import) into the trace_replay experiment; \
                     repeatable\n  ids: {}",
                    experiments::ALL.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    // Bare `--workload trace:PATH` runs just the trace study; otherwise an
    // empty id list (or an explicit `all`) expands to the default suite.
    if ids.iter().any(|i| i == "all") || (ids.is_empty() && workloads_specs.is_empty()) {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    // Loaded traces register under `trace:<stem>` keys and surface through
    // the (opt-in) trace_replay experiment; pull it in if not requested.
    for spec in &workloads_specs {
        let (key, rep) = lb_replay::load_workload_spec(spec).unwrap_or_else(|e| {
            eprintln!("--workload: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "[workload] {key}: {} streams, {} dynamic insts",
            rep.total_streams(),
            rep.dyn_insts()
        );
        if !ids.iter().any(|i| i == "trace_replay") {
            ids.push("trace_replay".to_string());
        }
    }

    let mut runner = Runner::new(scale);
    runner.verbose = verbose;
    if let Some(n) = partitions {
        runner.set_partitions(n);
        eprintln!("[config] memory subsystem split into {n} partitions");
    }
    if !desc_cache {
        runner.set_desc_cache(false);
        eprintln!("[config] descriptor cache disabled (verification mode)");
    }
    if !burst {
        runner.set_burst(false);
        eprintln!("[config] burst execution disabled (verification mode)");
    }
    // Precedence: --jobs flag, then LB_JOBS, then available parallelism.
    let env_jobs = std::env::var("LB_JOBS").ok().and_then(|v| v.parse::<usize>().ok());
    if let Some(n) = jobs.or(env_jobs) {
        runner.set_jobs(n);
    }
    // Intra-simulation threads: --sim-threads beats LB_SIM_THREADS. The
    // value is a process-wide *budget*: when combined with --jobs it is
    // split across the concurrent simulations so jobs x sim-threads never
    // oversubscribes what was asked for. Output is byte-identical at any
    // setting (the parallel span executor merges deterministically), so
    // this knob never appears in run keys or rendered tables.
    let env_sim_threads =
        std::env::var("LB_SIM_THREADS").ok().and_then(|v| v.parse::<usize>().ok());
    let sim_threads_budget = sim_threads.or(env_sim_threads);
    if let Some(budget) = sim_threads_budget {
        let eff = lb_bench::engine::split_sim_threads(budget, runner.jobs());
        runner.set_sim_threads(eff as u32);
        eprintln!(
            "[config] sim-threads: budget {budget} across {} jobs -> {eff} threads/sim",
            runner.jobs()
        );
    }
    if let Some(dir) = &trace_dir {
        runner.set_trace(dir.into(), trace_mask).unwrap_or_else(|e| {
            eprintln!("--trace {dir}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "[trace] capturing to {dir}/ (events: {})",
            gpu_sim::trace::mask_names(trace_mask)
        );
    }

    let started = std::time::Instant::now();

    // Round 1: the union of every experiment's plan, deduplicated and
    // executed in parallel with single-flight semantics.
    let mut batch = Vec::new();
    for id in &ids {
        match experiments::plan(id, &runner) {
            Some(keys) => batch.extend(keys),
            None => {
                eprintln!("unknown experiment id '{id}'");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "[plan] {} experiments -> {} planned runs ({} workers)",
        ids.len(),
        batch.len(),
        runner.jobs()
    );
    runner.prefetch(&batch);

    // Round 2: keys that depend on round-1 results (Best-SWL winners).
    let mut followups = Vec::new();
    for id in &ids {
        followups.extend(experiments::followup(id, &runner).unwrap_or_default());
    }
    if !followups.is_empty() {
        eprintln!("[plan] round 2: {} follow-up runs", followups.len());
        runner.prefetch(&followups);
    }
    eprintln!(
        "[plan] {} simulations executed in {:.1}s; rendering",
        runner.sims_run(),
        started.elapsed().as_secs_f64()
    );

    let mut rendered = String::new();
    for id in &ids {
        let t0 = std::time::Instant::now();
        match experiments::run(id, &runner) {
            Some(t) => {
                let s = t.render();
                println!("{s}");
                rendered.push_str(&s);
                rendered.push('\n');
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir).expect("create csv dir");
                    let path = format!("{dir}/{}.csv", t.id);
                    std::fs::write(&path, t.render_csv()).expect("write csv");
                }
                eprintln!(
                    "[{id}] done in {:.1}s ({} sims so far)",
                    t0.elapsed().as_secs_f64(),
                    runner.sims_run()
                );
            }
            None => {
                eprintln!("unknown experiment id '{id}'");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "all done: {} experiments, {} simulations, {} workers, {:.1}s, scale={}",
        ids.len(),
        runner.sims_run(),
        runner.jobs(),
        started.elapsed().as_secs_f64(),
        scale
    );
    if let Some(p) = out_path {
        let mut f = std::fs::File::create(&p).expect("create output file");
        f.write_all(rendered.as_bytes()).expect("write output file");
        eprintln!("wrote {p}");
    }
    if profile {
        let suite_wall_s = started.elapsed().as_secs_f64();
        let mut prof = runner.profile();
        prof.record_workers(runner.jobs() as u64, runner.sim_threads() as u64);
        eprint!("{}", prof.summary(suite_wall_s));
        let json = prof.to_json("lb-experiments", &scale.to_string(), suite_wall_s);
        std::fs::write(&profile_out, &json).expect("write profile json");
        eprintln!("[profile] wrote {profile_out}");
    }
    // No-op unless LB_PHASE_TIMERS=1 (diagnostics; see gpu_sim::phase_timer).
    gpu_sim::phase_timer::report();
}
