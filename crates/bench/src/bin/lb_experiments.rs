//! Command-line experiment harness.
//!
//! ```text
//! lb-experiments [--scale quick|default|full] [--verbose] [ids... | all]
//! ```

use std::io::Write;

use lb_bench::{experiments, Runner, Scale};

fn main() {
    let mut scale = Scale::Default;
    let mut ids: Vec<String> = Vec::new();
    let mut verbose = false;
    let mut out_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (quick|default|full)");
                    std::process::exit(2);
                });
            }
            "--verbose" => verbose = true,
            "--out" => out_path = args.next(),
            "--csv-dir" => csv_dir = args.next(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: lb-experiments [--scale quick|default|full] [--verbose] \
                     [--out FILE] [--csv-dir DIR] [ids... | all]\n  ids: {}",
                    experiments::ALL.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    let mut runner = Runner::new(scale);
    runner.verbose = verbose;
    let mut rendered = String::new();
    let started = std::time::Instant::now();
    for id in &ids {
        let t0 = std::time::Instant::now();
        match experiments::run(id, &runner) {
            Some(t) => {
                let s = t.render();
                println!("{s}");
                rendered.push_str(&s);
                rendered.push('\n');
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir).expect("create csv dir");
                    let path = format!("{dir}/{}.csv", t.id);
                    std::fs::write(&path, t.render_csv()).expect("write csv");
                }
                eprintln!(
                    "[{id}] done in {:.1}s ({} sims so far)",
                    t0.elapsed().as_secs_f64(),
                    runner.sims_run()
                );
            }
            None => {
                eprintln!("unknown experiment id '{id}'");
                std::process::exit(2);
            }
        }
    }
    eprintln!(
        "all done: {} experiments, {} simulations, {:.1}s, scale={}",
        ids.len(),
        runner.sims_run(),
        started.elapsed().as_secs_f64(),
        scale
    );
    if let Some(p) = out_path {
        let mut f = std::fs::File::create(&p).expect("create output file");
        f.write_all(rendered.as_bytes()).expect("write output file");
        eprintln!("wrote {p}");
    }
}
