use baselines::pcal_factory;
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::Gpu;
use linebacker::{linebacker_factory, LbConfig};
use workloads::app;

fn main() {
    let cfg = GpuConfig::default().with_sms(4).with_windows(10_000, 240_000);
    for name in ["S2", "GE", "AT", "S1", "PF", "KM"] {
        let a = app(name).unwrap();
        let k = a.kernel(cfg.n_sms);
        let mut g = Gpu::new(cfg.clone(), k.clone(), &pcal_factory());
        let s = g.run();
        println!("{:<3} pcal ipc {:>6.3}  {}", name, s.ipc(), g.sm(0).policy.debug_state());
        let mut g = Gpu::new(cfg.clone(), k, &linebacker_factory(LbConfig::default()));
        let s = g.run();
        println!("{:<3} lb   ipc {:>6.3}  {}", name, s.ipc(), g.sm(0).policy.debug_state());
    }
}
