//! Quick per-app IPC sanity table across all five architectures.
//!
//! ```text
//! sanity [--quick] [--profile] [--profile-out FILE]
//!        [--trace DIR] [--trace-events MASK] [--partitions N]
//!        [--sim-threads N] [--no-desc-cache] [--no-burst] [apps...]
//! ```
//!
//! With `--profile`, the IPC table moves to stderr and stdout carries a
//! single JSON throughput record (the same shape `lb-experiments --profile`
//! writes to `BENCH_PR4.json`), so CI can parse it directly. With
//! `--trace DIR`, every timed simulation also captures an `.lbt` event
//! trace named after its profile key (e.g. `app=GA_arch=base.lbt`).

use baselines::{best_swl_sweep, cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::{run_kernel, run_kernel_traced, run_replay_kernel, run_replay_kernel_traced};
use gpu_sim::kernel::KernelSpec;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::replay::ReplayKernel;
use gpu_sim::trace::{parse_mask, TraceWriter, Tracer, MASK_ALL};
use lb_bench::profile::Profile;
use lb_bench::runner::sanitize_key;
use linebacker::{linebacker_factory, LbConfig};
use workloads::all_apps;

fn main() {
    let mut profile = false;
    let mut quick = false;
    let mut profile_out: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut trace_mask = MASK_ALL;
    let mut partitions: Option<u32> = None;
    let mut sim_threads: Option<u32> = None;
    let mut desc_cache = true;
    let mut burst = true;
    let mut only: Vec<String> = Vec::new();
    let mut workload_specs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--profile" => profile = true,
            "--quick" => quick = true,
            "--profile-out" => profile_out = args.next(),
            "--trace" => {
                trace_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace expects a directory path");
                    std::process::exit(2);
                }));
            }
            "--trace-events" => {
                let v = args.next().unwrap_or_default();
                trace_mask = parse_mask(&v).unwrap_or_else(|e| {
                    eprintln!("--trace-events: {e}");
                    std::process::exit(2);
                });
            }
            "--partitions" => {
                let v = args.next().unwrap_or_default();
                partitions = match v.parse::<u32>() {
                    Ok(n) if n.is_power_of_two() => Some(n),
                    _ => {
                        eprintln!("--partitions expects a power of two (1, 2, 4, ...), got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--sim-threads" => {
                let v = args.next().unwrap_or_default();
                sim_threads = match v.parse::<u32>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--sim-threads expects a positive integer, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--no-desc-cache" => desc_cache = false,
            "--no-burst" => burst = false,
            "--workload" => {
                workload_specs.push(args.next().unwrap_or_else(|| {
                    eprintln!("--workload expects trace:PATH");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sanity [--quick] [--profile] [--profile-out FILE] \
                     [--trace DIR] [--trace-events MASK] [--partitions N] \
                     [--sim-threads N] [--no-desc-cache] [--no-burst] \
                     [--workload trace:PATH]... [apps...]\n  --sim-threads N \
                     (or LB_SIM_THREADS=N) steps due SMs on N worker threads \
                     (byte-identical output; sanity runs one sim at a time, so \
                     the full budget goes to each sim)\n  --workload replays a \
                     workload trace (.lbw1, or .traceg to import) as an extra \
                     table row (no Best-SWL sweep for traces)"
                );
                return;
            }
            other => only.push(other.to_string()),
        }
    }
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }

    let mut cfg = if quick {
        GpuConfig::default().with_sms(4).with_windows(5_000, 60_000)
    } else {
        GpuConfig::default().with_sms(4).with_windows(10_000, 240_000)
    };
    if let Some(n) = partitions {
        cfg = cfg.with_mem_partitions(n);
    }
    if !desc_cache {
        cfg = cfg.with_desc_cache(false);
    }
    if !burst {
        cfg = cfg.with_burst(false);
    }
    // --sim-threads beats LB_SIM_THREADS. Sanity runs its simulations one
    // at a time (jobs = 1), so the whole budget goes to each simulation.
    let env_sim_threads = std::env::var("LB_SIM_THREADS").ok().and_then(|v| v.parse::<u32>().ok());
    let sim_threads = sim_threads.or(env_sim_threads);
    if let Some(n) = sim_threads {
        cfg = cfg.with_sim_threads(n);
        eprintln!("[config] sim-threads: {n} threads/sim (1 job)");
    }
    let started = std::time::Instant::now();
    let mut prof = Profile::default();
    let trace = trace_dir.map(|d| (d, trace_mask));
    let timed = |prof: &mut Profile,
                 name: String,
                 cfg: &GpuConfig,
                 k: &KernelSpec,
                 factory: &PolicyFactory<'_>| {
        let t0 = std::time::Instant::now();
        let s = match &trace {
            None => run_kernel(cfg.clone(), k.clone(), factory),
            Some((dir, mask)) => {
                let path = format!("{dir}/{}.lbt", sanitize_key(&name));
                let writer = TraceWriter::to_file(std::path::Path::new(&path), *mask)
                    .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
                let tracer = Tracer::new(writer);
                let s = run_kernel_traced(cfg.clone(), k.clone(), factory, tracer.clone());
                tracer.finish().unwrap_or_else(|e| panic!("cannot flush trace file {path}: {e}"));
                prof.record_trace(tracer.bytes(), tracer.events());
                s
            }
        };
        prof.record(name, t0.elapsed().as_secs_f64(), &s);
        s
    };
    let timed_replay = |prof: &mut Profile,
                        name: String,
                        cfg: &GpuConfig,
                        rep: &std::sync::Arc<ReplayKernel>,
                        factory: &PolicyFactory<'_>| {
        let t0 = std::time::Instant::now();
        let s = match &trace {
            None => run_replay_kernel(cfg.clone(), rep, factory),
            Some((dir, mask)) => {
                let path = format!("{dir}/{}.lbt", sanitize_key(&name));
                let writer = TraceWriter::to_file(std::path::Path::new(&path), *mask)
                    .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
                let tracer = Tracer::new(writer);
                let s = run_replay_kernel_traced(cfg.clone(), rep, factory, tracer.clone());
                tracer.finish().unwrap_or_else(|e| panic!("cannot flush trace file {path}: {e}"));
                prof.record_trace(tracer.bytes(), tracer.events());
                s
            }
        };
        prof.record(name, t0.elapsed().as_secs_f64(), &s);
        s
    };

    let header = format!(
        "{:<4} {:>8} {:>8} {:>8} {:>8} {:>8}  reg_hit%  periods",
        "app", "base", "bswl", "pcal", "cerf", "lb"
    );
    let mut table = vec![header];
    for app in all_apps() {
        if !only.is_empty() && !only.iter().any(|a| a == app.abbrev) {
            continue;
        }
        let k = app.kernel(cfg.n_sms);
        let base = timed(
            &mut prof,
            format!("app={} arch=base", app.abbrev),
            &cfg,
            &k,
            &baseline_factory(),
        );
        let t0 = std::time::Instant::now();
        let swl = best_swl_sweep(&cfg, &k);
        prof.record(
            format!("app={} arch=bswl(sweep)", app.abbrev),
            t0.elapsed().as_secs_f64(),
            &swl.stats,
        );
        let pcal =
            timed(&mut prof, format!("app={} arch=pcal", app.abbrev), &cfg, &k, &pcal_factory());
        let cerf =
            timed(&mut prof, format!("app={} arch=cerf", app.abbrev), &cfg, &k, &cerf_factory());
        let lb = timed(
            &mut prof,
            format!("app={} arch=lb", app.abbrev),
            &cfg,
            &k,
            &linebacker_factory(LbConfig::default()),
        );
        table.push(format!(
            "{:<4} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}  {:>6.1}%  {}",
            app.abbrev,
            base.ipc(),
            swl.stats.ipc(),
            pcal.ipc(),
            cerf.ipc(),
            lb.ipc(),
            lb.outcome_fraction(gpu_sim::types::AccessOutcome::RegHit) * 100.0,
            lb.monitor_periods,
        ));
    }
    // Trace rows: replayed workloads under the same policies. Best-SWL's
    // CTA-limit sweep is a synthetic-grid oracle, so that column stays "-".
    for spec in &workload_specs {
        let (key, rep) = lb_replay::load_workload_spec(spec).unwrap_or_else(|e| {
            eprintln!("--workload: {e}");
            std::process::exit(2);
        });
        let base = timed_replay(
            &mut prof,
            format!("app={key} arch=base"),
            &cfg,
            &rep,
            &baseline_factory(),
        );
        let pcal =
            timed_replay(&mut prof, format!("app={key} arch=pcal"), &cfg, &rep, &pcal_factory());
        let cerf =
            timed_replay(&mut prof, format!("app={key} arch=cerf"), &cfg, &rep, &cerf_factory());
        let lb = timed_replay(
            &mut prof,
            format!("app={key} arch=lb"),
            &cfg,
            &rep,
            &linebacker_factory(LbConfig::default()),
        );
        table.push(format!(
            "{:<4} {:>8.3} {:>8} {:>8.3} {:>8.3} {:>8.3}  {:>6.1}%  {}",
            key.strip_prefix("trace:").unwrap_or(key),
            base.ipc(),
            "-",
            pcal.ipc(),
            cerf.ipc(),
            lb.ipc(),
            lb.outcome_fraction(gpu_sim::types::AccessOutcome::RegHit) * 100.0,
            lb.monitor_periods,
        ));
    }

    if profile {
        // Table to stderr; stdout carries exactly one JSON document.
        for line in &table {
            eprintln!("{line}");
        }
        let suite_wall_s = started.elapsed().as_secs_f64();
        prof.record_workers(1, sim_threads.unwrap_or(1) as u64);
        eprint!("{}", prof.summary(suite_wall_s));
        let scale = if quick { "sanity-quick" } else { "sanity" };
        let json = prof.to_json("sanity", scale, suite_wall_s);
        print!("{json}");
        if let Some(p) = profile_out {
            std::fs::write(&p, &json).expect("write profile json");
            eprintln!("[profile] wrote {p}");
        }
    } else {
        for line in &table {
            println!("{line}");
        }
    }
}
