use baselines::{best_swl_sweep, cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::policy::baseline_factory;
use linebacker::{linebacker_factory, LbConfig};
use workloads::all_apps;

fn main() {
    let cfg = GpuConfig::default().with_sms(4).with_windows(10_000, 240_000);
    println!(
        "{:<4} {:>8} {:>8} {:>8} {:>8} {:>8}  reg_hit%  periods",
        "app", "base", "bswl", "pcal", "cerf", "lb"
    );
    for app in all_apps() {
        let k = app.kernel(cfg.n_sms);
        let base = run_kernel(cfg.clone(), k.clone(), &baseline_factory());
        let swl = best_swl_sweep(&cfg, &k);
        let pcal = run_kernel(cfg.clone(), k.clone(), &pcal_factory());
        let cerf = run_kernel(cfg.clone(), k.clone(), &cerf_factory());
        let lb = run_kernel(cfg.clone(), k.clone(), &linebacker_factory(LbConfig::default()));
        println!(
            "{:<4} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}  {:>6.1}%  {}",
            app.abbrev,
            base.ipc(),
            swl.stats.ipc(),
            pcal.ipc(),
            cerf.ipc(),
            lb.ipc(),
            lb.outcome_fraction(gpu_sim::types::AccessOutcome::RegHit) * 100.0,
            lb.monitor_periods,
        );
    }
}
