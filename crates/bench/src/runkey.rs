//! Typed run identity: the memo/planning key of the experiment harness.
//!
//! A [`RunKey`] names one simulation — `(app, architecture, L1 override,
//! detailed flag)` — and an [`ArchSpec`] turns that identity into the exact
//! [`GpuConfig`] transform and policy factory the run uses. The key is a
//! plain `Hash + Eq` value type, so two distinct configurations can never
//! alias (the previous string-formatted key could only promise this
//! informally), and plans for whole figure suites are just `Vec<RunKey>`.

use gpu_sim::config::GpuConfig;
use gpu_sim::policy::PolicyFactory;
use workloads::AppSpec;

use crate::arch::Arch;

/// Identity of one simulation run within a [`crate::Runner`].
///
/// Equality is structural: every field that influences the simulation's
/// configuration participates, so collisions are unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Application abbreviation (the paper's two-letter code, e.g. `"S2"`).
    pub app: &'static str,
    /// Architecture under evaluation.
    pub arch: Arch,
    /// Optional L1 size override in bytes (Figure 14 / Table 2 sweeps).
    pub l1_override: Option<u64>,
    /// Detailed per-load statistics (Figures 2/3; forces the paper's
    /// 50 k-cycle window definition).
    pub detailed: bool,
    /// Optional memory-partition count override (`None` = the scale's base
    /// config, i.e. one partition). Part of the key so memoization can
    /// never alias runs across partition counts.
    pub partitions: Option<u32>,
    /// Optional monitoring-window length override, as a percentage of the
    /// scale's window (ablation sweep). `None` = the scale's window; the
    /// builder collapses 100% to `None` so the sweep's identity point
    /// shares memoized runs with every other figure.
    pub window_pct: Option<u32>,
}

impl RunKey {
    /// A plain run of `app` under `arch` on the scale's base config.
    pub fn new(app: &'static str, arch: Arch) -> Self {
        RunKey { app, arch, l1_override: None, detailed: false, partitions: None, window_pct: None }
    }

    /// A plain run keyed by an [`AppSpec`].
    pub fn for_app(app: &AppSpec, arch: Arch) -> Self {
        Self::new(app.abbrev, arch)
    }

    /// Overrides the L1 size (bytes).
    pub fn with_l1(mut self, bytes: u64) -> Self {
        self.l1_override = Some(bytes);
        self
    }

    /// Enables detailed per-load statistics.
    pub fn with_detailed(mut self) -> Self {
        self.detailed = true;
        self
    }

    /// Overrides the memory-partition count (power of two).
    pub fn with_partitions(mut self, n: u32) -> Self {
        self.partitions = Some(n);
        self
    }

    /// Overrides the monitoring-window length as a percentage of the
    /// scale's window. 100% is the identity transform and deliberately
    /// collapses to the plain key, so the ablation sweep's centre point
    /// memo-shares with the rest of the suite instead of re-simulating.
    pub fn with_window_pct(mut self, pct: u32) -> Self {
        self.window_pct = if pct == 100 { None } else { Some(pct) };
        self
    }

    /// The architecture specification part of the key (everything except
    /// the application).
    pub fn spec(&self) -> ArchSpec {
        ArchSpec {
            arch: self.arch,
            l1_override: self.l1_override,
            detailed: self.detailed,
            partitions: self.partitions,
            window_pct: self.window_pct,
        }
    }
}

impl std::fmt::Display for RunKey {
    /// Stable display form for logs: `GA/LB`, `GA/Baseline+l1=16K`,
    /// `GA/Baseline+detailed`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.app, self.arch.label())?;
        if let Some(l1) = self.l1_override {
            if l1 % 1024 == 0 {
                write!(f, "+l1={}K", l1 / 1024)?;
            } else {
                write!(f, "+l1={l1}B")?;
            }
        }
        if self.detailed {
            write!(f, "+detailed")?;
        }
        if let Some(p) = self.partitions {
            write!(f, "+p={p}")?;
        }
        if let Some(w) = self.window_pct {
            write!(f, "+win={w}%")?;
        }
        Ok(())
    }
}

/// The architecture-side specification of a run: fully determines the
/// configuration transform and the policy factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchSpec {
    /// Architecture under evaluation.
    pub arch: Arch,
    /// Optional L1 size override in bytes.
    pub l1_override: Option<u64>,
    /// Detailed per-load statistics.
    pub detailed: bool,
    /// Optional memory-partition count override.
    pub partitions: Option<u32>,
    /// Optional monitoring-window length override (% of the scale window).
    pub window_pct: Option<u32>,
}

impl ArchSpec {
    /// Builds the final [`GpuConfig`] for this spec from the scale's base
    /// configuration. Applies, in order: the L1 override, the
    /// architecture's own transform (CacheExt enlargements), and the
    /// detailed-statistics window rules (Figures 2/3 use the paper's
    /// 50 k-cycle windows regardless of scale, so reuse distances are
    /// observable).
    pub fn config(&self, base: &GpuConfig, app: &AppSpec) -> GpuConfig {
        let kernel = app.kernel(base.n_sms);
        self.config_for_kernel(base, &kernel)
    }

    /// [`ArchSpec::config`] against an explicit kernel spec. The trace-replay
    /// path resolves the architecture transform from the trace's kernel stub
    /// rather than instantiating an [`AppSpec`].
    pub fn config_for_kernel(
        &self,
        base: &GpuConfig,
        kernel: &gpu_sim::kernel::KernelSpec,
    ) -> GpuConfig {
        let mut cfg = base.clone();
        if let Some(l1) = self.l1_override {
            cfg = cfg.with_l1_size(l1);
        }
        cfg = self.arch.transform_config_with(&cfg, kernel);
        if let Some(p) = self.partitions {
            cfg = cfg.with_mem_partitions(p);
        }
        if let Some(pct) = self.window_pct {
            let w = (cfg.window_cycles as f64 * (pct as f64 / 100.0)) as u64;
            let max = cfg.max_cycles;
            cfg = cfg.with_windows(w.max(1_000), max);
        }
        cfg.detailed_load_stats = self.detailed;
        if self.detailed {
            let max = cfg.max_cycles.max(250_000);
            cfg = cfg.with_windows(50_000, max);
        }
        cfg
    }

    /// The policy factory for this spec.
    pub fn factory(&self) -> Box<PolicyFactory<'static>> {
        self.arch.factory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn distinct_configs_never_alias() {
        // The old string key round-tripped `Option<u64>` and `bool` through
        // Debug formatting; the typed key must keep every distinct
        // configuration distinct. Enumerate a dense cross-product and
        // assert full injectivity under Hash + Eq.
        let apps = ["GA", "GE", "S2"];
        let archs = [
            Arch::Baseline,
            Arch::StaticLimit(1),
            Arch::StaticLimit(16),
            Arch::Linebacker,
            Arch::LinebackerAssoc(16),
            Arch::Cerf,
        ];
        let l1s = [None, Some(16 * 1024), Some(16384 + 1), Some(192 * 1024)];
        let mut seen: HashSet<RunKey> = HashSet::new();
        let mut n = 0;
        for app in apps {
            for arch in archs {
                for l1 in l1s {
                    for detailed in [false, true] {
                        for partitions in [None, Some(2)] {
                            for window_pct in [None, Some(50)] {
                                let key = RunKey {
                                    app,
                                    arch,
                                    l1_override: l1,
                                    detailed,
                                    partitions,
                                    window_pct,
                                };
                                assert!(seen.insert(key), "key aliased: {key}");
                                n += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn numeric_arch_parameters_do_not_collide() {
        // StaticLimit(12) vs LinebackerAssoc(12) vs a 12-byte L1 override:
        // structurally different fields must produce different keys even
        // when the embedded numbers agree.
        let a = RunKey::new("GA", Arch::StaticLimit(12));
        let b = RunKey::new("GA", Arch::LinebackerAssoc(12));
        let c = RunKey::new("GA", Arch::Baseline).with_l1(12);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn builders_set_fields() {
        let k = RunKey::new("BI", Arch::Cerf).with_l1(96 * 1024).with_detailed();
        assert_eq!(k.app, "BI");
        assert_eq!(k.l1_override, Some(96 * 1024));
        assert!(k.detailed);
        assert_eq!(k.spec().arch, Arch::Cerf);
    }

    #[test]
    fn display_is_stable_and_injective_for_common_keys() {
        let keys = [
            RunKey::new("GA", Arch::Baseline),
            RunKey::new("GA", Arch::Baseline).with_l1(16 * 1024),
            RunKey::new("GA", Arch::Baseline).with_detailed(),
            RunKey::new("GA", Arch::Linebacker),
        ];
        let shown: HashSet<String> = keys.iter().map(|k| k.to_string()).collect();
        assert_eq!(shown.len(), keys.len());
        assert_eq!(keys[0].to_string(), "GA/Baseline");
        assert_eq!(keys[1].to_string(), "GA/Baseline+l1=16K");
        assert_eq!(keys[2].to_string(), "GA/Baseline+detailed");
    }

    #[test]
    fn partition_override_reaches_config_and_display() {
        let base = crate::scale::Scale::Quick.config();
        let app = workloads::app("GA").unwrap();
        let key = RunKey::new("GA", Arch::Baseline).with_partitions(4);
        assert_eq!(key.to_string(), "GA/Baseline+p=4");
        assert_eq!(key.spec().config(&base, &app).n_mem_partitions, 4);
        // Default keys stay exactly as they always displayed (memo keys and
        // trace filenames must not change for pre-partition runs).
        let plain = RunKey::new("GA", Arch::Baseline);
        assert_eq!(plain.to_string(), "GA/Baseline");
        assert_eq!(plain.spec().config(&base, &app).n_mem_partitions, 1);
    }

    #[test]
    fn window_override_reaches_config_and_identity_point_collapses() {
        let base = crate::scale::Scale::Quick.config();
        let app = workloads::app("GA").unwrap();
        let half = RunKey::new("GA", Arch::Linebacker).with_window_pct(50);
        assert_eq!(half.to_string(), "GA/LB+win=50%");
        let cfg = half.spec().config(&base, &app);
        assert_eq!(cfg.window_cycles, ((base.window_cycles as f64 * 0.5) as u64).max(1_000));
        assert_eq!(cfg.max_cycles, base.max_cycles);
        // 100% is the identity: it must collapse to the plain key so the
        // memo shares the run with every figure that uses the base window.
        let ident = RunKey::new("GA", Arch::Linebacker).with_window_pct(100);
        assert_eq!(ident, RunKey::new("GA", Arch::Linebacker));
        assert_eq!(ident.to_string(), "GA/LB");
    }

    #[test]
    fn spec_config_applies_l1_and_detailed_windows() {
        let base = crate::scale::Scale::Quick.config();
        let app = workloads::app("GA").unwrap();
        let spec = ArchSpec {
            arch: Arch::Baseline,
            l1_override: Some(16 * 1024),
            detailed: false,
            partitions: None,
            window_pct: None,
        };
        let cfg = spec.config(&base, &app);
        assert_eq!(cfg.l1.size_bytes, 16 * 1024);
        assert!(!cfg.detailed_load_stats);

        let det = ArchSpec {
            arch: Arch::Baseline,
            l1_override: None,
            detailed: true,
            partitions: None,
            window_pct: None,
        };
        let cfg = det.config(&base, &app);
        assert!(cfg.detailed_load_stats);
        assert_eq!(cfg.window_cycles, 50_000);
        assert!(cfg.max_cycles >= 250_000);
    }
}
