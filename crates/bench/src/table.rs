//! Plain-text result tables in the shape of the paper's figures.

use gpu_sim::stats::geometric_mean;

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "fig12".
    pub id: String,
    /// What the table reproduces.
    pub title: String,
    /// Column headers; the first column is the row key (usually the app).
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper reference values,
    /// caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: Vec<String>) -> Self {
        Table { id: id.into(), title: title.into(), headers, rows: Vec::new(), notes: Vec::new() }
    }

    /// Adds a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Appends a geometric-mean row computed over the numeric columns
    /// `cols` (by index) of all current rows.
    pub fn gm_row(&mut self, label: &str, cols: &[usize]) {
        let mut cells = vec![String::new(); self.headers.len()];
        cells[0] = label.to_string();
        for &c in cols {
            let vals: Vec<f64> =
                self.rows.iter().filter_map(|r| r[c].parse::<f64>().ok()).collect();
            cells[c] = format!("{:.3}", geometric_mean(&vals));
        }
        self.rows.push(cells);
    }

    /// Renders the table as CSV (header row first; notes become trailing
    /// comment lines prefixed with `#`).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a byte count as KB with one decimal.
pub fn kb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Table {
        let mut t = Table::new("t", "demo", vec!["app".into(), "x".into()]);
        t.row(vec!["A".into(), "2.0".into()]);
        t.row(vec!["B".into(), "8.0".into()]);
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let t = demo();
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("A") && s.contains("8.0"));
    }

    #[test]
    fn gm_row_computes_geometric_mean() {
        let mut t = demo();
        t.gm_row("GM", &[1]);
        let last = t.rows.last().unwrap();
        assert_eq!(last[0], "GM");
        assert_eq!(last[1], "4.000"); // sqrt(2*8)
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = demo();
        t.row(vec!["oops".into()]);
    }

    #[test]
    fn csv_escapes_and_includes_notes() {
        let mut t = Table::new("t", "demo", vec!["app".into(), "x,y".into()]);
        t.row(vec!["A\"q\"".into(), "1".into()]);
        t.note("hello");
        let csv = t.render_csv();
        assert!(csv.starts_with("app,\"x,y\"\n"));
        assert!(csv.contains("\"A\"\"q\"\"\",1\n"));
        assert!(csv.ends_with("# hello\n"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.295), "29.5%");
        assert_eq!(kb(49152.0), "48.0");
    }
}
