//! The parallel single-flight execution engine.
//!
//! The engine owns the memo table of the harness: a map from [`RunKey`] to
//! either a finished result or an in-flight marker. Any number of threads
//! may request the same key concurrently; exactly one computes it while the
//! rest block on the flight's condvar and share the finished `Arc`
//! (*single-flight* semantics). [`Engine::prefetch`] executes a batch of
//! keys across a scoped worker pool and reports structured
//! `completed/total` progress on stderr.
//!
//! The engine is policy-agnostic: callers pass the compute closure (the
//! [`crate::Runner`] supplies one that builds the config and calls
//! `gpu_sim::gpu::run_kernel`). Because simulations are pure functions of
//! the key, results are bit-identical regardless of worker count or
//! completion order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use gpu_sim::stats::SimStats;

use crate::runkey::RunKey;

/// State of one memo slot.
enum Slot {
    /// A thread is computing this key; waiters block on the flight.
    InFlight(Arc<Flight>),
    /// Finished result.
    Done(Arc<SimStats>),
}

/// Rendezvous for threads waiting on an in-flight simulation.
struct Flight {
    /// `None` while running; `Some(Ok)` on completion, `Some(Err)` if the
    /// computing thread panicked (so waiters fail loudly instead of
    /// blocking forever).
    result: Mutex<Option<Result<Arc<SimStats>, ()>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { result: Mutex::new(None), done: Condvar::new() }
    }

    fn complete(&self, value: Result<Arc<SimStats>, ()>) {
        let mut slot = self.result.lock().unwrap();
        *slot = Some(value);
        self.done.notify_all();
    }

    fn wait(&self, key: &RunKey) -> Arc<SimStats> {
        let mut slot = self.result.lock().unwrap();
        loop {
            match &*slot {
                Some(Ok(stats)) => return Arc::clone(stats),
                Some(Err(())) => panic!("simulation {key} failed in another thread"),
                None => slot = self.done.wait(slot).unwrap(),
            }
        }
    }
}

/// Marks the owning flight failed unless defused; keeps a panicking compute
/// from stranding its waiters.
struct FlightGuard<'a> {
    engine: &'a Engine,
    key: RunKey,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.engine.slots.lock().unwrap().remove(&self.key);
            self.flight.complete(Err(()));
        }
    }
}

/// Memoizing, parallel, single-flight executor for [`RunKey`]s.
pub struct Engine {
    slots: Mutex<HashMap<RunKey, Slot>>,
    /// Simulations actually executed (monotonic; memo/flight hits excluded).
    sims_run: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An empty engine.
    pub fn new() -> Self {
        Engine { slots: Mutex::new(HashMap::new()), sims_run: AtomicU64::new(0) }
    }

    /// Number of simulations actually executed so far. Memoized and
    /// shared-flight requests do not count: each distinct key contributes
    /// at most one.
    pub fn sims_run(&self) -> u64 {
        self.sims_run.load(Ordering::SeqCst)
    }

    /// Returns the stats for `key`, computing them with `compute` if no
    /// other request has. Concurrent calls for the same key share a single
    /// execution.
    pub fn run<F>(&self, key: RunKey, compute: F) -> Arc<SimStats>
    where
        F: FnOnce(&RunKey) -> SimStats,
    {
        let flight = {
            let mut slots = self.slots.lock().unwrap();
            match slots.get(&key) {
                Some(Slot::Done(stats)) => return Arc::clone(stats),
                Some(Slot::InFlight(flight)) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight::new());
                    slots.insert(key, Slot::InFlight(Arc::clone(&flight)));
                    drop(slots);

                    let mut guard = FlightGuard { engine: self, key, flight: &flight, armed: true };
                    let stats = Arc::new(compute(&key));
                    guard.armed = false;

                    self.sims_run.fetch_add(1, Ordering::SeqCst);
                    self.slots.lock().unwrap().insert(key, Slot::Done(Arc::clone(&stats)));
                    flight.complete(Ok(Arc::clone(&stats)));
                    return stats;
                }
            }
        };
        flight.wait(&key)
    }

    /// Executes a batch of keys across `jobs` worker threads, deduplicating
    /// first. Already-memoized keys cost nothing; the rest run exactly
    /// once each. When `progress` is true a `[completed/total]` line per
    /// finished run goes to stderr (a structured replacement for the old
    /// racy per-simulation logging).
    pub fn prefetch<F>(&self, keys: &[RunKey], jobs: usize, progress: bool, compute: F)
    where
        F: Fn(&RunKey) -> SimStats + Sync,
    {
        let mut todo: Vec<RunKey> = Vec::with_capacity(keys.len());
        {
            let mut seen = std::collections::HashSet::with_capacity(keys.len());
            let slots = self.slots.lock().unwrap();
            for &key in keys {
                let warm = matches!(slots.get(&key), Some(Slot::Done(_)));
                if !warm && seen.insert(key) {
                    todo.push(key);
                }
            }
        }
        if todo.is_empty() {
            return;
        }

        let total = todo.len();
        let workers = jobs.clamp(1, total);
        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let key = todo[i];
                    self.run(key, &compute);
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        eprintln!("  [{done}/{total}] {key}");
                    }
                });
            }
        });
    }
}

/// Splits a total simulation-thread `budget` across `jobs` concurrent
/// harness workers: each active simulation gets `budget / jobs` intra-sim
/// threads (floor, minimum 1). This is the anti-oversubscription rule the
/// harness binaries apply when `--jobs` and `--sim-threads` are combined —
/// `jobs * split_sim_threads(budget, jobs) <= max(budget, jobs)`, so the
/// process never runs more simulation threads than the user budgeted.
pub fn split_sim_threads(budget: usize, jobs: usize) -> usize {
    (budget / jobs.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;

    #[test]
    fn sim_thread_budget_splits_across_jobs() {
        assert_eq!(split_sim_threads(8, 1), 8);
        assert_eq!(split_sim_threads(8, 2), 4);
        assert_eq!(split_sim_threads(8, 3), 2, "floor division");
        assert_eq!(split_sim_threads(2, 4), 1, "never below one");
        assert_eq!(split_sim_threads(0, 0), 1, "degenerate inputs clamp");
        // The oversubscription bound the harness relies on.
        for budget in 0..20 {
            for jobs in 1..20 {
                assert!(jobs * split_sim_threads(budget, jobs) <= budget.max(jobs));
            }
        }
    }

    fn fake_stats(cycles: u64) -> SimStats {
        SimStats { cycles, ..SimStats::default() }
    }

    #[test]
    fn memoizes_and_counts_once() {
        let e = Engine::new();
        let key = RunKey::new("GA", Arch::Baseline);
        let a = e.run(key, |_| fake_stats(7));
        let b = e.run(key, |_| panic!("must not recompute"));
        assert_eq!(a.cycles, 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(e.sims_run(), 1);
    }

    #[test]
    fn concurrent_requests_share_one_flight() {
        let e = Engine::new();
        let key = RunKey::new("GE", Arch::Linebacker);
        let computes = AtomicU64::new(0);
        let results: Vec<Arc<SimStats>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        e.run(key, |_| {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so late arrivals hit the
                            // in-flight path, not the memo.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            fake_stats(42)
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight violated");
        assert_eq!(e.sims_run(), 1);
        for r in &results {
            assert!(Arc::ptr_eq(r, &results[0]));
        }
    }

    #[test]
    fn prefetch_runs_each_distinct_key_exactly_once() {
        let e = Engine::new();
        let keys = [
            RunKey::new("GA", Arch::Baseline),
            RunKey::new("GA", Arch::Linebacker),
            RunKey::new("GA", Arch::Baseline), // duplicate
            RunKey::new("GE", Arch::Baseline),
            RunKey::new("GA", Arch::Linebacker), // duplicate
        ];
        let computes = AtomicU64::new(0);
        e.prefetch(&keys, 4, false, |_| {
            computes.fetch_add(1, Ordering::SeqCst);
            fake_stats(1)
        });
        assert_eq!(computes.load(Ordering::SeqCst), 3);
        assert_eq!(e.sims_run(), 3);

        // A second prefetch over the same keys is a no-op.
        e.prefetch(&keys, 4, false, |_| panic!("must not recompute"));
        assert_eq!(e.sims_run(), 3);
    }

    #[test]
    fn panicking_compute_fails_waiters_not_deadlocks() {
        let e = Engine::new();
        let key = RunKey::new("S2", Arch::Cerf);
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.run(key, |_| -> SimStats { panic!("boom") })
        }));
        assert!(first.is_err());
        assert_eq!(e.sims_run(), 0);
        // The failed flight is cleared: a retry can compute fresh.
        let retried = e.run(key, |_| fake_stats(3));
        assert_eq!(retried.cycles, 3);
        assert_eq!(e.sims_run(), 1);
    }
}
