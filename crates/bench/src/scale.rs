//! Experiment scale presets.
//!
//! The paper simulates 16 SMs with 50 000-cycle windows for millions of
//! cycles; the workload model here is homogeneous across SMs, so smaller
//! configurations reproduce the same *relative* results far faster. Scales
//! only change machine size and run length — never the mechanism parameters.

use gpu_sim::config::GpuConfig;

/// A named simulation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for unit tests and Criterion benches (1 SM, 4 k windows).
    Quick,
    /// Default experiment scale (2 SMs, 8 k windows, 200 k cycles).
    Default,
    /// Paper-faithful scale (16 SMs, 50 k windows, 1.2 M cycles). Slow.
    Full,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The GPU configuration for this scale (Table 1 otherwise).
    pub fn config(&self) -> GpuConfig {
        match self {
            Scale::Quick => GpuConfig::default().with_sms(1).with_windows(6_000, 150_000),
            Scale::Default => GpuConfig::default().with_sms(2).with_windows(8_000, 200_000),
            Scale::Full => GpuConfig::default().with_windows(50_000, 1_200_000),
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in [Scale::Quick, Scale::Default, Scale::Full] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn full_scale_matches_table1() {
        let c = Scale::Full.config();
        assert_eq!(c.n_sms, 16);
        assert_eq!(c.window_cycles, 50_000);
    }

    #[test]
    fn scales_keep_mechanism_parameters() {
        for s in [Scale::Quick, Scale::Default, Scale::Full] {
            let c = s.config();
            assert_eq!(c.l1.size_bytes, 48 * 1024);
            assert_eq!(c.regfile_bytes_per_sm, 256 * 1024);
        }
    }
}
