//! Built-in hot-path profiler: wall-clock and event accounting for every
//! simulation the harness launches, reported by `--profile` and written to
//! `BENCH_PR10.json` so the perf trajectory of the simulator has a recorded
//! baseline. Since the component-calendar scheduler, the record includes
//! per-component sleep fractions (how often each SM / the DRAM / the
//! interconnect was gated) and a breakdown of what bounded each
//! fast-forward jump; since the partitioned memory subsystem it also
//! carries a per-partition breakdown (traffic and sleep fractions for
//! each L2-slice/DRAM-channel pair); since the decoded access-descriptor
//! cache it also reports the cache's hit rate (per run and aggregated)
//! and splits stepped SM cycles into LSU-busy and issue-scan phases; since
//! greedy-run bursting the `sm_phases` block also carries a `burst`
//! sub-record (span counts, a span-length histogram, and LSU entries
//! serviced on batched local cycles); since multi-threaded burst execution
//! it also carries a `parallel` sub-record (pool rounds, spans, steals and
//! barrier wait) plus a top-level `workers` block recording how the
//! process's thread budget was split between harness jobs and
//! intra-simulation threads.
//!
//! The workspace is std-only, so the JSON record is emitted by a small
//! hand-rolled writer (and checked in tests by the equally small
//! [`validate_json`] recursive-descent validator).

use gpu_sim::stats::SimStats;

/// Timing and event record of one simulation.
#[derive(Debug, Clone)]
pub struct SimRecord {
    /// Run-key string (unique per distinct simulation).
    pub key: String,
    /// Wall-clock seconds spent inside `run_kernel`.
    pub wall_s: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Cycles advanced one at a time.
    pub stepped: u64,
    /// Cycles fast-forwarded by the idle-cycle skipper.
    pub skipped: u64,
    /// Descriptor-cache hits in this simulation (0 when disabled).
    pub desc_hits: u64,
    /// Descriptor-cache misses (decodes) in this simulation.
    pub desc_misses: u64,
    /// Local-clock spans executed in this simulation.
    pub bursts: u64,
    /// SM-cycles covered by those spans (mean span length = cycles/spans).
    pub burst_cycles: u64,
}

impl SimRecord {
    /// Fraction of simulated cycles that were skipped, in [0, 1].
    pub fn skipped_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.skipped as f64 / self.cycles as f64
        }
    }

    /// Descriptor-cache hit rate in [0, 1]; 0 when the run had no cached
    /// accesses (cache disabled or load-free kernel).
    pub fn desc_hit_rate(&self) -> f64 {
        let total = self.desc_hits + self.desc_misses;
        if total == 0 {
            0.0
        } else {
            self.desc_hits as f64 / total as f64
        }
    }

    /// Mean local-clock span length in SM-cycles; 1.0 when the run never
    /// ticked an SM (degenerate) so a burst-free run reads as "no batching".
    pub fn mean_burst_len(&self) -> f64 {
        if self.bursts == 0 {
            1.0
        } else {
            self.burst_cycles as f64 / self.bursts as f64
        }
    }
}

/// Aggregated profile over every simulation of a harness invocation.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// One record per executed simulation, in completion order.
    pub records: Vec<SimRecord>,
    /// Summed per-stage event counters across all simulations.
    pub skip_jumps: u64,
    /// L2 requests handled (demand + bypass + stores + register traffic).
    pub l2_requests: u64,
    /// DRAM service completions.
    pub dram_services: u64,
    /// Interconnect deliveries (both directions).
    pub icnt_delivered: u64,
    /// CTA dispatch passes over the SM array.
    pub dispatch_passes: u64,
    /// SM-cycles executed (summed over SMs and simulations).
    pub sm_stepped: u64,
    /// SM-cycles slept (summed over SMs and simulations).
    pub sm_slept: u64,
    /// DRAM-controller cycles ticked.
    pub dram_stepped: u64,
    /// DRAM-controller cycles slept.
    pub dram_slept: u64,
    /// Interconnect queue-cycles delivered (two queues per GPU).
    pub icnt_stepped: u64,
    /// Interconnect queue-cycles slept (two queues per GPU).
    pub icnt_slept: u64,
    /// Fast-forward jumps bounded by an SM wake-up.
    pub skip_to_sm: u64,
    /// Fast-forward jumps bounded by the DRAM's next event.
    pub skip_to_dram: u64,
    /// Fast-forward jumps bounded by an interconnect delivery.
    pub skip_to_icnt: u64,
    /// Fast-forward jumps capped at a monitoring-window boundary.
    pub skip_to_window: u64,
    /// Fast-forward jumps capped at the cycle limit.
    pub skip_to_max: u64,
    /// Descriptor-cache hits (replays) summed over all simulations.
    pub desc_hits: u64,
    /// Descriptor-cache misses (first-execution decodes).
    pub desc_misses: u64,
    /// Descriptor-table entries populated, summed over simulations.
    pub desc_entries: u64,
    /// Bytes held by the descriptor tables, summed over simulations.
    pub desc_bytes: u64,
    /// Stepped SM cycles in which the LSU pipe had queued work.
    pub sm_lsu_busy: u64,
    /// Stepped SM cycles that entered the issue candidate scan.
    pub sm_issue_scan: u64,
    /// Local-clock spans executed across all simulations.
    pub sm_bursts: u64,
    /// SM-cycles covered by those spans.
    pub sm_burst_cycles: u64,
    /// Span-length histogram buckets: 1, 2–3, 4–7, 8–15, 16–63, 64+.
    pub sm_burst_hist: [u64; 6],
    /// LSU entries serviced on batched local cycles (no global step paid).
    pub sm_lsu_batched: u64,
    /// Largest intra-simulation pool size seen across simulations (1 when
    /// every run was serial).
    pub par_threads_max: u64,
    /// Parallel rounds executed (steps whose due-SM spans ran on the pool).
    pub par_rounds: u64,
    /// SM spans executed on the pool across those rounds.
    pub par_spans: u64,
    /// Spans claimed from another thread's chunk (work stealing). Timing
    /// dependent — excluded from determinism digests, reported here only.
    pub par_steals: u64,
    /// Nanoseconds the round publisher waited at the rendezvous barrier.
    /// Timing dependent, like [`Profile::par_steals`].
    pub par_barrier_ns: u64,
    /// Harness worker threads (`--jobs`) of this invocation; 0 until the
    /// producing binary records its split.
    pub jobs: u64,
    /// Effective intra-simulation threads per run after the
    /// [`crate::engine::split_sim_threads`] anti-oversubscription split;
    /// 0 until the producing binary records its split.
    pub sim_threads: u64,
    /// Trace files written (when `--trace` is active).
    pub trace_files: u64,
    /// Total encoded trace bytes across those files.
    pub trace_bytes: u64,
    /// Total trace events captured across those files.
    pub trace_events: u64,
    /// Per-partition aggregation, indexed by partition id. Simulations
    /// with fewer partitions simply do not contribute to higher indices,
    /// so a mixed sweep (P=1 suite plus a P=8 sensitivity run) still
    /// reports every channel it ever saw.
    pub partitions: Vec<PartProfile>,
}

/// Aggregated per-partition counters across every simulation that had
/// this partition id (the memory subsystem is P identical L2-slice +
/// DRAM-channel pairs; this records how evenly traffic spread and how
/// often each channel slept).
#[derive(Debug, Clone, Copy, Default)]
pub struct PartProfile {
    /// Simulations that had at least this many partitions.
    pub sims: u64,
    /// L2 accesses handled by this slice.
    pub l2_accesses: u64,
    /// DRAM services completed by this channel.
    pub dram_services: u64,
    /// Interconnect deliveries through this partition's queue pair.
    pub icnt_delivered: u64,
    /// Cycles this partition's DRAM channel was stepped.
    pub dram_stepped: u64,
    /// Cycles this partition's DRAM channel was asleep.
    pub dram_slept: u64,
    /// Queue-cycles this partition's icnt pair delivered.
    pub icnt_stepped: u64,
    /// Queue-cycles this partition's icnt pair slept.
    pub icnt_slept: u64,
}

impl PartProfile {
    /// Fraction of cycles this partition's DRAM channel was asleep.
    pub fn dram_sleep_fraction(&self) -> f64 {
        sleep_fraction(self.dram_stepped, self.dram_slept)
    }

    /// Fraction of queue-cycles this partition's icnt pair slept.
    pub fn icnt_sleep_fraction(&self) -> f64 {
        sleep_fraction(self.icnt_stepped, self.icnt_slept)
    }
}

/// slept / (stepped + slept), in [0, 1]; 0 when nothing was counted.
fn sleep_fraction(stepped: u64, slept: u64) -> f64 {
    let total = stepped + slept;
    if total == 0 {
        0.0
    } else {
        slept as f64 / total as f64
    }
}

impl Profile {
    /// Records one finished simulation.
    pub fn record(&mut self, key: String, wall_s: f64, stats: &SimStats) {
        let e = &stats.events;
        self.records.push(SimRecord {
            key,
            wall_s,
            cycles: stats.cycles,
            stepped: e.stepped_cycles,
            skipped: e.skipped_cycles,
            desc_hits: e.desc_hits,
            desc_misses: e.desc_misses,
            bursts: e.sm_bursts,
            burst_cycles: e.sm_burst_cycles,
        });
        self.skip_jumps += e.skip_jumps;
        self.l2_requests += e.l2_requests;
        self.dram_services += e.dram_services;
        self.icnt_delivered += e.icnt_delivered;
        self.dispatch_passes += e.dispatch_passes;
        self.sm_stepped += e.sm_stepped_cycles;
        self.sm_slept += e.sm_slept_cycles;
        self.dram_stepped += e.dram_stepped_cycles;
        self.dram_slept += e.dram_slept_cycles;
        self.icnt_stepped += e.icnt_stepped_cycles;
        self.icnt_slept += e.icnt_slept_cycles;
        self.skip_to_sm += e.skip_to_sm;
        self.skip_to_dram += e.skip_to_dram;
        self.skip_to_icnt += e.skip_to_icnt;
        self.skip_to_window += e.skip_to_window;
        self.skip_to_max += e.skip_to_max;
        self.desc_hits += e.desc_hits;
        self.desc_misses += e.desc_misses;
        self.desc_entries += e.desc_entries;
        self.desc_bytes += e.desc_bytes;
        self.sm_lsu_busy += e.sm_lsu_busy_cycles;
        self.sm_issue_scan += e.sm_issue_scan_cycles;
        self.sm_bursts += e.sm_bursts;
        self.sm_burst_cycles += e.sm_burst_cycles;
        self.sm_burst_hist[0] += e.sm_burst_len_1;
        self.sm_burst_hist[1] += e.sm_burst_len_2_3;
        self.sm_burst_hist[2] += e.sm_burst_len_4_7;
        self.sm_burst_hist[3] += e.sm_burst_len_8_15;
        self.sm_burst_hist[4] += e.sm_burst_len_16_63;
        self.sm_burst_hist[5] += e.sm_burst_len_64p;
        self.sm_lsu_batched += e.sm_lsu_batched;
        self.par_threads_max = self.par_threads_max.max(e.par_threads.max(1));
        self.par_rounds += e.par_rounds;
        self.par_spans += e.par_spans;
        self.par_steals += e.par_steals;
        self.par_barrier_ns += e.par_barrier_wait_ns;
        if self.partitions.len() < stats.partitions.len() {
            self.partitions.resize(stats.partitions.len(), PartProfile::default());
        }
        for (agg, pc) in self.partitions.iter_mut().zip(&stats.partitions) {
            agg.sims += 1;
            agg.l2_accesses += pc.l2_accesses;
            agg.dram_services += pc.dram_services;
            agg.icnt_delivered += pc.icnt_delivered;
            agg.dram_stepped += pc.dram_stepped_cycles;
            agg.dram_slept += stats.cycles - pc.dram_stepped_cycles;
            let icnt_stepped = pc.to_l2_stepped_cycles + pc.from_l2_stepped_cycles;
            agg.icnt_stepped += icnt_stepped;
            agg.icnt_slept += 2 * stats.cycles - icnt_stepped;
        }
    }

    /// Records how the producing binary split its thread budget: `jobs`
    /// concurrent simulations, each on `sim_threads` intra-sim workers.
    pub fn record_workers(&mut self, jobs: u64, sim_threads: u64) {
        self.jobs = jobs;
        self.sim_threads = sim_threads;
    }

    /// Fraction of pool-executed spans claimed from another thread's
    /// chunk, in [0, 1]; 0 when nothing ran on a pool.
    pub fn par_stolen_fraction(&self) -> f64 {
        if self.par_spans == 0 {
            0.0
        } else {
            self.par_steals as f64 / self.par_spans as f64
        }
    }

    /// Seconds the round publishers spent waiting at rendezvous barriers.
    pub fn par_barrier_s(&self) -> f64 {
        self.par_barrier_ns as f64 / 1e9
    }

    /// Records one written trace file (size and event count).
    pub fn record_trace(&mut self, bytes: u64, events: u64) {
        self.trace_files += 1;
        self.trace_bytes += bytes;
        self.trace_events += events;
    }

    /// Fraction of SM-cycles in which the SM was asleep (calendar-gated or
    /// inside a fast-forwarded span).
    pub fn sm_sleep_fraction(&self) -> f64 {
        sleep_fraction(self.sm_stepped, self.sm_slept)
    }

    /// Fraction of cycles the DRAM controller was asleep.
    pub fn dram_sleep_fraction(&self) -> f64 {
        sleep_fraction(self.dram_stepped, self.dram_slept)
    }

    /// Fraction of interconnect queue-cycles with no delivery work.
    pub fn icnt_sleep_fraction(&self) -> f64 {
        sleep_fraction(self.icnt_stepped, self.icnt_slept)
    }

    /// Aggregate descriptor-cache hit rate across all simulations, in
    /// [0, 1]; 0 when no access went through the cache.
    pub fn desc_hit_rate(&self) -> f64 {
        let total = self.desc_hits + self.desc_misses;
        if total == 0 {
            0.0
        } else {
            self.desc_hits as f64 / total as f64
        }
    }

    /// Number of recorded simulations.
    pub fn sims(&self) -> usize {
        self.records.len()
    }

    /// Total wall-clock seconds spent simulating (sum over sims; on one
    /// worker this approximates the suite wall-clock, on N workers it can
    /// exceed it).
    pub fn sim_wall_s(&self) -> f64 {
        self.records.iter().map(|r| r.wall_s).sum()
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.records.iter().map(|r| r.cycles).sum()
    }

    /// Total stepped cycles.
    pub fn stepped(&self) -> u64 {
        self.records.iter().map(|r| r.stepped).sum()
    }

    /// Total skipped cycles.
    pub fn skipped(&self) -> u64 {
        self.records.iter().map(|r| r.skipped).sum()
    }

    /// Fraction of all simulated cycles that were fast-forwarded.
    pub fn skipped_fraction(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.skipped() as f64 / c as f64
        }
    }

    /// Simulated cycles per wall-clock second of simulation time.
    pub fn cycles_per_sec(&self) -> f64 {
        let w = self.sim_wall_s();
        if w <= 0.0 {
            0.0
        } else {
            self.cycles() as f64 / w
        }
    }

    /// Human-readable multi-line summary (for `--profile` stderr output).
    pub fn summary(&self, suite_wall_s: f64) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "[profile] {} sims in {:.1}s wall ({:.1}s summed sim time, {:.2} sims/s)\n",
            self.sims(),
            suite_wall_s,
            self.sim_wall_s(),
            if suite_wall_s > 0.0 { self.sims() as f64 / suite_wall_s } else { 0.0 },
        ));
        s.push_str(&format!(
            "[profile] {} cycles simulated ({:.2} Mcycles/s): {} stepped, {} skipped \
             ({:.1}% skipped in {} jumps)\n",
            self.cycles(),
            self.cycles_per_sec() / 1e6,
            self.stepped(),
            self.skipped(),
            self.skipped_fraction() * 100.0,
            self.skip_jumps,
        ));
        s.push_str(&format!(
            "[profile] events: {} L2 requests, {} DRAM services, {} icnt deliveries, \
             {} dispatch passes\n",
            self.l2_requests, self.dram_services, self.icnt_delivered, self.dispatch_passes,
        ));
        s.push_str(&format!(
            "[profile] component sleep: SM {:.1}%, DRAM {:.1}%, icnt {:.1}%\n",
            self.sm_sleep_fraction() * 100.0,
            self.dram_sleep_fraction() * 100.0,
            self.icnt_sleep_fraction() * 100.0,
        ));
        s.push_str(&format!(
            "[profile] desc cache: {} hits, {} misses ({:.2}% hit rate), \
             {} entries, {} bytes\n",
            self.desc_hits,
            self.desc_misses,
            self.desc_hit_rate() * 100.0,
            self.desc_entries,
            self.desc_bytes,
        ));
        s.push_str(&format!(
            "[profile] SM phases: {} lsu-busy cycles, {} issue-scan cycles \
             (of {} stepped SM-cycles)\n",
            self.sm_lsu_busy, self.sm_issue_scan, self.sm_stepped,
        ));
        s.push_str(&format!(
            "[profile] bursts: {} spans covering {} SM-cycles (mean {:.2}), \
             {} lsu batched; len hist 1:{} 2-3:{} 4-7:{} 8-15:{} 16-63:{} 64+:{}\n",
            self.sm_bursts,
            self.sm_burst_cycles,
            self.agg_mean_burst_len(),
            self.sm_lsu_batched,
            self.sm_burst_hist[0],
            self.sm_burst_hist[1],
            self.sm_burst_hist[2],
            self.sm_burst_hist[3],
            self.sm_burst_hist[4],
            self.sm_burst_hist[5],
        ));
        if self.par_rounds > 0 {
            s.push_str(&format!(
                "[profile] parallel: {} threads, {} rounds, {} spans \
                 ({} stolen, {:.1}%), barrier wait {:.3}s ({:.1}% of sim time)\n",
                self.par_threads_max,
                self.par_rounds,
                self.par_spans,
                self.par_steals,
                self.par_stolen_fraction() * 100.0,
                self.par_barrier_s(),
                if self.sim_wall_s() > 0.0 {
                    self.par_barrier_s() / self.sim_wall_s() * 100.0
                } else {
                    0.0
                },
            ));
        } else {
            s.push_str("[profile] parallel: off (sim-threads 1, serial spans)\n");
        }
        if self.partitions.len() > 1 {
            for (id, p) in self.partitions.iter().enumerate() {
                s.push_str(&format!(
                    "[profile]   part {id}: {} L2 acc, {} DRAM svc, {} icnt, \
                     dram sleep {:.1}%, icnt sleep {:.1}%\n",
                    p.l2_accesses,
                    p.dram_services,
                    p.icnt_delivered,
                    p.dram_sleep_fraction() * 100.0,
                    p.icnt_sleep_fraction() * 100.0,
                ));
            }
        }
        s.push_str(&format!(
            "[profile] skip bounds: {} sm, {} dram, {} icnt, {} window, {} max\n",
            self.skip_to_sm,
            self.skip_to_dram,
            self.skip_to_icnt,
            self.skip_to_window,
            self.skip_to_max,
        ));
        let mut slowest: Vec<&SimRecord> = self.records.iter().collect();
        slowest.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
        for r in slowest.iter().take(5) {
            s.push_str(&format!(
                "[profile]   slow: {} {:.2}s {} cycles ({:.1}% skipped, \
                 {:.1}% desc hits, {:.2} mean burst)\n",
                r.key,
                r.wall_s,
                r.cycles,
                r.skipped_fraction() * 100.0,
                r.desc_hit_rate() * 100.0,
                r.mean_burst_len(),
            ));
        }
        s
    }

    /// Mean local-clock span length across all simulations (1.0 when no SM
    /// ever ticked).
    pub fn agg_mean_burst_len(&self) -> f64 {
        if self.sm_bursts == 0 {
            1.0
        } else {
            self.sm_burst_cycles as f64 / self.sm_bursts as f64
        }
    }

    /// The `BENCH_PR10.json` throughput record.
    ///
    /// `label` names the producing binary, `scale` the run scale, and
    /// `suite_wall_s` the end-to-end harness wall-clock.
    pub fn to_json(&self, label: &str, scale: &str, suite_wall_s: f64) -> String {
        let mut slowest: Vec<&SimRecord> = self.records.iter().collect();
        slowest.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
        let slow_entries: Vec<String> = slowest
            .iter()
            .take(5)
            .map(|r| {
                format!(
                    "{{\"key\": {}, \"wall_s\": {:.3}, \"cycles\": {}, \
                     \"skipped_fraction\": {:.6}, \"desc_hit_rate\": {:.6}, \
                     \"mean_burst_len\": {:.3}}}",
                    json_string(&r.key),
                    r.wall_s,
                    r.cycles,
                    r.skipped_fraction(),
                    r.desc_hit_rate(),
                    r.mean_burst_len(),
                )
            })
            .collect();
        let part_entries: Vec<String> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(id, p)| {
                format!(
                    "{{\"id\": {id}, \"sims\": {}, \"l2_accesses\": {}, \
                     \"dram_services\": {}, \"icnt_delivered\": {}, \
                     \"dram_sleep_fraction\": {:.6}, \"icnt_sleep_fraction\": {:.6}}}",
                    p.sims,
                    p.l2_accesses,
                    p.dram_services,
                    p.icnt_delivered,
                    p.dram_sleep_fraction(),
                    p.icnt_sleep_fraction(),
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"PR10\",\n  \"binary\": {},\n  \"scale\": {},\n  \
             \"suite_wall_s\": {:.3},\n  \"sims\": {},\n  \"sim_wall_s\": {:.3},\n  \
             \"cycles\": {},\n  \"stepped_cycles\": {},\n  \"skipped_cycles\": {},\n  \
             \"skipped_fraction\": {:.6},\n  \"cycles_per_sec\": {:.1},\n  \
             \"sims_per_sec\": {:.3},\n  \"events\": {{\"skip_jumps\": {}, \
             \"l2_requests\": {}, \"dram_services\": {}, \"icnt_delivered\": {}, \
             \"dispatch_passes\": {}}},\n  \"component_sleep\": {{\
             \"sm_stepped\": {}, \"sm_slept\": {}, \"sm_sleep_fraction\": {:.6}, \
             \"dram_stepped\": {}, \"dram_slept\": {}, \"dram_sleep_fraction\": {:.6}, \
             \"icnt_stepped\": {}, \"icnt_slept\": {}, \"icnt_sleep_fraction\": {:.6}}},\n  \
             \"sm_phases\": {{\"lsu_busy_cycles\": {}, \"issue_scan_cycles\": {}, \
             \"burst\": {{\"bursts\": {}, \"burst_cycles\": {}, \"mean_len\": {:.3}, \
             \"lsu_batched\": {}, \"len_hist\": {{\"1\": {}, \"2_3\": {}, \"4_7\": {}, \
             \"8_15\": {}, \"16_63\": {}, \"64p\": {}}}}}, \
             \"parallel\": {{\"threads\": {}, \"rounds\": {}, \"spans\": {}, \
             \"steals\": {}, \"stolen_fraction\": {:.6}, \
             \"barrier_wait_s\": {:.6}}}}},\n  \
             \"workers\": {{\"jobs\": {}, \"sim_threads\": {}}},\n  \
             \"desc_cache\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \
             \"hit_rate\": {:.6}, \"bytes\": {}}},\n  \
             \"skip_bounds\": {{\"sm\": {}, \"dram\": {}, \"icnt\": {}, \
             \"window\": {}, \"max\": {}}},\n  \"trace\": {{\"files\": {}, \
             \"bytes\": {}, \"events\": {}}},\n  \"partitions\": [{}],\n  \
             \"slowest\": [{}]\n}}\n",
            json_string(label),
            json_string(scale),
            suite_wall_s,
            self.sims(),
            self.sim_wall_s(),
            self.cycles(),
            self.stepped(),
            self.skipped(),
            self.skipped_fraction(),
            self.cycles_per_sec(),
            if suite_wall_s > 0.0 { self.sims() as f64 / suite_wall_s } else { 0.0 },
            self.skip_jumps,
            self.l2_requests,
            self.dram_services,
            self.icnt_delivered,
            self.dispatch_passes,
            self.sm_stepped,
            self.sm_slept,
            self.sm_sleep_fraction(),
            self.dram_stepped,
            self.dram_slept,
            self.dram_sleep_fraction(),
            self.icnt_stepped,
            self.icnt_slept,
            self.icnt_sleep_fraction(),
            self.sm_lsu_busy,
            self.sm_issue_scan,
            self.sm_bursts,
            self.sm_burst_cycles,
            self.agg_mean_burst_len(),
            self.sm_lsu_batched,
            self.sm_burst_hist[0],
            self.sm_burst_hist[1],
            self.sm_burst_hist[2],
            self.sm_burst_hist[3],
            self.sm_burst_hist[4],
            self.sm_burst_hist[5],
            self.par_threads_max.max(1),
            self.par_rounds,
            self.par_spans,
            self.par_steals,
            self.par_stolen_fraction(),
            self.par_barrier_s(),
            self.jobs,
            self.sim_threads,
            self.desc_entries,
            self.desc_hits,
            self.desc_misses,
            self.desc_hit_rate(),
            self.desc_bytes,
            self.skip_to_sm,
            self.skip_to_dram,
            self.skip_to_icnt,
            self.skip_to_window,
            self.skip_to_max,
            self.trace_files,
            self.trace_bytes,
            self.trace_events,
            part_entries.join(", "),
            slow_entries.join(", "),
        )
    }
}

/// Encodes `s` as a JSON string literal (quotes, escapes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON validator (recursive descent over the full grammar minus
/// `\u` surrogate-pair checking). Returns the byte offset of the first
/// error. Used by tests to prove `--profile` output is well-formed without
/// pulling in a dependency.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(*i),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(*i);
        }
        *i += 1;
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(*i);
                        }
                        *i += 5;
                    }
                    _ => return Err(*i),
                }
            }
            0x00..=0x1f => return Err(*i),
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let int_start = *i;
    while *i < b.len() && b[*i].is_ascii_digit() {
        *i += 1;
    }
    if *i == int_start || (b[int_start] == b'0' && *i - int_start > 1) {
        return Err(start);
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        let frac = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        if *i == frac {
            return Err(*i);
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        let exp = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        if *i == exp {
            return Err(*i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_valid_json() {
        for s in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            "{\"a\": [1, 2.5, \"x\\n\", true, null], \"b\": {\"c\": false}}",
            "  { \"k\" : \"v\" }  ",
        ] {
            assert!(validate_json(s).is_ok(), "should accept: {s}");
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for s in ["", "{", "{\"a\":}", "[1,]", "01", "\"unterminated", "{\"a\":1} extra", "nul"] {
            assert!(validate_json(s).is_err(), "should reject: {s}");
        }
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert!(validate_json(&json_string("weird \u{1} ctrl")).is_ok());
    }

    #[test]
    fn profile_json_is_valid_and_consistent() {
        let mut p = Profile::default();
        let mut stats = SimStats { cycles: 1000, ..SimStats::default() };
        stats.events.stepped_cycles = 600;
        stats.events.skipped_cycles = 400;
        stats.events.skip_jumps = 7;
        stats.events.desc_hits = 30;
        stats.events.desc_misses = 10;
        stats.events.desc_entries = 10;
        stats.events.desc_bytes = 480;
        stats.events.sm_lsu_busy_cycles = 200;
        stats.events.sm_issue_scan_cycles = 450;
        stats.events.sm_bursts = 50;
        stats.events.sm_burst_cycles = 600;
        stats.events.sm_burst_len_1 = 20;
        stats.events.sm_burst_len_2_3 = 10;
        stats.events.sm_burst_len_8_15 = 20;
        stats.events.sm_lsu_batched = 120;
        stats.events.par_threads = 4;
        stats.events.par_rounds = 9;
        stats.events.par_spans = 30;
        stats.events.par_steals = 6;
        stats.events.par_barrier_wait_ns = 1_500_000;
        p.record("app=GA arch=base".into(), 0.25, &stats);
        p.record_workers(2, 4);
        let j = p.to_json("test", "quick", 0.3);
        assert!(validate_json(&j).is_ok(), "emitted JSON must validate: {j}");
        assert_eq!(p.cycles(), 1000);
        assert_eq!(p.stepped() + p.skipped(), p.cycles());
        assert!((p.skipped_fraction() - 0.4).abs() < 1e-12);
        assert!((p.desc_hit_rate() - 0.75).abs() < 1e-12);
        assert!((p.records[0].desc_hit_rate() - 0.75).abs() < 1e-12);
        assert!(j.contains("\"desc_cache\": {\"entries\": 10, \"hits\": 30, \"misses\": 10"));
        assert!(j.contains("\"sm_phases\": {\"lsu_busy_cycles\": 200, \"issue_scan_cycles\": 450"));
        assert!(j.contains(
            "\"burst\": {\"bursts\": 50, \"burst_cycles\": 600, \"mean_len\": 12.000, \
             \"lsu_batched\": 120, \"len_hist\": {\"1\": 20, \"2_3\": 10, \"4_7\": 0, \
             \"8_15\": 20, \"16_63\": 0, \"64p\": 0}}"
        ));
        assert!((p.agg_mean_burst_len() - 12.0).abs() < 1e-12);
        assert!((p.records[0].mean_burst_len() - 12.0).abs() < 1e-12);
        assert!(j.contains("\"mean_burst_len\": 12.000"));
        assert!(j.contains("\"bench\": \"PR10\""));
        assert!(j.contains(
            "\"parallel\": {\"threads\": 4, \"rounds\": 9, \"spans\": 30, \
             \"steals\": 6, \"stolen_fraction\": 0.200000, \
             \"barrier_wait_s\": 0.001500}"
        ));
        assert!(j.contains("\"workers\": {\"jobs\": 2, \"sim_threads\": 4}"));
        assert!((p.par_stolen_fraction() - 0.2).abs() < 1e-12);
        let line = p.summary(0.3);
        assert!(line.contains("[profile] parallel: 4 threads, 9 rounds, 30 spans"));
        assert!(
            Profile::default().summary(0.1).contains("[profile] parallel: off"),
            "serial profiles must say so rather than print zeros"
        );
    }

    #[test]
    fn per_partition_counters_aggregate_across_sims() {
        use gpu_sim::stats::PartitionCounters;
        let mut p = Profile::default();
        // One two-partition sim, one single-partition sim: partition 0
        // accumulates from both, partition 1 from the first only.
        let mut two = SimStats { cycles: 100, ..SimStats::default() };
        two.partitions = vec![
            PartitionCounters {
                l2_accesses: 10,
                dram_services: 4,
                icnt_delivered: 14,
                dram_stepped_cycles: 60,
                to_l2_stepped_cycles: 30,
                from_l2_stepped_cycles: 10,
                ..PartitionCounters::default()
            },
            PartitionCounters {
                l2_accesses: 6,
                dram_services: 2,
                icnt_delivered: 8,
                dram_stepped_cycles: 20,
                to_l2_stepped_cycles: 10,
                from_l2_stepped_cycles: 10,
                ..PartitionCounters::default()
            },
        ];
        p.record("two".into(), 0.1, &two);
        let mut one = SimStats { cycles: 50, ..SimStats::default() };
        one.partitions = vec![PartitionCounters {
            l2_accesses: 5,
            dram_services: 1,
            icnt_delivered: 6,
            dram_stepped_cycles: 50,
            to_l2_stepped_cycles: 25,
            from_l2_stepped_cycles: 25,
            ..PartitionCounters::default()
        }];
        p.record("one".into(), 0.1, &one);

        assert_eq!(p.partitions.len(), 2);
        assert_eq!(p.partitions[0].sims, 2);
        assert_eq!(p.partitions[0].l2_accesses, 15);
        assert_eq!(p.partitions[0].dram_stepped, 110);
        assert_eq!(p.partitions[0].dram_slept, 40);
        assert_eq!(p.partitions[1].sims, 1);
        assert_eq!(p.partitions[1].l2_accesses, 6);
        // Sim 1: 2*100 queue-cycles, 40 stepped; partition 1 saw 20 of 200.
        assert!((p.partitions[1].icnt_sleep_fraction() - 0.9).abs() < 1e-12);
        let j = p.to_json("test", "quick", 0.3);
        assert!(validate_json(&j).is_ok(), "emitted JSON must validate: {j}");
        assert!(j.contains("\"partitions\": [{\"id\": 0,"));
    }
}
