//! The architecture registry: every configuration evaluated in the paper.

use baselines::{
    baseline_svc_factory, best_swl_cache_ext_config, cache_ext_config, cerf_factory,
    pcal_cerf_factory, pcal_factory, pcal_svc_factory, static_limit_factory,
};
use gpu_sim::config::GpuConfig;
use gpu_sim::kernel::KernelSpec;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use linebacker::{
    linebacker_factory, selective_victim_caching_factory, victim_caching_factory, LbConfig,
};
use workloads::AppSpec;

/// An architecture under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Unmodified GTO baseline.
    Baseline,
    /// A fixed CTA limit (one point of the Best-SWL sweep).
    StaticLimit(u32),
    /// PCAL (token-based bypass).
    Pcal,
    /// CERF (cache-emulated register file).
    Cerf,
    /// Full Linebacker.
    Linebacker,
    /// Linebacker with a non-default VTT-partition associativity (Fig. 10).
    LinebackerAssoc(u32),
    /// Victim Caching ablation (no selection, no throttling).
    VictimCaching,
    /// Selective Victim Caching ablation (no throttling).
    Svc,
    /// PCAL stacked on CERF (§5.5).
    PcalCerf,
    /// PCAL stacked on SVC (§5.5).
    PcalSvc,
    /// Baseline + SVC naming of §5.5.
    BaselineSvc,
    /// Idealized enlarged L1 (by SUR) with baseline scheduling (§2.4).
    CacheExt,
    /// Best-SWL limit `l` with L1 enlarged by SUR+DUR (§2.4).
    BestSwlCacheExt(u32),
    /// Linebacker running on the CacheExt configuration (§5.5).
    LbCacheExt,
    /// Linebacker with a non-default Load-Monitor hit threshold, in
    /// hundredths (ablation sweep; Table 3 default is 20).
    LbThreshold(u32),
    /// Linebacker with non-default IPC variation bounds of ±`b` hundredths
    /// (ablation sweep; Table 3 default is ±10).
    LbIpcBound(u32),
}

impl Arch {
    /// Short name used in table headers.
    pub fn label(&self) -> String {
        match self {
            Arch::Baseline => "Baseline".into(),
            Arch::StaticLimit(l) => format!("SWL({l})"),
            Arch::Pcal => "PCAL".into(),
            Arch::Cerf => "CERF".into(),
            Arch::Linebacker => "LB".into(),
            Arch::LinebackerAssoc(a) => format!("LB({a}-way)"),
            Arch::VictimCaching => "VC".into(),
            Arch::Svc => "SVC".into(),
            Arch::PcalCerf => "PCAL+CERF".into(),
            Arch::PcalSvc => "PCAL+SVC".into(),
            Arch::BaselineSvc => "Base+SVC".into(),
            Arch::CacheExt => "CacheExt".into(),
            Arch::BestSwlCacheExt(l) => format!("BSWL({l})+CacheExt"),
            Arch::LbCacheExt => "LB+CacheExt".into(),
            Arch::LbThreshold(t) => format!("LB(th={t}%)"),
            Arch::LbIpcBound(b) => format!("LB(ipc=±{b}%)"),
        }
    }

    /// Builds the policy factory for this architecture. The returned factory
    /// is `Send + Sync` (it captures only plain configuration values), so
    /// the engine may instantiate policies from worker threads.
    pub fn factory(&self) -> Box<PolicyFactory<'static>> {
        match self {
            Arch::Baseline | Arch::CacheExt => baseline_factory(),
            Arch::StaticLimit(l) | Arch::BestSwlCacheExt(l) => static_limit_factory(Some(*l)),
            Arch::Pcal => pcal_factory(),
            Arch::Cerf => cerf_factory(),
            Arch::Linebacker | Arch::LbCacheExt => linebacker_factory(LbConfig::default()),
            Arch::LinebackerAssoc(a) => linebacker_factory(LbConfig::with_vp_assoc(*a)),
            Arch::VictimCaching => victim_caching_factory(),
            Arch::Svc => selective_victim_caching_factory(),
            Arch::PcalCerf => pcal_cerf_factory(),
            Arch::PcalSvc => pcal_svc_factory(),
            Arch::BaselineSvc => baseline_svc_factory(),
            Arch::LbThreshold(t) => linebacker_factory(LbConfig {
                hit_threshold: *t as f64 / 100.0,
                ..LbConfig::default()
            }),
            Arch::LbIpcBound(b) => {
                let bound = *b as f64 / 100.0;
                linebacker_factory(LbConfig {
                    ipc_upper: bound,
                    ipc_lower: -bound,
                    ..LbConfig::default()
                })
            }
        }
    }

    /// Transforms the base configuration (CacheExt variants enlarge the L1).
    pub fn transform_config(&self, cfg: &GpuConfig, app: &AppSpec) -> GpuConfig {
        let kernel = app.kernel(cfg.n_sms);
        self.transform_config_with(cfg, &kernel)
    }

    /// [`Arch::transform_config`] against an explicit kernel spec — the
    /// trace-replay path has a concrete kernel (the trace's stub) rather
    /// than an [`AppSpec`] to instantiate one from.
    pub fn transform_config_with(&self, cfg: &GpuConfig, kernel: &KernelSpec) -> GpuConfig {
        match self {
            Arch::CacheExt | Arch::LbCacheExt => cache_ext_config(cfg, kernel),
            Arch::BestSwlCacheExt(l) => best_swl_cache_ext_config(cfg, kernel, *l),
            _ => cfg.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use gpu_sim::types::SmId;
    use workloads::app;

    #[test]
    fn labels_unique_for_headline_archs() {
        let archs = [
            Arch::Baseline,
            Arch::Pcal,
            Arch::Cerf,
            Arch::Linebacker,
            Arch::VictimCaching,
            Arch::Svc,
            Arch::PcalCerf,
            Arch::PcalSvc,
            Arch::CacheExt,
            Arch::LbCacheExt,
        ];
        let labels: std::collections::HashSet<String> = archs.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), archs.len());
    }

    #[test]
    fn factories_build() {
        let cfg = Scale::Quick.config();
        let a = app("GE").unwrap();
        let k = a.kernel(cfg.n_sms);
        for arch in [
            Arch::Baseline,
            Arch::StaticLimit(2),
            Arch::Pcal,
            Arch::Cerf,
            Arch::Linebacker,
            Arch::LinebackerAssoc(1),
            Arch::VictimCaching,
            Arch::Svc,
            Arch::PcalCerf,
            Arch::PcalSvc,
            Arch::BaselineSvc,
            Arch::LbThreshold(5),
            Arch::LbIpcBound(20),
        ] {
            let f = arch.factory();
            let _p = f(SmId(0), &cfg, &k);
        }
    }

    #[test]
    fn cache_ext_transform_enlarges_l1() {
        let cfg = Scale::Quick.config();
        let a = app("GE").unwrap(); // has static register slack
        let t = Arch::CacheExt.transform_config(&cfg, &a);
        assert!(t.l1.size_bytes > cfg.l1.size_bytes);
        let same = Arch::Linebacker.transform_config(&cfg, &a);
        assert_eq!(same.l1.size_bytes, cfg.l1.size_bytes);
    }
}
