//! Golden event-trace regression tests.
//!
//! Where `gpu-sim/tests/golden.rs` locks the end-of-run scalar counters,
//! these tests lock the *order of microarchitectural events*: one short
//! fixed kernel runs under the baseline, PCAL, CERF and Linebacker
//! policies with tracing enabled, and the captured streams are diffed
//! against committed `.lbt` files in `tests/golden_traces/`. A divergence
//! names the first differing event (cycle, kind, payload), which localizes
//! a behavioural change far more precisely than a drifted digest.
//!
//! The committed captures deliberately exclude per-instruction `Issue`
//! events (the bulkiest kind, covered by the determinism test below) to
//! keep the checked-in files small.
//!
//! To re-pin after an *intended* simulation change:
//!
//! ```text
//! LB_REGOLDEN=1 cargo test -p lb-bench --test golden_traces
//! ```

use std::path::PathBuf;

use baselines::{cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel_traced;
use gpu_sim::kernel::{KernelBuilder, KernelSpec};
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::trace::{diff, read_file, DiffOutcome, EventKind, TraceWriter, Tracer, MASK_ALL};
use gpu_sim::types::LINE_BYTES;
use linebacker::{linebacker_factory, LbConfig};

/// Same shape as the golden-stats kernel but shorter, so the committed
/// traces stay small while still exercising eviction, backup/restore and
/// both cache levels.
fn trace_kernel(n_sms: u32) -> KernelSpec {
    KernelBuilder::new("golden-trace")
        .grid(4 * n_sms, 8)
        .regs_per_thread(24)
        .iterations(12)
        .alu(3)
        .load_then_use(
            AccessPattern::ReuseWorkingSet { ws_bytes: 16 * LINE_BYTES, shared: false },
            2,
        )
        .load_then_use(AccessPattern::ReuseWorkingSet { ws_bytes: 16 * 1024, shared: true }, 1)
        .load(AccessPattern::Streaming { bytes_per_access: LINE_BYTES })
        .alu(2)
        .build()
        .expect("trace kernel must validate")
}

fn capture(factory: &PolicyFactory<'_>, mask: u64) -> Vec<u8> {
    capture_cfg(factory, mask, GpuConfig::default().with_sms(2).with_windows(2_500, 30_000))
}

fn capture_cfg(factory: &PolicyFactory<'_>, mask: u64, cfg: GpuConfig) -> Vec<u8> {
    let kernel = trace_kernel(cfg.n_sms);
    let tracer = Tracer::new(TraceWriter::to_memory(mask));
    run_kernel_traced(cfg, kernel, factory, tracer.clone());
    tracer.finish().expect("memory writer cannot fail");
    tracer.take_bytes().expect("memory-backed tracer")
}

/// Everything except per-instruction issue events.
fn golden_mask() -> u64 {
    MASK_ALL & !EventKind::Issue.bit()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_traces").join(name)
}

fn check_golden(name: &str, factory: &PolicyFactory<'_>) {
    let fresh = capture(factory, golden_mask());
    let path = golden_path(name);
    if std::env::var_os("LB_REGOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &fresh).expect("write golden trace");
        eprintln!("re-pinned {} ({} bytes)", path.display(), fresh.len());
        return;
    }
    let pinned = read_file(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with LB_REGOLDEN=1 to (re-)pin the golden traces",
            path.display()
        )
    });
    let outcome = diff(&pinned, &fresh).expect("both traces must parse");
    match outcome {
        DiffOutcome::Identical { events } => {
            assert!(events > 0, "golden trace {name} is empty");
        }
        other => panic!(
            "{name} diverged from the pinned golden trace; if the simulation \
             change is intended, re-pin with LB_REGOLDEN=1.\n{other}"
        ),
    }
}

#[test]
fn golden_trace_baseline() {
    check_golden("baseline.lbt", &baseline_factory());
}

#[test]
fn golden_trace_pcal() {
    check_golden("pcal.lbt", &pcal_factory());
}

#[test]
fn golden_trace_cerf() {
    check_golden("cerf.lbt", &cerf_factory());
}

#[test]
fn golden_trace_linebacker() {
    check_golden("linebacker.lbt", &linebacker_factory(LbConfig::default()));
}

/// Two captures of the same configuration — full mask, `Issue` included —
/// must be event-for-event identical: the capture path itself is
/// deterministic, not just the simulation scalars.
#[test]
fn identical_runs_produce_identical_traces() {
    let a = capture(&linebacker_factory(LbConfig::default()), MASK_ALL);
    let b = capture(&linebacker_factory(LbConfig::default()), MASK_ALL);
    let outcome = diff(&a, &b).expect("traces must parse");
    assert!(outcome.is_identical(), "same config diverged: {outcome}");
}

/// The decoded access-descriptor cache must be invisible at event
/// granularity: with the cache *disabled*, every policy's capture must
/// diff clean — zero divergence — against the pinned golden traces
/// (which the cache-on tests above already match). The traces are never
/// re-pinned here: a divergence is a replay bug, not a new golden.
#[test]
fn desc_cache_off_traces_match_pinned_goldens() {
    let uncached =
        GpuConfig::default().with_sms(2).with_windows(2_500, 30_000).with_desc_cache(false);
    let cases = [
        ("baseline.lbt", baseline_factory()),
        ("pcal.lbt", pcal_factory()),
        ("cerf.lbt", cerf_factory()),
        ("linebacker.lbt", linebacker_factory(LbConfig::default())),
    ];
    for (name, factory) in &cases {
        let fresh = capture_cfg(factory, golden_mask(), uncached.clone());
        let pinned = read_file(&golden_path(name)).unwrap_or_else(|e| {
            panic!("cannot read pinned golden {name} ({e}); pin via the cache-on tests first")
        });
        match diff(&pinned, &fresh).expect("both traces must parse") {
            DiffOutcome::Identical { events } => {
                assert!(events > 0, "golden trace {name} is empty");
            }
            other => panic!(
                "--no-desc-cache run diverged from pinned {name}: the descriptor \
                 replay path is not exact.\n{other}"
            ),
        }
    }
}

/// Different policies must produce *different* streams (the diff tool's
/// reason to exist); the first divergence carries a usable payload.
#[test]
fn policies_diverge_and_diff_localizes_it() {
    let base = capture(&baseline_factory(), golden_mask());
    let lb = capture(&linebacker_factory(LbConfig::default()), golden_mask());
    match diff(&base, &lb).expect("traces must parse") {
        DiffOutcome::Diverged { index, .. } => {
            // Both runs start from the same cold caches, so the shared
            // prefix is non-trivial — the finder must skip past it.
            assert!(index > 0, "divergence at the very first event is implausible");
        }
        other => panic!("baseline and Linebacker traces must diverge, got {other}"),
    }
}
