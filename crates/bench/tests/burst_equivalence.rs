//! Burst execution must be invisible: with greedy-run bursting and SM
//! local clocks enabled (the default) every *architectural* statistic —
//! instruction counts, cache outcomes, per-load maps, timelines, energy —
//! must be bit-identical to the lockstep per-cycle engine (`--no-burst`).
//!
//! Only engine-observability counters are allowed to differ: how many
//! cycles the global loop stepped vs. skipped, per-component stepped/slept
//! splits, and the burst counters themselves (which are zero with bursting
//! off by definition). The digest below scrubs exactly those fields and
//! compares everything else, including `sm_issue_scan_cycles` and
//! `sm_lsu_busy_cycles` — the burst engine must charge scheduler scans and
//! LSU occupancy on the same cycles the per-cycle loop would.

use std::collections::BTreeMap;

use baselines::{cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::{run_kernel, run_kernel_traced};
use gpu_sim::kernel::{KernelBuilder, KernelSpec};
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::stats::{LoadWindowDetail, SimStats};
use gpu_sim::trace::{diff, TraceWriter, Tracer, MASK_ALL};
use linebacker::{linebacker_factory, LbConfig};

/// The four single-run policies (Best-SWL is a sweep over baseline runs,
/// so baseline coverage covers it).
fn policies() -> Vec<(&'static str, Box<PolicyFactory<'static>>)> {
    vec![
        ("base", baseline_factory()),
        ("pcal", pcal_factory()),
        ("cerf", cerf_factory()),
        ("lb", linebacker_factory(LbConfig::default())),
    ]
}

/// HashMap iteration order is per-instance; sort line counts before
/// formatting so two equal details digest equally.
fn detail_digest(d: &LoadWindowDetail) -> String {
    let lines: BTreeMap<u64, u32> = d.line_counts.iter().map(|(k, v)| (*k, *v)).collect();
    format!("lines={lines:?} windows={:?}", d.windows)
}

/// Architectural digest of a run: every field of [`SimStats`] except the
/// engine-scheduling counters that bursting is *allowed* to change.
fn digest(stats: &SimStats) -> String {
    let mut s = stats.clone();
    // Pull the HashMap-keyed views out and re-key them deterministically.
    let per_load: BTreeMap<u32, String> =
        s.per_load.iter().map(|(k, v)| (*k, format!("{v:?}"))).collect();
    let load_detail: BTreeMap<u32, String> =
        s.load_detail.iter().map(|(k, v)| (*k, detail_digest(v))).collect();
    let detail_dense: Vec<String> = s.load_detail_dense.iter().map(detail_digest).collect();
    s.per_load.clear();
    s.load_detail.clear();
    s.load_detail_dense.clear();
    // Engine observability: global stepped/skipped split and its per-cause
    // breakdown legitimately shift when SMs run on local clocks.
    let e = &mut s.events;
    e.stepped_cycles = 0;
    e.skipped_cycles = 0;
    e.skip_jumps = 0;
    e.dispatch_passes = 0;
    e.sm_stepped_cycles = 0;
    e.sm_slept_cycles = 0;
    e.dram_stepped_cycles = 0;
    e.dram_slept_cycles = 0;
    e.icnt_stepped_cycles = 0;
    e.icnt_slept_cycles = 0;
    e.skip_to_sm = 0;
    e.skip_to_dram = 0;
    e.skip_to_icnt = 0;
    e.skip_to_window = 0;
    e.skip_to_max = 0;
    // Burst counters are the feature's own telemetry: zero with --no-burst.
    e.sm_bursts = 0;
    e.sm_burst_cycles = 0;
    e.sm_burst_len_1 = 0;
    e.sm_burst_len_2_3 = 0;
    e.sm_burst_len_4_7 = 0;
    e.sm_burst_len_8_15 = 0;
    e.sm_burst_len_16_63 = 0;
    e.sm_burst_len_64p = 0;
    e.sm_lsu_batched = 0;
    for p in &mut s.partitions {
        p.dram_stepped_cycles = 0;
        p.to_l2_stepped_cycles = 0;
        p.from_l2_stepped_cycles = 0;
    }
    format!("{s:?}|per_load={per_load:?}|detail={load_detail:?}|dense={detail_dense:?}")
}

fn quick_cfg() -> GpuConfig {
    GpuConfig::default().with_sms(4).with_windows(5_000, 60_000)
}

fn assert_equivalent(cfg: &GpuConfig, k: &KernelSpec, factory: &PolicyFactory<'_>, what: &str) {
    let on = run_kernel(cfg.clone(), k.clone(), factory);
    let off = run_kernel(cfg.clone().with_burst(false), k.clone(), factory);
    assert_eq!(
        digest(&on),
        digest(&off),
        "{what}: burst-on and burst-off architectural stats must be identical"
    );
}

/// Golden equivalence across all four policies on paper workloads covering
/// the three behaviour classes: cache-sensitive reuse (GA), mixed (GE),
/// and streaming (S2).
#[test]
fn burst_on_off_identical_across_policies() {
    let cfg = quick_cfg();
    for abbrev in ["GA", "GE", "S2"] {
        let app = workloads::app(abbrev).expect("known app");
        let k = app.kernel(cfg.n_sms);
        for (name, factory) in policies() {
            assert_equivalent(&cfg, &k, &factory, &format!("app={abbrev} arch={name}"));
        }
    }
}

/// Multi-partition memory subsystem: the pending-outbox flush path must
/// reproduce the lockstep interconnect arrival order across L2 slices.
#[test]
fn burst_equivalence_holds_with_partitioned_memory() {
    let cfg = quick_cfg().with_mem_partitions(4);
    let app = workloads::app("GE").expect("known app");
    let k = app.kernel(cfg.n_sms);
    assert_equivalent(&cfg, &k, &linebacker_factory(LbConfig::default()), "GE lb 4-part");
}

/// Attaching a tracer suspends bursting, so traced runs are lockstep on
/// both sides and the event streams must be byte-identical — the lb-trace
/// differ must see zero divergence.
#[test]
fn traced_runs_diverge_nowhere() {
    let cfg = quick_cfg();
    let app = workloads::app("GA").expect("known app");
    let k = app.kernel(cfg.n_sms);
    let capture = |cfg: GpuConfig| {
        let tracer = Tracer::new(TraceWriter::to_memory(MASK_ALL));
        let s = run_kernel_traced(cfg, k.clone(), &linebacker_factory(LbConfig::default()), {
            tracer.clone()
        });
        (s, tracer.take_bytes().expect("memory sink"))
    };
    let (s_on, bytes_on) = capture(cfg.clone());
    let (s_off, bytes_off) = capture(cfg.with_burst(false));
    assert_eq!(digest(&s_on), digest(&s_off));
    assert_eq!(bytes_on, bytes_off, "traced runs must produce byte-identical event streams");
    let outcome = diff(&bytes_on, &bytes_off).expect("valid traces");
    assert!(outcome.is_identical(), "trace diff must report zero divergence");
}

/// Randomized sweep: kernels drawn across access patterns, grid shapes,
/// register pressure, and policies must digest identically on vs. off.
/// This is the adversarial net for burst-legality corner cases the golden
/// apps don't reach (store bursts, dependence gating, tiny working sets).
#[test]
fn randomized_kernels_are_burst_invariant() {
    testkit::check_n("burst-equivalence-sweep", 16, |rng| {
        let pattern = match rng.range_u32(0, 3) {
            0 => AccessPattern::Streaming { bytes_per_access: 32 << rng.range_u32(0, 2) },
            1 => AccessPattern::ReuseWorkingSet {
                ws_bytes: 4096 << rng.range_u32(0, 4),
                shared: rng.bool(),
            },
            2 => AccessPattern::Tiled {
                tile_bytes: 2048 << rng.range_u32(0, 3),
                reuse: rng.range_u32(2, 5),
                shared: rng.bool(),
            },
            _ => AccessPattern::RandomInSet {
                ws_bytes: 8192 << rng.range_u32(0, 3),
                shared: rng.bool(),
            },
        };
        let mut b = KernelBuilder::new("sweep")
            .grid(rng.range_u32(2, 9), rng.range_u32(1, 9))
            .regs_per_thread(rng.range_u32(16, 65))
            .iterations(rng.range_u32(30, 120))
            .load_then_use(pattern, rng.range_u32(0, 4));
        for _ in 0..rng.range_u32(0, 5) {
            b = b.alu(rng.range_u32(1, 4));
        }
        if rng.bool() {
            b = b.store(AccessPattern::SparseStream { period: rng.range_u32(2, 6) });
        }
        let k = b.build().expect("kernel must validate");
        let cfg = GpuConfig::default().with_sms(rng.range_u32(1, 5)).with_windows(5_000, 60_000);
        let (name, factory) = policies().swap_remove(rng.range_usize(0, 4));
        assert_equivalent(&cfg, &k, &factory, &format!("sweep arch={name}"));
    });
}
