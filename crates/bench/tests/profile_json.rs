//! End-to-end profiler smoke: a forced `--profile` run of the `sanity`
//! binary must emit exactly one valid JSON document on stdout, with the
//! stepped/skipped accounting consistent and skipping engaged somewhere in
//! the suite.

use std::process::Command;

use lb_bench::profile::validate_json;

/// Extracts `"key": <number>` from the flat profile JSON (the keys probed
/// here are unique in the document).
fn field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("missing field {key}"));
    let rest = json[at + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|_| panic!("unparsable number for {key}: {rest:.20?}"))
}

#[test]
fn sanity_profile_emits_valid_json() {
    // One app keeps this fast; --quick shrinks windows further.
    let out = Command::new(env!("CARGO_BIN_EXE_sanity"))
        .args(["--profile", "--quick", "GA"])
        .output()
        .expect("sanity binary must run");
    assert!(out.status.success(), "sanity exited with {:?}", out.status);

    let stdout = String::from_utf8(out.stdout).expect("stdout must be UTF-8");
    validate_json(&stdout).unwrap_or_else(|at| panic!("invalid JSON at byte {at}: {stdout}"));

    assert!(stdout.contains("\"bench\": \"PR9\""), "document must identify the bench format");
    assert!(stdout.contains("\"scale\": \"sanity-quick\""));
    assert!(stdout.contains("\"component_sleep\""), "must carry per-component sleep stats");
    assert!(stdout.contains("\"skip_bounds\""), "must carry the skip-engagement breakdown");
    assert!(stdout.contains("\"trace\""), "must carry the trace-capture accounting block");
    assert!(stdout.contains("\"partitions\": [{\"id\": 0,"), "must carry per-partition stats");
    assert!(stdout.contains("\"desc_cache\""), "must carry the descriptor-cache block");
    assert!(stdout.contains("\"sm_phases\""), "must carry per-phase SM cycle attribution");
}

#[test]
fn sanity_profile_counters_are_consistent() {
    let out = Command::new(env!("CARGO_BIN_EXE_sanity"))
        .args(["--profile", "--quick", "GA"])
        .output()
        .expect("sanity binary must run");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    validate_json(&stdout).unwrap_or_else(|at| panic!("invalid JSON at byte {at}"));

    let cycles = field(&stdout, "cycles");
    let stepped = field(&stdout, "stepped_cycles");
    let skipped = field(&stdout, "skipped_cycles");
    assert!(cycles > 0.0);
    assert_eq!(stepped + skipped, cycles, "stepped + skipped must equal cycles");

    let sims = field(&stdout, "sims");
    assert!(sims >= 5.0, "GA runs at least base/bswl/pcal/cerf/lb, got {sims}");

    let cps = field(&stdout, "cycles_per_sec");
    assert!(cps > 0.0, "throughput must be positive");

    // The DRAM controller is one component per GPU, so its stepped + slept
    // cycles must sum to the total simulated cycles across the suite.
    let dram_stepped = field(&stdout, "dram_stepped");
    let dram_slept = field(&stdout, "dram_slept");
    assert_eq!(dram_stepped + dram_slept, cycles, "per-DRAM cycle accounting must close");

    // The descriptor cache is on by default: after every warp's first
    // execution of each static load, accesses replay from the table, so
    // hits must dominate misses across the suite.
    let desc_hits = field(&stdout, "hits");
    let desc_misses = field(&stdout, "misses");
    assert!(desc_hits > 0.0, "default run must replay from the descriptor cache");
    assert!(desc_misses > 0.0, "first executions must decode");
    assert!(
        desc_hits > desc_misses,
        "steady-state replays must outnumber decodes ({desc_hits} vs {desc_misses})"
    );
}
