//! Partition-path golden regression: an *explicit* one-partition
//! configuration must be bit-identical to the monolithic memory path it
//! replaced.
//!
//! `gpu-sim/tests/golden.rs` locks the scalar digests and
//! `golden_traces.rs` locks the event streams of the default (implicit
//! P=1) configuration. These tests run the same kernels through
//! `with_mem_partitions(1)` — the partitioned code path with one
//! partition — and assert the digests and the committed golden traces
//! come out unchanged. Any divergence means partitioning leaked into the
//! P=1 fast path.
//!
//! These tests never re-pin: the committed artefacts belong to the
//! default-path suites above, and re-writing them from here would
//! silently move the oracle onto the code under test. When `LB_REGOLDEN`
//! is set (a deliberate re-pin of the *default* goldens elsewhere) they
//! skip instead, and the next plain run re-checks against the fresh pins.

use std::path::PathBuf;

use baselines::{cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::{run_kernel, run_kernel_traced};
use gpu_sim::kernel::{KernelBuilder, KernelSpec};
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::stats::SimStats;
use gpu_sim::trace::{diff, read_file, DiffOutcome, EventKind, TraceWriter, Tracer, MASK_ALL};
use gpu_sim::types::LINE_BYTES;
use linebacker::{linebacker_factory, LbConfig};

/// True when a re-pin of the default goldens is in progress; these tests
/// check against committed artefacts and must not race a rewrite.
fn regolden_in_progress() -> bool {
    if std::env::var_os("LB_REGOLDEN").is_some() {
        eprintln!(
            "LB_REGOLDEN is set: skipping partition golden checks (they never \
             re-pin; re-run without LB_REGOLDEN to verify against the new pins)"
        );
        return true;
    }
    false
}

/// The `gpu-sim/tests/golden.rs` configuration, with the partition count
/// written out explicitly.
fn golden_config() -> GpuConfig {
    GpuConfig::default().with_sms(2).with_windows(5_000, 60_000).with_mem_partitions(1)
}

/// The same mixed reuse + streaming kernel as the golden-stats suite.
fn golden_kernel(n_sms: u32) -> KernelSpec {
    KernelBuilder::new("golden")
        .grid(4 * n_sms, 8)
        .regs_per_thread(24)
        .iterations(60)
        .alu(3)
        .load_then_use(
            AccessPattern::ReuseWorkingSet { ws_bytes: 16 * LINE_BYTES, shared: false },
            2,
        )
        .load_then_use(AccessPattern::ReuseWorkingSet { ws_bytes: 16 * 1024, shared: true }, 1)
        .load(AccessPattern::Streaming { bytes_per_access: LINE_BYTES })
        .alu(2)
        .build()
        .expect("golden kernel must validate")
}

/// Same scalar digest as `gpu-sim/tests/golden.rs`.
fn digest(s: &SimStats) -> String {
    format!(
        "cycles={} insts={} l1_hits={} miss_cold={} miss_2c={} bypasses={} \
         reg_hits={} stores={} l2_hits={} l2_misses={} rf_reads={} rf_writes={} \
         mshr_stalls={} dram_demand={} dram_store={} dram_backup={} dram_restore={} \
         completed={}",
        s.cycles,
        s.instructions,
        s.l1_hits,
        s.miss_cold,
        s.miss_2c,
        s.bypasses,
        s.reg_hits,
        s.stores,
        s.l2_hits,
        s.l2_misses,
        s.rf_reads,
        s.rf_writes,
        s.mshr_stalls,
        s.dram_bytes[0],
        s.dram_bytes[1],
        s.dram_bytes[2],
        s.dram_bytes[3],
        s.completed,
    )
}

fn run_explicit_p1(factory: &PolicyFactory<'_>) -> SimStats {
    let cfg = golden_config();
    let kernel = golden_kernel(cfg.n_sms);
    run_kernel(cfg, kernel, factory)
}

#[test]
fn explicit_p1_golden_baseline() {
    if regolden_in_progress() {
        return;
    }
    let s = run_explicit_p1(&baseline_factory());
    assert_eq!(
        digest(&s),
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
}

#[test]
fn explicit_p1_golden_pcal() {
    if regolden_in_progress() {
        return;
    }
    let s = run_explicit_p1(&pcal_factory());
    assert_eq!(
        digest(&s),
        "cycles=47386 insts=38400 l1_hits=1002 miss_cold=5223 miss_2c=5295 bypasses=0 reg_hits=0 stores=0 l2_hits=385 l2_misses=8308 rf_reads=76800 rf_writes=38400 mshr_stalls=0 dram_demand=1063424 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
}

#[test]
fn explicit_p1_golden_cerf() {
    if regolden_in_progress() {
        return;
    }
    let s = run_explicit_p1(&cerf_factory());
    assert_eq!(
        digest(&s),
        "cycles=27355 insts=38400 l1_hits=1115 miss_cold=5225 miss_2c=924 bypasses=0 reg_hits=4256 stores=0 l2_hits=78 l2_misses=5581 rf_reads=82171 rf_writes=42738 mshr_stalls=11274 dram_demand=714368 dram_store=0 dram_backup=0 dram_restore=0 completed=true",
    );
}

#[test]
fn explicit_p1_golden_linebacker() {
    if regolden_in_progress() {
        return;
    }
    let s = run_explicit_p1(&linebacker_factory(LbConfig::default()));
    assert_eq!(
        digest(&s),
        "cycles=40199 insts=38400 l1_hits=1793 miss_cold=5223 miss_2c=2485 bypasses=0 reg_hits=2019 stores=0 l2_hits=272 l2_misses=6709 rf_reads=78819 rf_writes=39717 mshr_stalls=0 dram_demand=858752 dram_store=0 dram_backup=98304 dram_restore=98304 completed=true",
    );
}

// ---- golden traces at explicit P=1 ----

/// Same short kernel as `golden_traces.rs`.
fn trace_kernel(n_sms: u32) -> KernelSpec {
    KernelBuilder::new("golden-trace")
        .grid(4 * n_sms, 8)
        .regs_per_thread(24)
        .iterations(12)
        .alu(3)
        .load_then_use(
            AccessPattern::ReuseWorkingSet { ws_bytes: 16 * LINE_BYTES, shared: false },
            2,
        )
        .load_then_use(AccessPattern::ReuseWorkingSet { ws_bytes: 16 * 1024, shared: true }, 1)
        .load(AccessPattern::Streaming { bytes_per_access: LINE_BYTES })
        .alu(2)
        .build()
        .expect("trace kernel must validate")
}

fn capture_explicit_p1(factory: &PolicyFactory<'_>, mask: u64) -> Vec<u8> {
    let cfg = GpuConfig::default().with_sms(2).with_windows(2_500, 30_000).with_mem_partitions(1);
    let kernel = trace_kernel(cfg.n_sms);
    let tracer = Tracer::new(TraceWriter::to_memory(mask));
    run_kernel_traced(cfg, kernel, factory, tracer.clone());
    tracer.finish().expect("memory writer cannot fail");
    tracer.take_bytes().expect("memory-backed tracer")
}

fn golden_mask() -> u64 {
    MASK_ALL & !EventKind::Issue.bit()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_traces").join(name)
}

fn check_trace_unchanged(name: &str, factory: &PolicyFactory<'_>) {
    let fresh = capture_explicit_p1(factory, golden_mask());
    let path = golden_path(name);
    let pinned = read_file(&path)
        .unwrap_or_else(|e| panic!("cannot read committed golden {} ({e})", path.display()));
    match diff(&pinned, &fresh).expect("both traces must parse") {
        DiffOutcome::Identical { events } => assert!(events > 0, "golden trace {name} is empty"),
        other => panic!(
            "explicit P=1 diverged from the committed golden trace {name}: \
             partitioning leaked into the one-partition path.\n{other}"
        ),
    }
}

#[test]
fn explicit_p1_traces_match_committed_goldens() {
    if regolden_in_progress() {
        return;
    }
    check_trace_unchanged("baseline.lbt", &baseline_factory());
    check_trace_unchanged("pcal.lbt", &pcal_factory());
    check_trace_unchanged("cerf.lbt", &cerf_factory());
    check_trace_unchanged("linebacker.lbt", &linebacker_factory(LbConfig::default()));
}
