//! Conservation invariants of the partitioned memory subsystem.
//!
//! Partitioning redistributes traffic across P L2-slice/DRAM-channel
//! pairs; it must never create or destroy it. For one cache-sensitive app
//! (GE) and one streaming app (LI), run to completion at P ∈ {1, 2, 4}
//! and assert:
//!
//! 1. **Accounting closes**: the per-partition counters (L2 accesses and
//!    hits/misses, DRAM transactions and per-class bytes, interconnect
//!    deliveries) sum exactly to the run's global scalars.
//! 2. **Work is conserved across P**: the kernel drains, so instruction
//!    counts and final per-load access/hit totals are demand-driven —
//!    per-load accesses are identical at every P and per-load hits sum
//!    exactly to the global L1-hit scalars.
//! 3. **Steering is total and exact**: a traced run shows every L2 access
//!    and DRAM transaction landing on the partition its line address
//!    hashes to — no partition ever touches another's lines.

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::{run_kernel, run_kernel_traced};
use gpu_sim::policy::baseline_factory;
use gpu_sim::stats::SimStats;
use gpu_sim::trace::{Event, EventKind, TraceReader, TraceWriter, Tracer, FLAG_PART_IDS};
use workloads::AppSpec;

/// One cache-sensitive and one streaming app (Table 2 classes).
fn subject_apps() -> Vec<AppSpec> {
    let ge = workloads::app("GE").expect("GE exists");
    let li = workloads::app("LI").expect("LI exists");
    assert!(!ge.has_streaming_load(), "GE is the cache-sensitive subject");
    assert!(li.has_streaming_load(), "LI is the streaming subject");
    vec![ge, li]
}

/// A work-bounded configuration: generous cycle cap so the fixed-iteration
/// kernel always drains and totals are demand-driven, not cycle-driven.
fn conservation_config(partitions: u32) -> GpuConfig {
    GpuConfig::default().with_sms(2).with_windows(6_000, 2_000_000).with_mem_partitions(partitions)
}

fn run_to_completion(app: &AppSpec, partitions: u32) -> SimStats {
    let cfg = conservation_config(partitions);
    let kernel = app.kernel_with(cfg.n_sms, 30);
    let s = run_kernel(cfg, kernel, &baseline_factory());
    assert!(s.completed, "{} must drain at P={partitions}", app.abbrev);
    s
}

/// Per-partition counters must sum exactly to the global scalars.
fn assert_accounting_closes(app: &str, p: u32, s: &SimStats) {
    assert_eq!(s.partitions.len(), p as usize, "{app} P={p}: partition vector length");
    let sum = |f: fn(&gpu_sim::stats::PartitionCounters) -> u64| -> u64 {
        s.partitions.iter().map(f).sum()
    };
    assert_eq!(sum(|c| c.l2_accesses), s.events.l2_requests, "{app} P={p}: L2 accesses leak");
    assert_eq!(sum(|c| c.l2_hits), s.l2_hits, "{app} P={p}: L2 hits leak");
    assert_eq!(sum(|c| c.l2_misses), s.l2_misses, "{app} P={p}: L2 misses leak");
    assert_eq!(sum(|c| c.dram_services), s.events.dram_services, "{app} P={p}: DRAM tx leak");
    assert_eq!(
        sum(|c| c.icnt_delivered),
        s.events.icnt_delivered,
        "{app} P={p}: icnt deliveries leak"
    );
    for class in 0..4 {
        let per_class: u64 = s.partitions.iter().map(|c| c.dram_bytes[class]).sum();
        assert_eq!(per_class, s.dram_bytes[class], "{app} P={p}: DRAM byte class {class} leaks");
    }
}

/// Sorted (load id, accesses, l1 hits, reg hits) snapshot.
fn load_shape(s: &SimStats) -> Vec<(u32, u64, u64, u64)> {
    let mut v: Vec<(u32, u64, u64, u64)> =
        s.per_load.iter().map(|(&id, l)| (id, l.accesses, l.l1_hits, l.reg_hits)).collect();
    v.sort_unstable();
    v
}

#[test]
fn partition_counters_sum_to_global_totals() {
    for app in subject_apps() {
        for p in [1u32, 2, 4] {
            let s = run_to_completion(&app, p);
            assert_accounting_closes(app.abbrev, p, &s);
            if p > 1 {
                let active = s.partitions.iter().filter(|c| c.l2_accesses > 0).count();
                assert!(
                    active > 1,
                    "{} P={p}: traffic must spread across slices, got {active} active",
                    app.abbrev
                );
            }
        }
    }
}

#[test]
fn work_is_conserved_across_partition_counts() {
    for app in subject_apps() {
        let base = run_to_completion(&app, 1);
        let base_shape = load_shape(&base);
        let base_hits: u64 = base_shape.iter().map(|&(_, _, h, r)| h + r).sum();
        assert_eq!(base_hits, base.l1_hits + base.reg_hits, "{}: per-load hits close", app.abbrev);
        for p in [2u32, 4] {
            let s = run_to_completion(&app, p);
            assert_eq!(s.instructions, base.instructions, "{} P={p}: instructions", app.abbrev);
            let shape = load_shape(&s);
            // Accesses are demand-driven: identical per load at every P.
            // Hits may move between loads (timing changes L1 interleaving)
            // but must still sum to the global scalars.
            for (b, n) in base_shape.iter().zip(&shape) {
                assert_eq!(b.0, n.0, "{} P={p}: load id set", app.abbrev);
                assert_eq!(b.1, n.1, "{} P={p}: load {} access count", app.abbrev, b.0);
            }
            let hits: u64 = shape.iter().map(|&(_, _, h, r)| h + r).sum();
            assert_eq!(hits, s.l1_hits + s.reg_hits, "{} P={p}: per-load hits close", app.abbrev);
        }
    }
}

#[test]
fn every_memory_event_lands_on_its_home_partition() {
    let mask = EventKind::L2Access.bit() | EventKind::DramTx.bit() | FLAG_PART_IDS;
    for app in subject_apps() {
        for p in [2u32, 4] {
            let cfg = conservation_config(p);
            let kernel = app.kernel_with(cfg.n_sms, 8);
            let tracer = Tracer::new(TraceWriter::to_memory(mask));
            let s = run_kernel_traced(cfg, kernel, &baseline_factory(), tracer.clone());
            assert!(s.completed);
            tracer.finish().expect("memory writer cannot fail");
            let bytes = tracer.take_bytes().expect("memory-backed tracer");
            let mut r = TraceReader::new(&bytes).expect("trace parses");
            let want = u64::from(p) - 1;
            let (mut l2_seen, mut dram_seen) = (0u64, 0u64);
            while let Some((_, ev)) = r.next_event().expect("trace decodes") {
                match ev {
                    Event::L2Access { part, line, .. } => {
                        assert_eq!(part, line & want, "{} P={p}: L2 steered wrong", app.abbrev);
                        l2_seen += 1;
                    }
                    Event::DramTx { part, line, .. } => {
                        assert_eq!(part, line & want, "{} P={p}: DRAM steered wrong", app.abbrev);
                        dram_seen += 1;
                    }
                    other => panic!("unexpected event kind in masked capture: {other}"),
                }
            }
            assert!(
                l2_seen > 0 && dram_seen > 0,
                "{} P={p}: capture must be non-empty",
                app.abbrev
            );
        }
    }
}
