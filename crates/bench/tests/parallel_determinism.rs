//! Multi-threaded burst execution must be invisible: `sim_threads = N`
//! runs the due SMs of each step on a work-stealing pool, but the
//! rendezvous merge re-establishes the canonical (SM id, flush-then-drain)
//! order, so *every* statistic — architectural and engine-scheduling alike
//! — must be byte-identical to the serial path at any thread count.
//!
//! This digest is therefore stricter than the burst-equivalence one: it
//! keeps the stepped/skipped splits, skip-bound breakdowns and burst
//! counters (the parallel executor must not change scheduling at all) and
//! scrubs only the pool's own telemetry (`par_*`), which is zero on the
//! serial path and partly timing-dependent (steals, barrier waits) on the
//! pool.

use std::collections::BTreeMap;

use baselines::{cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::{run_kernel, run_kernel_traced};
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::stats::{LoadWindowDetail, SimStats};
use gpu_sim::trace::{diff, TraceWriter, Tracer, MASK_ALL};
use linebacker::{linebacker_factory, LbConfig};

/// The four single-run policies (Best-SWL is a sweep over baseline runs,
/// so baseline coverage covers it).
fn policies() -> Vec<(&'static str, Box<PolicyFactory<'static>>)> {
    vec![
        ("base", baseline_factory()),
        ("pcal", pcal_factory()),
        ("cerf", cerf_factory()),
        ("lb", linebacker_factory(LbConfig::default())),
    ]
}

/// HashMap iteration order is per-instance; sort line counts before
/// formatting so two equal details digest equally.
fn detail_digest(d: &LoadWindowDetail) -> String {
    let lines: BTreeMap<u64, u32> = d.line_counts.iter().map(|(k, v)| (*k, *v)).collect();
    format!("lines={lines:?} windows={:?}", d.windows)
}

/// Full-stats digest scrubbing only the pool telemetry. Everything else —
/// per-load maps, timelines, energy, stepped/skipped splits, skip bounds,
/// burst histograms, partition counters — must match the serial run.
fn digest(stats: &SimStats) -> String {
    let mut s = stats.clone();
    let per_load: BTreeMap<u32, String> =
        s.per_load.iter().map(|(k, v)| (*k, format!("{v:?}"))).collect();
    let load_detail: BTreeMap<u32, String> =
        s.load_detail.iter().map(|(k, v)| (*k, detail_digest(v))).collect();
    let detail_dense: Vec<String> = s.load_detail_dense.iter().map(detail_digest).collect();
    s.per_load.clear();
    s.load_detail.clear();
    s.load_detail_dense.clear();
    let e = &mut s.events;
    e.par_threads = 0;
    e.par_rounds = 0;
    e.par_spans = 0;
    e.par_steals = 0;
    e.par_barrier_wait_ns = 0;
    format!("{s:?}|per_load={per_load:?}|detail={load_detail:?}|dense={detail_dense:?}")
}

fn quick_cfg() -> GpuConfig {
    GpuConfig::default().with_sms(4).with_windows(5_000, 60_000)
}

/// Full-stats identity across `--sim-threads {1, 2, 4}` for all four
/// policies on a mixed-behaviour workload. Thread count 1 is the exact
/// serial path, so this also anchors the pool runs to the PR 9 baseline.
#[test]
fn sim_threads_digest_identical_across_policies() {
    let app = workloads::app("GE").expect("known app");
    let k = app.kernel(quick_cfg().n_sms);
    for (name, factory) in policies() {
        let serial = digest(&run_kernel(quick_cfg().with_sim_threads(1), k.clone(), &factory));
        for threads in [2u32, 4] {
            let par =
                digest(&run_kernel(quick_cfg().with_sim_threads(threads), k.clone(), &factory));
            assert_eq!(
                serial, par,
                "arch={name} sim-threads={threads}: stats must match the serial run byte for byte"
            );
        }
    }
}

/// The merge must also reproduce the serial interconnect arrival order
/// when emissions fan out across several L2 slices, and compose with the
/// lockstep (no-burst) engine, where every span is one cycle long.
#[test]
fn sim_threads_identical_with_partitions_and_without_burst() {
    let app = workloads::app("GA").expect("known app");
    let k = app.kernel(quick_cfg().n_sms);
    let factory = linebacker_factory(LbConfig::default());
    for cfg in [quick_cfg().with_mem_partitions(4), quick_cfg().with_burst(false)] {
        let serial = digest(&run_kernel(cfg.clone(), k.clone(), &factory));
        let par = digest(&run_kernel(cfg.with_sim_threads(4), k.clone(), &factory));
        assert_eq!(serial, par);
    }
}

/// Pool engagement is real, not vacuous: a multi-threaded run must report
/// pool rounds and spans, and a serial run must report none — proving the
/// digests above compared a genuinely parallel execution to a genuinely
/// serial one.
#[test]
fn parallel_runs_actually_engage_the_pool() {
    let app = workloads::app("GE").expect("known app");
    let k = app.kernel(quick_cfg().n_sms);
    let factory = baseline_factory();
    let par = run_kernel(quick_cfg().with_sim_threads(2), k.clone(), &factory);
    assert_eq!(par.events.par_threads, 2);
    assert!(par.events.par_rounds > 0, "multi-SM workload must hit parallel rounds");
    assert!(par.events.par_spans >= 2 * par.events.par_rounds);
    let serial = run_kernel(quick_cfg(), k, &factory);
    assert_eq!(serial.events.par_threads, 0);
    assert_eq!(serial.events.par_rounds, 0);
}

/// Tracing pins the engine to one thread (the tracer is not shareable
/// across the pool), so a traced run at any requested `sim_threads` is the
/// lockstep single-threaded engine: its event stream must be byte-identical
/// to a traced `sim_threads = 1` run, with zero pool telemetry.
#[test]
fn traced_runs_pin_to_one_thread_and_diverge_nowhere() {
    let app = workloads::app("GA").expect("known app");
    let k = app.kernel(quick_cfg().n_sms);
    let capture = |threads: u32| {
        let tracer = Tracer::new(TraceWriter::to_memory(MASK_ALL));
        let s = run_kernel_traced(
            quick_cfg().with_sim_threads(threads),
            k.clone(),
            &linebacker_factory(LbConfig::default()),
            tracer.clone(),
        );
        (s, tracer.take_bytes().expect("memory sink"))
    };
    let (s_one, bytes_one) = capture(1);
    let (s_four, bytes_four) = capture(4);
    assert_eq!(s_four.events.par_threads, 0, "traced run must never build a pool");
    assert_eq!(s_four.events.par_rounds, 0);
    assert_eq!(digest(&s_one), digest(&s_four));
    assert_eq!(bytes_one, bytes_four, "traced runs must produce identical event streams");
    let outcome = diff(&bytes_one, &bytes_four).expect("valid traces");
    assert!(outcome.is_identical(), "trace diff must report zero divergence");
}
