//! Determinism regression: executing the plan across a worker pool must
//! change nothing but wall-clock time. A Figure-12-style table rendered
//! from a serial runner (`jobs = 1`) and from a parallel runner
//! (`jobs = 4`) must be byte-identical, and both runners must execute each
//! distinct [`RunKey`] exactly once.

use lb_bench::{Arch, RunKey, Runner, Scale, Table};

/// Three-app subset of the Figure 12 headline comparison (the ISSUE-sized
/// determinism probe; the full suite is exercised by `lb-experiments`).
const APPS: [&str; 3] = ["GA", "GE", "S2"];
const ARCHS: [Arch; 4] = [Arch::Baseline, Arch::Pcal, Arch::Cerf, Arch::Linebacker];

/// The subset's simulation plan: every Best-SWL sweep point plus the four
/// compared architectures, per app.
fn plan(r: &Runner) -> Vec<RunKey> {
    let mut keys = Vec::new();
    for abbrev in APPS {
        let app = workloads::app(abbrev).unwrap();
        keys.extend(r.best_swl_plan(&app));
        for arch in ARCHS {
            keys.push(RunKey::for_app(&app, arch));
        }
    }
    keys
}

/// Renders the subset exactly the way `fig12` renders the full suite:
/// per-app IPC normalized to the Best-SWL oracle, three decimals.
fn render(r: &Runner) -> String {
    let mut t = Table::new(
        "fig12-subset",
        "determinism probe (normalized to Best-SWL)",
        vec!["app".into(), "Baseline".into(), "PCAL".into(), "CERF".into(), "LB".into()],
    );
    for abbrev in APPS {
        let app = workloads::app(abbrev).unwrap();
        let bswl = r.best_swl_ipc(&app);
        let mut row = vec![abbrev.to_string()];
        for arch in ARCHS {
            row.push(format!("{:.3}", r.run(&app, arch).ipc() / bswl.max(1e-9)));
        }
        t.row(row);
    }
    t.render()
}

#[test]
fn parallel_rendering_is_byte_identical_to_serial() {
    let mut serial = Runner::new(Scale::Quick);
    serial.set_jobs(1);
    let mut parallel = Runner::new(Scale::Quick);
    parallel.set_jobs(4);

    let keys = plan(&serial);
    assert_eq!(keys, plan(&parallel), "plans must not depend on the runner");

    serial.prefetch(&keys);
    parallel.prefetch(&keys);

    // Exactly-once execution: both runners simulated each distinct key once,
    // no matter the worker count or the duplicates inside the plan.
    let distinct: std::collections::HashSet<_> = keys.iter().collect();
    assert_eq!(serial.sims_run() as usize, distinct.len());
    assert_eq!(parallel.sims_run() as usize, distinct.len());

    let a = render(&serial);
    let b = render(&parallel);
    assert_eq!(a, b, "jobs=1 and jobs=4 tables must be byte-identical");

    // Rendering was pure table lookup — no further simulations on either
    // side (the Best-SWL arg-max reads the prefetched sweep).
    assert_eq!(serial.sims_run() as usize, distinct.len());
    assert_eq!(parallel.sims_run() as usize, distinct.len());
}
