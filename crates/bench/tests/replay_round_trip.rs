//! Capture → replay must be a statistical no-op: a trace captured from a
//! one-wave synthetic run, replayed under ANY policy, must reproduce the
//! direct synthetic run of that policy field-for-field.
//!
//! The only digest exclusions are the decoded-descriptor-cache telemetry
//! counters: the replay frontend feeds recorded lines straight to the LSU
//! and never consults the descriptor cache, so `desc_*` legitimately read
//! zero on the replay side. Everything else — cycles, instruction counts,
//! cache outcomes, RF traffic, energy, burst telemetry, idle-skip splits —
//! must match exactly, which is what makes the trace frontend safe to use
//! for policy studies.

use std::collections::BTreeMap;
use std::sync::Arc;

use baselines::{cache_ext_config, cerf_factory, pcal_factory};
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::kernel::KernelSpec;
use gpu_sim::policy::{baseline_factory, PolicyFactory};
use gpu_sim::replay::ReplayKernel;
use gpu_sim::stats::SimStats;
use linebacker::{linebacker_factory, LbConfig};

/// Policy set matching the trace_replay experiment: Baseline, CacheExt
/// (baseline scheduling over the enlarged L1), PCAL, Linebacker. The bool
/// marks the CacheExt config transform.
fn policies() -> Vec<(&'static str, bool, Box<PolicyFactory<'static>>)> {
    vec![
        ("base", false, baseline_factory()),
        ("cache-ext", true, baseline_factory()),
        ("pcal", false, pcal_factory()),
        ("cerf", false, cerf_factory()),
        ("lb", false, linebacker_factory(LbConfig::default())),
    ]
}

/// Full-stats digest minus the descriptor-cache counters (unused on the
/// replay path by design).
fn digest(stats: &SimStats) -> String {
    let mut s = stats.clone();
    let per_load: BTreeMap<u32, String> =
        s.per_load.iter().map(|(k, v)| (*k, format!("{v:?}"))).collect();
    s.per_load.clear();
    s.events.desc_hits = 0;
    s.events.desc_misses = 0;
    s.events.desc_entries = 0;
    s.events.desc_bytes = 0;
    format!("{s:?}|per_load={per_load:?}")
}

fn cap_cfg() -> GpuConfig {
    GpuConfig::default().with_sms(2).with_windows(5_000, 400_000)
}

fn policy_cfg(cfg: &GpuConfig, kernel: &KernelSpec, cache_ext: bool) -> GpuConfig {
    if cache_ext {
        cache_ext_config(cfg, kernel)
    } else {
        cfg.clone()
    }
}

/// Captures `abbrev` once under baseline, then checks direct-vs-replay
/// digests for every policy.
fn assert_round_trip(abbrev: &str) {
    let cfg = cap_cfg();
    let (_, rep) =
        lb_replay::capture_app(abbrev, &cfg, 6, &baseline_factory()).expect("capture succeeds");
    let kernel = rep.stub.clone();
    let rep: Arc<ReplayKernel> = Arc::new(rep);
    for (name, cache_ext, factory) in policies() {
        let run_cfg = policy_cfg(&cfg, &kernel, cache_ext);
        let direct = run_kernel(run_cfg.clone(), kernel.clone(), &factory);
        let replayed = gpu_sim::run_replay_kernel(run_cfg, &rep, &factory);
        assert!(direct.completed, "app={abbrev} arch={name}: direct run must complete");
        assert_eq!(
            digest(&direct),
            digest(&replayed),
            "app={abbrev} arch={name}: replay diverged from the direct synthetic run"
        );
    }
}

/// Round trip across the three behaviour classes the corpus covers:
/// cache-sensitive reuse (S1), mixed with stores (GE), divergent (BI).
#[test]
fn replay_reproduces_direct_runs_across_policies() {
    for abbrev in ["S1", "GE", "BI"] {
        assert_round_trip(abbrev);
    }
}

/// A trace decoded from the canonical byte format (not just the in-memory
/// capture) replays identically too: bytes are the contract, not the
/// struct.
#[test]
fn decoded_bytes_replay_identically_to_in_memory_capture() {
    let cfg = cap_cfg();
    let (_, rep) =
        lb_replay::capture_app("S1", &cfg, 6, &baseline_factory()).expect("capture succeeds");
    let bytes = lb_replay::encode(&rep);
    let decoded = Arc::new(lb_replay::decode(&bytes).expect("decode succeeds"));
    let from_mem = gpu_sim::run_replay_kernel(cfg.clone(), &Arc::new(rep), &baseline_factory());
    let from_bytes = gpu_sim::run_replay_kernel(cfg, &decoded, &baseline_factory());
    assert_eq!(digest(&from_mem), digest(&from_bytes));
}
