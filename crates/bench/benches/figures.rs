//! Figure-regeneration benchmarks: each reproduced table/figure has a
//! benchmark exercising its experiment end-to-end (simulation + analysis) at
//! reduced scale. `cargo bench` therefore covers every artifact of the
//! paper's evaluation; the full 20-app tables come from the `lb-experiments`
//! binary.
//!
//! Timed with the in-tree `testkit::bench` harness (the container has no
//! crates.io access, so criterion is not available).

use std::hint::black_box;

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::policy::baseline_factory;
use lb_bench::{Arch, RunKey, Runner, Scale};
use testkit::bench;
use workloads::app;

/// A tiny configuration so each simulated iteration is milliseconds.
fn tiny_cfg() -> GpuConfig {
    GpuConfig::default().with_sms(1).with_windows(2_000, 16_000)
}

const SIM_ITERS: u32 = 10;

fn bench_architectures() {
    // One representative cache-sensitive app under every headline
    // architecture (the Figure 12 columns).
    for (name, arch) in [
        ("baseline", Arch::Baseline),
        ("best_swl2", Arch::StaticLimit(2)),
        ("pcal", Arch::Pcal),
        ("cerf", Arch::Cerf),
        ("linebacker", Arch::Linebacker),
    ] {
        let a = app("GE").unwrap();
        let cfg = tiny_cfg();
        bench(&format!("fig12_architectures/GE_{name}"), SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc());
        });
    }
}

fn bench_ablations_and_combos() {
    // Figures 11 and 15 variants on a stream-heavy app (BI), where the
    // selective-vs-plain distinction matters.
    for (name, arch) in [
        ("victim_caching", Arch::VictimCaching),
        ("svc", Arch::Svc),
        ("pcal_cerf", Arch::PcalCerf),
        ("pcal_svc", Arch::PcalSvc),
        ("lb_cache_ext", Arch::LbCacheExt),
    ] {
        let a = app("BI").unwrap();
        let cfg = tiny_cfg();
        bench(&format!("fig11_fig15_variants/BI_{name}"), SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc());
        });
    }
}

fn bench_sweeps() {
    // Figure 10 (VTT associativity) and Figure 14 (L1 size) sweep points.
    for assoc in [1u32, 16] {
        let a = app("S2").unwrap();
        let cfg = tiny_cfg();
        let arch = Arch::LinebackerAssoc(assoc);
        bench(&format!("fig10_fig14_sweep_points/S2_lb_{assoc}way"), SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc());
        });
    }
    for l1_kb in [16u64, 128] {
        let a = app("S2").unwrap();
        let cfg = tiny_cfg().with_l1_size(l1_kb * 1024);
        let arch = Arch::Linebacker;
        bench(&format!("fig10_fig14_sweep_points/S2_lb_l1_{l1_kb}kb"), SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc());
        });
    }
}

fn bench_motivation() {
    // Figures 1-5 and Table 2 rely on baseline + enlarged-L1 + detailed
    // runs; measure each ingredient.
    {
        let a = app("CF").unwrap();
        let cfg = tiny_cfg();
        bench("motivation_ingredients/fig01_baseline_miss_breakdown", SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            let s = run_kernel(cfg.clone(), k, &baseline_factory());
            black_box((s.miss_cold, s.miss_2c));
        });
    }
    {
        let a = app("CF").unwrap();
        let cfg = tiny_cfg().with_l1_size(192 * 1024);
        bench("motivation_ingredients/table2_192kb_run", SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &baseline_factory()).ipc());
        });
    }
    {
        let a = app("CF").unwrap();
        let mut cfg = tiny_cfg();
        cfg.detailed_load_stats = true;
        bench("motivation_ingredients/fig02_detailed_stats_run", SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            let s = run_kernel(cfg.clone(), k, &baseline_factory());
            black_box(s.load_detail.len());
        });
    }
    {
        let a = app("GE").unwrap();
        let base = tiny_cfg();
        let cfg = Arch::CacheExt.transform_config(&base, &a);
        bench("motivation_ingredients/fig05_cache_ext_run", SIM_ITERS, || {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &baseline_factory()).ipc());
        });
    }
}

fn bench_overhead_model() {
    // §4.2 storage-overhead computation (pure arithmetic).
    bench("overhead_model", 1000, || {
        black_box(linebacker::StorageOverhead::compute(48 * 1024, 1536).total_kb());
    });
}

fn bench_parallel_prefetch() {
    // The run-plan engine: a small batch executed through prefetch() (all
    // distinct keys, executed exactly once each).
    bench("engine/prefetch_quick_batch", 3, || {
        let runner = Runner::new(Scale::Quick);
        let keys: Vec<RunKey> = ["GA", "GE", "S2"]
            .iter()
            .flat_map(|ab| [RunKey::new(ab, Arch::Baseline), RunKey::new(ab, Arch::Linebacker)])
            .collect();
        runner.prefetch(&keys);
        black_box(runner.sims_run());
    });
}

fn main() {
    bench_architectures();
    bench_ablations_and_combos();
    bench_sweeps();
    bench_motivation();
    bench_overhead_model();
    bench_parallel_prefetch();
}
